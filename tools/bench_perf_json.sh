#!/usr/bin/env bash
# Dumps the event-engine microbenchmark suite as google-benchmark JSON, plus
# the telemetry-overhead numbers (disabled-path branch cost and enabled-path
# cost on the Table-I macro workload).
#
# Usage: tools/bench_perf_json.sh [build-dir] [output-json] [telemetry-json]
#
# Runs bench_perf_engine (engine hot-path benchmarks: self-scheduling churn,
# periodic timer-wheel ticks, bulk throughput, and the Table-I-scale macro
# point) and bench_telemetry_overhead, and writes the machine-readable
# results where CI can archive them and where successive commits can be
# diffed. Comparing BM_SimulatorSelfScheduling (no instrumentation site)
# against bench_telemetry_overhead's self_scheduling OFF row (one null-handle
# branch) measures the telemetry-disabled overhead directly.
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_perf.json}"
tel_out="${3:-BENCH_telemetry_overhead.json}"

# Archived numbers must come from an optimized build: a Debug run distorts
# every figure (and the engine-throughput ones by an order of magnitude).
# Set PBXCAP_BENCH_ALLOW_DEBUG=1 to run anyway; the outputs are then tagged
# with a .non-release.json suffix so they can never be mistaken for the
# archived baseline.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${build_dir}/CMakeCache.txt" 2>/dev/null || true)"
if [[ "${build_type}" != "Release" && "${build_type}" != "RelWithDebInfo" ]]; then
  if [[ "${PBXCAP_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
    echo "error: ${build_dir} is a '${build_type:-unknown}' build, not Release." >&2
    echo "Benchmark JSON from unoptimized builds is not comparable; rebuild with:" >&2
    echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
    echo "or set PBXCAP_BENCH_ALLOW_DEBUG=1 to tag-and-run anyway." >&2
    exit 1
  fi
  echo "WARNING: benchmarking a '${build_type:-unknown}' build; results tagged non-release." >&2
  out="${out%.json}.non-release.json"
  tel_out="${tel_out%.json}.non-release.json"
fi

bench="${build_dir}/bench/bench_perf_engine"
if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not found or not executable; build the project first:" >&2
  echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
  exit 1
fi

"${bench}" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote ${out}"

tel_bench="${build_dir}/bench/bench_telemetry_overhead"
if [[ -x "${tel_bench}" ]]; then
  "${tel_bench}" --json "${tel_out}"
else
  echo "warning: ${tel_bench} not built; skipping telemetry overhead" >&2
fi

# Overload-collapse goodput (off vs on per load factor) rides along so
# successive commits can diff the control subsystem's effectiveness too.
oc_bench="${build_dir}/bench/bench_overload_collapse"
oc_out="BENCH_overload_collapse.json"
if [[ -x "${oc_bench}" ]]; then
  "${oc_bench}" --fast --json "${oc_out}" > /dev/null
  echo "wrote ${oc_out}"
else
  echo "warning: ${oc_bench} not built; skipping overload collapse" >&2
fi

# Fluid-vs-packet ablation (accuracy gates + event-reduction ratios) so the
# hybrid media engine's exactness contract is re-checked wherever the perf
# numbers are archived. A gate failure fails this script.
fa_bench="${build_dir}/bench/bench_fluid_ablation"
fa_out="BENCH_fluid_ablation.json"
[[ "${build_type}" == "Release" || "${build_type}" == "RelWithDebInfo" ]] || fa_out="${fa_out%.json}.non-release.json"
if [[ -x "${fa_bench}" ]]; then
  "${fa_bench}" --fast --json "${fa_out}" > /dev/null
  echo "wrote ${fa_out}"
else
  echo "warning: ${fa_bench} not built; skipping fluid ablation" >&2
fi

# Erlang-C/A validation sweep (ACD queue vs the analytic delay/abandonment
# models, gated) so a drift in the queueing subsystem fails this script and
# the measured-vs-analytic rows are archived next to the perf numbers.
ca_bench="${build_dir}/bench/bench_erlang_c_queue"
ca_out="BENCH_erlang_ca.json"
[[ "${build_type}" == "Release" || "${build_type}" == "RelWithDebInfo" ]] || ca_out="${ca_out%.json}.non-release.json"
if [[ -x "${ca_bench}" ]]; then
  "${ca_bench}" --fast --json "${ca_out}" > /dev/null
  echo "wrote ${ca_out}"
else
  echo "warning: ${ca_bench} not built; skipping Erlang-C/A validation" >&2
fi

# Codec tier: transcoded-bridge capacity ordering under the CPU budget plus
# the IAX2 trunk ablation (gated), so a regression in the translator cost
# model or the trunk framing fails this script and the capacity/bandwidth
# rows are archived next to the perf numbers.
cc_bench="${build_dir}/bench/bench_codec_capacity"
cc_out="BENCH_codec_capacity.json"
[[ "${build_type}" == "Release" || "${build_type}" == "RelWithDebInfo" ]] || cc_out="${cc_out%.json}.non-release.json"
if [[ -x "${cc_bench}" ]]; then
  "${cc_bench}" --fast --json "${cc_out}" > /dev/null
  echo "wrote ${cc_out}"
else
  echo "warning: ${cc_bench} not built; skipping codec capacity" >&2
fi

# Cluster-dispatch sustained-goodput-under-crash figures (per routing policy)
# so regressions in the failover path show up as a diff here.
cd_bench="${build_dir}/bench/bench_cluster_dispatch"
cd_out="BENCH_cluster_dispatch.json"
if [[ -x "${cd_bench}" ]]; then
  "${cd_bench}" --fast --json "${cd_out}" > /dev/null
  echo "wrote ${cd_out}"
else
  echo "warning: ${cd_bench} not built; skipping cluster dispatch" >&2
fi

# Sharded-executor scaling: same-seed runs at 1/2/4/8 worker threads
# (determinism gate — a divergence fails this script), wall time / speedup
# per worker count, plus the 50-backend dispatcher fleet point run with the
# event-engine profiler at every worker count. The fleet's per-shard
# attribution JSON (byte-identical across worker counts; the hub-share
# evidence) is archived alongside. Speedup is a property of the host:
# single-core CI runners record an honest <= 1x.
ss_bench="${build_dir}/bench/bench_cluster_scaling"
ss_out="BENCH_shard_scaling.json"
ss_attr_out="BENCH_shard_attribution.json"
if [[ -x "${ss_bench}" ]]; then
  "${ss_bench}" --shards --fast --json "${ss_out}" --attr-json "${ss_attr_out}" > /dev/null
  echo "wrote ${ss_out}"
else
  echo "warning: ${ss_bench} not built; skipping shard scaling" >&2
fi
