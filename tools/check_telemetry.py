#!/usr/bin/env python3
"""Validates the telemetry artefacts the harnesses export.

Usage:
  check_telemetry.py METRICS.prom SERIES.csv TRACE.json
  check_telemetry.py --profile PROFILE.json
  check_telemetry.py --attribution ATTRIBUTION.json
  check_telemetry.py --merged-trace TRACE.json

Positional mode checks the three Table-I exports, in order:
  * the Prometheus text exposition is well-formed (every family has exactly
    one TYPE header, samples parse) and carries the headline capacity
    metrics: SIP message counts by method/status, blocked-call counters by
    reason, and the active-channel gauge;
  * the per-second CSV has the standard sampler columns, at least one row,
    and a strictly increasing time axis;
  * the Chrome trace JSON is Perfetto-loadable in shape (process/thread
    metadata, complete "X" events with ph/pid/tid/name/ts/dur, instant "i"
    events with ph/pid/tid/name/ts) and contains at least one call track
    with a complete setup -> media -> teardown lifecycle.

--profile validates an event-engine profile (`pbxcap profile --json-out` /
telemetry::to_json): schema, full builtin category coverage, and the
per-category counts summing exactly to events_processed.

--attribution validates a per-shard attribution export
(telemetry::attribution_json): per-shard categories, shares summing to 1,
and the total section agreeing with the per-shard sums.

--merged-trace validates a multi-process merged Chrome trace
(telemetry::to_chrome_trace_merged): at least two Perfetto processes and
well-formed slice/instant events throughout.

Exits non-zero with a diagnostic on the first failure. Stdlib only.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_prometheus(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty")

    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in lines:
        if not line:
            fail(f"{path}: blank line in exposition")
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            if family in types:
                fail(f"{path}: duplicate TYPE header for {family}")
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"{path}: unknown TYPE {kind!r} for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if not name_and_labels:
            fail(f"{path}: malformed sample line {line!r}")
        try:
            v = float(value)
        except ValueError:
            fail(f"{path}: non-numeric value in {line!r}")
        family = name_and_labels.split("{", 1)[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base.removesuffix(suffix) in types:
                base = base.removesuffix(suffix)
        if base not in types:
            fail(f"{path}: sample {family} has no TYPE header")
        if types[base] in ("counter", "histogram") and v < 0:
            fail(f"{path}: negative cumulative value in {line!r}")
        samples[name_and_labels] = v

    required = [
        'pbxcap_sip_messages_observed_total{type="INVITE"}',
        'pbxcap_sip_messages_observed_total{type="BYE"}',
        'pbxcap_sip_messages_observed_total{type="200"}',
        "pbxcap_pbx_active_channels",
        "pbxcap_pbx_invites_total",
    ]
    for key in required:
        if key not in samples:
            fail(f"{path}: required metric {key} missing")
    blocked = [k for k in samples if k.startswith("pbxcap_pbx_calls_blocked_total")]
    if not blocked:
        fail(f"{path}: no pbxcap_pbx_calls_blocked_total series")
    print(
        f"  {path}: {len(samples)} samples in {len(types)} families; "
        f"INVITEs={samples[required[0]]:.0f} "
        f"blocked={sum(samples[k] for k in blocked):.0f}"
    )


def check_series(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if len(lines) < 2:
        fail(f"{path}: need a header plus at least one sample row")
    header = lines[0].split(",")
    required = [
        "time_s",
        "active_channels",
        "cpu_utilization",
        "blocking_probability",
        "calls_blocked_per_s",
        "sip_msgs_per_s",
        "rtp_pkts_per_s",
    ]
    for col in required:
        if col not in header:
            fail(f"{path}: column {col} missing from header {header}")
    prev_t = float("-inf")
    for i, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(header):
            fail(f"{path}:{i}: {len(cells)} cells, header has {len(header)}")
        try:
            values = [float(c) for c in cells]
        except ValueError:
            fail(f"{path}:{i}: non-numeric cell in {line!r}")
        if values[0] <= prev_t:
            fail(f"{path}:{i}: time axis not strictly increasing")
        prev_t = values[0]
    print(f"  {path}: {len(lines) - 1} rows x {len(header)} columns, {prev_t:.0f} s span")


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    processes, tracks, complete, instants = scan_trace_events(path, events)
    if not processes:
        fail(f"{path}: no process_name metadata")

    lifecycle = {"call.setup", "call.media", "call.teardown"}
    full_calls = sum(1 for names in tracks.values() if lifecycle <= names)
    if full_calls == 0:
        fail(f"{path}: no track has a complete setup/media/teardown lifecycle")
    print(
        f"  {path}: {complete} spans + {instants} instants on {len(tracks)} tracks; "
        f"{full_calls} complete call lifecycles"
    )


def scan_trace_events(path: str, events: list) -> tuple[set, dict, int, int]:
    """Shared trace-event walk: returns (process pids, per-(pid,tid) name
    sets, slice count, instant count), failing on any malformed event."""
    processes: set[int] = set()
    tracks: dict[tuple, set[str]] = {}
    complete = 0
    instants = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                processes.add(e.get("pid", 1))
            continue
        if ph == "C":  # profiler counter tracks ride along in some exports
            for field in ("pid", "name", "ts", "args"):
                if field not in e:
                    fail(f"{path}: C event missing {field}: {e}")
            continue
        if ph == "i":
            for field in ("pid", "tid", "name", "ts"):
                if field not in e:
                    fail(f"{path}: instant event missing {field}: {e}")
            instants += 1
            tracks.setdefault((e["pid"], e["tid"]), set()).add(e["name"])
            continue
        if ph != "X":
            fail(f"{path}: unexpected phase {ph!r}")
        for field in ("pid", "tid", "name", "ts", "dur"):
            if field not in e:
                fail(f"{path}: X event missing {field}: {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration: {e}")
        complete += 1
        tracks.setdefault((e["pid"], e["tid"]), set()).add(e["name"])
    return processes, tracks, complete, instants


# The builtin category table in sim/profile.hpp; every profile export must
# cover all of these (extra experiment-registered categories may follow).
BUILTIN_CATEGORIES = [
    "unattributed",
    "sip",
    "rtp-packet",
    "rtp-fluid-flush",
    "pbx",
    "dispatch",
    "fault",
    "timer-wheel",
    "shard-mailbox",
    "loadgen",
    "acd",
]


def check_profile_data(path: str, doc: dict, label: str = "") -> int:
    """Validates one ProfileData JSON object; returns its total event count."""
    where = f"{path}{label}"
    if "events_processed" not in doc:
        fail(f"{where}: events_processed missing")
    categories = doc.get("categories")
    if not isinstance(categories, list) or not categories:
        fail(f"{where}: categories missing or empty")
    names = []
    total = 0
    for cat in categories:
        for field in ("name", "events", "share"):
            if field not in cat:
                fail(f"{where}: category missing {field}: {cat}")
        if cat["events"] < 0 or not 0.0 <= cat["share"] <= 1.0:
            fail(f"{where}: implausible category row {cat}")
        names.append(cat["name"])
        total += cat["events"]
    if names[: len(BUILTIN_CATEGORIES)] != BUILTIN_CATEGORIES:
        fail(
            f"{where}: builtin categories missing or out of order: "
            f"{names[:len(BUILTIN_CATEGORIES)]}"
        )
    if total != doc["events_processed"]:
        fail(
            f"{where}: category counts sum to {total}, "
            f"events_processed says {doc['events_processed']} — "
            "some events are unaccounted for"
        )
    return total


def check_profile(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    total = check_profile_data(path, doc)
    top = max(doc["categories"], key=lambda c: c["events"])
    print(
        f"  {path}: {total} events fully attributed across "
        f"{len(doc['categories'])} categories; top: {top['name']} "
        f"({100.0 * top['share']:.1f}%)"
    )


def check_attribution(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    shards = doc.get("shards")
    if not isinstance(shards, list) or not shards:
        fail(f"{path}: shards missing or empty")
    share_sum = 0.0
    events_sum = 0
    for shard in shards:
        for field in ("shard", "events", "share", "categories"):
            if field not in shard:
                fail(f"{path}: shard entry missing {field}: {shard}")
        if sum(shard["categories"].values()) != shard["events"]:
            fail(f"{path}: shard {shard['shard']}: categories do not sum to events")
        share_sum += shard["share"]
        events_sum += shard["events"]
    if abs(share_sum - 1.0) > 1e-3:
        fail(f"{path}: shard shares sum to {share_sum}, expected 1.0")
    total = doc.get("total")
    if not isinstance(total, dict):
        fail(f"{path}: total section missing")
    if check_profile_data(path, total, label=" (total)") != events_sum:
        fail(f"{path}: total section disagrees with per-shard event sums")
    hub = shards[0]
    print(
        f"  {path}: {len(shards)} shards, {events_sum} events; "
        f"{hub['shard']} share {100.0 * hub['share']:.1f}%"
    )


def check_merged_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    processes, tracks, complete, instants = scan_trace_events(path, events)
    if len(processes) < 2:
        fail(f"{path}: merged trace has {len(processes)} processes, expected >= 2")
    print(
        f"  {path}: {len(processes)} processes, {complete} spans + "
        f"{instants} instants on {len(tracks)} tracks"
    )


def main() -> None:
    if len(sys.argv) == 3 and sys.argv[1] == "--profile":
        check_profile(sys.argv[2])
    elif len(sys.argv) == 3 and sys.argv[1] == "--attribution":
        check_attribution(sys.argv[2])
    elif len(sys.argv) == 3 and sys.argv[1] == "--merged-trace":
        check_merged_trace(sys.argv[2])
    elif len(sys.argv) == 4 and not sys.argv[1].startswith("--"):
        check_prometheus(sys.argv[1])
        check_series(sys.argv[2])
        check_trace(sys.argv[3])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
