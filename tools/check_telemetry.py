#!/usr/bin/env python3
"""Validates the three telemetry artefacts a Table-I run exports.

Usage: check_telemetry.py METRICS.prom SERIES.csv TRACE.json

Checks, in order:
  * the Prometheus text exposition is well-formed (every family has exactly
    one TYPE header, samples parse) and carries the headline capacity
    metrics: SIP message counts by method/status, blocked-call counters by
    reason, and the active-channel gauge;
  * the per-second CSV has the standard sampler columns, at least one row,
    and a strictly increasing time axis;
  * the Chrome trace JSON is Perfetto-loadable in shape (process/thread
    metadata, complete "X" events with ph/pid/tid/name/ts/dur) and contains
    at least one call track with a complete setup -> media -> teardown
    lifecycle.

Exits non-zero with a diagnostic on the first failure. Stdlib only.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_prometheus(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty")

    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in lines:
        if not line:
            fail(f"{path}: blank line in exposition")
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            if family in types:
                fail(f"{path}: duplicate TYPE header for {family}")
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"{path}: unknown TYPE {kind!r} for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if not name_and_labels:
            fail(f"{path}: malformed sample line {line!r}")
        try:
            v = float(value)
        except ValueError:
            fail(f"{path}: non-numeric value in {line!r}")
        family = name_and_labels.split("{", 1)[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base.removesuffix(suffix) in types:
                base = base.removesuffix(suffix)
        if base not in types:
            fail(f"{path}: sample {family} has no TYPE header")
        if types[base] in ("counter", "histogram") and v < 0:
            fail(f"{path}: negative cumulative value in {line!r}")
        samples[name_and_labels] = v

    required = [
        'pbxcap_sip_messages_observed_total{type="INVITE"}',
        'pbxcap_sip_messages_observed_total{type="BYE"}',
        'pbxcap_sip_messages_observed_total{type="200"}',
        "pbxcap_pbx_active_channels",
        "pbxcap_pbx_invites_total",
    ]
    for key in required:
        if key not in samples:
            fail(f"{path}: required metric {key} missing")
    blocked = [k for k in samples if k.startswith("pbxcap_pbx_calls_blocked_total")]
    if not blocked:
        fail(f"{path}: no pbxcap_pbx_calls_blocked_total series")
    print(
        f"  {path}: {len(samples)} samples in {len(types)} families; "
        f"INVITEs={samples[required[0]]:.0f} "
        f"blocked={sum(samples[k] for k in blocked):.0f}"
    )


def check_series(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if len(lines) < 2:
        fail(f"{path}: need a header plus at least one sample row")
    header = lines[0].split(",")
    required = [
        "time_s",
        "active_channels",
        "cpu_utilization",
        "blocking_probability",
        "calls_blocked_per_s",
        "sip_msgs_per_s",
        "rtp_pkts_per_s",
    ]
    for col in required:
        if col not in header:
            fail(f"{path}: column {col} missing from header {header}")
    prev_t = float("-inf")
    for i, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(header):
            fail(f"{path}:{i}: {len(cells)} cells, header has {len(header)}")
        try:
            values = [float(c) for c in cells]
        except ValueError:
            fail(f"{path}:{i}: non-numeric cell in {line!r}")
        if values[0] <= prev_t:
            fail(f"{path}:{i}: time axis not strictly increasing")
        prev_t = values[0]
    print(f"  {path}: {len(lines) - 1} rows x {len(header)} columns, {prev_t:.0f} s span")


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    have_process = False
    tracks: dict[int, set[str]] = {}
    complete = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                have_process = True
            continue
        if ph != "X":
            fail(f"{path}: unexpected phase {ph!r}")
        for field in ("pid", "tid", "name", "ts", "dur"):
            if field not in e:
                fail(f"{path}: X event missing {field}: {e}")
        if e["dur"] < 0:
            fail(f"{path}: negative duration: {e}")
        complete += 1
        tracks.setdefault(e["tid"], set()).add(e["name"])
    if not have_process:
        fail(f"{path}: no process_name metadata")

    lifecycle = {"call.setup", "call.media", "call.teardown"}
    full_calls = sum(1 for names in tracks.values() if lifecycle <= names)
    if full_calls == 0:
        fail(f"{path}: no track has a complete setup/media/teardown lifecycle")
    print(
        f"  {path}: {complete} spans on {len(tracks)} tracks; "
        f"{full_calls} complete call lifecycles"
    )


def main() -> None:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_prometheus(sys.argv[1])
    check_series(sys.argv[2])
    check_trace(sys.argv[3])
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
