// pbxcap command-line toolkit.
//
// Every analytical and empirical capability of the library behind one
// binary, for interactive dimensioning work:
//
//   pbxcap erlang-b <A> <N>                    blocking probability
//   pbxcap erlang-b --channels <A> <Pb>        channels for a target
//   pbxcap erlang-b --load <N> <Pb>            max offered load
//   pbxcap erlang-c <A> <N> [hold_s]           wait probability / mean wait
//   pbxcap engset <A> <M> <N>                  finite-population blocking
//   pbxcap dimension <calls/h> <min> <Pb>      busy-hour channel plan
//   pbxcap mos <loss%> <delay_ms> [codec]      E-model MOS estimate
//   pbxcap simulate <A> [options]              packet-level testbed run
//   pbxcap profile [A] [options]               event-engine profile of a run
//
// simulate options: --channels N, --seed S, --window S, --hold S, --wifi,
//                   --codec NAME, --rtcp, --metrics-out F, --series-out F,
//                   --trace-out F
// profile options:  --channels N, --seed S, --window S, --top N, --timing,
//                   --json-out F, --counters-out F

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/dimensioning.hpp"
#include "core/engset.hpp"
#include "core/erlang_b.hpp"
#include "core/erlang_c.hpp"
#include "exp/testbed.hpp"
#include "media/emodel.hpp"
#include "rtp/codec.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pbxcap;
using erlang::Erlangs;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pbxcap erlang-b <A> <N>\n"
               "  pbxcap erlang-b --channels <A> <Pb>\n"
               "  pbxcap erlang-b --load <N> <Pb>\n"
               "  pbxcap erlang-c <A> <N> [hold_s]\n"
               "  pbxcap engset <A> <M> <N>\n"
               "  pbxcap dimension <calls_per_hour> <duration_min> <target_Pb>\n"
               "  pbxcap mos <loss_percent> <delay_ms> [codec]\n"
               "  pbxcap simulate <A> [--channels N] [--seed S] [--window S] "
               "[--hold S] [--codec NAME] [--wifi] [--rtcp]\n"
               "                      [--metrics-out F(.prom|.json)] [--series-out F.csv] "
               "[--trace-out F.json]\n"
               "  pbxcap profile [A] [--channels N] [--seed S] [--window S] [--top N] "
               "[--timing]\n"
               "                     [--json-out F.json] [--counters-out F.json]\n");
  return 2;
}

int cmd_erlang_b(const std::vector<std::string>& args) {
  if (args.size() == 3 && args[0] == "--channels") {
    const double a = std::atof(args[1].c_str());
    const double pb = std::atof(args[2].c_str());
    std::printf("A = %g E at P_b <= %g  =>  N = %u channels\n", a, pb,
                erlang::channels_for_blocking(Erlangs{a}, pb));
    return 0;
  }
  if (args.size() == 3 && args[0] == "--load") {
    const auto n = static_cast<std::uint32_t>(std::atoi(args[1].c_str()));
    const double pb = std::atof(args[2].c_str());
    std::printf("N = %u at P_b <= %g  =>  A_max = %.3f Erlangs\n", n, pb,
                erlang::offered_load_for_blocking(n, pb).value());
    return 0;
  }
  if (args.size() == 2) {
    const double a = std::atof(args[0].c_str());
    const auto n = static_cast<std::uint32_t>(std::atoi(args[1].c_str()));
    std::printf("Erlang-B: A = %g E, N = %u  =>  P_b = %.4f%%, carried = %.2f E\n", a, n,
                erlang::erlang_b(Erlangs{a}, n) * 100.0, erlang::carried_traffic(Erlangs{a}, n));
    return 0;
  }
  return usage();
}

int cmd_erlang_c(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const double a = std::atof(args[0].c_str());
  const auto n = static_cast<std::uint32_t>(std::atoi(args[1].c_str()));
  const double hold_s = args.size() > 2 ? std::atof(args[2].c_str()) : 180.0;
  const double pw = erlang::erlang_c(Erlangs{a}, n);
  std::printf("Erlang-C: A = %g E, N = %u  =>  P(wait) = %.4f%%\n", a, n, pw * 100.0);
  if (static_cast<double>(n) > a) {
    const auto wait = erlang::erlang_c_mean_wait(Erlangs{a}, n, Duration::from_seconds(hold_s));
    const double sl20 = erlang::erlang_c_service_level(
        Erlangs{a}, n, Duration::from_seconds(hold_s), Duration::seconds(20));
    std::printf("mean wait = %.2f s (hold %.0f s), service level (20 s) = %.1f%%\n",
                wait.to_seconds(), hold_s, sl20 * 100.0);
  } else {
    std::printf("queue unstable (A >= N)\n");
  }
  return 0;
}

int cmd_engset(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const double a = std::atof(args[0].c_str());
  const auto m = static_cast<std::uint32_t>(std::atoi(args[1].c_str()));
  const auto n = static_cast<std::uint32_t>(std::atoi(args[2].c_str()));
  std::printf("Engset: A = %g E over M = %u sources, N = %u  =>  P_b = %.4f%%  "
              "(Erlang-B: %.4f%%)\n",
              a, m, n, erlang::engset_blocking_total(Erlangs{a}, m, n) * 100.0,
              erlang::erlang_b(Erlangs{a}, n) * 100.0);
  return 0;
}

int cmd_dimension(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const double calls = std::atof(args[0].c_str());
  const double minutes = std::atof(args[1].c_str());
  const double pb = std::atof(args[2].c_str());
  const erlang::Workload w{calls, Duration::from_seconds(minutes * 60.0)};
  const std::uint32_t n = erlang::dimension_channels(w, pb);
  const auto point = erlang::evaluate_capacity(w, n);
  std::printf("%.0f calls/h x %.1f min = %.1f Erlangs offered\n", calls, minutes,
              point.offered.value());
  std::printf("P_b <= %g  =>  N = %u channels (actual P_b %.3f%%, carried %.1f E)\n", pb, n,
              point.blocking_probability * 100.0, point.carried_erlangs);
  return 0;
}

int cmd_mos(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const double loss = std::atof(args[0].c_str()) / 100.0;
  const double delay_ms = std::atof(args[1].c_str());
  const auto codec = rtp::codec_by_name(args.size() > 2 ? args[2] : "PCMU");
  if (!codec) {
    std::fprintf(stderr, "unknown codec; catalog:");
    for (const auto& c : rtp::codec_catalog()) std::fprintf(stderr, " %s", std::string{c.name}.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto inputs = media::inputs_for_codec(*codec, Duration::from_millis(delay_ms),
                                              Duration::millis(60), loss);
  const double r = media::r_factor(inputs);
  std::printf("%s @ %.1f%% loss, %.0f ms one-way  =>  R = %.1f (%s), MOS = %.2f\n",
              std::string{codec->name}.c_str(), loss * 100.0, delay_ms, r,
              std::string{media::to_string(media::quality_band(r))}.c_str(),
              media::estimate_mos(inputs));
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int cmd_simulate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(std::atof(args[0].c_str()));
  std::string metrics_out, series_out, trace_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--channels") {
      config.pbx.max_channels = static_cast<std::uint32_t>(std::atoi(next("--channels").c_str()));
    } else if (args[i] == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next("--seed").c_str()));
    } else if (args[i] == "--window") {
      config.scenario.placement_window =
          Duration::from_seconds(std::atof(next("--window").c_str()));
    } else if (args[i] == "--hold") {
      const double hold_s = std::atof(next("--hold").c_str());
      const double a = config.scenario.offered_erlangs();
      config.scenario.hold_time = Duration::from_seconds(hold_s);
      config.scenario.arrival_rate_per_s = a / hold_s;
    } else if (args[i] == "--codec") {
      const auto codec = rtp::codec_by_name(next("--codec"));
      if (!codec) {
        std::fprintf(stderr, "unknown codec\n");
        return 2;
      }
      config.scenario.codec = *codec;
      config.pbx.allowed_payload_types = {codec->payload_type};
    } else if (args[i] == "--wifi") {
      config.wifi_cell = net::WifiCellConfig{};
    } else if (args[i] == "--rtcp") {
      config.scenario.rtcp = true;
    } else if (args[i] == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (args[i] == "--series-out") {
      series_out = next("--series-out");
    } else if (args[i] == "--trace-out") {
      trace_out = next("--trace-out");
    } else {
      std::fprintf(stderr, "unknown option %s\n", args[i].c_str());
      return 2;
    }
  }

  // Any export flag turns the telemetry subsystem on for this run; span
  // tracing only when a trace sink was actually requested (the ring costs
  // memory).
  const bool want_telemetry = !metrics_out.empty() || !series_out.empty() || !trace_out.empty();
  telemetry::Config tel_config;
  tel_config.tracing = !trace_out.empty();
  telemetry::Telemetry tel{tel_config};
  if (want_telemetry) config.telemetry = &tel;

  std::printf("simulating A = %.1f E (lambda %.3f/s, h %.0f s, window %.0f s, N = %u)...\n",
              config.scenario.offered_erlangs(), config.scenario.arrival_rate_per_s,
              config.scenario.hold_time.to_seconds(),
              config.scenario.placement_window.to_seconds(), config.pbx.max_channels);
  exp::WifiObservations wifi;
  const auto r = exp::run_testbed(config, &wifi);

  bool exports_ok = true;
  if (!metrics_out.empty()) {
    const std::string text = std::string_view{metrics_out}.ends_with(".json")
                                 ? telemetry::to_json(tel.registry())
                                 : telemetry::to_prometheus(tel.registry());
    exports_ok = write_file(metrics_out, text) && exports_ok;
  }
  if (!series_out.empty()) {
    exports_ok = write_file(series_out, tel.sampler().to_csv()) && exports_ok;
  }
  if (!trace_out.empty() && tel.tracer() != nullptr) {
    exports_ok = write_file(trace_out, telemetry::to_chrome_trace(*tel.tracer())) && exports_ok;
  }
  if (!exports_ok) return 1;
  std::printf("attempted %llu | completed %llu | blocked %llu (%.1f%%) | failed %llu\n",
              (unsigned long long)r.calls_attempted, (unsigned long long)r.calls_completed,
              (unsigned long long)r.calls_blocked, r.blocking_probability * 100.0,
              (unsigned long long)r.calls_failed);
  std::printf("peak channels %u/%u | CPU %s | MOS %.2f | loss %.2f%% | jitter %.2f ms\n",
              r.channels_peak, r.channels_configured, r.cpu_range_string().c_str(),
              r.mos.mean(), r.effective_loss.mean() * 100.0, r.jitter_ms.mean());
  std::printf("SIP %llu msgs (%llu errors) | RTP %llu pkts @ PBX\n",
              (unsigned long long)r.sip_total, (unsigned long long)r.sip_errors,
              (unsigned long long)r.rtp_packets_at_pbx);
  if (config.wifi_cell) {
    std::printf("wifi: medium %.0f%% busy, %llu frames, %llu queue drops, %llu radio drops\n",
                wifi.medium_utilization * 100.0, (unsigned long long)wifi.frames_forwarded,
                (unsigned long long)wifi.frames_dropped_queue,
                (unsigned long long)wifi.frames_dropped_radio);
  }
  std::printf("Erlang-B reference at N = %u: %.2f%%\n", r.channels_configured,
              erlang::erlang_b(Erlangs{r.offered_erlangs}, r.channels_configured) * 100.0);
  return 0;
}

int cmd_profile(const std::vector<std::string>& args) {
  exp::TestbedConfig config;
  std::size_t first_flag = 0;
  double offered = 100.0;
  if (!args.empty() && args[0][0] != '-') {
    offered = std::atof(args[0].c_str());
    first_flag = 1;
  }
  config.scenario = loadgen::CallScenario::for_offered_load(offered);
  std::size_t top_n = 10;
  bool timing = false;
  std::string json_out, counters_out;
  for (std::size_t i = first_flag; i < args.size(); ++i) {
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--channels") {
      config.pbx.max_channels = static_cast<std::uint32_t>(std::atoi(next("--channels").c_str()));
    } else if (args[i] == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(next("--seed").c_str()));
    } else if (args[i] == "--window") {
      config.scenario.placement_window =
          Duration::from_seconds(std::atof(next("--window").c_str()));
    } else if (args[i] == "--top") {
      top_n = static_cast<std::size_t>(std::atoi(next("--top").c_str()));
    } else if (args[i] == "--timing") {
      timing = true;
    } else if (args[i] == "--json-out") {
      json_out = next("--json-out");
    } else if (args[i] == "--counters-out") {
      counters_out = next("--counters-out");
    } else {
      std::fprintf(stderr, "unknown option %s\n", args[i].c_str());
      return 2;
    }
  }

  telemetry::Config tel_config;
  tel_config.tracing = false;
  tel_config.profiling = true;
  telemetry::Telemetry tel{tel_config};
  config.telemetry = &tel;

  std::printf("profiling A = %.1f E (window %.0f s, N = %u, seed %llu)...\n",
              config.scenario.offered_erlangs(),
              config.scenario.placement_window.to_seconds(), config.pbx.max_channels,
              (unsigned long long)config.seed);
  (void)exp::run_testbed(config);

  const telemetry::ProfileData data = tel.profiler()->snapshot();
  std::printf("%s", telemetry::top_table(data, top_n).c_str());
  bool exports_ok = true;
  if (!json_out.empty()) {
    exports_ok = write_file(json_out, telemetry::to_json(data, timing)) && exports_ok;
  }
  if (!counters_out.empty()) {
    exports_ok =
        write_file(counters_out, telemetry::to_chrome_counter_trace(*tel.profiler())) &&
        exports_ok;
  }
  return exports_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (cmd == "erlang-b") return cmd_erlang_b(args);
  if (cmd == "erlang-c") return cmd_erlang_c(args);
  if (cmd == "engset") return cmd_engset(args);
  if (cmd == "dimension") return cmd_dimension(args);
  if (cmd == "mos") return cmd_mos(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "profile") return cmd_profile(args);
  return usage();
}
