// VoWiFi stress test: one Table-I-style experiment at a chosen offered load,
// optionally with Wi-Fi-like impairments on the client access link.
//
// Run: ./vowifi_stress [erlangs] [--wifi]
//   erlangs : offered load (default 160, the paper's saturation onset)
//   --wifi  : add 0.5% radio loss + 2 ms mean access jitter on the client
//             link, approximating the VoWiFi access segment of Fig. 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/testbed.hpp"
#include "monitor/report.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  double erlangs = 160.0;
  bool wifi = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wifi") == 0) {
      wifi = true;
    } else {
      erlangs = std::atof(argv[i]);
    }
  }
  if (erlangs <= 0.0) {
    std::fprintf(stderr, "usage: %s [erlangs] [--wifi]\n", argv[0]);
    return 2;
  }

  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(erlangs);
  config.seed = 7;
  if (wifi) {
    config.client_link.loss_probability = 0.005;
    config.client_link.jitter_mean = Duration::millis(2);
    config.client_link.jitter_stddev = Duration::millis(1);
  }

  std::printf("offered load A = %.0f Erlangs (lambda = %.3f calls/s, h = %.0f s)%s\n",
              erlangs, config.scenario.arrival_rate_per_s,
              config.scenario.hold_time.to_seconds(), wifi ? " [Wi-Fi access]" : "");
  std::printf("running packet-level simulation...\n");

  const monitor::ExperimentReport r = exp::run_testbed(config);

  std::printf("\n-- results --\n");
  std::printf("attempted %llu | completed %llu | blocked %llu (%.1f%%) | failed %llu\n",
              (unsigned long long)r.calls_attempted, (unsigned long long)r.calls_completed,
              (unsigned long long)r.calls_blocked, r.blocking_probability * 100.0,
              (unsigned long long)r.calls_failed);
  std::printf("peak channels: %u / %u configured\n", r.channels_peak, r.channels_configured);
  std::printf("CPU: %s (mean %.0f%%)\n", r.cpu_range_string().c_str(),
              r.cpu_utilization.mean() * 100.0);
  std::printf("MOS: mean %.2f (min %.2f) over completed calls\n", r.mos.mean(), r.mos.min());
  std::printf("effective loss: %.3f%% | jitter: %.2f ms | setup: %.1f ms\n",
              r.effective_loss.mean() * 100.0, r.jitter_ms.mean(), r.setup_delay_ms.mean());
  std::printf("RTP at PBX: %llu packets | relayed %llu\n",
              (unsigned long long)r.rtp_packets_at_pbx, (unsigned long long)r.rtp_relayed);
  std::printf("SIP: total %llu (INVITE %llu, 100 %llu, 180 %llu, 200 %llu, ACK %llu, "
              "BYE %llu, errors %llu, retransmissions %llu)\n",
              (unsigned long long)r.sip_total, (unsigned long long)r.sip_invite,
              (unsigned long long)r.sip_100, (unsigned long long)r.sip_180,
              (unsigned long long)r.sip_200, (unsigned long long)r.sip_ack,
              (unsigned long long)r.sip_bye, (unsigned long long)r.sip_errors,
              (unsigned long long)r.sip_retransmissions);
  return 0;
}
