// Quickstart: one VoIP call end-to-end through the simulated testbed.
//
// Builds the Fig. 4 topology (SIPp client / SIPp server / Asterisk PBX on a
// Fast Ethernet switch), places a single 10-second G.711 call, and prints
// the Fig. 2 message ladder as observed at the PBX interface, the CDR, and
// the heard voice quality.
//
// Run: ./quickstart

#include <cstdio>

#include "exp/testbed.hpp"
#include "loadgen/scenario.hpp"
#include "monitor/report.hpp"
#include "monitor/trace.hpp"

int main() {
  using namespace pbxcap;

  exp::TestbedConfig config;
  config.scenario.arrival_rate_per_s = 1.0;           // one arrival expected...
  config.scenario.max_calls = 1;                      // ...and exactly one allowed
  config.scenario.placement_window = Duration::seconds(5);
  config.scenario.hold_time = Duration::seconds(10);
  config.seed = 42;

  monitor::PacketTrace trace;
  config.trace = &trace;

  const monitor::ExperimentReport report = exp::run_testbed(config);

  std::printf("pbxcap quickstart: one call through the Asterisk PBX model\n");
  std::printf("-----------------------------------------------------------\n");
  std::printf("calls attempted   : %llu\n", (unsigned long long)report.calls_attempted);
  std::printf("calls completed   : %llu\n", (unsigned long long)report.calls_completed);
  std::printf("blocked           : %llu\n", (unsigned long long)report.calls_blocked);
  std::printf("setup delay       : %.2f ms\n", report.setup_delay_ms.mean());
  std::printf("MOS (heard)       : %.2f\n", report.mos.mean());
  std::printf("RTP packets @ PBX : %llu\n", (unsigned long long)report.rtp_packets_at_pbx);
  std::printf("\nSIP ladder at the PBX interface (Fig. 2 of the paper):\n");
  std::printf("  INVITE  x %llu\n", (unsigned long long)report.sip_invite);
  std::printf("  100 TRY x %llu\n", (unsigned long long)report.sip_100);
  std::printf("  180 RING x %llu\n", (unsigned long long)report.sip_180);
  std::printf("  200 OK  x %llu\n", (unsigned long long)report.sip_200);
  std::printf("  ACK     x %llu\n", (unsigned long long)report.sip_ack);
  std::printf("  BYE     x %llu\n", (unsigned long long)report.sip_bye);
  std::printf("  errors  x %llu\n", (unsigned long long)report.sip_errors);
  std::printf("  total   = %llu (paper: 13 SIP messages per call)\n",
              (unsigned long long)report.sip_total);

  std::printf("\nCaptured call flow (every SIP delivery, both call legs):\n%s",
              trace.sip_ladder("call-0").c_str());
  std::printf("%s", trace.sip_ladder("b2b-").c_str());
  return report.calls_completed == 1 ? 0 : 1;
}
