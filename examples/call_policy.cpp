// Call-policy exploration: §IV closes by noting that serving all ~50,000
// UnB users on one PBX requires "effective call policy that would impose
// limits to the number of calls a user may place". This example quantifies
// that tradeoff with the analytical models:
//
//   * Fig. 7 reproduction: blocking vs calling fraction of an 8,000-user
//     population for 2.0 / 2.5 / 3.0 minute calls on 165 channels;
//   * the maximum population fraction serviceable at 5% blocking;
//   * per-user call-duration caps that keep a target population serviceable.
//
// Run: ./call_policy

#include <cstdio>
#include <vector>

#include "core/dimensioning.hpp"
#include "core/erlang_b.hpp"
#include "exp/paper.hpp"

int main() {
  using namespace pbxcap;
  using erlang::Erlangs;

  constexpr std::uint32_t kChannels = 165;

  std::printf("== Fig. 7: blocking vs calling population (8,000 users, N = %u) ==\n\n",
              kChannels);
  std::vector<double> fractions;
  for (int i = 2; i <= 20; ++i) fractions.push_back(static_cast<double>(i) / 20.0);
  const auto fig7 = exp::fig7_population_blocking(
      8000, fractions,
      {Duration::seconds(120), Duration::seconds(150), Duration::seconds(180)}, kChannels);
  std::printf("%s\n", fig7.to_string().c_str());

  // Maximum serviceable fraction at 5% blocking, per duration.
  std::printf("Max fraction of 8,000 users serviceable at P_b <= 5%%:\n");
  for (const auto duration :
       {Duration::seconds(120), Duration::seconds(150), Duration::seconds(180)}) {
    const Erlangs a_max = erlang::offered_load_for_blocking(kChannels, 0.05);
    const double calls_per_hour = erlang::calls_per_hour_for(a_max, duration.to_minutes());
    std::printf("  %.1f-min calls: A_max = %.1f E -> %.0f calls/h -> %.1f%% of population\n",
                duration.to_minutes(), a_max.value(), calls_per_hour,
                100.0 * calls_per_hour / 8000.0);
  }

  // Policy view: to serve the whole 50,000-user campus on one server, how
  // short must the per-user busy-hour talk budget be?
  std::printf("\nPer-user busy-hour talk budget to serve a whole population at P_b <= 5%%\n");
  std::printf("(every user places one call in the busy hour, N = %u):\n", kChannels);
  const Erlangs a_max = erlang::offered_load_for_blocking(kChannels, 0.05);
  for (const std::uint32_t population : {8'000u, 20'000u, 50'000u}) {
    const double max_minutes = a_max.value() * 60.0 / population;
    std::printf("  %6u users : at most %.2f min (%.0f s) per call\n", population, max_minutes,
                max_minutes * 60.0);
  }

  // Or: how many PBX servers of this capacity would the full campus need
  // with unconstrained 3-minute calls and 60% participation?
  std::printf("\nServers needed for 50,000 users, 60%% calling, 3-min calls, P_b <= 5%%:\n");
  const double offered = 50'000 * 0.60 * 3.0 / 60.0;  // Erlangs
  std::uint32_t servers = 1;
  while (erlang::erlang_b(Erlangs{offered / servers}, kChannels) > 0.05) ++servers;
  std::printf("  offered %.0f E total -> %u servers of %u channels each\n", offered, servers,
              kChannels);
  return 0;
}
