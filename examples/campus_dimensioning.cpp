// Campus dimensioning: the UnB VoWiFi planning questions from §IV, answered
// with the analytical toolkit (Erlang-B, Erlang-C, Engset).
//
//   * The headline: 3,000 busy-hour calls of 3 minutes on 165 channels
//     block ~1.8 % of attempts.
//   * How many channels for a target grade of service?
//   * How does the finite campus population change the answer (Engset)?
//
// Run: ./campus_dimensioning

#include <cstdio>

#include "core/dimensioning.hpp"
#include "core/engset.hpp"
#include "core/erlang_b.hpp"
#include "core/erlang_c.hpp"
#include "exp/paper.hpp"

int main() {
  using namespace pbxcap;
  using erlang::Erlangs;

  std::printf("== UnB VoWiFi busy-hour dimensioning ==\n\n");

  // The paper's §IV headline number.
  const erlang::Workload busy_hour{3000.0, Duration::minutes(3)};
  const auto headline = erlang::evaluate_capacity(busy_hour, 165);
  std::printf("3,000 calls/h x 3 min => A = %.0f Erlangs; on N = 165 channels\n",
              headline.offered.value());
  std::printf("blocking P_b = %.2f%% (paper: ~1.8%%)\n\n", headline.blocking_probability * 100.0);

  // Channel requirements for standard grades of service.
  std::printf("Channels required for the same workload at target blocking:\n");
  for (const double target : {0.10, 0.05, 0.02, 0.01, 0.001}) {
    std::printf("  P_b <= %5.1f%% : N >= %u\n", target * 100.0,
                erlang::dimension_channels(busy_hour, target));
  }

  // Capacity of the measured server (165 channels) across call durations.
  std::printf("\nMax busy-hour call volume on 165 channels at P_b <= 5%%:\n");
  for (const int minutes : {1, 2, 3, 5}) {
    const double calls =
        erlang::max_calls_per_hour(165, Duration::minutes(minutes), 0.05);
    std::printf("  %d-minute calls : %.0f calls/h\n", minutes, calls);
  }

  // Finite-population check: does the infinite-source Erlang-B overestimate
  // blocking for the campus population? (It does, slightly.)
  std::printf("\nFinite-population (Engset) vs Erlang-B at A = 150 E, N = 165:\n");
  for (const std::uint32_t population : {200u, 500u, 1000u, 8000u, 50000u}) {
    const double engset = erlang::engset_blocking_total(Erlangs{150.0}, population, 165);
    std::printf("  %6u users : Engset %.3f%%   (Erlang-B %.3f%%)\n", population,
                engset * 100.0, erlang::erlang_b(Erlangs{150.0}, 165) * 100.0);
  }

  // Bonus: if calls queued instead of blocking (contact-center mode).
  std::printf("\nIf blocked calls queued instead (Erlang-C, A = 150 E, N = 165):\n");
  const double wait_p = erlang::erlang_c(Erlangs{150.0}, 165);
  const Duration mean_wait = erlang::erlang_c_mean_wait(Erlangs{150.0}, 165, Duration::minutes(3));
  std::printf("  P(wait) = %.2f%%, mean wait = %.2f s\n", wait_p * 100.0,
              mean_wait.to_seconds());

  std::printf("\nBusy-hour summary table:\n%s\n",
              exp::busy_hour_summary(3000.0, Duration::minutes(3), {150, 160, 165, 170, 180})
                  .to_string()
                  .c_str());
  return 0;
}
