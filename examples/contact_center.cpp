// Contact-center mode: the campus helpdesk question.
//
// §IV ends with UnB wanting voice service for ~50,000 users; a natural
// deployment is a helpdesk line where callers wait for an agent instead of
// being bounced. This example runs the PBX in queue-when-busy admission
// (the Erlang-C system) and compares the measured experience with the
// Erlang-C staffing tables a call-center planner would use.
//
// Run: ./contact_center [agents] [erlangs]

#include <cstdio>
#include <cstdlib>

#include "core/erlang_c.hpp"
#include "exp/testbed.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;
  using erlang::Erlangs;

  const auto agents = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 10);
  const double offered = argc > 2 ? std::atof(argv[2]) : 7.0;
  const Duration hold = Duration::seconds(20);

  std::printf("== Campus helpdesk: %u agents, %.1f Erlangs offered ==\n\n", agents, offered);

  // The planner's view (Erlang-C).
  const double p_wait = erlang::erlang_c(Erlangs{offered}, agents);
  const Duration mean_wait = erlang::erlang_c_mean_wait(Erlangs{offered}, agents, hold);
  const double sl20 = erlang::erlang_c_service_level(Erlangs{offered}, agents, hold,
                                                     Duration::seconds(20));
  std::printf("Erlang-C plan:   P(wait) = %.1f%%, E[wait] = %.2f s, 20s service level = %.1f%%\n",
              p_wait * 100.0, mean_wait.to_seconds(), sl20 * 100.0);
  std::printf("Agents needed for P(wait) <= 20%%: %u\n\n",
              erlang::agents_for_wait_probability(Erlangs{offered}, 0.20));

  // The measured view (packet-level queueing PBX).
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(offered, hold);
  config.scenario.hold_model = sim::HoldTimeModel::kExponential;
  config.scenario.placement_window = Duration::seconds(600);
  config.pbx.max_channels = agents;
  config.pbx.admission = pbx::AdmissionPolicy::kQueueWhenBusy;
  config.pbx.max_queue_length = 256;
  config.pbx.queue_timeout = Duration::seconds(180);
  config.seed = 20260706;

  std::printf("simulating 10 minutes of arrivals...\n");
  const auto r = exp::run_testbed(config);
  std::printf("measured:        attempts %llu, served %llu, reneged %llu\n",
              (unsigned long long)r.calls_attempted, (unsigned long long)r.calls_completed,
              (unsigned long long)r.calls_blocked);
  std::printf("mean setup (signalling + queue wait): %.2f s (max %.2f s)\n",
              r.setup_delay_ms.mean() / 1000.0, r.setup_delay_ms.max() / 1000.0);
  std::printf("voice quality of served calls: MOS %.2f\n", r.mos.mean());
  return 0;
}
