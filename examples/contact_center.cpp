// Contact-center mode: the campus helpdesk question.
//
// §IV ends with UnB wanting voice service for ~50,000 users; a natural
// deployment is a helpdesk line where callers wait for an agent instead of
// being bounced. This example staffs a real ACD queue (named queue, ring
// strategy, Exp(patience) abandonment, voicemail overflow) and compares the
// measured experience with the Erlang-C and Erlang-A tables a call-center
// planner would use.
//
// Run: ./contact_center [agents] [erlangs]

#include <cstdio>
#include <cstdlib>

#include "core/erlang_a.hpp"
#include "core/erlang_c.hpp"
#include "exp/testbed.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;
  using erlang::Erlangs;

  const auto agents = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 10);
  const double offered = argc > 2 ? std::atof(argv[2]) : 7.0;
  const Duration hold = Duration::seconds(20);
  const Duration patience = Duration::seconds(45);

  std::printf("== Campus helpdesk: %u agents, %.1f Erlangs offered ==\n\n", agents, offered);

  // The planner's view: Erlang-C for patient callers, Erlang-A once the
  // Exp(45 s) patience is admitted.
  const double p_wait = erlang::erlang_c(Erlangs{offered}, agents);
  const Duration mean_wait = erlang::erlang_c_mean_wait(Erlangs{offered}, agents, hold);
  const double sl20 = erlang::erlang_c_service_level(Erlangs{offered}, agents, hold,
                                                     Duration::seconds(20));
  if (offered < agents) {
    std::printf(
        "Erlang-C plan:   P(wait) = %.1f%%, E[wait] = %.2f s, 20s service level = %.1f%%\n",
        p_wait * 100.0, mean_wait.to_seconds(), sl20 * 100.0);
  } else {
    std::printf("Erlang-C plan:   unstable (rho >= 1): patient callers queue without bound\n");
  }
  const auto ea = erlang::erlang_a(Erlangs{offered}, agents, hold, patience);
  std::printf("Erlang-A plan:   P(wait) = %.1f%%, P(abandon) = %.2f%%, E[wait] = %.2f s\n",
              ea.wait_probability * 100.0, ea.abandon_probability * 100.0,
              ea.mean_wait.to_seconds());
  std::printf("Agents needed for P(wait) <= 20%%: %u\n\n",
              erlang::agents_for_wait_probability(Erlangs{offered}, 0.20));

  // The measured view: every caller dials queue-helpdesk on the packet-level
  // PBX — least-recent ring strategy, 5 s of after-call wrapup, position
  // announcements every 15 s, voicemail after 3 minutes of waiting.
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(offered, hold);
  config.scenario.hold_model = sim::HoldTimeModel::kExponential;
  config.scenario.placement_window = Duration::seconds(600);
  config.scenario.acd.fraction = 1.0;
  config.scenario.acd.queue = "helpdesk";
  config.pbx.acd.enabled = true;
  config.pbx.acd.queues = {pbx::AcdQueueConfig{
      .name = "helpdesk",
      .strategy = pbx::RingStrategy::kLeastRecent,
      .agents = {pbx::AcdAgentSpec{.count = agents, .wrapup = Duration::seconds(5)}},
      .max_queue_length = 256,
      .patience = pbx::PatienceModel::kExponential,
      .patience_mean = patience,
      .max_wait = Duration::seconds(180),
      .announce_period = Duration::seconds(15),
      .voicemail_fallback = true,
  }};
  config.seed = 20260706;

  std::printf("simulating 10 minutes of arrivals...\n");
  const auto r = exp::run_testbed(config);
  const auto& acd = r.acd;
  std::printf("measured:        offered %llu, served %llu, abandoned %llu, voicemail %llu\n",
              (unsigned long long)acd.offered, (unsigned long long)acd.served,
              (unsigned long long)acd.abandoned, (unsigned long long)acd.voicemail);
  if (acd.offered > 0) {
    std::printf("                 P(wait) = %.1f%%, P(abandon) = %.2f%%, E[wait] = %.2f s\n",
                100.0 * static_cast<double>(acd.queued) / static_cast<double>(acd.offered),
                100.0 * static_cast<double>(acd.abandoned) / static_cast<double>(acd.offered),
                acd.wait_s.mean());
  }
  std::printf("position announcements (182 updates): %llu\n",
              (unsigned long long)acd.announcements);
  std::printf("voice quality of served calls: MOS %.2f\n", r.mos.mean());
  std::printf("(measured waits run above the plans: each call also costs 5 s of wrapup\n"
              " the Erlang tables ignore — drop the wrapup to watch them converge)\n");
  return 0;
}
