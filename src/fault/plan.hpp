// Deterministic fault-injection schedules.
//
// A FaultPlan is a time-ordered script of impairments applied to a running
// testbed: link degradations (loss bursts, jitter ramps, bandwidth drops,
// blackouts), PBX processing stalls, and PBX crash/restart cycles. Plans are
// parsed from a tiny line-oriented text format (see FAULTS.md):
//
//   # t=10s: the access link turns lossy and jittery
//   @10s link client loss=0.05 jitter_mean=5ms jitter_stddev=2ms
//   @20s link server blackout=on
//   @25s link server blackout=off
//   @30s pbx stall 2s
//   @40s pbx crash dead=5s
//
// Everything is driven off the simulator clock, so a plan replayed with the
// same seed yields byte-identical exports — chaos you can diff.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/link.hpp"
#include "util/time.hpp"

namespace pbxcap::fault {

/// Which testbed link an impairment addresses (run_testbed's topology:
/// caller access link, receiver access link, PBX uplink).
enum class LinkTarget : std::uint8_t { kClient, kServer, kPbx };

enum class FaultKind : std::uint8_t {
  kLink,   // overlay `change` onto the target link's config
  kStall,  // PBX stops processing for `duration` (SIP deferred, RTP dropped)
  kCrash,  // PBX dies for `duration`, loses all channel state, restarts
};

struct FaultEvent {
  Duration at{};                    // offset from simulation start
  FaultKind kind{FaultKind::kLink};
  LinkTarget target{LinkTarget::kClient};  // kLink only
  net::LinkImpairment change{};            // kLink only
  Duration duration{};                     // kStall / kCrash only
};

[[nodiscard]] const char* to_string(LinkTarget target) noexcept;
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the text format above. Lines are `@<time> <directive>`; blank
  /// lines and `#` comments are ignored. Durations take ns/us/ms/s/m
  /// suffixes. Throws std::invalid_argument naming the offending line.
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;  // kept sorted by `at` (stable)
};

/// Parses "5s" / "200ms" / "1.5s" / "3m" etc. Returns false on bad syntax
/// or a negative value.
[[nodiscard]] bool parse_duration(std::string_view token, Duration& out);

}  // namespace pbxcap::fault
