#include "fault/injector.hpp"

#include "net/link.hpp"
#include "sim/profile.hpp"
#include "pbx/asterisk_pbx.hpp"
#include "telemetry/span.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::fault {

FaultInjector::FaultInjector(sim::Simulator& simulator, FaultPlan plan, FaultTargets targets)
    : simulator_{simulator}, plan_{std::move(plan)}, targets_{targets} {}

void FaultInjector::set_tracer(telemetry::SpanTracer* tracer) {
  tracer_ = tracer;
  fault_track_ = tracer_ == nullptr ? 0 : tracer_->track_id("faults");
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kFault};
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const auto fire = [this, i] { apply(plan_.events()[i]); };
    static_assert(sim::Callback::stores_inline<decltype(fire)>());
    simulator_.schedule_at(TimePoint::at(plan_.events()[i].at), fire);
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  if (pre_apply_) pre_apply_();
  switch (event.kind) {
    case FaultKind::kLink: {
      net::Link* link = nullptr;
      switch (event.target) {
        case LinkTarget::kClient: link = targets_.client_link; break;
        case LinkTarget::kServer: link = targets_.server_link; break;
        case LinkTarget::kPbx: link = targets_.pbx_link; break;
      }
      if (link == nullptr) {
        ++skipped_;
        return;
      }
      link->apply_impairment(event.change);
      break;
    }
    case FaultKind::kStall:
      if (targets_.pbx == nullptr) {
        ++skipped_;
        return;
      }
      targets_.pbx->stall_for(event.duration);
      break;
    case FaultKind::kCrash:
      if (targets_.pbx == nullptr) {
        ++skipped_;
        return;
      }
      targets_.pbx->crash_restart(event.duration);
      break;
  }
  ++applied_;
  if (tracer_ != nullptr) {
    tracer_->instant(tracer_->name_id(std::string{"fault."} + to_string(event.kind)),
                     fault_track_, simulator_.now());
  }
  util::log_debug("fault", util::format("t=%.3fs applied %s", simulator_.now().to_seconds(),
                                        to_string(event.kind)));
}

}  // namespace pbxcap::fault
