#include "fault/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace pbxcap::fault {

namespace {

[[noreturn]] void fail(std::size_t line_no, std::string_view line, const char* why) {
  throw std::invalid_argument{util::format("FaultPlan line %zu: %s: '%.*s'", line_no, why,
                                           static_cast<int>(line.size()), line.data())};
}

bool parse_double(std::string_view token, double& out) {
  if (token.empty()) return false;
  const std::string buf{token};
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = value;
  return true;
}

bool parse_bool(std::string_view token, bool& out) {
  if (util::iequals(token, "on") || util::iequals(token, "true") || token == "1") {
    out = true;
    return true;
  }
  if (util::iequals(token, "off") || util::iequals(token, "false") || token == "0") {
    out = false;
    return true;
  }
  return false;
}

std::vector<std::string_view> words(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

// Overlay one `key=value` pair onto the impairment being built.
bool apply_pair(net::LinkImpairment& imp, std::string_view key, std::string_view value) {
  if (key == "loss") {
    double p = 0.0;
    if (!parse_double(value, p) || p < 0.0 || p > 1.0) return false;
    imp.loss_probability = p;
    return true;
  }
  if (key == "bandwidth") {
    double bps = 0.0;
    if (!parse_double(value, bps) || bps <= 0.0) return false;
    imp.bandwidth_bps = bps;
    return true;
  }
  if (key == "propagation" || key == "jitter_mean" || key == "jitter_stddev") {
    Duration d{};
    if (!parse_duration(value, d)) return false;
    if (key == "propagation") imp.propagation = d;
    if (key == "jitter_mean") imp.jitter_mean = d;
    if (key == "jitter_stddev") imp.jitter_stddev = d;
    return true;
  }
  if (key == "queue_limit") {
    std::uint64_t n = 0;
    if (!util::parse_u64(value, n) || n == 0) return false;
    imp.queue_limit_packets = static_cast<std::uint32_t>(n);
    return true;
  }
  if (key == "blackout") {
    bool on = false;
    if (!parse_bool(value, on)) return false;
    imp.blackout = on;
    return true;
  }
  return false;
}

}  // namespace

const char* to_string(LinkTarget target) noexcept {
  switch (target) {
    case LinkTarget::kClient: return "client";
    case LinkTarget::kServer: return "server";
    case LinkTarget::kPbx: return "pbx";
  }
  return "?";
}

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLink: return "link";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

bool parse_duration(std::string_view token, Duration& out) {
  if (token.empty()) return false;
  double scale = 1.0;
  std::string_view digits = token;
  const auto strip = [&](std::string_view suffix, double s) {
    if (digits.size() > suffix.size() && digits.substr(digits.size() - suffix.size()) == suffix) {
      digits = digits.substr(0, digits.size() - suffix.size());
      scale = s;
      return true;
    }
    return false;
  };
  // Longest suffixes first so "ms" is not read as "m" + stray 's'.
  if (!strip("ns", 1e-9) && !strip("us", 1e-6) && !strip("ms", 1e-3) && !strip("s", 1.0) &&
      !strip("m", 60.0)) {
    return false;  // unit is mandatory: bare numbers are too easy to misread
  }
  double value = 0.0;
  if (!parse_double(digits, value) || value < 0.0) return false;
  out = Duration::from_seconds(value * scale);
  return true;
}

void FaultPlan::add(FaultEvent event) {
  // Keep the schedule sorted; stable insert preserves same-time order.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, std::move(event));
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view raw =
        text.substr(start, nl == std::string_view::npos ? text.size() - start : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '@') fail(line_no, line, "expected '@<time> ...'");

    const auto tokens = words(line);
    if (tokens.size() < 3) fail(line_no, line, "too few fields");

    FaultEvent ev;
    if (!parse_duration(tokens[0].substr(1), ev.at)) {
      fail(line_no, line, "bad time (need e.g. @10s, @500ms)");
    }

    if (tokens[1] == "link") {
      ev.kind = FaultKind::kLink;
      if (tokens[2] == "client") {
        ev.target = LinkTarget::kClient;
      } else if (tokens[2] == "server") {
        ev.target = LinkTarget::kServer;
      } else if (tokens[2] == "pbx") {
        ev.target = LinkTarget::kPbx;
      } else {
        fail(line_no, line, "unknown link target (client|server|pbx)");
      }
      if (tokens.size() < 4) fail(line_no, line, "link directive needs key=value pairs");
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto [key, value, found] = util::split_once(tokens[i], '=');
        if (!found || !apply_pair(ev.change, key, value)) {
          fail(line_no, line, "bad key=value pair");
        }
      }
    } else if (tokens[1] == "pbx") {
      if (tokens[2] == "stall") {
        ev.kind = FaultKind::kStall;
        if (tokens.size() != 4 || !parse_duration(tokens[3], ev.duration) ||
            ev.duration <= Duration::zero()) {
          fail(line_no, line, "stall needs a positive duration, e.g. 'pbx stall 2s'");
        }
      } else if (tokens[2] == "crash") {
        ev.kind = FaultKind::kCrash;
        if (tokens.size() != 4) fail(line_no, line, "crash needs 'dead=<duration>'");
        const auto [key, value, found] = util::split_once(tokens[3], '=');
        if (!found || key != "dead" || !parse_duration(value, ev.duration) ||
            ev.duration <= Duration::zero()) {
          fail(line_no, line, "crash needs 'dead=<duration>'");
        }
      } else {
        fail(line_no, line, "unknown pbx directive (stall|crash)");
      }
    } else {
      fail(line_no, line, "unknown directive (link|pbx)");
    }
    plan.add(ev);
  }
  return plan;
}

}  // namespace pbxcap::fault
