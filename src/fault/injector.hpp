// Replays a FaultPlan against a live testbed.
//
// The injector binds plan targets (client/server/pbx links, the PBX host) to
// concrete objects and schedules one simulator event per plan entry. All
// mutation happens inside the event loop at exact simulated instants, so the
// injected chaos is fully deterministic and replayable.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/plan.hpp"
#include "sim/simulator.hpp"

namespace pbxcap::net {
class Link;
}
namespace pbxcap::pbx {
class AsteriskPbx;
}
namespace pbxcap::telemetry {
class SpanTracer;
}

namespace pbxcap::fault {

/// Concrete objects the plan's symbolic targets resolve to. Null entries are
/// legal: events addressing them are counted as skipped, not errors (a plan
/// written for the wifi topology can run against the wired one).
struct FaultTargets {
  net::Link* client_link{nullptr};
  net::Link* server_link{nullptr};
  net::Link* pbx_link{nullptr};
  pbx::AsteriskPbx* pbx{nullptr};
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, FaultPlan plan, FaultTargets targets);

  /// Schedules every plan event at its absolute simulated time. Call once,
  /// before (or at) t = 0 of the run.
  void arm();

  /// Invoked at the top of apply(), before the event mutates anything. The
  /// fluid media engine hooks in here so fast-forwarded streams are flushed
  /// to exact state under the pre-fault behaviour (stalls and crashes don't
  /// go through Link::apply_impairment's own listener).
  void set_pre_apply(std::function<void()> hook) { pre_apply_ = std::move(hook); }

  /// Optional call-journey tracing: every applied fault lands as an instant
  /// event ("fault.link" / "fault.stall" / "fault.crash") on a shared
  /// "faults" track, so failure causes line up visually with the calls they
  /// disrupt. Set before arm(); nullptr (the default) records nothing.
  void set_tracer(telemetry::SpanTracer* tracer);

  [[nodiscard]] std::uint64_t events_applied() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t events_skipped() const noexcept { return skipped_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void apply(const FaultEvent& event);

  sim::Simulator& simulator_;
  FaultPlan plan_;
  FaultTargets targets_;
  std::function<void()> pre_apply_;
  telemetry::SpanTracer* tracer_{nullptr};
  std::uint64_t fault_track_{0};
  bool armed_{false};
  std::uint64_t applied_{0};
  std::uint64_t skipped_{0};
};

}  // namespace pbxcap::fault
