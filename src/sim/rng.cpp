#include "sim/rng.hpp"

namespace pbxcap::sim {

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};

  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace pbxcap::sim
