// Cross-shard message plumbing for conservative parallel simulation.
//
// A sharded experiment runs one Simulator per shard; anything crossing a
// shard boundary becomes a timestamped ShardMessage pushed into the
// (src, dst) ShardChannel. Channels are exchanged only at synchronization
// barriers (see exp/shard_exec.hpp): during a window the source shard's
// worker is the only writer, and the drain happens on the barrier's
// completion step while every worker is blocked — so no locks are needed,
// and the happens-before edges come from the barrier itself.
//
// Determinism contract: messages are drained per destination by
// concatenating its channels in ascending source-shard order (each channel
// is FIFO) and scheduling them in that order. The Simulator's (time,
// schedule-sequence) tie-break then fires them in exactly (at, src_shard,
// push-order) order — independent of how many threads ran the shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.hpp"

namespace pbxcap::sim {

/// One cross-shard delivery: run `deliver` in the destination shard's
/// simulator at absolute time `at_ns`.
struct ShardMessage {
  std::int64_t at_ns{0};
  Callback deliver;
};

/// FIFO queue of messages from one source shard to one destination shard.
/// Single-writer during a window (the source shard's worker); drained on the
/// barrier completion step.
class ShardChannel {
 public:
  void push(std::int64_t at_ns, Callback deliver) {
    q_.push_back(ShardMessage{at_ns, std::move(deliver)});
    ++pushed_;
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  /// Messages pushed over the channel's lifetime (deterministic per seed).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return pushed_; }

  /// Moves every queued message out, in push (FIFO) order.
  [[nodiscard]] std::vector<ShardMessage> drain() {
    std::vector<ShardMessage> out;
    out.swap(q_);
    return out;
  }

 private:
  std::vector<ShardMessage> q_;
  std::uint64_t pushed_{0};
};

}  // namespace pbxcap::sim
