#include "sim/random.hpp"

namespace pbxcap::sim {

double Random::normal() noexcept {
  // Box-Muller; draw u1 away from 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double kTwoPi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Random::lognormal_mean_cv(double mean, double cv) noexcept {
  // If X ~ LogNormal(mu, sigma), then E[X] = exp(mu + sigma^2/2) and
  // CV^2 = exp(sigma^2) - 1. Invert for (mu, sigma).
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

Duration draw_hold_time(Random& rng, HoldTimeModel model, Duration mean, double cv) {
  switch (model) {
    case HoldTimeModel::kDeterministic:
      return mean;
    case HoldTimeModel::kExponential:
      return rng.exponential(mean);
    case HoldTimeModel::kLognormal:
      return Duration::from_seconds(rng.lognormal_mean_cv(mean.to_seconds(), cv));
  }
  return mean;
}

}  // namespace pbxcap::sim
