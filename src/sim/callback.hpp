// Move-only callable with small-buffer optimization, the event-callback
// currency of the DES kernel.
//
// The simulator schedules millions of tiny closures per run (RTP ticks, link
// deliveries, SIP timers), almost all of which capture a pointer or two.
// std::function's 16-byte small-object buffer forces those onto the heap;
// sim::Callback keeps anything up to kInlineBytes inline, so the hot
// scheduling path never touches the allocator. Larger or alignment-exotic
// callables fall back to a single heap allocation, counted via
// heap_allocations() so benchmarks and tests can verify the SBO path stays
// allocation-free.
//
// Design notes:
//   * move-only: event callbacks are consumed exactly once, and copyability
//     is what forces std::function to heap-allocate move-only captures;
//   * trivially-copyable inline callables (the dominant case) move by plain
//     memcpy with no manager call and destruct as a no-op;
//   * invocation is a single indirect call through a free-function pointer —
//     no virtual dispatch, no RTTI.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pbxcap::sim {

class Callback {
 public:
  /// Inline storage size. 64 bytes covers every kernel-internal closure,
  /// including net::Link's per-packet delivery capture (Link*, two NodeIds,
  /// a 48-byte Packet), the largest closure on the per-event hot path.
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  constexpr Callback() noexcept = default;
  constexpr Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(f));
  }

  Callback(Callback&& other) noexcept { steal(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { destroy(); }

  void operator()() { invoke_(storage_); }

  /// Constructs `f` directly into this (empty) callback's storage — the
  /// zero-relocation path the scheduler uses to build the closure in the
  /// event node itself. Precondition: *this holds no callable.
  template <typename F>
  void emplace(F&& f) {
    init(std::forward<F>(f));
  }

  /// Runs the callable where it lives, then destroys it, leaving *this
  /// empty. Lets an owner with stable storage skip the stack relocation a
  /// move-out would cost. The callable may re-enter its owner; the reset
  /// happens after it returns.
  void invoke_and_reset() {
    invoke_(storage_);
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Number of callbacks constructed via the heap fallback (process-wide,
  /// monotonic). The SBO path never increments it.
  [[nodiscard]] static std::uint64_t heap_allocations() noexcept {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

  /// True if a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    return kFitsInline<std::decay_t<F>>;
  }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* dst);

  template <typename Fn>
  static constexpr bool kFitsInline = sizeof(Fn) <= kInlineBytes &&
                                      alignof(Fn) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<Fn>;
  template <typename Fn>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  void*& ptr_slot() noexcept { return *reinterpret_cast<void**>(static_cast<void*>(storage_)); }

  template <typename F>
  void init(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      if constexpr (!kTrivial<Fn>) {
        manage_ = [](Op op, void* self, void* dst) {
          Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
          if (op == Op::kMoveTo) ::new (dst) Fn(std::move(*fn));
          fn->~Fn();  // kMoveTo relocates: the source is destroyed too
        };
      }
    } else {
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
      ptr_slot() = new Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*static_cast<Fn*>(*static_cast<void**>(s)))(); };
      manage_ = [](Op op, void* self, void* dst) {
        void*& src = *static_cast<void**>(self);
        if (op == Op::kMoveTo) {
          *static_cast<void**>(dst) = src;  // relocate by pointer hand-off
        } else {
          delete static_cast<Fn*>(src);
        }
      };
    }
  }

  void steal(Callback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kMoveTo, other.storage_, storage_);
    } else if (invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineBytes);  // trivial inline
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void destroy() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
  }

  inline static std::atomic<std::uint64_t> heap_allocs_{0};

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  InvokeFn invoke_{nullptr};
  ManageFn manage_{nullptr};  // nullptr: empty or trivially-relocatable inline
};

}  // namespace pbxcap::sim
