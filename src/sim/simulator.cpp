#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/profile.hpp"

namespace pbxcap::sim {

namespace {
constexpr std::int64_t kNoHorizon = std::numeric_limits<std::int64_t>::max();
}  // namespace

void Simulator::grow_nodes() {
  // A fresh chunk of stable-address nodes; indices join the free list
  // descending so the lowest index is handed out first.
  const auto base = static_cast<std::uint32_t>(chunks_.size()) << kChunkShift;
  chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  chunk0_ = chunks_.front().get();
  free_.reserve(free_.size() + kChunkSize);
  for (std::uint32_t i = 0; i < kChunkSize; ++i) free_.push_back(base + kChunkSize - 1 - i);
}

EventId Simulator::schedule_far(std::int64_t at_ns, std::uint64_t seq, std::uint32_t idx) {
  Node& node = node_at(idx);
  const EventId id = (static_cast<EventId>(node.gen) << 32) | idx;

  const std::int64_t abs0 = at_ns >> kSlotBits0;
  for (int attempt = 0;; ++attempt) {
    if (abs0 > drained0_ && abs0 >= end0_ - kSlots && abs0 < end0_) {
      // Level 0 after all — a resync below re-anchored the window onto it.
      const auto phys = static_cast<std::uint32_t>(abs0) & kSlotMask;
      auto& slot = wheel0_[phys];
      node.loc = Loc::kWheel0;
      node.slot = static_cast<std::uint8_t>(phys);
      node.pos = static_cast<std::uint32_t>(slot.size());
      slot.push_back(WheelItem{at_ns, seq, idx, node.gen});
      set_bit(bits0_, phys);
      ++wheel0_count_;
      ++wheel_live_;
      return id;
    }
    const std::int64_t abs1 = at_ns >> kSlotBits1;
    if (abs0 >= end0_ && abs1 < next1_ + kSlots) {
      // Level 1: waits coarsely, cascades into level 0 as the clock nears.
      const auto phys = static_cast<std::uint32_t>(abs1) & kSlotMask;
      auto& slot = wheel1_[phys];
      node.loc = Loc::kWheel1;
      node.slot = static_cast<std::uint8_t>(phys);
      node.pos = static_cast<std::uint32_t>(slot.size());
      slot.push_back(WheelItem{at_ns, seq, idx, node.gen});
      set_bit(bits1_, phys);
      ++wheel1_count_;
      ++wheel_live_;
      return id;
    }
    // If the wheel is idle its windows may lag the clock; re-anchor them at
    // `now` once and reclassify. Cheap and rare: skipped whenever the windows
    // are already anchored to the current level-0 slot.
    if (attempt == 0 && (now_.ns() >> kSlotBits0) != drained0_ && wheel_is_empty()) {
      resync_wheel();
      continue;
    }
    break;
  }

  // Heap path: beyond the level-1 horizon, or past a wheel window that
  // cascading has already advanced over.
  node.loc = Loc::kHeap;
  heap_push(HeapItem{at_ns, seq, idx});
  return id;
}

bool Simulator::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= (static_cast<std::uint64_t>(chunks_.size()) << kChunkShift)) return false;
  Node& node = node_at(idx);
  if (node.gen != gen || node.loc == Loc::kFree) return false;

  switch (node.loc) {
    case Loc::kHeap:
      heap_remove(node.pos);
      break;
    case Loc::kWheel0:
      slot_remove(wheel0_.data(), bits0_, wheel0_count_, node);
      --wheel_live_;
      break;
    case Loc::kWheel1:
      slot_remove(wheel1_.data(), bits1_, wheel1_count_, node);
      --wheel_live_;
      break;
    case Loc::kRun:
      // Lazy: the generation bump below invalidates the run_ entry, which
      // wheel_peek() discards when it surfaces.
      --wheel_live_;
      break;
    case Loc::kFree:
      break;  // unreachable; handled above
  }
  node.cb = Callback{};
  recycle_node(idx);
  ++cancelled_;
  return true;
}

std::int64_t Simulator::next_event_ns() {
  std::int64_t best = kNoEvent;
  if (wheel_live_ != 0) {
    // wheel_live_ counts only uncancelled items, so the peek always finds one.
    const WheelItem* item = wheel_peek();
    if (item != nullptr) best = item->at;
  }
  if (!heap_.empty() && heap_[0].at < best) best = heap_[0].at;
  return best;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && fire_next(kNoHorizon)) {
  }
}

void Simulator::run_until(TimePoint horizon) {
  if (horizon < now_) throw std::invalid_argument{"Simulator::run_until: horizon is in the past"};
  stopped_ = false;
  while (!stopped_ && fire_next(horizon.ns())) {
  }
  if (!stopped_) now_ = horizon;
}

bool Simulator::fire_next_general(std::int64_t horizon_ns) {
  const WheelItem* wheel_min = wheel_peek();

  bool from_wheel;
  if (wheel_min != nullptr && !heap_.empty()) {
    from_wheel = earlier(wheel_min->at, wheel_min->seq, heap_[0].at, heap_[0].seq);
  } else if (wheel_min != nullptr) {
    from_wheel = true;
  } else if (!heap_.empty()) {
    from_wheel = false;
  } else {
    return false;
  }

  std::int64_t at;
  std::uint32_t idx;
  if (from_wheel) {
    at = wheel_min->at;
    idx = wheel_min->idx;
  } else {
    at = heap_[0].at;
    idx = heap_[0].idx;
  }
  if (at > horizon_ns) return false;

  if (from_wheel) {
    ++run_pos_;
    --wheel_live_;
  } else {
    heap_pop_root();
  }
  finish_fire(at, idx);
  return true;
}

void Simulator::invoke_profiled(Node& node) {
  ExecProfile& prof = *profile_;
  static_assert((ExecProfile::kMaxCategories & (ExecProfile::kMaxCategories - 1)) == 0,
                "category mask below requires a power-of-two table");
  const auto cat = static_cast<std::uint8_t>(node.cat & (ExecProfile::kMaxCategories - 1));
  current_cat_ = cat;  // events the callback schedules inherit its category
  const std::uint64_t fired = ++prof.counts[cat];
  if ((fired & prof.sample_mask) != 0) [[likely]] {
    node.cb.invoke_and_reset();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  node.cb.invoke_and_reset();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  prof.record_sample(cat, ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
}

const Simulator::WheelItem* Simulator::wheel_peek() {
  for (;;) {
    while (run_pos_ < run_.size()) {
      const WheelItem& item = run_[run_pos_];
      if (node_at(item.idx).gen == item.gen) return &item;
      ++run_pos_;  // cancelled while activated; node already recycled
    }
    if (wheel0_count_ == 0 && wheel1_count_ == 0) return nullptr;
    run_.clear();
    run_pos_ = 0;

    if (wheel0_count_ != 0) {
      const std::int64_t found = scan_bits(bits0_, cursor0_, end0_);
      if (found >= 0) {
        activate_slot0(found);
        continue;
      }
    }
    if (wheel1_count_ == 0) return nullptr;  // defensive; level 0 scan covers the window
    const std::int64_t found1 = scan_bits(bits1_, next1_, next1_ + kSlots);
    cascade_slot1(found1);
  }
}

void Simulator::activate_slot0(std::int64_t abs_slot) {
  const auto phys = static_cast<std::uint32_t>(abs_slot) & kSlotMask;
  auto& slot = wheel0_[phys];
  run_.swap(slot);  // run_ is empty; recycles capacities both ways
  clear_bit(bits0_, phys);
  wheel0_count_ -= run_.size();
  std::sort(run_.begin(), run_.end(), [](const WheelItem& a, const WheelItem& b) noexcept {
    return earlier(a.at, a.seq, b.at, b.seq);
  });
  for (const WheelItem& item : run_) node_at(item.idx).loc = Loc::kRun;
  drained0_ = abs_slot;
  cursor0_ = abs_slot + 1;
}

void Simulator::cascade_slot1(std::int64_t abs_slot) {
  const auto phys = static_cast<std::uint32_t>(abs_slot) & kSlotMask;
  auto& slot = wheel1_[phys];
  for (const WheelItem& item : slot) {
    const std::int64_t abs0 = item.at >> kSlotBits0;
    const auto phys0 = static_cast<std::uint32_t>(abs0) & kSlotMask;
    auto& dst = wheel0_[phys0];
    Node& node = node_at(item.idx);
    node.loc = Loc::kWheel0;
    node.slot = static_cast<std::uint8_t>(phys0);
    node.pos = static_cast<std::uint32_t>(dst.size());
    dst.push_back(item);
    set_bit(bits0_, phys0);
  }
  wheel0_count_ += slot.size();
  wheel1_count_ -= slot.size();
  slot.clear();
  clear_bit(bits1_, phys);
  next1_ = abs_slot + 1;
  end0_ = (abs_slot + 1) * kL0PerL1;
  cursor0_ = abs_slot * kL0PerL1;
}

void Simulator::resync_wheel() noexcept {
  // Only valid while the wheel holds nothing: re-anchor both windows at now.
  const std::int64_t abs0 = now_.ns() >> kSlotBits0;
  const std::int64_t abs1 = now_.ns() >> kSlotBits1;
  drained0_ = abs0;  // the in-progress slot routes to the heap
  cursor0_ = abs0 + 1;
  next1_ = abs1 + 1;
  end0_ = (abs1 + 1) * kL0PerL1;
}

void Simulator::heap_remove(std::uint32_t pos) {
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    node_at(last.idx).pos = pos;
    heap_sift_up(pos);
    heap_sift_down(pos);
  }
}

void Simulator::heap_sift_up(std::uint32_t pos) {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!earlier(item.at, item.seq, heap_[parent].at, heap_[parent].seq)) break;
    heap_[pos] = heap_[parent];
    node_at(heap_[pos].idx).pos = pos;
    pos = parent;
  }
  heap_[pos] = item;
  node_at(item.idx).pos = pos;
}

void Simulator::heap_sift_down(std::uint32_t pos) {
  const HeapItem item = heap_[pos];
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t limit = std::min(first + 4, n);
    for (std::uint32_t child = first + 1; child < limit; ++child) {
      if (earlier(heap_[child].at, heap_[child].seq, heap_[best].at, heap_[best].seq)) {
        best = child;
      }
    }
    if (!earlier(heap_[best].at, heap_[best].seq, item.at, item.seq)) break;
    heap_[pos] = heap_[best];
    node_at(heap_[pos].idx).pos = pos;
    pos = best;
  }
  heap_[pos] = item;
  node_at(item.idx).pos = pos;
}

void Simulator::slot_remove(std::vector<WheelItem>* wheel, SlotBits& bits, std::uint64_t& count,
                            const Node& node) noexcept {
  auto& slot = wheel[node.slot];
  const std::uint32_t pos = node.pos;
  if (pos + 1 < slot.size()) {
    slot[pos] = slot.back();
    node_at(slot[pos].idx).pos = pos;
  }
  slot.pop_back();
  if (slot.empty()) clear_bit(bits, node.slot);
  --count;
}

std::int64_t Simulator::scan_bits(const SlotBits& bits, std::int64_t from, std::int64_t to) noexcept {
  std::int64_t abs = from;
  while (abs < to) {
    const std::uint32_t phys = static_cast<std::uint32_t>(abs) & kSlotMask;
    const std::uint32_t off = phys & 63;
    const std::int64_t span = std::min<std::int64_t>(to - abs, 64 - off);
    std::uint64_t word = bits[phys >> 6] >> off;
    if (span < 64) word &= (std::uint64_t{1} << span) - 1;
    if (word != 0) return abs + std::countr_zero(word);
    abs += span;
  }
  return -1;
}

}  // namespace pbxcap::sim
