#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace pbxcap::sim {

EventId Simulator::schedule_at(TimePoint at, Callback fn) {
  if (at < now_) throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
  if (!fn) throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: mark and skip at pop time. The set is pruned as marked
  // entries surface, so memory stays bounded by pending cancellations.
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the Entry must be moved out via pop, so
    // copy the cheap fields first and steal the callback with const_cast —
    // contained entries are never observed again after pop.
    const Entry& top = queue_.top();
    const TimePoint at = top.at;
    const EventId id = top.id;
    if (const auto it = cancelled_.find(id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    Callback fn = std::move(const_cast<Entry&>(top).fn);
    queue_.pop();
    now_ = at;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint horizon) {
  if (horizon < now_) throw std::invalid_argument{"Simulator::run_until: horizon is in the past"};
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().at <= horizon) {
    step();
  }
  if (!stopped_) now_ = horizon;
}

}  // namespace pbxcap::sim
