// Event-engine execution profile: per-category event counts and sampled
// wall-clock callback latency.
//
// The simulator kernel cannot depend on src/telemetry (telemetry already
// depends on sim for the self-scheduling sampler), so the hot data structure
// lives here and the rich wrapper — name interning, JSON / Chrome-trace
// exports, deterministic shard merge — lives in telemetry::Profiler.
//
// Determinism contract: per-category *event counts* are a pure function of
// the seed (every fired event increments exactly one category slot), so they
// participate in byte-identical goldens and cross-worker-count checks.
// Wall-clock figures (timed_ns, latency histogram) are host noise by nature
// and are kept in separate fields that exporters can exclude.
//
// Overhead contract: with no profile attached the fire path pays one
// predictable null-pointer branch (benched in bench_telemetry_overhead,
// <= 2%). With a profile attached every fire pays one slot increment plus a
// mask test on the incremented count; only every `sample_period`-th fire of
// a category is bracketed with steady_clock reads (enabled-path bench gate
// <= 5% on the Table-I macro workload).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/simulator.hpp"

namespace pbxcap::sim {

/// Builtin event categories. The numbering is part of the export format:
/// merged profiles and JSON goldens list categories in this order.
enum class Category : std::uint8_t {
  kUnattributed = 0,  // scheduled before any category scope was opened
  kSip,               // SIP transaction timers + SIP packet deliveries
  kRtpPacket,         // per-packet media ticks, RTP/RTCP deliveries
  kRtpFluidFlush,     // fluid-segment flush / transient re-entry events
  kPbx,               // PBX service queue, answer delay, bridge timers
  kDispatch,          // dispatcher health probes and breaker timers
  kFault,             // FaultInjector firings
  kTimerWheel,        // periodic bookkeeping: telemetry sampler, profiler tick
  kShardMailbox,      // cross-shard messages drained into a shard's simulator
  kLoadgen,           // caller arrival process, retry backoff, hold timers
  kAcd,               // ACD queue timers: patience, max-wait, announce, wrapup
};

inline constexpr std::size_t kCategoryCount = 11;

inline constexpr std::uint8_t category_id(Category cat) noexcept {
  return static_cast<std::uint8_t>(cat);
}

/// Simulator::CategoryScope taking the builtin enum directly — the usual
/// spelling at subsystem scheduling sites.
class CategoryScope : public Simulator::CategoryScope {
 public:
  CategoryScope(Simulator& simulator, Category cat) noexcept
      : Simulator::CategoryScope{simulator, category_id(cat)} {}
};

/// Display names, indexed by Category. Doubles as the JSON category key.
inline const char* category_name(std::uint8_t cat) noexcept {
  static constexpr const char* kNames[kCategoryCount] = {
      "unattributed", "sip",   "rtp-packet", "rtp-fluid-flush", "pbx",
      "dispatch",     "fault", "timer-wheel", "shard-mailbox",  "loadgen",
      "acd",
  };
  return cat < kCategoryCount ? kNames[cat] : "unknown";
}

/// Per-category accumulators — the export/merge view. `events` is
/// deterministic; the timing fields are sampled wall-clock measurements.
struct CategoryStats {
  // Log2 latency buckets: bucket i counts sampled callbacks whose wall time
  // fell in [2^i, 2^(i+1)) ns; bucket 0 also absorbs 0–1 ns. 24 buckets
  // reach ~16.8 ms, far beyond any single callback.
  static constexpr std::size_t kLatencyBuckets = 24;

  std::uint64_t events{0};         // deterministic: every fire counts once
  std::uint64_t timed_samples{0};  // wall-clock: sampled subset of fires
  std::uint64_t timed_ns{0};       // wall-clock: summed sampled latency
  std::array<std::uint64_t, kLatencyBuckets> latency_log2{};

  void merge(const CategoryStats& other) noexcept {
    events += other.events;
    timed_samples += other.timed_samples;
    timed_ns += other.timed_ns;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) latency_log2[i] += other.latency_log2[i];
  }
};

/// The hot profile a Simulator writes into while firing events. Attach with
/// Simulator::set_profile(); read or merge after (or between) run calls.
///
/// Layout matters: every fire increments one entry of `counts`, so the whole
/// per-fire working set (counts + sample countdown) is kept to ~2 cache
/// lines. The 216-byte-per-category sampled-latency stats are only touched
/// on every sample_period-th fire and live separately in `timing`.
struct ExecProfile {
  // Room for the builtin categories plus a few experiment-defined extras
  // (telemetry::Profiler hands out dynamic ids above kCategoryCount).
  static constexpr std::size_t kMaxCategories = 16;
  static constexpr std::uint32_t kDefaultSamplePeriod = 256;

  /// Sampled-latency accumulators; `events` inside these stays 0 (the
  /// authoritative count is counts[cat] — stats() folds them together).
  struct Timing {
    std::uint64_t timed_samples{0};
    std::uint64_t timed_ns{0};
    std::array<std::uint64_t, CategoryStats::kLatencyBuckets> latency_log2{};
  };

  std::array<std::uint64_t, kMaxCategories> counts{};  // hot: one ++ per fire
  /// sample_period - 1 for a power-of-two period: the fire path tests the
  /// just-incremented counts[cat] against this, so sampling adds no state
  /// of its own (no countdown load/store on the unsampled 255-out-of-256).
  std::uint32_t sample_mask{kDefaultSamplePeriod - 1};
  std::array<Timing, kMaxCategories> timing{};  // cold: sampled fires only

  /// Rounds `period` up to a power of two (the mask trick above needs one);
  /// 0 means sample every fire.
  void set_sample_period(std::uint32_t period) noexcept {
    std::uint32_t pow2 = 1;
    while (pow2 < period && pow2 < (std::uint32_t{1} << 31)) pow2 <<= 1;
    sample_mask = pow2 - 1;
  }

  [[nodiscard]] std::uint32_t sample_period() const noexcept { return sample_mask + 1; }

  /// Sum of per-category event counts; equals the owning simulator's
  /// events_processed() delta over the attached interval.
  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    return total;
  }

  /// Export view of one category (count + sampled timing, recombined).
  [[nodiscard]] CategoryStats stats(std::size_t cat) const noexcept {
    CategoryStats s;
    s.events = counts[cat];
    s.timed_samples = timing[cat].timed_samples;
    s.timed_ns = timing[cat].timed_ns;
    s.latency_log2 = timing[cat].latency_log2;
    return s;
  }

  /// Deterministic merge (slot-wise; callers merge shards in shard order).
  void merge(const ExecProfile& other) noexcept {
    for (std::size_t i = 0; i < kMaxCategories; ++i) {
      counts[i] += other.counts[i];
      timing[i].timed_samples += other.timing[i].timed_samples;
      timing[i].timed_ns += other.timing[i].timed_ns;
      for (std::size_t b = 0; b < CategoryStats::kLatencyBuckets; ++b) {
        timing[i].latency_log2[b] += other.timing[i].latency_log2[b];
      }
    }
  }

  void record_sample(std::uint8_t cat, std::uint64_t ns) noexcept {
    Timing& slot = timing[cat];
    ++slot.timed_samples;
    slot.timed_ns += ns;
    std::size_t bucket = 0;
    while (bucket + 1 < CategoryStats::kLatencyBuckets && (std::uint64_t{1} << (bucket + 1)) <= ns) {
      ++bucket;
    }
    ++slot.latency_log2[bucket];
  }
};

}  // namespace pbxcap::sim
