// Deterministic pseudo-random generation for reproducible simulations.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, per the
// authors' recommendation. Satisfies std::uniform_random_bit_generator so it
// composes with <random> distributions, but pbxcap's own variate generators
// (random.hpp) are preferred: unlike libstdc++ distributions they are
// bit-reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace pbxcap::sim {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 256-bit-state generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm{seed};
    for (auto& word : state_) word = sm.next();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: advances 2^128 steps; used to derive independent
  /// substreams for parallel replications from one master seed.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pbxcap::sim
