// Random-variate generation for workload modelling.
//
// The empirical method (paper §III-C) needs Poisson call arrivals
// (exponential inter-arrival times) and call hold times; network impairment
// models additionally draw uniform and normal variates. All generators here
// are implemented directly (inverse transform / Box-Muller) so results are
// bit-reproducible regardless of the standard library in use.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/rng.hpp"
#include "util/time.hpp"

namespace pbxcap::sim {

/// Variate generator over a deterministic engine.
class Random {
 public:
  explicit Random(std::uint64_t seed) noexcept : engine_{seed} {}

  /// Derives an independent substream (2^128 apart).
  [[nodiscard]] Random fork() noexcept {
    Random child = *this;
    child.engine_.jump();
    engine_();  // perturb the parent so repeated forks differ
    return child;
  }

  /// Uniform in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be > 0. Rejection-free modulo with
  /// negligible bias for the n used here (n << 2^64).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept { return engine_() % n; }

  /// Bernoulli with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (inverse transform).
  [[nodiscard]] double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  [[nodiscard]] Duration exponential(Duration mean) noexcept {
    return Duration::from_seconds(exponential(mean.to_seconds()));
  }

  /// Standard normal via Box-Muller (one variate per call; the pair's twin
  /// is discarded to keep the stream position deterministic per call).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double sigma) noexcept {
    return mean + sigma * normal();
  }

  /// Lognormal parameterized by the mean and coefficient of variation of the
  /// *resulting* variable (convenient for hold-time models).
  [[nodiscard]] double lognormal_mean_cv(double mean, double cv) noexcept;

  /// Pareto (heavy-tail) with given minimum and shape alpha > 1.
  [[nodiscard]] double pareto(double minimum, double alpha) noexcept {
    return minimum / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  [[nodiscard]] Xoshiro256& engine() noexcept { return engine_; }

 private:
  Xoshiro256 engine_;
};

/// Hold-time (call duration) distribution families used by scenarios.
enum class HoldTimeModel {
  kDeterministic,  // the paper's empirical method: fixed h = 120 s
  kExponential,    // the Erlang-B assumption (memoryless holding)
  kLognormal,      // measured PSTN/VoIP hold times are right-skewed
};

/// Draws one hold time according to the model. `cv` only matters for the
/// lognormal family (typical measured value ~1.0-1.4).
[[nodiscard]] Duration draw_hold_time(Random& rng, HoldTimeModel model, Duration mean,
                                      double cv = 1.0);

}  // namespace pbxcap::sim
