// Discrete-event simulation kernel.
//
// A single-threaded event loop over a time-ordered queue. Determinism
// guarantees:
//   * events fire in non-decreasing time order;
//   * ties are broken by scheduling order (FIFO among equal timestamps);
//   * the clock never moves backwards.
// Each experiment run owns one Simulator; parallelism happens across runs
// (see exp/parallel.hpp), never within one, so model code needs no locks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::sim {

/// Opaque handle for cancelling a scheduled event. Zero is never issued.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, Callback fn) { return schedule_at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const noexcept { return next_id_ - 1; }

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs all events with timestamp <= horizon, then advances the clock to
  /// exactly `horizon`.
  void run_until(TimePoint horizon);

  /// Requests the loop to stop after the currently executing event.
  void stop() noexcept { stopped_ = true; }

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pops and runs the next live event; returns false when drained.
  bool step();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  TimePoint now_{};
  EventId next_id_{1};
  std::uint64_t processed_{0};
  bool stopped_{false};
};

}  // namespace pbxcap::sim
