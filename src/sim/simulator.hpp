// Discrete-event simulation kernel.
//
// A single-threaded event loop over a time-ordered event store. Determinism
// guarantees:
//   * events fire in non-decreasing time order;
//   * ties are broken by scheduling order (FIFO among equal timestamps);
//   * the clock never moves backwards.
// Each experiment run owns one Simulator; parallelism happens across runs
// (see exp/parallel.hpp), never within one, so model code needs no locks.
//
// Internals (rebuilt for throughput; the contract above is unchanged):
//   * Events live in a chunked slab of generation-tagged nodes with stable
//     addresses; an EventId encodes (generation << 32 | node index), so
//     cancel() is an O(1) lookup plus a true removal — no tombstone hash
//     set, no skips at pop time. Stable addresses let the scheduler build
//     each closure directly inside its node and run it there: zero callback
//     relocations on the hot path.
//   * Far-future / irregular events sit in an index-addressable 4-ary min
//     heap keyed by (time, schedule sequence); each node tracks its heap
//     slot, making cancellation an O(log n) sift instead of lazy deletion.
//   * Near-future events — the huge population of short fixed-period timers
//     (20 ms RTP ticks, SIP retransmit timers, link deliveries) — take a
//     two-level timer-wheel fast path: level 0 covers ~268 ms in ~1.05 ms
//     slots, level 1 covers ~68.7 s in ~268 ms slots that cascade into
//     level 0 as the clock approaches. Slots sort by (time, sequence) on
//     activation, so wheel and heap events interleave in exactly the order a
//     single global queue would produce.
//   * Callbacks are sim::Callback (see callback.hpp): move-only with 64-byte
//     inline storage, so the dominant capture-a-couple-of-pointers closures
//     never touch the allocator.
//   * The schedule/fire fast paths are defined inline below the class so the
//     tick-reschedule cycle of a paced media stream compiles into one tight
//     loop with no out-of-line calls.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "util/time.hpp"

namespace pbxcap::sim {

struct ExecProfile;  // sim/profile.hpp; the kernel only holds a pointer

/// Opaque handle for cancelling a scheduled event. Zero is never issued.
/// Encodes (generation << 32 | node index); stale handles — fired, cancelled,
/// or from a recycled slot — are recognized and rejected by cancel().
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = sim::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `fn` at absolute time `at` (must be >= now()). The callable
  /// is constructed directly inside the event node — no intermediate
  /// Callback object, no relocation.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventId schedule_at(TimePoint at, F&& fn) {
    if (at < now_) [[unlikely]] {
      throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
    }
    const std::uint32_t idx = peek_free();
    node_at(idx).cb.emplace(std::forward<F>(fn));  // may throw: node unclaimed
    take_free(idx);
    return place(at.ns(), idx);
  }

  /// Schedules a pre-built callback; steals it into the event node.
  EventId schedule_at(TimePoint at, Callback&& fn) {
    if (at < now_) [[unlikely]] {
      throw std::invalid_argument{"Simulator::schedule_at: time is in the past"};
    }
    if (!fn) [[unlikely]] {
      throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
    }
    const std::uint32_t idx = alloc_node();
    node_at(idx).cb = std::move(fn);
    return place(at.ns(), idx);
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  template <typename F>
  EventId schedule_in(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  /// Exact count of scheduled-but-unfired events. Cancelled events leave the
  /// count immediately; they can never make it drift.
  [[nodiscard]] std::size_t pending() const noexcept {
    return static_cast<std::size_t>(scheduled_ - processed_ - cancelled_);
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const noexcept { return scheduled_; }

  /// Sentinel returned by next_event_ns() when nothing is pending.
  static constexpr std::int64_t kNoEvent = std::numeric_limits<std::int64_t>::max();

  /// Timestamp (ns) of the earliest live pending event, or kNoEvent. Used by
  /// the conservative shard executor to jump idle synchronization windows
  /// forward. May activate wheel slots (pure bookkeeping, fires nothing), so
  /// it is non-const; call it only between run_until() calls, never from
  /// inside a running event.
  [[nodiscard]] std::int64_t next_event_ns();

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs all events with timestamp <= horizon, then advances the clock to
  /// exactly `horizon`.
  void run_until(TimePoint horizon);

  /// Requests the loop to stop after the currently executing event.
  void stop() noexcept { stopped_ = true; }

  // --- event-category profiling (see sim/profile.hpp) -----------------------
  //
  // Every scheduled event carries a one-byte category id stamped from
  // `current_cat_` at scheduling time, so events scheduled from inside a
  // firing callback inherit that event's category; subsystem roots override
  // it with CategoryScope around their schedule calls. With no profile
  // attached the fire path pays one predictable branch and categories are
  // stamped but never read.

  /// Attaches (or detaches, with nullptr) the profile fires are counted into.
  void set_profile(ExecProfile* profile) noexcept { profile_ = profile; }
  [[nodiscard]] ExecProfile* profile() const noexcept { return profile_; }

  /// Category stamped onto subsequently scheduled events. Prefer
  /// CategoryScope; the raw setter exists for the scope and for tests.
  void set_category(std::uint8_t cat) noexcept { current_cat_ = cat; }
  [[nodiscard]] std::uint8_t category() const noexcept { return current_cat_; }

  /// RAII category override around a group of schedule calls.
  class CategoryScope {
   public:
    CategoryScope(Simulator& simulator, std::uint8_t cat) noexcept
        : sim_{simulator}, prev_{simulator.category()} {
      sim_.set_category(cat);
    }
    CategoryScope(const CategoryScope&) = delete;
    CategoryScope& operator=(const CategoryScope&) = delete;
    ~CategoryScope() { sim_.set_category(prev_); }

   private:
    Simulator& sim_;
    std::uint8_t prev_;
  };

 private:
  // Where a live node currently resides.
  enum class Loc : std::uint8_t {
    kFree,    // on the free list (not a live event)
    kHeap,    // heap_[pos]
    kWheel0,  // wheel0_[slot][pos]
    kWheel1,  // wheel1_[slot][pos]
    kRun,     // run_ (the activated, sorted level-0 slot); cancelled lazily
  };

  struct Node {
    Callback cb;
    std::uint32_t gen{1};  // bumped on every free; validates EventIds
    Loc loc{Loc::kFree};
    std::uint8_t slot{0};  // wheel slot (physical) for kWheel0/kWheel1
    std::uint8_t cat{0};   // profiling category (sim/profile.hpp); fits padding
    std::uint32_t pos{0};  // index within heap_ or the wheel slot vector
  };

  struct HeapItem {
    std::int64_t at;    // ns
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    std::uint32_t idx;  // node index
  };

  struct WheelItem {
    std::int64_t at;
    std::uint64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;  // detects lazily-cancelled entries in run_
  };

  // Nodes are handed out chunk by chunk so their addresses never move:
  // callbacks run inside their node, and events scheduled from a running
  // callback must not pull the storage out from under it.
  static constexpr std::uint32_t kChunkShift = 9;  // 512 nodes per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  static constexpr int kSlotBits0 = 20;      // level-0 slot width: 2^20 ns ~ 1.05 ms
  static constexpr int kSlotBits1 = 28;      // level-1 slot width: 2^28 ns ~ 268 ms
  static constexpr std::int64_t kSlots = 256;  // slots per level
  static constexpr std::uint32_t kSlotMask = 255;
  // Level-0 slots spanned by one level-1 slot.
  static constexpr std::int64_t kL0PerL1 = std::int64_t{1} << (kSlotBits1 - kSlotBits0);
  using SlotBits = std::array<std::uint64_t, 4>;  // 256-bit occupancy map

  static bool earlier(std::int64_t at_a, std::uint64_t seq_a, std::int64_t at_b,
                      std::uint64_t seq_b) noexcept {
    return at_a < at_b || (at_a == at_b && seq_a < seq_b);
  }

  [[nodiscard]] Node& node_at(std::uint32_t idx) noexcept {
    // First chunk through a cached raw pointer: almost every simulation keeps
    // its live-event population under kChunkSize, and the shortcut shaves a
    // dependent pointer load off every hot-path node access.
    if (idx < kChunkSize) [[likely]] return chunk0_[idx];
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  /// Classifies a freshly filled node into heap / wheel and returns its id.
  EventId place(std::int64_t at_ns, std::uint32_t idx);

  /// Fires the earliest pending event if its time is <= horizon_ns.
  bool fire_next(std::int64_t horizon_ns);
  /// fire_next for the wheel-involved cases (anything beyond pure heap).
  bool fire_next_general(std::int64_t horizon_ns);
  /// Pop bookkeeping done: runs the node's callback at time `at`.
  void finish_fire(std::int64_t at, std::uint32_t idx);
  /// finish_fire's callback invocation with a profile attached: counts the
  /// category and brackets every sample_period-th callback with clock reads.
  void invoke_profiled(Node& node);

  /// Slow scheduling path: level-1 placement, window resync, far-future heap.
  EventId schedule_far(std::int64_t at_ns, std::uint64_t seq, std::uint32_t idx);

  /// Earliest live wheel event, or nullptr if the wheel is empty. Activates
  /// slots and cascades level 1 as needed; pure bookkeeping, fires nothing.
  const WheelItem* wheel_peek();

  void activate_slot0(std::int64_t abs_slot);
  void cascade_slot1(std::int64_t abs_slot);
  void resync_wheel() noexcept;
  [[nodiscard]] bool wheel_is_empty() const noexcept { return wheel_live_ == 0; }

  void grow_nodes();
  // Free-node handout goes through a single-entry cache over free_: the
  // fire-then-reschedule cycle frees one node and claims another back-to-back,
  // so the cache alternates a pair of hot slots without touching the vector.
  [[nodiscard]] std::uint32_t peek_free();
  void take_free(std::uint32_t idx) noexcept;
  void push_free(std::uint32_t idx) noexcept;
  std::uint32_t alloc_node();
  /// Returns a node whose callback has already been moved out or destroyed
  /// to the free list, invalidating outstanding EventIds for it.
  void recycle_node(std::uint32_t idx) noexcept;

  void heap_push(HeapItem item);
  void heap_pop_root();
  void heap_remove(std::uint32_t pos);
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);

  void slot_remove(std::vector<WheelItem>* wheel, SlotBits& bits, std::uint64_t& count,
                   const Node& node) noexcept;

  // Scans `bits` over absolute slots [from, to) (to - from <= kSlots);
  // returns the first occupied absolute slot or -1.
  static std::int64_t scan_bits(const SlotBits& bits, std::int64_t from, std::int64_t to) noexcept;

  static void set_bit(SlotBits& bits, std::uint32_t phys) noexcept {
    bits[phys >> 6] |= std::uint64_t{1} << (phys & 63);
  }
  static void clear_bit(SlotBits& bits, std::uint32_t phys) noexcept {
    bits[phys >> 6] &= ~(std::uint64_t{1} << (phys & 63));
  }

  // --- event storage ---
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* chunk0_{nullptr};  // raw shortcut to chunks_[0]
  std::vector<std::uint32_t> free_;
  static constexpr std::uint32_t kNoFree = 0xffffffffu;  // cache-empty sentinel
  std::uint32_t free_top_{kNoFree};  // single-entry cache over free_
  std::vector<HeapItem> heap_;

  std::array<std::vector<WheelItem>, kSlots> wheel0_{};
  std::array<std::vector<WheelItem>, kSlots> wheel1_{};
  SlotBits bits0_{};
  SlotBits bits1_{};
  std::uint64_t wheel0_count_{0};
  std::uint64_t wheel1_count_{0};
  // Live (uncancelled) events anywhere on the wheel: both levels plus the
  // activated run. One load decides the fire-path dispatch.
  std::uint64_t wheel_live_{0};

  std::vector<WheelItem> run_;  // activated level-0 slot, sorted by (at, seq)
  std::size_t run_pos_{0};

  // Wheel windows, in absolute slot indices of the respective level.
  // Invariant: end0_ == next1_ * kL0PerL1; level 0 covers
  // [end0_ - kSlots, end0_), level 1 covers [next1_, next1_ + kSlots).
  std::int64_t drained0_{0};  // slot currently/last extracted into run_
  std::int64_t cursor0_{1};   // next level-0 slot to scan
  std::int64_t end0_{kSlots};
  std::int64_t next1_{1};

  TimePoint now_{};
  ExecProfile* profile_{nullptr};
  std::uint8_t current_cat_{0};
  std::uint64_t next_seq_{1};
  std::uint64_t scheduled_{0};
  std::uint64_t processed_{0};
  std::uint64_t cancelled_{0};
  bool stopped_{false};
};

// ---- inline fast paths ------------------------------------------------------

inline std::uint32_t Simulator::peek_free() {
  if (free_top_ != kNoFree) [[likely]] return free_top_;
  if (free_.empty()) [[unlikely]] grow_nodes();
  return free_.back();
}

inline void Simulator::take_free(std::uint32_t idx) noexcept {
  if (idx == free_top_) [[likely]] {
    free_top_ = kNoFree;
    return;
  }
  free_.pop_back();
}

inline void Simulator::push_free(std::uint32_t idx) noexcept {
  if (free_top_ == kNoFree) [[likely]] {
    free_top_ = idx;
    return;
  }
  free_.push_back(idx);
}

inline std::uint32_t Simulator::alloc_node() {
  const std::uint32_t idx = peek_free();
  take_free(idx);
  return idx;
}

inline void Simulator::recycle_node(std::uint32_t idx) noexcept {
  Node& node = node_at(idx);
  ++node.gen;  // invalidates outstanding EventIds and stale run_ entries
  node.loc = Loc::kFree;
  push_free(idx);
}

inline void Simulator::heap_push(HeapItem item) {
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(item);
  // Appending an item that is not earlier than its parent needs no sift: the
  // overwhelmingly common shape for a near-empty heap or monotone inserts.
  if (pos == 0 ||
      !earlier(item.at, item.seq, heap_[(pos - 1) >> 2].at, heap_[(pos - 1) >> 2].seq)) {
    node_at(item.idx).pos = pos;
    return;
  }
  heap_sift_up(pos);
}

inline void Simulator::heap_pop_root() {
  const HeapItem last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    node_at(last.idx).pos = 0;
    heap_sift_down(0);
  }
}

inline EventId Simulator::place(std::int64_t at_ns, std::uint32_t idx) {
  const std::uint64_t seq = next_seq_++;
  ++scheduled_;
  Node& node = node_at(idx);
  node.cat = current_cat_;  // category inheritance: one store into a hot line
  const EventId id = (static_cast<EventId>(node.gen) << 32) | idx;

  const std::int64_t abs0 = at_ns >> kSlotBits0;
  if (abs0 <= drained0_) {
    // Lands in (or before) the slot being drained: the heap keeps it ordered
    // against the already-sorted run. The tightest self-scheduling loops
    // (sub-millisecond periods) live here.
    node.loc = Loc::kHeap;
    heap_push(HeapItem{at_ns, seq, idx});
    return id;
  }
  if (abs0 >= end0_ - kSlots && abs0 < end0_) {
    // Level-0 fast path: lands directly in a sortable near-future slot; the
    // 20 ms RTP tick population lives here.
    const auto phys = static_cast<std::uint32_t>(abs0) & kSlotMask;
    auto& slot = wheel0_[phys];
    node.loc = Loc::kWheel0;
    node.slot = static_cast<std::uint8_t>(phys);
    node.pos = static_cast<std::uint32_t>(slot.size());
    slot.push_back(WheelItem{at_ns, seq, idx, node.gen});
    set_bit(bits0_, phys);
    ++wheel0_count_;
    ++wheel_live_;
    return id;
  }
  return schedule_far(at_ns, seq, idx);
}

inline void Simulator::finish_fire(std::int64_t at, std::uint32_t idx) {
  Node& node = node_at(idx);
  ++node.gen;  // the id dies now: cancel() from inside the callback says false
  node.loc = Loc::kFree;
  ++processed_;
  now_ = TimePoint::at(Duration::nanos(at));
  // Chunk storage is stable, so the callback runs where it lives; the node
  // rejoins the free list only after it returns, so events it schedules
  // cannot claim the slot out from under it.
  if (profile_ == nullptr) [[likely]] {
    node.cb.invoke_and_reset();
  } else {
    invoke_profiled(node);
  }
  push_free(idx);
}

inline bool Simulator::fire_next(std::int64_t horizon_ns) {
  if (wheel_live_ != 0) return fire_next_general(horizon_ns);
  // Pure heap: nothing live on the wheel anywhere (run_ may still hold
  // lazily-cancelled leftovers; they are dead and can wait).
  if (heap_.empty()) return false;
  const HeapItem top = heap_[0];
  if (top.at > horizon_ns) return false;
  heap_pop_root();
  finish_fire(top.at, top.idx);
  return true;
}

}  // namespace pbxcap::sim
