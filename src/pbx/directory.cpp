#include "pbx/directory.hpp"

#include <vector>

namespace pbxcap::pbx {

std::optional<DirectoryUser> Directory::lookup(const std::string& id) const {
  ++lookups_;
  if (const auto it = users_.find(id); it != users_.end()) return it->second;
  for (const auto& prefix : prefixes_) {
    if (id.size() >= prefix.size() && id.compare(0, prefix.size(), prefix) == 0) {
      return DirectoryUser{id, true, 0};
    }
  }
  return std::nullopt;
}

}  // namespace pbxcap::pbx
