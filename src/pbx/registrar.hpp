// SIP registrar: location service for REGISTER bindings (RFC 3261 §10).
//
// Fig. 1's PBX uses LDAP "for user authentication and call registration";
// this is the registration half. Users bind their address-of-record to a
// contact host with a lifetime; calls to a registered user route to the
// current binding (checked ahead of the static dialplan, as Asterisk
// consults its SIP peer registry first).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "sip/uri.hpp"
#include "util/time.hpp"

namespace pbxcap::pbx {

struct Binding {
  sip::Uri contact;
  TimePoint expires_at{};
};

class Registrar {
 public:
  /// Default binding lifetime when REGISTER carries no Expires header.
  static constexpr std::int64_t kDefaultExpiresSeconds = 3600;

  /// Adds or refreshes a binding. `expires_seconds == 0` removes it
  /// (RFC 3261 un-REGISTER).
  void bind(const std::string& user, const sip::Uri& contact, std::int64_t expires_seconds,
            TimePoint now);

  /// Current contact for `user`, if a live binding exists. Expired bindings
  /// are pruned lazily.
  [[nodiscard]] std::optional<sip::Uri> lookup(const std::string& user, TimePoint now);

  [[nodiscard]] std::size_t active_bindings(TimePoint now);
  [[nodiscard]] std::uint64_t registrations() const noexcept { return registrations_; }
  [[nodiscard]] std::uint64_t deregistrations() const noexcept { return deregistrations_; }

 private:
  std::unordered_map<std::string, Binding> bindings_;
  std::uint64_t registrations_{0};
  std::uint64_t deregistrations_{0};
};

}  // namespace pbxcap::pbx
