// PBX host CPU utilization model.
//
// The paper observes (§IV) that Asterisk's CPU demand grows proportionally
// to the carried load, that RTP relaying — not SIP signalling — dominates,
// and that error handling at the highest workload "rose a little more". We
// model exactly that structure: every unit of protocol work deposits a
// calibrated cost into per-second buckets, and utilization is work/wall
// per bucket. Default coefficients are calibrated against Table I for the
// paper's 2.67 GHz Xeon (see EXPERIMENTS.md for the fit).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/summary.hpp"
#include "util/time.hpp"

namespace pbxcap::pbx {

struct CpuModelConfig {
  double base_utilization{0.05};            // OS + Asterisk housekeeping
  Duration cost_per_sip_message{Duration::micros(450)};
  Duration cost_per_rtp_packet{Duration::micros(24)};   // relay: rx + bridge + tx
  Duration cost_per_error_event{Duration::millis(30)};  // rejection/error path
  /// Degradation mode: once the current bucket's utilization crosses
  /// `overload_threshold`, each further unit of work costs
  /// `overload_multiplier` times as much (cache thrash, lock convoys, paging
  /// — the super-linear regime real servers enter past saturation).
  /// A threshold >= 1.0 disables the mode.
  double overload_threshold{1.0};
  double overload_multiplier{1.0};
};

class CpuModel {
 public:
  explicit CpuModel(CpuModelConfig config = {},
                    Duration bucket_width = Duration::seconds(1));

  void on_sip_message(TimePoint at) { deposit(at, config_.cost_per_sip_message); }
  void on_rtp_packet(TimePoint at) { deposit(at, config_.cost_per_rtp_packet); }
  /// Relay cost plus a per-packet surcharge (per-direction transcoding work
  /// on a codec-mismatched bridge). Zero extra is exactly on_rtp_packet.
  void on_rtp_packet(TimePoint at, Duration extra) {
    deposit(at, config_.cost_per_rtp_packet + extra);
  }
  void on_error_event(TimePoint at) { deposit(at, config_.cost_per_error_event); }

  /// Deposits the relay cost (plus the optional per-packet transcode
  /// surcharge) of `count` RTP packets arriving at `first + i * spacing` in
  /// closed form per bucket — the fluid fast path. Bucket sums are
  /// bit-identical to `count` on_rtp_packet calls while the overload regime
  /// is not engaged (it falls back to per-packet deposits once the current
  /// bucket crosses the overload threshold).
  void on_rtp_packets(TimePoint first, Duration spacing, std::uint32_t count,
                      Duration extra = Duration::zero());

  /// Utilization summary over [from, to): one sample per bucket, each
  /// clamped to 1.0 (a real core cannot exceed 100 %).
  [[nodiscard]] stats::Summary utilization(TimePoint from, TimePoint to) const;

  /// Utilization of the single bucket containing `at`.
  [[nodiscard]] double utilization_at(TimePoint at) const;

  [[nodiscard]] const CpuModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] Duration total_work() const noexcept { return total_work_; }
  /// Deposits inflated by the overload multiplier (degradation diagnostics).
  [[nodiscard]] std::uint64_t overload_inflations() const noexcept {
    return overload_inflations_;
  }

 private:
  void deposit(TimePoint at, Duration work);
  [[nodiscard]] std::size_t bucket_of(TimePoint at) const noexcept;

  CpuModelConfig config_;
  Duration bucket_width_;
  std::vector<Duration> buckets_;  // work per bucket, grown on demand
  Duration total_work_{Duration::zero()};
  std::uint64_t overload_inflations_{0};
};

}  // namespace pbxcap::pbx
