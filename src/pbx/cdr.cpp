#include "pbx/cdr.hpp"

#include <stdexcept>

namespace pbxcap::pbx {

std::size_t CdrLog::open(std::string call_id, std::string caller, std::string callee,
                         TimePoint at) {
  CallDetailRecord rec;
  rec.call_id = std::move(call_id);
  rec.caller = std::move(caller);
  rec.callee = std::move(callee);
  rec.invite_at = at;
  records_.push_back(std::move(rec));
  return records_.size() - 1;
}

void CdrLog::mark_answered(std::size_t idx, TimePoint at) {
  records_.at(idx).answer_at = at;
}

void CdrLog::close(std::size_t idx, Disposition d, TimePoint at) {
  auto& rec = records_.at(idx);
  if (rec.disposition != Disposition::kInProgress) {
    throw std::logic_error{"CdrLog::close: record already closed"};
  }
  rec.disposition = d;
  rec.end_at = at;
}

std::uint64_t CdrLog::count(Disposition d) const noexcept {
  std::uint64_t n = 0;
  for (const auto& rec : records_) {
    if (rec.disposition == d) ++n;
  }
  return n;
}

}  // namespace pbxcap::pbx
