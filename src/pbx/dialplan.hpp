// Dialplan: maps dialed users to destination SIP hosts.
//
// A miniature of Asterisk's extensions.conf: longest-prefix match on the
// dialed user part, with an optional default route. The testbed routes
// every "recv-*" extension to the SIP receiver host; the campus examples
// route number ranges to landline gateways.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pbxcap::pbx {

struct DialplanEntry {
  std::string user_prefix;  // matches the start of the dialed user part
  std::string target_host;  // SIP host to forward the call leg to
};

class Dialplan {
 public:
  void add(std::string user_prefix, std::string target_host) {
    entries_.push_back({std::move(user_prefix), std::move(target_host)});
  }

  void set_default_route(std::string target_host) { default_route_ = std::move(target_host); }

  /// Longest matching prefix wins; falls back to the default route.
  [[nodiscard]] std::optional<std::string> route(std::string_view user) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<DialplanEntry> entries_;
  std::optional<std::string> default_route_;
};

}  // namespace pbxcap::pbx
