// Finite channel pool — the capacity the Erlang-B model dimensions.
//
// One channel carries one bridged call (two call legs + relayed media),
// matching the paper's accounting: "Each channel, denoted as N, supports the
// communication between two end-users."
#pragma once

#include <cstdint>

namespace pbxcap::pbx {

class ChannelPool {
 public:
  explicit ChannelPool(std::uint32_t capacity) : capacity_{capacity} {}

  /// Attempts to claim one channel; false when the pool is exhausted (the
  /// admission-control "blocked call" outcome).
  [[nodiscard]] bool try_acquire() noexcept {
    ++attempts_;
    if (in_use_ >= capacity_) {
      ++rejected_;
      return false;
    }
    ++in_use_;
    if (in_use_ > peak_) peak_ = in_use_;
    return true;
  }

  void release() noexcept {
    if (in_use_ > 0) --in_use_;
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::uint32_t available() const noexcept { return capacity_ - in_use_; }
  /// Peak concurrent usage — Table I's "Number of Channels (N)" row.
  [[nodiscard]] std::uint32_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t in_use_{0};
  std::uint32_t peak_{0};
  std::uint64_t attempts_{0};
  std::uint64_t rejected_{0};
};

}  // namespace pbxcap::pbx
