// PBX-side RTP port allocator.
//
// Replaces the old wrapping counter in AsteriskPbx::anchored_sdp(), which
// reissued ports 10000..19998 every ~5,000 allocations and silently handed
// the same port to two live calls at bench_cluster_scaling --mega scale.
// Ports are even (RTP convention; the odd sibling is implicitly RTCP),
// tracked while in use, and exhaustion is an explicit, countable failure
// (allocate() returns 0) instead of a silent collision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace pbxcap::pbx {

class MediaPortAllocator {
 public:
  static constexpr std::uint16_t kDefaultMin = 10'000;
  static constexpr std::uint16_t kDefaultMax = 65'534;

  explicit MediaPortAllocator(std::uint16_t min_port = kDefaultMin,
                              std::uint16_t max_port = kDefaultMax) noexcept
      : min_port_{static_cast<std::uint16_t>(min_port & ~1u)},
        max_port_{static_cast<std::uint16_t>(max_port & ~1u)},
        cursor_{min_port_} {
    if (max_port_ < min_port_) max_port_ = min_port_;
  }

  /// Even ports in [min, max], each held until release(). Returns 0 when
  /// every port is in use (the caller surfaces that as an explicit error).
  [[nodiscard]] std::uint16_t allocate() {
    if (in_use_.size() >= capacity()) {
      ++exhausted_;
      return 0;
    }
    // The cursor walks the range so sequential calls get sequential ports
    // (cheap, and keeps SDP bodies readable); the in-use set turns the old
    // blind wraparound into a skip.
    for (std::size_t probes = capacity(); probes > 0; --probes) {
      const std::uint16_t candidate = cursor_;
      cursor_ = candidate >= max_port_ ? min_port_ : static_cast<std::uint16_t>(candidate + 2);
      if (in_use_.insert(candidate).second) return candidate;
    }
    ++exhausted_;  // unreachable given the size guard, but keep it honest
    return 0;
  }

  void release(std::uint16_t port) { in_use_.erase(port); }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return static_cast<std::size_t>((max_port_ - min_port_) / 2) + 1;
  }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_.size(); }
  /// Allocation attempts that found no free port.
  [[nodiscard]] std::uint64_t exhausted() const noexcept { return exhausted_; }

 private:
  std::uint16_t min_port_;
  std::uint16_t max_port_;
  std::uint16_t cursor_;
  std::unordered_set<std::uint16_t> in_use_;
  std::uint64_t exhausted_{0};
};

}  // namespace pbxcap::pbx
