// Call admission control policies.
//
// The paper's Asterisk blocks only on hard channel exhaustion. Its reference
// [8] (Chen, "A new VoIP call admission control based on blocking
// probability calculation") proposes admitting a call only while the
// *measured* offered load keeps the Erlang-B blocking prediction under a
// target — rejecting early, before the pool is full, to hold a grade of
// service. This module implements that predictive CAC: it estimates the
// arrival rate and mean hold time online (EWMA) and evaluates Equation (2)
// per attempt.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace pbxcap::pbx {

enum class AdmissionPolicy : std::uint8_t {
  kChannelPool,       // admit while a channel is free (the paper's Asterisk)
  kErlangPredictive,  // admit while predicted Erlang-B blocking <= target
  kQueueWhenBusy,     // hold callers in a queue until a channel frees
                      // (contact-center mode: the Erlang-C system)
};

struct PredictiveCacConfig {
  double target_blocking{0.01};
  /// EWMA smoothing for the inter-arrival and hold-time estimators.
  double smoothing{0.05};
  /// Attempts to observe before the estimator is trusted; everything is
  /// admitted (capacity permitting) until then.
  std::uint32_t warmup_attempts{20};
  /// Prior mean hold time used until real samples arrive.
  Duration initial_hold{Duration::seconds(120)};
};

class ErlangPredictiveCac {
 public:
  explicit ErlangPredictiveCac(PredictiveCacConfig config = {});

  /// Records an attempt and decides admission given the pool capacity.
  /// Call exactly once per INVITE, before claiming a channel.
  [[nodiscard]] bool admit(TimePoint now, std::uint32_t capacity);

  /// Feeds a completed call's duration into the hold-time estimator.
  void on_call_finished(Duration hold);

  [[nodiscard]] double estimated_arrival_rate() const noexcept { return rate_per_s_; }
  [[nodiscard]] Duration estimated_hold() const noexcept { return hold_; }
  [[nodiscard]] double estimated_offered_erlangs() const noexcept {
    return rate_per_s_ * hold_.to_seconds();
  }
  [[nodiscard]] double last_predicted_blocking() const noexcept { return last_prediction_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  PredictiveCacConfig config_;
  std::uint64_t attempts_{0};
  std::uint64_t rejected_{0};
  bool have_arrival_{false};
  TimePoint last_arrival_{};
  double mean_interarrival_s_{0.0};
  double rate_per_s_{0.0};
  Duration hold_;
  bool have_hold_sample_{false};
  double last_prediction_{0.0};
};

}  // namespace pbxcap::pbx
