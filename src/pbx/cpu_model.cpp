#include "pbx/cpu_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace pbxcap::pbx {

CpuModel::CpuModel(CpuModelConfig config, Duration bucket_width)
    : config_{config}, bucket_width_{bucket_width} {
  if (bucket_width <= Duration::zero()) {
    throw std::invalid_argument{"CpuModel: bucket width must be positive"};
  }
}

std::size_t CpuModel::bucket_of(TimePoint at) const noexcept {
  return static_cast<std::size_t>(at.ns() / bucket_width_.ns());
}

void CpuModel::deposit(TimePoint at, Duration work) {
  if (config_.overload_threshold < 1.0 && config_.overload_multiplier > 1.0 &&
      utilization_at(at) >= config_.overload_threshold) {
    work = Duration::from_seconds(work.to_seconds() * config_.overload_multiplier);
    ++overload_inflations_;
  }
  const std::size_t idx = bucket_of(at);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, Duration::zero());
  buckets_[idx] += work;
  total_work_ += work;
}

void CpuModel::on_rtp_packets(TimePoint first, Duration spacing, std::uint32_t count,
                              Duration extra) {
  if (count == 0) return;
  const Duration per_packet = config_.cost_per_rtp_packet + extra;
  if (spacing <= Duration::zero()) {
    for (std::uint32_t i = 0; i < count; ++i) deposit(first, per_packet);
    return;
  }
  const bool overload_mode =
      config_.overload_threshold < 1.0 && config_.overload_multiplier > 1.0;
  std::uint32_t done = 0;
  TimePoint t = first;
  while (done < count) {
    const std::size_t idx = bucket_of(t);
    if (overload_mode && utilization_at(t) >= config_.overload_threshold) {
      // Super-linear regime: the inflation decision is per packet (each
      // deposit can push the bucket further past the threshold), so the
      // closed form no longer applies. The fluid engine avoids entering
      // fluid mode near saturation; this path is a correctness backstop.
      deposit(t, per_packet);
      ++done;
      t = t + spacing;
      continue;
    }
    // Packets landing in bucket `idx`: arrivals t + k * spacing strictly
    // below the bucket's end. Integer-ns math, order-independent.
    const std::int64_t bucket_end_ns = static_cast<std::int64_t>(idx + 1) * bucket_width_.ns();
    std::int64_t in_bucket = (bucket_end_ns - 1 - t.ns()) / spacing.ns() + 1;
    in_bucket = std::min<std::int64_t>(in_bucket, count - done);
    const Duration work = per_packet * in_bucket;
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, Duration::zero());
    buckets_[idx] += work;
    total_work_ += work;
    done += static_cast<std::uint32_t>(in_bucket);
    t = t + spacing * in_bucket;
  }
}

double CpuModel::utilization_at(TimePoint at) const {
  const std::size_t idx = bucket_of(at);
  const double work =
      idx < buckets_.size() ? buckets_[idx].to_seconds() : 0.0;
  return std::min(1.0, config_.base_utilization + work / bucket_width_.to_seconds());
}

stats::Summary CpuModel::utilization(TimePoint from, TimePoint to) const {
  if (to < from) throw std::invalid_argument{"CpuModel::utilization: to < from"};
  stats::Summary summary;
  const std::size_t first = bucket_of(from);
  const std::size_t last = bucket_of(to);
  for (std::size_t i = first; i < last; ++i) {
    const double work = i < buckets_.size() ? buckets_[i].to_seconds() : 0.0;
    summary.add(std::min(1.0, config_.base_utilization + work / bucket_width_.to_seconds()));
  }
  return summary;
}

}  // namespace pbxcap::pbx
