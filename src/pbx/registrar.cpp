#include "pbx/registrar.hpp"

namespace pbxcap::pbx {

void Registrar::bind(const std::string& user, const sip::Uri& contact,
                     std::int64_t expires_seconds, TimePoint now) {
  if (expires_seconds <= 0) {
    if (bindings_.erase(user) > 0) ++deregistrations_;
    return;
  }
  ++registrations_;
  bindings_[user] = Binding{contact, now + Duration::seconds(expires_seconds)};
}

std::optional<sip::Uri> Registrar::lookup(const std::string& user, TimePoint now) {
  const auto it = bindings_.find(user);
  if (it == bindings_.end()) return std::nullopt;
  if (it->second.expires_at <= now) {
    bindings_.erase(it);
    return std::nullopt;
  }
  return it->second.contact;
}

std::size_t Registrar::active_bindings(TimePoint now) {
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    if (it->second.expires_at <= now) it = bindings_.erase(it);
    else ++it;
  }
  return bindings_.size();
}

}  // namespace pbxcap::pbx
