#include "pbx/acd.hpp"

#include <algorithm>
#include <utility>

#include "sip/transaction.hpp"
#include "sip/types.hpp"

namespace pbxcap::pbx {

// ---- AcdWaitQueue ---------------------------------------------------------

AcdWaitQueue::Entry& AcdWaitQueue::push_back(std::unique_ptr<Entry> entry) {
  Entry& ref = *entry;
  entries_.push_back(std::move(entry));
  ++live_;
  return ref;
}

std::unique_ptr<AcdWaitQueue::Entry> AcdWaitQueue::pop_front_live() {
  while (!entries_.empty() && !entries_.front()->live) {
    entries_.pop_front();
    --dead_;
  }
  if (entries_.empty()) return nullptr;
  auto entry = std::move(entries_.front());
  entries_.pop_front();
  --live_;
  return entry;
}

void AcdWaitQueue::push_front(std::unique_ptr<Entry> entry) {
  entries_.push_front(std::move(entry));
  ++live_;
}

void AcdWaitQueue::mark_dead(Entry& entry) {
  entry.live = false;
  --live_;
  ++dead_;
  // Amortised sweep: dead entries in the middle of the deque (timeouts,
  // abandons) are only freed here, so bound them by the live population
  // instead of letting them accumulate for the whole run.
  if (dead_ > live_ + 8) compact();
}

std::size_t AcdWaitQueue::position_of(const Entry& entry) const noexcept {
  std::size_t pos = 0;
  for (const auto& e : entries_) {
    if (e->live) ++pos;
    if (e.get() == &entry) return pos;
  }
  return pos;
}

void AcdWaitQueue::drain(const std::function<void(Entry&)>& fn) {
  for (auto& e : entries_) {
    if (e->live) fn(*e);
  }
  entries_.clear();
  live_ = 0;
  dead_ = 0;
}

void AcdWaitQueue::compact() {
  std::erase_if(entries_, [](const std::unique_ptr<Entry>& e) { return !e->live; });
  dead_ = 0;
}

// ---- AcdAgentPool ---------------------------------------------------------

AcdAgentPool::AcdAgentPool(const std::vector<AcdAgentSpec>& specs) {
  std::uint32_t id = 0;
  for (const AcdAgentSpec& spec : specs) {
    for (std::uint32_t i = 0; i < spec.count; ++i) {
      Agent agent;
      agent.id = id++;
      agent.penalty = spec.penalty;
      agent.wrapup = spec.wrapup;
      agents_.push_back(agent);
    }
  }
}

AcdAgentPool::Agent* AcdAgentPool::pick(RingStrategy strategy, std::uint64_t& rung) noexcept {
  Agent* best = nullptr;
  std::uint64_t available = 0;
  // Iteration is in id order, and all comparisons are strict, so ties always
  // resolve to the lowest agent id — deterministic across runs and shards.
  for (Agent& agent : agents_) {
    if (agent.busy || agent.in_wrapup) continue;
    ++available;
    if (best == nullptr) {
      best = &agent;
      continue;
    }
    switch (strategy) {
      case RingStrategy::kRingAll:
        break;  // everyone rings; the lowest id (first found) answers
      case RingStrategy::kLeastRecent:
        if (agent.last_finished_seq < best->last_finished_seq) best = &agent;
        break;
      case RingStrategy::kFewestCalls:
        if (agent.calls_taken < best->calls_taken) best = &agent;
        break;
      case RingStrategy::kPenaltyTiers:
        if (agent.penalty < best->penalty ||
            (agent.penalty == best->penalty &&
             agent.last_finished_seq < best->last_finished_seq)) {
          best = &agent;
        }
        break;
    }
  }
  if (best == nullptr) return nullptr;
  rung += strategy == RingStrategy::kRingAll ? available : 1;
  return best;
}

void AcdAgentPool::begin_call(Agent& agent, TimePoint now) noexcept {
  agent.busy = true;
  agent.busy_since = now;
  ++agent.calls_taken;
}

AcdAgentPool::Agent* AcdAgentPool::end_call(std::uint32_t id) noexcept {
  Agent* agent = by_id(id);
  if (agent == nullptr || !agent->busy) return nullptr;
  agent->busy = false;
  agent->last_finished_seq = ++finish_seq_;
  return agent;
}

AcdAgentPool::Agent* AcdAgentPool::by_id(std::uint32_t id) noexcept {
  // Ids are dense (assigned 0..n-1 at construction).
  return id < agents_.size() ? &agents_[id] : nullptr;
}

std::size_t AcdAgentPool::busy_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(agents_.begin(), agents_.end(), [](const Agent& a) { return a.busy; }));
}

std::size_t AcdAgentPool::available_count() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      agents_.begin(), agents_.end(), [](const Agent& a) { return !a.busy && !a.in_wrapup; }));
}

void AcdAgentPool::reset() noexcept {
  for (Agent& agent : agents_) {
    agent.busy = false;
    agent.in_wrapup = false;
    agent.wrapup_event = 0;
  }
}

// ---- AcdSubsystem ---------------------------------------------------------

AcdSubsystem::AcdSubsystem(AcdConfig config, sim::Simulator& simulator)
    : config_{std::move(config)}, sim_{simulator}, rng_{config_.seed} {
  if (!config_.enabled) return;
  for (std::size_t qi = 0; qi < config_.queues.size(); ++qi) {
    queues_.push_back(std::make_unique<Queue>(config_.queues[qi]));
    by_name_.emplace(config_.queues[qi].name, qi);
  }
}

std::optional<std::size_t> AcdSubsystem::queue_for_user(std::string_view user) const {
  constexpr std::string_view kPrefix = "queue-";
  if (!user.starts_with(kPrefix)) return std::nullopt;
  const auto it = by_name_.find(std::string{user.substr(kPrefix.size())});
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

void AcdSubsystem::offer(std::size_t qi, const sip::Message& invite,
                         sip::ServerTransaction& txn, std::size_t cdr) {
  Queue& q = *queues_.at(qi);
  const AcdQueueConfig& cfg = config_.queues[qi];
  ++q.stats.offered;
  if (q.tm.offered != nullptr) q.tm.offered->add();

  // Fast path: nobody ahead and an agent free — serve without queueing
  // (waiting time 0, which the Erlang E[W]-over-all-arrivals mean needs).
  if (q.waiting.live_count() == 0) {
    AcdAgentPool::Agent* agent = q.agents.pick(cfg.strategy, q.stats.agents_rung);
    if (agent != nullptr) {
      const ServeOutcome out = hooks_.serve(invite, txn, cdr, qi, agent->id);
      if (out == ServeOutcome::kBridged) {
        ++q.stats.served;
        if (q.tm.served != nullptr) q.tm.served->add();
        record_wait(q, 0.0, /*served=*/true);
        q.agents.begin_call(*agent, sim_.now());
        update_gauges(q);
        return;
      }
      if (out == ServeOutcome::kFailed) {
        ++q.stats.serve_failures;  // the hook rejected and closed the CDR
        return;
      }
      ++q.stats.serve_retries;  // kNoChannel: agent free but no PBX channel —
    }                           // fall through and wait like everyone else
  }

  if (q.waiting.live_count() >= cfg.max_queue_length) {
    if (cfg.voicemail_fallback && hooks_.voicemail && hooks_.voicemail(invite, txn, cdr, qi)) {
      ++q.stats.voicemail;
      if (q.tm.voicemail != nullptr) q.tm.voicemail->add();
    } else {
      ++q.stats.blocked_full;
      if (q.tm.blocked_full != nullptr) q.tm.blocked_full->add();
      hooks_.reject(invite, txn, cdr, sip::status::kServiceUnavailable,
                    Disposition::kCongestion);
    }
    return;
  }

  enqueue(qi, invite, txn, cdr);
}

void AcdSubsystem::enqueue(std::size_t qi, const sip::Message& invite,
                           sip::ServerTransaction& txn, std::size_t cdr) {
  Queue& q = *queues_[qi];
  const AcdQueueConfig& cfg = config_.queues[qi];
  ++q.stats.queued;
  if (q.tm.queued != nullptr) q.tm.queued->add();

  auto owned = std::make_unique<AcdWaitQueue::Entry>();
  owned->invite = invite;
  owned->txn = &txn;
  owned->cdr = cdr;
  owned->enqueued_at = sim_.now();
  AcdWaitQueue::Entry& entry = q.waiting.push_back(std::move(owned));

  // Initial 182 with the caller's position: keeps the INVITE transaction in
  // Proceeding (no Timer B pressure, RFC 3261 §17.1.1.2) while they wait.
  if (hooks_.announce) {
    hooks_.announce(entry.invite, txn, q.waiting.position_of(entry));
    ++q.stats.announcements;
    if (q.tm.announcements != nullptr) q.tm.announcements->add();
  }

  const sim::CategoryScope scope{sim_, sim::Category::kAcd};
  AcdWaitQueue::Entry* raw = &entry;

  if (cfg.patience != PatienceModel::kNone) {
    const Duration patience = cfg.patience == PatienceModel::kExponential
                                  ? rng_.exponential(cfg.patience_mean)
                                  : cfg.patience_mean;
    raw->patience_event = sim_.schedule_in(patience, [this, qi, raw] {
      raw->patience_event = 0;
      Queue& queue = *queues_[qi];
      cancel_timers(*raw);
      ++queue.stats.abandoned;
      if (queue.tm.abandoned != nullptr) queue.tm.abandoned->add();
      record_wait(queue, (sim_.now() - raw->enqueued_at).to_seconds(), /*served=*/false);
      hooks_.reject(raw->invite, *raw->txn, raw->cdr, sip::status::kTemporarilyUnavailable,
                    Disposition::kNoAnswer);
      queue.waiting.mark_dead(*raw);  // may compact and free raw — last use
      update_gauges(queue);
    });
  }

  if (cfg.max_wait > Duration::zero()) {
    raw->max_wait_event = sim_.schedule_in(cfg.max_wait, [this, qi, raw] {
      raw->max_wait_event = 0;
      overflow(qi, *raw, /*from_max_wait=*/true);
    });
  }

  if (cfg.announce_period > Duration::zero() && hooks_.announce) {
    schedule_announce(qi, raw);
  }
  update_gauges(q);
}

void AcdSubsystem::schedule_announce(std::size_t qi, AcdWaitQueue::Entry* raw) {
  const sim::CategoryScope scope{sim_, sim::Category::kAcd};
  raw->announce_event = sim_.schedule_in(config_.queues[qi].announce_period, [this, qi, raw] {
    raw->announce_event = 0;
    Queue& q = *queues_[qi];
    hooks_.announce(raw->invite, *raw->txn, q.waiting.position_of(*raw));
    ++q.stats.announcements;
    if (q.tm.announcements != nullptr) q.tm.announcements->add();
    schedule_announce(qi, raw);
  });
}

void AcdSubsystem::overflow(std::size_t qi, AcdWaitQueue::Entry& entry, bool /*from_max_wait*/) {
  Queue& q = *queues_[qi];
  const AcdQueueConfig& cfg = config_.queues[qi];
  cancel_timers(entry);
  record_wait(q, (sim_.now() - entry.enqueued_at).to_seconds(), /*served=*/false);
  if (cfg.voicemail_fallback && hooks_.voicemail &&
      hooks_.voicemail(entry.invite, *entry.txn, entry.cdr, qi)) {
    ++q.stats.voicemail;
    if (q.tm.voicemail != nullptr) q.tm.voicemail->add();
  } else {
    ++q.stats.timed_out;
    if (q.tm.timed_out != nullptr) q.tm.timed_out->add();
    hooks_.reject(entry.invite, *entry.txn, entry.cdr, sip::status::kServiceUnavailable,
                  Disposition::kCongestion);
  }
  q.waiting.mark_dead(entry);  // may compact and free the entry — last use
  update_gauges(q);
}

void AcdSubsystem::try_dispatch(std::size_t qi) {
  Queue& q = *queues_[qi];
  const AcdQueueConfig& cfg = config_.queues[qi];
  while (q.waiting.live_count() > 0) {
    AcdAgentPool::Agent* agent = q.agents.pick(cfg.strategy, q.stats.agents_rung);
    if (agent == nullptr) break;
    auto entry = q.waiting.pop_front_live();
    if (entry == nullptr) break;
    const ServeOutcome out = hooks_.serve(entry->invite, *entry->txn, entry->cdr, qi, agent->id);
    if (out == ServeOutcome::kNoChannel) {
      // No PBX channel free. The caller keeps their place at the head of the
      // line with timers intact; on_channel_available() retries. (The old
      // serve_queue() dropped the caller on the floor here.)
      ++q.stats.serve_retries;
      q.waiting.push_front(std::move(entry));
      break;
    }
    cancel_timers(*entry);
    const double waited = (sim_.now() - entry->enqueued_at).to_seconds();
    if (out == ServeOutcome::kBridged) {
      ++q.stats.served;
      if (q.tm.served != nullptr) q.tm.served->add();
      record_wait(q, waited, /*served=*/true);
      q.agents.begin_call(*agent, sim_.now());
    } else {
      ++q.stats.serve_failures;
      record_wait(q, waited, /*served=*/false);
    }
  }
  update_gauges(q);
}

void AcdSubsystem::on_agent_released(std::size_t qi, std::uint32_t agent_id) {
  Queue& q = *queues_.at(qi);
  AcdAgentPool::Agent* agent = q.agents.end_call(agent_id);
  if (agent == nullptr) return;  // already reset by a crash
  q.stats.busy_agent_s += (sim_.now() - agent->busy_since).to_seconds();
  if (agent->wrapup > Duration::zero()) {
    agent->in_wrapup = true;
    const sim::CategoryScope scope{sim_, sim::Category::kAcd};
    const std::uint32_t id = agent->id;
    agent->wrapup_event = sim_.schedule_in(agent->wrapup, [this, qi, id] {
      Queue& queue = *queues_[qi];
      AcdAgentPool::Agent* a = queue.agents.by_id(id);
      if (a == nullptr || !a->in_wrapup) return;
      a->in_wrapup = false;
      a->wrapup_event = 0;
      try_dispatch(qi);
    });
  } else {
    try_dispatch(qi);
  }
  update_gauges(q);
}

void AcdSubsystem::on_channel_available() {
  for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
    try_dispatch(qi);
  }
}

void AcdSubsystem::crash(const std::function<void(std::size_t cdr)>& close_cdr) {
  for (auto& qp : queues_) {
    Queue& q = *qp;
    q.waiting.drain([&](AcdWaitQueue::Entry& entry) {
      cancel_timers(entry);
      close_cdr(entry.cdr);
    });
    for (AcdAgentPool::Agent& agent : q.agents.agents()) {
      if (agent.wrapup_event != 0) {
        sim_.cancel(agent.wrapup_event);
        agent.wrapup_event = 0;
      }
      if (agent.busy) q.stats.busy_agent_s += (sim_.now() - agent.busy_since).to_seconds();
    }
    q.agents.reset();
    update_gauges(q);
  }
}

void AcdSubsystem::set_telemetry(telemetry::Telemetry* telemetry) {
  for (auto& qp : queues_) qp->tm = QueueTelemetry{};
  if (telemetry == nullptr || !telemetry->enabled() || !enabled()) return;
  auto& reg = telemetry->registry();
  for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
    Queue& q = *queues_[qi];
    const std::string& name = config_.queues[qi].name;
    const auto event_labels = [&](std::string_view event) {
      return telemetry::LabelSet{{"queue", name}, {"event", std::string{event}}};
    };
    constexpr std::string_view kCalls = "pbxcap_acd_calls_total";
    constexpr std::string_view kCallsHelp = "ACD per-queue call events";
    q.tm.offered = &reg.counter(kCalls, event_labels("offered"), kCallsHelp);
    q.tm.queued = &reg.counter(kCalls, event_labels("queued"), kCallsHelp);
    q.tm.served = &reg.counter(kCalls, event_labels("served"), kCallsHelp);
    q.tm.abandoned = &reg.counter(kCalls, event_labels("abandoned"), kCallsHelp);
    q.tm.timed_out = &reg.counter(kCalls, event_labels("timeout"), kCallsHelp);
    q.tm.voicemail = &reg.counter(kCalls, event_labels("voicemail"), kCallsHelp);
    q.tm.blocked_full = &reg.counter(kCalls, event_labels("blocked_full"), kCallsHelp);
    q.tm.announcements = &reg.counter("pbxcap_acd_announcements_total", {{"queue", name}},
                                      "SIP 182 position updates sent");
    q.tm.depth = &reg.gauge("pbxcap_acd_queue_depth", {{"queue", name}},
                            "Callers currently waiting in the queue");
    q.tm.busy = &reg.gauge("pbxcap_acd_agents_busy", {{"queue", name}},
                           "Agents currently on a bridged call");
    q.tm.wait = &reg.histogram("pbxcap_acd_wait_seconds",
                               telemetry::log_linear_buckets(0.1, 1000.0, 5), {{"queue", name}},
                               "Queue waiting time in seconds");
  }
}

std::size_t AcdSubsystem::total_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& qp : queues_) depth += qp->waiting.live_count();
  return depth;
}

double AcdSubsystem::busy_agent_seconds(std::size_t qi, TimePoint now) const {
  const Queue& q = *queues_.at(qi);
  double seconds = q.stats.busy_agent_s;
  for (const AcdAgentPool::Agent& agent : q.agents.agents()) {
    if (agent.busy) seconds += (now - agent.busy_since).to_seconds();
  }
  return seconds;
}

void AcdSubsystem::cancel_timers(AcdWaitQueue::Entry& entry) {
  if (entry.patience_event != 0) {
    sim_.cancel(entry.patience_event);
    entry.patience_event = 0;
  }
  if (entry.max_wait_event != 0) {
    sim_.cancel(entry.max_wait_event);
    entry.max_wait_event = 0;
  }
  if (entry.announce_event != 0) {
    sim_.cancel(entry.announce_event);
    entry.announce_event = 0;
  }
}

void AcdSubsystem::record_wait(Queue& q, double seconds, bool served) {
  q.stats.wait_s.add(seconds);
  if (served) q.stats.wait_served_s.add(seconds);
  if (q.tm.wait != nullptr) q.tm.wait->observe(seconds);
}

void AcdSubsystem::update_gauges(Queue& q) {
  if (q.tm.depth != nullptr) q.tm.depth->set(static_cast<double>(q.waiting.live_count()));
  if (q.tm.busy != nullptr) q.tm.busy->set(static_cast<double>(q.agents.busy_count()));
}

}  // namespace pbxcap::pbx
