// Call Detail Records — Asterisk's per-call accounting, reproduced.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::pbx {

enum class Disposition : std::uint8_t {
  kAnswered,    // call connected and completed normally
  kCongestion,  // rejected: no free channel (the blocked-call outcome)
  kRejected,    // rejected by policy/auth (403/404)
  kFailed,      // downstream error or timeout after admission
  kNoAnswer,    // callee never picked up
  kInProgress,  // record still open (teardown not yet seen)
};

[[nodiscard]] constexpr std::string_view to_string(Disposition d) noexcept {
  switch (d) {
    case Disposition::kAnswered: return "ANSWERED";
    case Disposition::kCongestion: return "CONGESTION";
    case Disposition::kRejected: return "REJECTED";
    case Disposition::kFailed: return "FAILED";
    case Disposition::kNoAnswer: return "NO ANSWER";
    case Disposition::kInProgress: return "IN PROGRESS";
  }
  return "?";
}

struct CallDetailRecord {
  std::string call_id;
  std::string caller;
  std::string callee;
  TimePoint invite_at{};
  TimePoint answer_at{};
  TimePoint end_at{};
  Disposition disposition{Disposition::kInProgress};

  [[nodiscard]] Duration talk_time() const noexcept {
    return disposition == Disposition::kAnswered ? end_at - answer_at : Duration::zero();
  }
};

class CdrLog {
 public:
  /// Opens a record; returns its index for later closing.
  std::size_t open(std::string call_id, std::string caller, std::string callee, TimePoint at);

  void mark_answered(std::size_t idx, TimePoint at);
  void close(std::size_t idx, Disposition d, TimePoint at);

  [[nodiscard]] const std::vector<CallDetailRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t count(Disposition d) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<CallDetailRecord> records_;
};

}  // namespace pbxcap::pbx
