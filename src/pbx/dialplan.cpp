#include "pbx/dialplan.hpp"

namespace pbxcap::pbx {

std::optional<std::string> Dialplan::route(std::string_view user) const {
  const DialplanEntry* best = nullptr;
  for (const auto& entry : entries_) {
    if (user.substr(0, entry.user_prefix.size()) == entry.user_prefix) {
      if (best == nullptr || entry.user_prefix.size() > best->user_prefix.size()) {
        best = &entry;
      }
    }
  }
  if (best != nullptr) return best->target_host;
  return default_route_;
}

}  // namespace pbxcap::pbx
