#include "pbx/asterisk_pbx.hpp"

#include <algorithm>

#include "sim/profile.hpp"

#include "rtp/codec.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::pbx {

using sip::Message;
using sip::Method;
using sip::Sdp;

AsteriskPbx::AsteriskPbx(PbxConfig config, sim::Simulator& simulator,
                         sip::HostResolver& resolver)
    : sip::SipEndpoint{"asterisk", config.host, simulator, resolver},
      config_{std::move(config)},
      channels_{config_.max_channels},
      cpu_{config_.cpu},
      cac_{config_.cac},
      media_ports_{config_.rtp_port_min, config_.rtp_port_max},
      acd_{config_.acd, simulator} {
  transactions().on_request = [this](const Message& req, sip::ServerTransaction& txn) {
    handle_request(req, txn);
  };
  transactions().on_ack = [](const Message&) { /* leg A established; nothing to do */ };

  acd_.set_hooks(AcdSubsystem::Hooks{
      .serve = [this](const Message& req, sip::ServerTransaction& txn, std::size_t cdr,
                      std::size_t qi, std::uint32_t agent) {
        return acd_serve(req, txn, cdr, qi, agent);
      },
      .reject = [this](const Message& req, sip::ServerTransaction& txn, std::size_t cdr,
                       int status, Disposition disposition) {
        cdrs_.close(cdr, disposition, network()->simulator().now());
        reject(req, txn, status);
      },
      .voicemail = [this](const Message& req, sip::ServerTransaction& txn, std::size_t cdr,
                          std::size_t qi) { return start_voicemail(req, txn, cdr, qi); },
      .announce = [this](const Message& req, sip::ServerTransaction& txn,
                         std::size_t position) {
        // 182 Queued with the caller's position; keeps the INVITE transaction
        // in Proceeding (no Timer B pressure) for as long as they wait.
        Message update = Message::response_to(req, 182);
        update.to().tag = new_tag();
        update.add_header("X-Queue-Position", std::to_string(position));
        txn.respond(update);
      },
  });
}

void AsteriskPbx::set_telemetry(telemetry::Telemetry* tel) {
  sip::SipEndpoint::set_telemetry(tel);
  tm_invites_ = tm_blocked_policy_ = tm_blocked_cac_ = tm_blocked_channels_ =
      tm_blocked_queue_full_ = tm_answered_ = tm_failed_ = tm_queued_ = tm_queue_served_ =
          tm_queue_timeouts_ = tm_rtp_relayed_ = tm_rtp_transcoded_ = tm_rtp_dropped_ =
              tm_overload_503_ = tm_sip_queue_dropped_ = nullptr;
  tm_active_channels_ = nullptr;
  tracer_ = nullptr;
  acd_.set_telemetry(tel);  // nulls its own handles on a disabled registry
  if (tel == nullptr || !tel->enabled()) return;
  auto& reg = tel->registry();
  tm_invites_ = &reg.counter("pbxcap_pbx_invites_total", {},
                             "INVITEs reaching the PBX admission path");
  tm_blocked_policy_ =
      &reg.counter("pbxcap_pbx_calls_blocked_total", {{"reason", "policy"}},
                   "Calls rejected by admission control, by reason");
  tm_blocked_cac_ = &reg.counter("pbxcap_pbx_calls_blocked_total", {{"reason", "cac"}});
  tm_blocked_channels_ = &reg.counter("pbxcap_pbx_calls_blocked_total", {{"reason", "channels"}});
  tm_blocked_queue_full_ =
      &reg.counter("pbxcap_pbx_calls_blocked_total", {{"reason", "queue_full"}});
  tm_answered_ = &reg.counter("pbxcap_pbx_calls_answered_total", {},
                              "Bridged calls that reached 200 OK on leg A");
  tm_failed_ = &reg.counter("pbxcap_pbx_calls_failed_total", {},
                            "Bridges folded on a leg B error or timeout");
  tm_queued_ = &reg.counter("pbxcap_pbx_queue_events_total", {{"event", "enqueued"}},
                            "Queue-when-busy admission events");
  tm_queue_served_ = &reg.counter("pbxcap_pbx_queue_events_total", {{"event", "served"}});
  tm_queue_timeouts_ = &reg.counter("pbxcap_pbx_queue_events_total", {{"event", "timeout"}});
  tm_rtp_relayed_ = &reg.counter("pbxcap_pbx_rtp_relayed_total", {},
                                 "RTP/RTCP packets relayed between call legs");
  tm_rtp_transcoded_ = &reg.counter("pbxcap_pbx_rtp_transcoded_total", {},
                                    "Relayed media frames that paid transcode work");
  tm_rtp_dropped_ = &reg.counter("pbxcap_pbx_rtp_dropped_total", {},
                                 "RTP/RTCP packets dropped for lack of a session");
  tm_overload_503_ = &reg.counter("pbxcap_pbx_overload_rejections_total", {},
                                  "INVITEs shed by the 503+Retry-After overload gate");
  tm_sip_queue_dropped_ = &reg.counter("pbxcap_pbx_sip_queue_dropped_total", {},
                                       "SIP messages dropped on service-queue overflow");
  tm_active_channels_ =
      &reg.gauge("pbxcap_pbx_active_channels", {}, "Channels currently held by bridges");
  tracer_ = tel->tracer();
  if (tracer_ != nullptr) {
    span_setup_name_ = tracer_->name_id("call.setup");
    span_media_name_ = tracer_->name_id("call.media");
    span_teardown_name_ = tracer_->name_id("call.teardown");
  }
}

void AsteriskPbx::send_sip(const Message& msg, net::NodeId dst) {
  cpu_.on_sip_message(network() != nullptr ? network()->simulator().now() : TimePoint{});
  sip::SipEndpoint::send_sip(msg, dst);
}

void AsteriskPbx::on_receive(const net::Packet& pkt) {
  const TimePoint now = network()->simulator().now();
  if (now < dead_until_) {
    // Crashed: the host is off the network until restart.
    dropped_dead_ += pkt.batch;
    return;
  }
  if (now < stall_until_) {
    if (pkt.kind == net::PacketKind::kSip) {
      // The socket buffer holds signalling across the stall; it is all
      // processed in arrival order the instant the process unwedges.
      auto deferred = [this, pkt] { on_receive(pkt); };
      static_assert(sim::Callback::stores_inline<decltype(deferred)>(),
                    "stall deferral closure must stay on the allocation-free SBO path");
      const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kPbx};
      network()->simulator().schedule_at(stall_until_, std::move(deferred));
    } else {
      rtp_dropped_stall_ += pkt.batch;  // the relay thread is wedged; media overruns
    }
    return;
  }
  if (pkt.kind == net::PacketKind::kRtp || pkt.kind == net::PacketKind::kRtcp) {
    relay_rtp(pkt);
    return;
  }
  if (pkt.kind == net::PacketKind::kSip) {
    cpu_.on_sip_message(now);
    if (config_.sip_service.enabled) {
      enqueue_sip(pkt);
      return;
    }
  }
  sip::SipEndpoint::on_receive(pkt);
}

void AsteriskPbx::enqueue_sip(const net::Packet& pkt) {
  auto& sim = network()->simulator();
  const TimePoint now = sim.now();

  // Overload gate ahead of the queue: shedding a new INVITE with a stateless
  // 503 costs almost nothing, unlike a full rejection that would first wait
  // in line and then run the expensive error path.
  if (const auto* payload = pkt.payload_as<sip::SipPayload>();
      payload != nullptr && payload->msg.is_request() && payload->msg.top_via() != nullptr) {
    if (payload->msg.method() == Method::kAck &&
        shed_invite_branches_.erase(payload->msg.top_via()->branch) > 0) {
      // ACK for a gate 503 (non-2xx ACK reuses the INVITE branch). Absorbed
      // at the front door: queueing it would hand every shed call a service
      // slot after all, and the ACK flood would re-congest the queue the
      // gate exists to protect.
      return;
    }
    if (overload_gate_rejects(payload->msg, now)) {
      ++overload_rejections_;
      if (tm_overload_503_ != nullptr) tm_overload_503_->add();
      shed_invite_branches_.insert(payload->msg.top_via()->branch);
      Message resp = Message::response_to(payload->msg, sip::status::kServiceUnavailable);
      resp.to().tag = new_tag();
      resp.add_header("Retry-After",
                      util::format("%lld", static_cast<long long>(
                                               config_.overload.retry_after.to_seconds() + 0.5)));
      send_sip(resp, pkt.src);
      return;
    }
  }

  if (sip_backlog_ >= config_.sip_service.queue_limit) {
    ++sip_queue_dropped_;
    if (tm_sip_queue_dropped_ != nullptr) tm_sip_queue_dropped_->add();
    return;
  }
  sip_busy_until_ = std::max(now, sip_busy_until_) + config_.sip_service.service_time;
  ++sip_backlog_;
  if (const auto* payload = pkt.payload_as<sip::SipPayload>();
      payload != nullptr && payload->msg.is_request() &&
      payload->msg.method() == Method::kInvite && payload->msg.top_via() != nullptr) {
    queued_invite_branches_.insert(payload->msg.top_via()->branch);
  }
  auto service = [this, pkt, epoch = boot_epoch_] {
    if (epoch != boot_epoch_) return;  // message died with the crashed process
    --sip_backlog_;
    if (const auto* payload = pkt.payload_as<sip::SipPayload>();
        payload != nullptr && payload->msg.is_request() &&
        payload->msg.method() == Method::kInvite && payload->msg.top_via() != nullptr) {
      queued_invite_branches_.erase(payload->msg.top_via()->branch);
    }
    if (network()->simulator().now() < dead_until_) {
      ++dropped_dead_;
      return;
    }
    sip::SipEndpoint::on_receive(pkt);
  };
  static_assert(sim::Callback::stores_inline<decltype(service)>(),
                "SIP service closure must stay on the allocation-free SBO path");
  const sim::CategoryScope cat_scope{sim, sim::Category::kPbx};
  sim.schedule_at(sip_busy_until_, std::move(service));
}

bool AsteriskPbx::overload_gate_rejects(const Message& msg, TimePoint now) const {
  const OverloadControlConfig& oc = config_.overload;
  if (!oc.enabled || !msg.is_request() || msg.method() != Method::kInvite) return false;
  // A retransmission of an in-progress INVITE is absorbed by its server
  // transaction — 503ing it out of band would kill a call already being
  // set up. Same for an INVITE still waiting in the service queue: the 503
  // would race the queued original (caller gives up, PBX admits anyway).
  if (transactions().matches_server_transaction(msg)) return false;
  if (msg.top_via() != nullptr &&
      queued_invite_branches_.find(msg.top_via()->branch) != queued_invite_branches_.end()) {
    return false;
  }
  if (sip_backlog_ > oc.queue_threshold) return true;
  if (oc.shed_when_channels_full && channels_.available() == 0) return true;
  return oc.cpu_threshold < 1.0 && cpu_.utilization_at(now) >= oc.cpu_threshold;
}

void AsteriskPbx::stall_for(Duration stall) {
  const TimePoint now = network()->simulator().now();
  ++stalls_;
  stall_until_ = std::max(stall_until_, now + stall);
}

void AsteriskPbx::crash_restart(Duration dead_for) {
  const TimePoint now = network()->simulator().now();
  ++crashes_;
  dead_until_ = std::max(dead_until_, now + dead_for);
  ++boot_epoch_;       // orphans every queued service event
  sip_backlog_ = 0;    // the in-memory message queue dies with the process
  sip_busy_until_ = TimePoint{};
  queued_invite_branches_.clear();
  shed_invite_branches_.clear();

  // Channel-state loss: every waiting and bridged call is simply gone.
  // No SIP goes out — a dead process cannot send BYEs or finals; the far
  // ends discover via their own timers. The ACD is reset first so the
  // bridge-close notifications below find idle agents and empty queues.
  acd_.crash([this, now](std::size_t cdr) { cdrs_.close(cdr, Disposition::kFailed, now); });
  queue_.drain([this, now](AcdWaitQueue::Entry& entry) {
    if (entry.max_wait_event != 0) network()->simulator().cancel(entry.max_wait_event);
    cdrs_.close(entry.cdr, Disposition::kFailed, now);
  });
  for (std::size_t idx = 0; idx < bridges_.size(); ++idx) {
    if (bridges_[idx]->state == Bridge::State::kClosed) continue;
    bridges_[idx]->invite_txn_a = nullptr;  // transaction state is lost too
    close_bridge(idx, Disposition::kFailed);
  }
  transactions().reset();
}

// ------------------------------------------------------------- signalling ----

void AsteriskPbx::handle_request(const Message& req, sip::ServerTransaction& txn) {
  switch (req.method()) {
    case Method::kInvite:
      handle_invite(req, txn);
      return;
    case Method::kBye:
      handle_bye(req, txn);
      return;
    case Method::kRegister:
      handle_register(req, txn);
      return;
    case Method::kOptions: {
      Message ok = Message::response_to(req, sip::status::kOk);
      txn.respond(ok);
      return;
    }
    default:
      reject(req, txn, 501);
      return;
  }
}

void AsteriskPbx::reject(const Message& req, sip::ServerTransaction& txn, int code,
                         Duration retry_after) {
  const TimePoint now = network()->simulator().now();
  cpu_.on_error_event(now);
  // Under the queued-service model a full rejection occupies the worker for
  // the error-path surcharge — the cost asymmetry that makes the cheap
  // overload gate worthwhile (every message behind this one waits longer).
  if (config_.sip_service.enabled && config_.sip_service.reject_penalty > Duration::zero()) {
    sip_busy_until_ = std::max(now, sip_busy_until_) + config_.sip_service.reject_penalty;
  }
  Message resp = Message::response_to(req, code);
  resp.to().tag = new_tag();
  if (retry_after > Duration::zero()) {
    resp.add_header("Retry-After", util::format("%lld", static_cast<long long>(
                                                            retry_after.to_seconds() + 0.5)));
  }
  txn.respond(resp);
}

void AsteriskPbx::handle_invite(const Message& req, sip::ServerTransaction& txn) {
  if (tm_invites_ != nullptr) tm_invites_->add();
  if (!config_.require_auth) {
    admit_invite(req, txn);
    return;
  }
  const auto proceed = [this, req, &txn] {
    const auto user = directory_.lookup(req.from().uri.user());
    if (!user || !user->allowed) {
      const std::size_t cdr = cdrs_.open(req.call_id(), req.from().uri.user(),
                                         req.request_uri().user(),
                                         network()->simulator().now());
      cdrs_.close(cdr, Disposition::kRejected, network()->simulator().now());
      reject(req, txn, 403);
      return;
    }
    admit_invite(req, txn);
  };
  if (config_.auth_lookup_latency && directory_.lookup_latency() > Duration::zero()) {
    const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kPbx};
    network()->simulator().schedule_in(directory_.lookup_latency(), proceed);
  } else {
    proceed();
  }
}

void AsteriskPbx::handle_register(const Message& req, sip::ServerTransaction& txn) {
  const std::string& user = req.from().uri.user();
  if (config_.require_auth) {
    const auto entry = directory_.lookup(user);
    if (!entry || !entry->allowed) {
      reject(req, txn, 403);
      return;
    }
  }
  std::int64_t expires = Registrar::kDefaultExpiresSeconds;
  if (const std::string* header = req.header("Expires")) {
    std::uint64_t value = 0;
    if (util::parse_u64(*header, value)) expires = static_cast<std::int64_t>(value);
  }
  if (!req.contact()) {
    reject(req, txn, sip::status::kBadRequest);
    return;
  }
  registrar_.bind(user, *req.contact(), expires, network()->simulator().now());
  Message ok = Message::response_to(req, sip::status::kOk);
  ok.add_header("Expires", std::to_string(expires));
  txn.respond(ok);
}

void AsteriskPbx::admit_invite(const Message& req, sip::ServerTransaction& txn) {
  const TimePoint now = network()->simulator().now();
  const std::string& caller_user = req.from().uri.user();
  const std::size_t cdr =
      cdrs_.open(req.call_id(), caller_user, req.request_uri().user(), now);

  // Per-user call policy: a Directory entry may cap concurrent calls.
  if (const auto user = directory_.lookup(caller_user);
      user && user->max_concurrent_calls > 0) {
    const auto it = active_calls_by_user_.find(caller_user);
    if (it != active_calls_by_user_.end() && it->second >= user->max_concurrent_calls) {
      ++policy_rejections_;
      if (tm_blocked_policy_ != nullptr) tm_blocked_policy_->add();
      cdrs_.close(cdr, Disposition::kRejected, now);
      reject(req, txn, sip::status::kBusyHere);
      return;
    }
  }

  // ACD traffic class: "queue-<name>" destinations are admitted by the named
  // queue's agent pool (and the channel pool at serve time), not by the plain
  // blocked-calls-cleared path below.
  if (acd_.enabled()) {
    if (const auto qi = acd_.queue_for_user(req.request_uri().user())) {
      acd_.offer(*qi, req, txn, cdr);
      return;
    }
  }

  // Predictive CAC (reference [8]): reject while the measured offered load
  // predicts blocking above target, before the pool is exhausted.
  if (config_.admission == AdmissionPolicy::kErlangPredictive &&
      !cac_.admit(now, channels_.capacity())) {
    if (tm_blocked_cac_ != nullptr) tm_blocked_cac_->add();
    cdrs_.close(cdr, Disposition::kCongestion, now);
    reject(req, txn, sip::status::kServiceUnavailable, blocked_retry_after());
    return;
  }

  // Admission control: one channel per bridged call.
  if (!channels_.try_acquire()) {
    if (config_.admission == AdmissionPolicy::kQueueWhenBusy) {
      enqueue_call(req, txn, cdr);
      return;
    }
    if (tm_blocked_channels_ != nullptr) tm_blocked_channels_->add();
    cdrs_.close(cdr, Disposition::kCongestion, now);
    reject(req, txn, sip::status::kServiceUnavailable, blocked_retry_after());
    return;
  }

  start_bridge(req, txn, cdr);
}

void AsteriskPbx::start_bridge(const Message& req, sip::ServerTransaction& txn,
                               std::size_t cdr) {
  const TimePoint now = network()->simulator().now();
  const std::string& caller_user = req.from().uri.user();

  // Location service first (registered contacts), then the static dialplan —
  // the order Asterisk resolves SIP peers.
  std::optional<std::string> route;
  if (const auto binding = registrar_.lookup(req.request_uri().user(), now)) {
    route = binding->host();
  } else {
    route = dialplan_.route(req.request_uri().user());
  }
  if (!route) {
    channels_.release();
    cdrs_.close(cdr, Disposition::kRejected, now);
    reject(req, txn, sip::status::kNotFound);
    return;
  }

  const auto offer = Sdp::parse(req.body());
  if (!offer || offer->audio.payload_types.empty()) {
    channels_.release();
    cdrs_.close(cdr, Disposition::kRejected, now);
    reject(req, txn, sip::status::kBadRequest);
    return;
  }

  // Codec filtering, as Asterisk applies its allow/disallow lists.
  Sdp filtered = *offer;
  std::erase_if(filtered.audio.payload_types, [this](std::uint8_t pt) {
    return std::find(config_.allowed_payload_types.begin(), config_.allowed_payload_types.end(),
                     pt) == config_.allowed_payload_types.end();
  });
  if (filtered.audio.payload_types.empty()) {
    channels_.release();
    cdrs_.close(cdr, Disposition::kRejected, now);
    reject(req, txn, 488);  // Not Acceptable Here
    return;
  }

  // One anchor port per leg, held for the bridge's lifetime. Exhaustion is a
  // hard, explicit rejection — the old wrapping counter silently reissued
  // live ports once ~5,000 calls were bridged concurrently.
  const std::uint16_t port_a = media_ports_.allocate();
  const std::uint16_t port_b = media_ports_.allocate();
  if (port_a == 0 || port_b == 0) {
    if (port_a != 0) media_ports_.release(port_a);
    if (port_b != 0) media_ports_.release(port_b);
    channels_.release();
    cdrs_.close(cdr, Disposition::kCongestion, now);
    reject(req, txn, sip::status::kServiceUnavailable, blocked_retry_after());
    return;
  }

  auto bridge = std::make_unique<Bridge>();
  bridge->port_a = port_a;
  bridge->port_b = port_b;
  bridge->call_id_a = req.call_id();
  bridge->caller_user = caller_user;
  ++active_calls_by_user_[caller_user];
  bridge->caller_host = req.from().uri.host();
  bridge->invite_a = req;
  bridge->invite_txn_a = &txn;
  bridge->to_tag_a = new_tag();
  bridge->ssrc_a = offer->audio.ssrc;
  bridge->pt_offer_a = filtered.audio.payload_types.front();
  bridge->caller_node = resolver().resolve(bridge->caller_host);
  bridge->callee_host = *route;
  bridge->cdr = cdr;
  bridge->channel_held = true;

  // 100 Trying toward the caller (the Fig. 2 ladder's first response).
  Message trying = Message::response_to(req, sip::status::kTrying);
  txn.respond(trying);

  // Re-originate leg B with anchored media.
  bridge->call_id_b = util::format("b2b-%llu@%s", static_cast<unsigned long long>(++b2b_counter_),
                                   sip_host().c_str());
  Message invite_b = Message::request(Method::kInvite, sip::Uri{req.request_uri().user(), *route});
  invite_b.from() = sip::NameAddr{sip::Uri{req.from().uri.user(), sip_host()}, new_tag()};
  invite_b.to() = sip::NameAddr{sip::Uri{req.request_uri().user(), *route}, ""};
  invite_b.set_call_id(bridge->call_id_b);
  invite_b.set_cseq({1, Method::kInvite});
  invite_b.set_contact(sip::Uri{"asterisk", sip_host()});
  invite_b.set_body(anchored_sdp(filtered, bridge->port_b).to_string(), "application/sdp");
  bridge->invite_b = invite_b;

  bridges_.push_back(std::move(bridge));
  const std::size_t idx = bridges_.size() - 1;
  ++active_bridges_;
  by_call_id_a_.emplace(bridges_[idx]->call_id_a, idx);
  by_call_id_b_.emplace(bridges_[idx]->call_id_b, idx);
  if (tm_active_channels_ != nullptr) {
    tm_active_channels_->set(static_cast<double>(channels_.in_use()));
  }
  if (tracer_ != nullptr) {
    Bridge& b = *bridges_[idx];
    b.span_track = tracer_->track_id(b.call_id_a);
    b.setup_span = tracer_->begin(span_setup_name_, b.span_track, now);
  }

  send_request_to(
      std::move(invite_b), *route,
      [this, idx](const Message& resp) { on_leg_b_response(idx, resp); },
      [this, idx] { on_leg_b_timeout(idx); });
}

void AsteriskPbx::enqueue_call(const Message& req, sip::ServerTransaction& txn,
                               std::size_t cdr) {
  const TimePoint now = network()->simulator().now();
  if (queue_.live_count() >= config_.max_queue_length) {
    if (tm_blocked_queue_full_ != nullptr) tm_blocked_queue_full_->add();
    cdrs_.close(cdr, Disposition::kCongestion, now);
    reject(req, txn, sip::status::kServiceUnavailable, blocked_retry_after());
    return;
  }

  ++queued_total_;
  if (tm_queued_ != nullptr) tm_queued_->add();
  auto queued = std::make_unique<AcdWaitQueue::Entry>();
  queued->invite = req;
  queued->txn = &txn;
  queued->cdr = cdr;
  queued->enqueued_at = now;
  AcdWaitQueue::Entry& entry = queue_.push_back(std::move(queued));

  // 182 Queued keeps the caller's INVITE transaction in Proceeding while it
  // waits (no Timer B pressure per RFC 3261 §17.1.1.2).
  Message queued_resp = Message::response_to(req, 182);
  queued_resp.to().tag = new_tag();
  txn.respond(queued_resp);

  AcdWaitQueue::Entry* raw = &entry;
  const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kPbx};
  raw->max_wait_event =
      network()->simulator().schedule_in(config_.queue_timeout, [this, raw] {
        raw->max_wait_event = 0;
        ++queue_timeouts_;
        if (tm_queue_timeouts_ != nullptr) tm_queue_timeouts_->add();
        queue_wait_s_.add(config_.queue_timeout.to_seconds());
        cdrs_.close(raw->cdr, Disposition::kCongestion, network()->simulator().now());
        reject(raw->invite, *raw->txn, sip::status::kServiceUnavailable);
        queue_.mark_dead(*raw);  // may compact and free the entry — last use
      });
}

void AsteriskPbx::serve_queue() {
  while (queue_.live_count() > 0 && channels_.available() > 0) {
    auto queued = queue_.pop_front_live();
    if (queued == nullptr) return;
    if (!channels_.try_acquire()) {
      // The channel raced away between the availability check and the
      // acquire. The caller keeps their place — and their renege timer — at
      // the head of the line instead of being silently dropped with a
      // cancelled timeout (the old behaviour lost the call entirely).
      queue_.push_front(std::move(queued));
      return;
    }
    network()->simulator().cancel(queued->max_wait_event);
    queued->max_wait_event = 0;
    ++queue_served_;
    if (tm_queue_served_ != nullptr) tm_queue_served_->add();
    queue_wait_s_.add((network()->simulator().now() - queued->enqueued_at).to_seconds());
    start_bridge(queued->invite, *queued->txn, queued->cdr);
  }
}

std::size_t AsteriskPbx::queue_depth() const noexcept { return queue_.live_count(); }

AcdSubsystem::ServeOutcome AsteriskPbx::acd_serve(const Message& req,
                                                  sip::ServerTransaction& txn, std::size_t cdr,
                                                  std::size_t queue_index,
                                                  std::uint32_t agent_id) {
  if (!channels_.try_acquire()) return AcdSubsystem::ServeOutcome::kNoChannel;
  start_bridge(req, txn, cdr);
  // start_bridge's failure paths (no route, bad SDP, port exhaustion) reject
  // and release the channel without creating a bridge — detect that by
  // whether this call's bridge exists.
  const auto it = by_call_id_a_.find(req.call_id());
  if (it == by_call_id_a_.end() || bridges_[it->second]->cdr != cdr ||
      bridges_[it->second]->state == Bridge::State::kClosed) {
    return AcdSubsystem::ServeOutcome::kFailed;
  }
  Bridge& bridge = *bridges_[it->second];
  bridge.acd_tracked = true;
  bridge.acd_queue = queue_index;
  bridge.acd_agent = agent_id;
  return AcdSubsystem::ServeOutcome::kBridged;
}

bool AsteriskPbx::start_voicemail(const Message& req, sip::ServerTransaction& txn,
                                  std::size_t cdr, std::size_t /*queue_index*/) {
  const TimePoint now = network()->simulator().now();
  const auto offer = Sdp::parse(req.body());
  if (!offer) return false;
  if (!channels_.try_acquire()) return false;
  const std::uint16_t port = media_ports_.allocate();
  if (port == 0) {
    channels_.release();
    return false;
  }

  auto bridge = std::make_unique<Bridge>();
  bridge->call_id_a = req.call_id();
  bridge->caller_user = req.from().uri.user();
  ++active_calls_by_user_[bridge->caller_user];
  bridge->caller_host = req.from().uri.host();
  bridge->invite_a = req;
  bridge->to_tag_a = new_tag();
  bridge->ssrc_a = offer->audio.ssrc;
  bridge->caller_node = resolver().resolve(bridge->caller_host);
  bridge->cdr = cdr;
  bridge->channel_held = true;
  bridge->voicemail = true;
  bridge->port_a = port;
  bridge->state = Bridge::State::kAnswered;

  // Answer straight into the "recording": one-way media, no leg B. The
  // answer advertises no SSRC — nothing will ever flow back to the caller.
  Message ok = Message::response_to(req, sip::status::kOk);
  ok.to().tag = bridge->to_tag_a;
  ok.set_contact(sip::Uri{"asterisk", sip_host()});
  Sdp answer = anchored_sdp(*offer, port);
  answer.audio.ssrc = 0;
  ok.set_body(answer.to_string(), "application/sdp");
  txn.respond(ok);
  bridge->dialog_a = sip::Dialog::from_uas(req, ok);

  bridges_.push_back(std::move(bridge));
  const std::size_t idx = bridges_.size() - 1;
  ++active_bridges_;
  by_call_id_a_.emplace(bridges_[idx]->call_id_a, idx);
  if (bridges_[idx]->ssrc_a != 0) by_ssrc_[bridges_[idx]->ssrc_a] = idx;
  cdrs_.mark_answered(cdr, now);
  ++voicemail_calls_;
  if (tm_answered_ != nullptr) tm_answered_->add();
  if (tm_active_channels_ != nullptr) {
    tm_active_channels_->set(static_cast<double>(channels_.in_use()));
  }
  return true;
}

sip::Sdp AsteriskPbx::anchored_sdp(const Sdp& original, std::uint16_t port) {
  Sdp anchored = original;
  anchored.connection_host = sip_host();
  anchored.audio.rtp_port = port;
  return anchored;
}

void AsteriskPbx::on_leg_b_response(std::size_t bridge_idx, const Message& resp) {
  Bridge& bridge = *bridges_.at(bridge_idx);
  if (bridge.state == Bridge::State::kClosed) return;
  const int code = resp.status_code();

  if (sip::is_provisional(code)) {
    if (code == sip::status::kRinging && bridge.invite_txn_a != nullptr) {
      Message ringing = Message::response_to(bridge.invite_a, sip::status::kRinging);
      ringing.to().tag = bridge.to_tag_a;
      bridge.invite_txn_a->respond(ringing);
    }
    return;
  }

  if (sip::is_success(code)) {
    // Leg B answered: complete leg A and start relaying.
    bridge.dialog_b = sip::Dialog::from_uac(bridge.invite_b, resp);
    send_stateless_to(bridge.dialog_b.make_ack(), bridge.callee_host);

    const auto answer = Sdp::parse(resp.body());
    if (answer) bridge.ssrc_b = answer->audio.ssrc;
    bridge.callee_node = resolver().resolve(bridge.callee_host);

    Message ok = Message::response_to(bridge.invite_a, sip::status::kOk);
    ok.to().tag = bridge.to_tag_a;
    ok.set_contact(sip::Uri{"asterisk", sip_host()});
    if (answer) {
      Sdp answer_a = *answer;
      // Asterisk's translator path: when the callee answered a codec other
      // than the caller's preferred one, answer leg A with the caller's
      // choice and transcode between the legs. Every relayed media frame on
      // this bridge then pays decode+encode CPU and is re-framed to the
      // out-leg codec's wire size. Single-codec offers always match, so
      // classic scenarios never engage this path.
      if (config_.transcode && !answer->audio.payload_types.empty()) {
        const std::uint8_t pt_b = answer->audio.payload_types.front();
        if (pt_b != bridge.pt_offer_a) {
          const auto codec_a = rtp::codec_by_payload_type(bridge.pt_offer_a);
          const auto codec_b = rtp::codec_by_payload_type(pt_b);
          if (codec_a && codec_b) {
            bridge.transcoded = true;
            bridge.transcode_work = codec_a->transcode_cost + codec_b->transcode_cost;
            bridge.rtp_bytes_to_caller = codec_a->wire_bytes();
            bridge.rtp_bytes_to_callee = codec_b->wire_bytes();
            answer_a.audio.payload_types = {bridge.pt_offer_a};
            ++transcoded_bridges_;
          }
        }
      }
      ok.set_body(anchored_sdp(answer_a, bridge.port_a).to_string(), "application/sdp");
    }
    if (bridge.invite_txn_a != nullptr) {
      bridge.invite_txn_a->respond(ok);
      bridge.invite_txn_a = nullptr;  // 2xx terminates the transaction
    }
    bridge.dialog_a = sip::Dialog::from_uas(bridge.invite_a, ok);

    bridge.state = Bridge::State::kAnswered;
    cdrs_.mark_answered(bridge.cdr, network()->simulator().now());
    if (tm_answered_ != nullptr) tm_answered_->add();
    if (tracer_ != nullptr) {
      const TimePoint now = network()->simulator().now();
      tracer_->end(bridge.setup_span, now);
      bridge.setup_span = 0;
      bridge.media_span = tracer_->begin(span_media_name_, bridge.span_track, now);
    }
    register_media(bridge);
    return;
  }

  // Error final from leg B: mirror it on leg A and fold the bridge.
  cpu_.on_error_event(network()->simulator().now());
  if (tm_failed_ != nullptr) tm_failed_->add();
  if (bridge.invite_txn_a != nullptr) {
    Message err = Message::response_to(bridge.invite_a, code);
    err.to().tag = bridge.to_tag_a;
    bridge.invite_txn_a->respond(err);
    bridge.invite_txn_a = nullptr;
  }
  close_bridge(bridge_idx, Disposition::kFailed);
}

void AsteriskPbx::on_leg_b_timeout(std::size_t bridge_idx) {
  Bridge& bridge = *bridges_.at(bridge_idx);
  if (bridge.state == Bridge::State::kClosed) return;
  cpu_.on_error_event(network()->simulator().now());
  if (tm_failed_ != nullptr) tm_failed_->add();
  if (bridge.invite_txn_a != nullptr) {
    Message err = Message::response_to(bridge.invite_a, 504);
    err.to().tag = bridge.to_tag_a;
    bridge.invite_txn_a->respond(err);
    bridge.invite_txn_a = nullptr;
  }
  close_bridge(bridge_idx, Disposition::kFailed);
}

AsteriskPbx::Bridge* AsteriskPbx::bridge_by_call_id(const std::string& call_id, bool& is_leg_a) {
  if (const auto it = by_call_id_a_.find(call_id); it != by_call_id_a_.end()) {
    is_leg_a = true;
    return bridges_[it->second].get();
  }
  if (const auto it = by_call_id_b_.find(call_id); it != by_call_id_b_.end()) {
    is_leg_a = false;
    return bridges_[it->second].get();
  }
  return nullptr;
}

void AsteriskPbx::handle_bye(const Message& req, sip::ServerTransaction& txn) {
  bool is_leg_a = false;
  Bridge* bridge = bridge_by_call_id(req.call_id(), is_leg_a);
  if (bridge == nullptr || bridge->state == Bridge::State::kClosed) {
    reject(req, txn, 481);  // Call/Transaction Does Not Exist
    return;
  }
  const std::size_t idx = is_leg_a ? by_call_id_a_.at(req.call_id())
                                   : by_call_id_b_.at(req.call_id());
  bridge->state = Bridge::State::kTearingDown;

  // Voicemail legs have no leg B: answer the BYE and fold.
  if (bridge->voicemail) {
    Message vm_ok = Message::response_to(req, sip::status::kOk);
    txn.respond(vm_ok);
    close_bridge(idx, Disposition::kAnswered);
    return;
  }

  // Answer the BYE at once (Asterisk does not hold the teardown of one leg
  // hostage to the other), forward it on the opposite leg, and fold the
  // bridge. The forwarded transaction completes on its own.
  Message ok = Message::response_to(req, sip::status::kOk);
  txn.respond(ok);

  // Teardown span: BYE received until the forwarded BYE's transaction
  // resolves on the other leg. The id is captured by value — the bridge is
  // folded below, long before the response arrives.
  telemetry::SpanTracer::SpanId teardown = 0;
  if (tracer_ != nullptr) {
    const TimePoint now = network()->simulator().now();
    tracer_->end(bridge->media_span, now);
    bridge->media_span = 0;
    teardown = tracer_->begin(span_teardown_name_, bridge->span_track, now);
  }

  sip::Dialog& other = is_leg_a ? bridge->dialog_b : bridge->dialog_a;
  const std::string& other_host = is_leg_a ? bridge->callee_host : bridge->caller_host;
  Message bye = other.make_request(Method::kBye);
  send_request_to(
      bye, other_host,
      [this, teardown](const Message&) {
        if (tracer_ != nullptr) tracer_->end(teardown, network()->simulator().now());
      },
      [this, teardown] {
        cpu_.on_error_event(network()->simulator().now());
        if (tracer_ != nullptr) tracer_->end(teardown, network()->simulator().now());
      });

  close_bridge(idx, Disposition::kAnswered);
}

void AsteriskPbx::register_media(Bridge& bridge) {
  const std::size_t idx = by_call_id_a_.at(bridge.call_id_a);
  if (bridge.ssrc_a != 0) by_ssrc_[bridge.ssrc_a] = idx;
  if (bridge.ssrc_b != 0) by_ssrc_[bridge.ssrc_b] = idx;
}

void AsteriskPbx::relay_rtp(const net::Packet& pkt) {
  const TimePoint now = network()->simulator().now();
  const auto drop = [this, &pkt] {
    rtp_dropped_no_session_ += pkt.batch;
    if (tm_rtp_dropped_ != nullptr) tm_rtp_dropped_->add(pkt.batch);
  };
  // Media and control share the SSRC routing table: RTCP for a stream
  // follows the same path as its RTP (RFC 3550 pairs the two flows).
  std::uint32_t ssrc = 0;
  const rtp::RtpBatchPayload* batch = nullptr;
  bool is_media = false;
  if (pkt.fluid) {
    batch = pkt.payload_as<rtp::RtpBatchPayload>();
    if (batch == nullptr) {
      cpu_.on_rtp_packet(now);
      drop();
      return;
    }
    ssrc = batch->first.ssrc;
    is_media = true;
  } else if (const auto* rtp = pkt.payload_as<rtp::RtpPayload>()) {
    ssrc = rtp->header.ssrc;
    is_media = true;
  } else if (const auto* rtcp = pkt.payload_as<rtp::RtcpPayload>()) {
    ssrc = rtcp->routing_ssrc();
  } else {
    cpu_.on_rtp_packet(now);
    drop();
    return;
  }
  // CPU must be deposited whether or not the packet finds a live bridge
  // (the relay thread reads the header either way), but the transcode
  // surcharge only applies to media frames on a codec-mismatched bridge —
  // so resolve the bridge before metering.
  const auto it = by_ssrc_.find(ssrc);
  Bridge* routed = it != by_ssrc_.end() ? bridges_[it->second].get() : nullptr;
  const Duration extra = (routed != nullptr && routed->transcoded && is_media)
                             ? routed->transcode_work
                             : Duration::zero();
  if (batch != nullptr) {
    // Deposit the relay cost at each packet's nominal arrival instant so
    // per-second CPU buckets match per-packet mode bit for bit.
    cpu_.on_rtp_packets(batch->first_departure + batch->path_latency, batch->spacing,
                        pkt.batch, extra);
  } else {
    cpu_.on_rtp_packet(now, extra);
  }
  if (routed == nullptr) {
    drop();
    return;
  }
  Bridge& bridge = *routed;
  if (bridge.state != Bridge::State::kAnswered &&
      bridge.state != Bridge::State::kTearingDown) {
    drop();
    return;
  }
  if (bridge.voicemail) {
    // Terminating leg: the "recording" absorbs the caller's media at the
    // PBX (CPU cost already accrued above); nothing is relayed back.
    voicemail_rtp_absorbed_ += pkt.batch;
    return;
  }
  const bool from_caller = ssrc == bridge.ssrc_a;
  const net::NodeId dst = from_caller ? bridge.callee_node : bridge.caller_node;
  if (dst == net::kInvalidNode) {
    drop();
    return;
  }
  rtp_relayed_ += pkt.batch;
  if (tm_rtp_relayed_ != nullptr) tm_rtp_relayed_->add(pkt.batch);
  net::Packet out;
  out.dst = dst;
  out.kind = pkt.kind;
  out.fluid = pkt.fluid;
  out.batch = pkt.batch;
  out.size_bytes = pkt.size_bytes;
  if (bridge.transcoded && is_media) {
    // Re-framed into the out-leg codec: the relayed copy leaves at that
    // codec's wire size, not the size it arrived with.
    out.size_bytes = from_caller ? bridge.rtp_bytes_to_callee : bridge.rtp_bytes_to_caller;
    transcoded_rtp_ += pkt.batch;
    if (tm_rtp_transcoded_ != nullptr) tm_rtp_transcoded_->add(pkt.batch);
  }
  out.payload = pkt.payload;
  send(std::move(out));
}

void AsteriskPbx::close_bridge(std::size_t idx, Disposition disposition) {
  Bridge& bridge = *bridges_.at(idx);
  if (bridge.state == Bridge::State::kClosed) return;
  bridge.state = Bridge::State::kClosed;
  if (bridge.channel_held) {
    channels_.release();
    bridge.channel_held = false;
  }
  if (bridge.port_a != 0) {
    media_ports_.release(bridge.port_a);
    bridge.port_a = 0;
  }
  if (bridge.port_b != 0) {
    media_ports_.release(bridge.port_b);
    bridge.port_b = 0;
  }
  if (tm_active_channels_ != nullptr) {
    tm_active_channels_->set(static_cast<double>(channels_.in_use()));
  }
  if (tracer_ != nullptr) {
    // Failure paths can fold the bridge with lifecycle spans still open.
    const TimePoint now = network()->simulator().now();
    if (bridge.setup_span != 0) {
      tracer_->end(bridge.setup_span, now);
      bridge.setup_span = 0;
    }
    if (bridge.media_span != 0) {
      tracer_->end(bridge.media_span, now);
      bridge.media_span = 0;
    }
  }
  if (const auto it = active_calls_by_user_.find(bridge.caller_user);
      it != active_calls_by_user_.end() && it->second > 0) {
    --it->second;
  }
  if (bridge.ssrc_a != 0) by_ssrc_.erase(bridge.ssrc_a);
  if (bridge.ssrc_b != 0) by_ssrc_.erase(bridge.ssrc_b);
  cdrs_.close(bridge.cdr, disposition, network()->simulator().now());
  if (disposition == Disposition::kAnswered &&
      config_.admission == AdmissionPolicy::kErlangPredictive) {
    cac_.on_call_finished(cdrs_.records()[bridge.cdr].talk_time());
  }
  if (active_bridges_ > 0) --active_bridges_;
  if (config_.admission == AdmissionPolicy::kQueueWhenBusy) serve_queue();
  // ACD last: dispatching may re-enter start_bridge (bridges_ can grow, but
  // unique_ptr storage keeps `bridge` valid — nothing touches it after this).
  if (bridge.acd_tracked) {
    bridge.acd_tracked = false;
    acd_.on_agent_released(bridge.acd_queue, bridge.acd_agent);
  } else if (acd_.enabled()) {
    acd_.on_channel_available();
  }
}

}  // namespace pbxcap::pbx
