// User directory — the LDAP substrate of Fig. 1, reduced to what the PBX
// consumes: existence/authorization lookups keyed by user id, with a
// configurable lookup latency so authentication cost appears in call setup
// time, plus per-user concurrent-call policy limits (the "effective call
// policy" the paper's §IV suggests for scaling to 50k users).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::pbx {

struct DirectoryUser {
  std::string id;
  bool allowed{true};
  std::uint32_t max_concurrent_calls{0};  // 0 = unlimited
};

class Directory {
 public:
  void add_user(DirectoryUser user) { users_[user.id] = std::move(user); }

  /// Wildcard: accept any user id matching `prefix*` (the load generators
  /// mint users on the fly; the campus LDAP would hold them all).
  void allow_prefix(std::string prefix) { prefixes_.push_back(std::move(prefix)); }

  [[nodiscard]] std::optional<DirectoryUser> lookup(const std::string& id) const;

  void set_lookup_latency(Duration d) noexcept { lookup_latency_ = d; }
  [[nodiscard]] Duration lookup_latency() const noexcept { return lookup_latency_; }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  std::unordered_map<std::string, DirectoryUser> users_;
  std::vector<std::string> prefixes_;
  Duration lookup_latency_{Duration::millis(1)};
  mutable std::uint64_t lookups_{0};
};

}  // namespace pbxcap::pbx
