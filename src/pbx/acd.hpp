// Automatic Call Distribution — the first-class queue subsystem.
//
// Grown out of AsteriskPbx's ad-hoc kQueueWhenBusy deque, modelled on
// Asterisk's app_queue: named queues, an agent pool with ring strategies and
// per-agent wrapup, caller abandonment via a configurable patience
// distribution, periodic position announcements (delivered as SIP 182
// updates by the PBX), and a voicemail fallback instead of a hard 503 when
// the queue is full or a caller waits too long.
//
// The subsystem owns *queueing policy* only. Everything SIP/media-shaped —
// answering legs, building bridges, sending responses — stays in the PBX and
// is reached through the Hooks struct, so the policy core is unit-testable
// without a network and the PBX keeps a single code path for bridge setup.
//
// Determinism: the only randomness is the exponential patience draw, taken
// from the subsystem's own sim::Random stream (seeded from AcdConfig::seed),
// so enabling ACD never perturbs the caller/impairment RNG sequences, and
// per-shard seeds are mixed by the cluster wiring for byte-identical runs at
// any worker count. All timers are scheduled under the `acd` profiler
// category.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pbx/cdr.hpp"
#include "sim/profile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sip/message.hpp"
#include "stats/summary.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace pbxcap::sip {
class ServerTransaction;
}

namespace pbxcap::pbx {

/// How a freed agent is chosen for the caller at the head of the queue.
enum class RingStrategy : std::uint8_t {
  kRingAll,       // ring every available agent; lowest id answers first
  kLeastRecent,   // agent idle the longest since finishing a call
  kFewestCalls,   // agent with the fewest completed calls
  kPenaltyTiers,  // lowest penalty tier first, least-recent within a tier
};

/// Caller patience (time-to-abandon while waiting).
enum class PatienceModel : std::uint8_t {
  kNone,           // infinitely patient (the Erlang-C caller)
  kExponential,    // Exp(patience_mean) — the Erlang-A caller
  kDeterministic,  // abandons at exactly patience_mean
};

/// A homogeneous block of agents sharing a penalty tier and wrapup time.
struct AcdAgentSpec {
  std::uint32_t count{1};
  std::uint32_t penalty{0};     // lower tiers ring first under kPenaltyTiers
  Duration wrapup{};            // after-call work before the agent is rung again
};

struct AcdQueueConfig {
  std::string name{"support"};  // callers dial "queue-<name>"
  RingStrategy strategy{RingStrategy::kLeastRecent};
  std::vector<AcdAgentSpec> agents{AcdAgentSpec{.count = 4}};
  std::uint32_t max_queue_length{64};
  PatienceModel patience{PatienceModel::kNone};
  Duration patience_mean{Duration::seconds(60)};
  /// Hard cap on waiting time; zero = wait forever. On expiry the caller
  /// overflows to voicemail (if enabled) or is released with 503.
  Duration max_wait{};
  /// Comfort/position announcement period (SIP 182 updates); zero = only the
  /// initial 182 on entering the queue.
  Duration announce_period{};
  /// Overflow to a one-way-RTP voicemail leg instead of rejecting when the
  /// queue is full or max_wait expires.
  bool voicemail_fallback{false};
};

struct AcdConfig {
  bool enabled{false};
  std::vector<AcdQueueConfig> queues{};
  /// Seed for the patience RNG stream (mixed per backend by cluster wiring).
  std::uint64_t seed{0xACDu};
};

/// Per-queue observations — the Erlang-C/A measurement surface.
struct AcdQueueStats {
  std::uint64_t offered{0};        // calls routed to this queue
  std::uint64_t queued{0};         // entered the wait queue (found no agent)
  std::uint64_t served{0};         // bridged to an agent
  std::uint64_t abandoned{0};      // reneged (patience expired)
  std::uint64_t timed_out{0};      // max_wait expired, no voicemail taken
  std::uint64_t voicemail{0};      // overflowed to the voicemail leg
  std::uint64_t blocked_full{0};   // rejected: queue at max_queue_length
  std::uint64_t serve_failures{0}; // dispatch attempts the PBX failed to bridge
  std::uint64_t serve_retries{0};  // dispatches re-queued: no channel free
  std::uint64_t announcements{0};  // 182 position updates sent
  std::uint64_t agents_rung{0};    // ring attempts (kRingAll rings many per pick)
  stats::Summary wait_s;           // waiting time of every call leaving the queue
  stats::Summary wait_served_s;    // waiting time of served calls only
  double busy_agent_s{0.0};        // accumulated agent talk time (occupancy numerator)
};

/// FIFO wait queue with O(1) live depth and race-safe dispatch.
///
/// Entries die in place (timeout/abandon closures hold raw Entry pointers,
/// so dead entries cannot be erased eagerly) and are compacted amortised
/// once they outnumber the live ones — the fix for the old implementation's
/// O(queue) live-scan per arrival and unbounded dead-entry buildup.
/// pop_front_live() hands ownership to the dispatcher; push_front() returns
/// it with timers intact when the serve attempt finds no channel — the fix
/// for the serve/acquire race that silently lost callers.
class AcdWaitQueue {
 public:
  struct Entry {
    sip::Message invite;
    sip::ServerTransaction* txn{nullptr};
    std::size_t cdr{0};
    TimePoint enqueued_at{};
    sim::EventId patience_event{0};
    sim::EventId max_wait_event{0};
    sim::EventId announce_event{0};
    bool live{true};
  };

  /// Appends and returns a stable reference (deque of unique_ptr: Entry
  /// addresses survive both growth and compaction).
  Entry& push_back(std::unique_ptr<Entry> entry);

  /// Pops the first live entry (discarding any dead prefix), or nullptr.
  [[nodiscard]] std::unique_ptr<Entry> pop_front_live();

  /// Returns a popped entry to the head of the line, timers intact.
  void push_front(std::unique_ptr<Entry> entry);

  /// Kills an entry still in the deque (its timers must already be
  /// cancelled/fired). May compact, which frees other dead entries — never
  /// touch a dead Entry after this call.
  void mark_dead(Entry& entry);

  /// 1-based position among live entries (for position announcements).
  [[nodiscard]] std::size_t position_of(const Entry& entry) const noexcept;

  [[nodiscard]] std::size_t live_count() const noexcept { return live_; }
  /// Deque length including dead, not-yet-compacted entries (tests pin the
  /// compaction bound with this).
  [[nodiscard]] std::size_t raw_size() const noexcept { return entries_.size(); }

  /// Applies `fn` to every live entry, then empties the queue (crash path).
  void drain(const std::function<void(Entry&)>& fn);

 private:
  void compact();

  std::deque<std::unique_ptr<Entry>> entries_;
  std::size_t live_{0};
  std::size_t dead_{0};
};

/// The agents of one queue plus the ring-strategy selection logic.
class AcdAgentPool {
 public:
  struct Agent {
    std::uint32_t id{0};
    std::uint32_t penalty{0};
    Duration wrapup{};
    bool busy{false};
    bool in_wrapup{false};
    std::uint64_t calls_taken{0};
    std::uint64_t last_finished_seq{0};  // for kLeastRecent ordering
    TimePoint busy_since{};
    sim::EventId wrapup_event{0};
  };

  explicit AcdAgentPool(const std::vector<AcdAgentSpec>& specs);

  /// Selects an available agent per the strategy (nullptr if none). Ties
  /// break on lowest id, so selection is deterministic. `rung` counts ring
  /// attempts: kRingAll charges one per available agent, the targeted
  /// strategies one per pick.
  [[nodiscard]] Agent* pick(RingStrategy strategy, std::uint64_t& rung) noexcept;

  void begin_call(Agent& agent, TimePoint now) noexcept;
  /// Finishes the agent's call and returns it, or nullptr if the agent was
  /// not busy (idempotent: the crash path may double-release).
  Agent* end_call(std::uint32_t id) noexcept;

  [[nodiscard]] Agent* by_id(std::uint32_t id) noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return agents_.size(); }
  [[nodiscard]] std::size_t busy_count() const noexcept;
  [[nodiscard]] std::size_t available_count() const noexcept;
  [[nodiscard]] std::vector<Agent>& agents() noexcept { return agents_; }
  [[nodiscard]] const std::vector<Agent>& agents() const noexcept { return agents_; }

  /// Crash: everyone idle, sequence preserved (callers must cancel wrapup
  /// events themselves before resetting).
  void reset() noexcept;

 private:
  std::vector<Agent> agents_;
  std::uint64_t finish_seq_{0};
};

/// Policy core: routes offered calls to queues, dispatches waiting callers
/// to agents, and runs the patience / max-wait / announcement timers.
class AcdSubsystem {
 public:
  enum class ServeOutcome : std::uint8_t {
    kBridged,    // leg B launched, channel + agent committed
    kNoChannel,  // channel pool exhausted — re-queue, retry on release
    kFailed,     // PBX rejected (routing/policy); CDR closed by the hook
  };

  /// PBX-side effectors. All are required once the subsystem is enabled.
  struct Hooks {
    /// Attempts to bridge the caller to the picked agent.
    std::function<ServeOutcome(const sip::Message& invite, sip::ServerTransaction& txn,
                               std::size_t cdr, std::size_t queue_index,
                               std::uint32_t agent_id)>
        serve;
    /// Sends a final rejection and closes the CDR with `disposition`.
    std::function<void(const sip::Message& invite, sip::ServerTransaction& txn,
                       std::size_t cdr, int status, Disposition disposition)>
        reject;
    /// Overflows the caller to a voicemail leg; false = voicemail also
    /// unavailable (caller is then rejected).
    std::function<bool(const sip::Message& invite, sip::ServerTransaction& txn,
                       std::size_t cdr, std::size_t queue_index)>
        voicemail;
    /// Sends a 182 position update on the caller's INVITE transaction.
    std::function<void(const sip::Message& invite, sip::ServerTransaction& txn,
                       std::size_t position)>
        announce;
  };

  AcdSubsystem(AcdConfig config, sim::Simulator& simulator);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  [[nodiscard]] bool enabled() const noexcept {
    return config_.enabled && !config_.queues.empty();
  }

  /// Resolves a request-URI user of the form "queue-<name>".
  [[nodiscard]] std::optional<std::size_t> queue_for_user(std::string_view user) const;

  /// Entry point for an admitted ACD INVITE: serve immediately if an agent
  /// (and channel) is free, otherwise queue / overflow / reject.
  void offer(std::size_t queue_index, const sip::Message& invite,
             sip::ServerTransaction& txn, std::size_t cdr);

  /// An agent's bridged call ended (bridge closed): start wrapup, then
  /// dispatch the next waiting caller.
  void on_agent_released(std::size_t queue_index, std::uint32_t agent_id);

  /// A PBX channel freed up — retry dispatches parked on kNoChannel.
  void on_channel_available();

  /// Process crash: every timer dies, waiting callers are lost (their CDRs
  /// closed via `close_cdr`), agents come back idle.
  void crash(const std::function<void(std::size_t cdr)>& close_cdr);

  void set_telemetry(telemetry::Telemetry* telemetry);

  [[nodiscard]] std::size_t queue_count() const noexcept { return queues_.size(); }
  [[nodiscard]] const AcdQueueConfig& queue_config(std::size_t qi) const {
    return config_.queues.at(qi);
  }
  [[nodiscard]] const AcdQueueStats& stats(std::size_t qi) const { return queues_.at(qi)->stats; }
  [[nodiscard]] std::size_t depth(std::size_t qi) const { return queues_.at(qi)->waiting.live_count(); }
  [[nodiscard]] std::size_t total_depth() const noexcept;
  [[nodiscard]] std::size_t agents_busy(std::size_t qi) const {
    return queues_.at(qi)->agents.busy_count();
  }
  [[nodiscard]] std::size_t agent_count(std::size_t qi) const { return queues_.at(qi)->agents.size(); }
  /// Talk time accrued by this queue's agents up to `now`, including calls
  /// still in progress (occupancy numerator; divide by window * agents).
  [[nodiscard]] double busy_agent_seconds(std::size_t qi, TimePoint now) const;

 private:
  struct QueueTelemetry {
    telemetry::Counter* offered{nullptr};
    telemetry::Counter* queued{nullptr};
    telemetry::Counter* served{nullptr};
    telemetry::Counter* abandoned{nullptr};
    telemetry::Counter* timed_out{nullptr};
    telemetry::Counter* voicemail{nullptr};
    telemetry::Counter* blocked_full{nullptr};
    telemetry::Counter* announcements{nullptr};
    telemetry::Gauge* depth{nullptr};
    telemetry::Gauge* busy{nullptr};
    telemetry::Histogram* wait{nullptr};
  };

  struct Queue {
    AcdWaitQueue waiting;
    AcdAgentPool agents;
    AcdQueueStats stats;
    QueueTelemetry tm;

    explicit Queue(const AcdQueueConfig& cfg) : agents{cfg.agents} {}
  };

  void enqueue(std::size_t qi, const sip::Message& invite, sip::ServerTransaction& txn,
               std::size_t cdr);
  void try_dispatch(std::size_t qi);
  /// Serves one caller-entry against one picked agent; consumes the timers
  /// and the entry unless the outcome is kNoChannel.
  void cancel_timers(AcdWaitQueue::Entry& entry);
  void schedule_announce(std::size_t qi, AcdWaitQueue::Entry* entry);
  void overflow(std::size_t qi, AcdWaitQueue::Entry& entry, bool from_max_wait);
  void record_wait(Queue& q, double seconds, bool served);
  void update_gauges(Queue& q);

  AcdConfig config_;
  sim::Simulator& sim_;
  sim::Random rng_;
  Hooks hooks_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace pbxcap::pbx
