#include "pbx/admission.hpp"

#include "core/erlang_b.hpp"

namespace pbxcap::pbx {

ErlangPredictiveCac::ErlangPredictiveCac(PredictiveCacConfig config)
    : config_{config}, hold_{config.initial_hold} {}

bool ErlangPredictiveCac::admit(TimePoint now, std::uint32_t capacity) {
  ++attempts_;

  if (have_arrival_) {
    const double gap_s = (now - last_arrival_).to_seconds();
    if (mean_interarrival_s_ <= 0.0) {
      mean_interarrival_s_ = gap_s;
    } else {
      mean_interarrival_s_ =
          (1.0 - config_.smoothing) * mean_interarrival_s_ + config_.smoothing * gap_s;
    }
    if (mean_interarrival_s_ > 0.0) rate_per_s_ = 1.0 / mean_interarrival_s_;
  }
  have_arrival_ = true;
  last_arrival_ = now;

  if (attempts_ <= config_.warmup_attempts) {
    last_prediction_ = 0.0;
    return true;
  }

  const double offered = estimated_offered_erlangs();
  last_prediction_ = erlang::erlang_b(erlang::Erlangs{offered}, capacity);
  if (last_prediction_ > config_.target_blocking) {
    ++rejected_;
    return false;
  }
  return true;
}

void ErlangPredictiveCac::on_call_finished(Duration hold) {
  if (!have_hold_sample_) {
    hold_ = hold;
    have_hold_sample_ = true;
    return;
  }
  const double smoothed = (1.0 - config_.smoothing) * hold_.to_seconds() +
                          config_.smoothing * hold.to_seconds();
  hold_ = Duration::from_seconds(smoothed);
}

}  // namespace pbxcap::pbx
