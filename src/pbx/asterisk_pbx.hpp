// The Asterisk-like PBX: a back-to-back user agent with finite channels.
//
// Reproduces the behaviour the paper measures (§II-B, Fig. 2):
//   * every SIP message of both call legs passes through the PBX;
//   * all RTP media is anchored and relayed by the PBX;
//   * a finite channel pool performs admission control — an INVITE that
//     finds no free channel is rejected (503), which is the "blocked call"
//     outcome of Table I;
//   * CPU cost accrues per SIP message and per relayed RTP packet with
//     error-path surcharges, per the paper's observed utilization structure;
//   * every call leaves a CDR.
//
// Call-leg plumbing: leg A (caller -> PBX) is answered as a UAS; leg B
// (PBX -> callee) is originated as a UAC with a fresh Call-ID. SDP is
// forwarded with the connection address rewritten to the PBX (media
// anchoring); endpoints announce their RTP SSRC in the SDP (RFC 5576), which
// is what the relay uses to demultiplex streams to the opposite leg.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pbx/acd.hpp"
#include "pbx/admission.hpp"
#include "pbx/cdr.hpp"
#include "pbx/media_ports.hpp"
#include "pbx/channel_pool.hpp"
#include "pbx/cpu_model.hpp"
#include "pbx/dialplan.hpp"
#include "pbx/directory.hpp"
#include "pbx/registrar.hpp"
#include "sip/dialog.hpp"
#include "sip/endpoint.hpp"
#include "sip/sdp.hpp"

namespace pbxcap::pbx {

/// Single-threaded SIP service model (overload substrate). When enabled,
/// every incoming SIP message waits in a FIFO for one worker that takes
/// `service_time` per message; a full rejection additionally occupies the
/// worker for `reject_penalty` (the expensive error path the paper's 30 ms
/// error cost measures). The backlog depth is the overload-control signal.
/// Disabled by default: Table-I runs keep the instantaneous-service model.
struct SipServiceConfig {
  bool enabled{false};
  Duration service_time{Duration::millis(10)};
  Duration reject_penalty{Duration::millis(30)};
  std::uint32_t queue_limit{256};  // messages beyond this are dropped
};

/// RFC 6357-style local overload control: a cheap stateless 503 + Retry-After
/// front door ahead of the service queue. Only *new INVITE work* is shed;
/// messages of accepted calls still get service.
struct OverloadControlConfig {
  bool enabled{false};
  /// Gate INVITEs while the SIP service backlog exceeds this many messages.
  std::uint32_t queue_threshold{16};
  /// Additional trigger on the CPU model's current-bucket utilization;
  /// >= 1.0 disables the CPU trigger.
  double cpu_threshold{1.0};
  /// Also shed INVITEs while the channel pool is exhausted. This is the
  /// RFC 6357 cost argument in miniature: a doomed INVITE that reaches the
  /// worker pays service_time + reject_penalty for nothing, while the gate's
  /// stateless 503 is free — and Retry-After turns the excess demand into a
  /// paced retry stream that refills channels as they free up.
  bool shed_when_channels_full{true};
  /// Advertised in the 503's Retry-After header (integer seconds on the wire).
  Duration retry_after{Duration::seconds(2)};
};

struct PbxConfig {
  std::string host{"pbx.unb.br"};
  std::uint32_t max_channels{165};  // fitted capacity of the paper's server
  CpuModelConfig cpu{};
  bool require_auth{false};          // LDAP-style lookup before admitting
  bool auth_lookup_latency{true};    // apply Directory latency when checking
  std::vector<std::uint8_t> allowed_payload_types{0, 8};  // PCMU, PCMA
  /// Answer leg A with the caller's first allowed codec even when the callee
  /// answered a different one, transcoding between the legs (Asterisk's
  /// translator path). Each relayed frame on a mismatched bridge then pays
  /// the two codecs' per-frame transcode_cost per direction in the CPU
  /// model. When false the callee's answer is relayed verbatim and the
  /// caller re-negotiates itself (no transcoding, pre-codec-tier behaviour).
  bool transcode{true};
  /// Admission strategy: hard channel pool (paper), predictive Erlang CAC
  /// (paper reference [8]), or queue-when-busy (the Erlang-C system).
  AdmissionPolicy admission{AdmissionPolicy::kChannelPool};
  PredictiveCacConfig cac{};
  /// kQueueWhenBusy parameters.
  std::uint32_t max_queue_length{64};
  Duration queue_timeout{Duration::seconds(60)};  // caller reneges after this
  /// ACD queues (callers dialing "queue-<name>" are routed here).
  AcdConfig acd{};
  /// PBX-side RTP anchor port range (even ports, tracked while in use).
  std::uint16_t rtp_port_min{10'000};
  std::uint16_t rtp_port_max{65'534};
  SipServiceConfig sip_service{};
  OverloadControlConfig overload{};
};

class AsteriskPbx final : public sip::SipEndpoint {
 public:
  AsteriskPbx(PbxConfig config, sim::Simulator& simulator, sip::HostResolver& resolver);

  void on_receive(const net::Packet& pkt) override;
  void send_sip(const sip::Message& msg, net::NodeId dst) override;

  /// Adds the PBX's call-lifecycle spans (setup / media / teardown per
  /// bridged call, tracked by the leg A Call-ID) and admission/relay metrics
  /// on top of the base endpoint instrumentation.
  void set_telemetry(telemetry::Telemetry* tel) override;

  [[nodiscard]] ChannelPool& channels() noexcept { return channels_; }
  [[nodiscard]] const ChannelPool& channels() const noexcept { return channels_; }
  [[nodiscard]] CpuModel& cpu() noexcept { return cpu_; }
  [[nodiscard]] const CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] CdrLog& cdrs() noexcept { return cdrs_; }
  [[nodiscard]] const CdrLog& cdrs() const noexcept { return cdrs_; }
  [[nodiscard]] Dialplan& dialplan() noexcept { return dialplan_; }
  [[nodiscard]] Directory& directory() noexcept { return directory_; }
  [[nodiscard]] Registrar& registrar() noexcept { return registrar_; }
  [[nodiscard]] const PbxConfig& config() const noexcept { return config_; }
  [[nodiscard]] AcdSubsystem& acd() noexcept { return acd_; }
  [[nodiscard]] const AcdSubsystem& acd() const noexcept { return acd_; }
  [[nodiscard]] const MediaPortAllocator& media_ports() const noexcept { return media_ports_; }

  [[nodiscard]] std::uint64_t rtp_relayed() const noexcept { return rtp_relayed_; }
  /// Bridges whose legs negotiated different codecs (translator engaged).
  [[nodiscard]] std::uint64_t transcoded_bridges() const noexcept {
    return transcoded_bridges_;
  }
  /// Media frames that paid per-frame transcode work while being relayed.
  [[nodiscard]] std::uint64_t transcoded_rtp() const noexcept { return transcoded_rtp_; }
  [[nodiscard]] std::uint64_t rtp_dropped_unknown_ssrc() const noexcept {
    return rtp_dropped_no_session_;
  }
  [[nodiscard]] std::size_t active_bridges() const noexcept { return active_bridges_; }
  /// Calls rejected by per-user concurrent-call policy (Directory limits) —
  /// the "effective call policy" knob the paper's conclusion proposes.
  [[nodiscard]] std::uint64_t policy_rejections() const noexcept { return policy_rejections_; }
  /// Predictive-CAC state (meaningful under kErlangPredictive).
  [[nodiscard]] const ErlangPredictiveCac& cac() const noexcept { return cac_; }

  // kQueueWhenBusy observations (the Erlang-C quantities).
  [[nodiscard]] std::uint64_t calls_queued() const noexcept { return queued_total_; }
  [[nodiscard]] std::uint64_t queue_served() const noexcept { return queue_served_; }
  [[nodiscard]] std::uint64_t queue_timeouts() const noexcept { return queue_timeouts_; }
  /// Waiting time (seconds) of calls that left the queue, served or not.
  [[nodiscard]] const stats::Summary& queue_wait_s() const noexcept { return queue_wait_s_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept;

  /// Callers answered by the one-way-RTP voicemail leg (ACD overflow).
  [[nodiscard]] std::uint64_t voicemail_calls() const noexcept { return voicemail_calls_; }
  [[nodiscard]] std::uint64_t voicemail_rtp_absorbed() const noexcept {
    return voicemail_rtp_absorbed_;
  }

  // ---- fault injection: degradation modes ----

  /// Freezes SIP processing until `now + stall` (GC pause / disk stall
  /// model): SIP messages arriving meanwhile are deferred to the stall end,
  /// RTP arriving meanwhile is dropped (the relay thread is wedged too).
  /// Overlapping stalls extend the frozen window.
  void stall_for(Duration stall);

  /// Kills the process: every bridge, queued call and SIP transaction dies
  /// silently (channel-state loss), the service backlog is discarded, and
  /// all packets are dropped until `now + dead_for` (restart dead time).
  void crash_restart(Duration dead_for);

  // SIP service-queue / overload observations.
  [[nodiscard]] std::uint32_t sip_backlog() const noexcept { return sip_backlog_; }
  [[nodiscard]] std::uint64_t sip_queue_dropped() const noexcept { return sip_queue_dropped_; }
  /// INVITEs shed by the stateless 503 + Retry-After overload gate.
  [[nodiscard]] std::uint64_t overload_rejections() const noexcept {
    return overload_rejections_;
  }
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t stalls() const noexcept { return stalls_; }
  [[nodiscard]] std::uint64_t dropped_while_dead() const noexcept { return dropped_dead_; }
  [[nodiscard]] std::uint64_t rtp_dropped_stall() const noexcept { return rtp_dropped_stall_; }

 private:
  struct Bridge {
    enum class State { kInviting, kAnswered, kTearingDown, kClosed };

    State state{State::kInviting};
    std::string call_id_a;            // leg A (caller-facing) Call-ID
    std::string call_id_b;            // leg B (callee-facing) Call-ID
    std::string caller_user;          // for per-user policy accounting
    std::string caller_host;
    std::string callee_host;
    sip::Message invite_a;            // original INVITE for building responses
    sip::Message invite_b;            // our re-originated INVITE
    std::string to_tag_a;             // tag we assign on leg A responses
    sip::ServerTransaction* invite_txn_a{nullptr};  // valid until final sent
    sip::Dialog dialog_a;             // established leg A dialog (UAS side)
    sip::Dialog dialog_b;             // established leg B dialog (UAC side)
    std::uint32_t ssrc_a{0};          // caller's media SSRC
    std::uint32_t ssrc_b{0};          // callee's media SSRC
    net::NodeId caller_node{net::kInvalidNode};
    net::NodeId callee_node{net::kInvalidNode};
    std::size_t cdr{0};
    bool channel_held{false};
    /// Terminating voicemail leg: leg A only, inbound RTP absorbed.
    bool voicemail{false};
    /// Set when the callee side is an ACD agent (close notifies the ACD).
    bool acd_tracked{false};
    std::size_t acd_queue{0};
    std::uint32_t acd_agent{0};
    /// PBX anchor ports advertised to each leg (released on close; 0 = none).
    std::uint16_t port_a{0};
    std::uint16_t port_b{0};
    /// Caller's preferred payload type among the PBX-allowed set (front of
    /// the filtered offer) — what leg A is answered with under transcoding.
    std::uint8_t pt_offer_a{0};
    /// Codec-mismatched legs: every relayed media frame pays
    /// `transcode_work` (decode + encode) per direction on top of the base
    /// relay cost, and is re-framed to the out-leg codec's wire size.
    bool transcoded{false};
    Duration transcode_work{Duration::zero()};
    std::uint32_t rtp_bytes_to_caller{0};  // out-leg wire size toward leg A
    std::uint32_t rtp_bytes_to_callee{0};  // out-leg wire size toward leg B
    // Call-lifecycle tracing (0 = no span open / tracing disabled).
    std::uint64_t span_track{0};
    telemetry::SpanTracer::SpanId setup_span{0};
    telemetry::SpanTracer::SpanId media_span{0};
  };

  void handle_request(const sip::Message& req, sip::ServerTransaction& txn);
  void handle_invite(const sip::Message& req, sip::ServerTransaction& txn);
  void handle_register(const sip::Message& req, sip::ServerTransaction& txn);
  /// Continues admission once a channel is held (builds leg B, etc.).
  void start_bridge(const sip::Message& req, sip::ServerTransaction& txn, std::size_t cdr);
  void enqueue_call(const sip::Message& req, sip::ServerTransaction& txn, std::size_t cdr);
  void serve_queue();
  void admit_invite(const sip::Message& req, sip::ServerTransaction& txn);
  void handle_bye(const sip::Message& req, sip::ServerTransaction& txn);
  void on_leg_b_response(std::size_t bridge_idx, const sip::Message& resp);
  void on_leg_b_timeout(std::size_t bridge_idx);
  void reject(const sip::Message& req, sip::ServerTransaction& txn, int code,
              Duration retry_after = Duration::zero());
  /// Enqueues a SIP packet into the single-worker service model.
  void enqueue_sip(const net::Packet& pkt);
  [[nodiscard]] bool overload_gate_rejects(const sip::Message& msg, TimePoint now) const;
  /// Retry-After advertised on blocked-call 503s (zero unless overload
  /// control is enabled — plain rejections carry no backoff hint).
  [[nodiscard]] Duration blocked_retry_after() const noexcept {
    return config_.overload.enabled ? config_.overload.retry_after : Duration::zero();
  }
  void relay_rtp(const net::Packet& pkt);
  void register_media(Bridge& bridge);
  void close_bridge(std::size_t idx, Disposition disposition);

  /// ACD serve hook: acquires a channel and launches the bridge toward the
  /// picked agent's queue destination.
  AcdSubsystem::ServeOutcome acd_serve(const sip::Message& req, sip::ServerTransaction& txn,
                                       std::size_t cdr, std::size_t queue_index,
                                       std::uint32_t agent_id);
  /// ACD overflow hook: answers the caller into a terminating voicemail leg
  /// (one-way RTP, absorbed at the PBX). False when out of channels/ports.
  bool start_voicemail(const sip::Message& req, sip::ServerTransaction& txn, std::size_t cdr,
                       std::size_t queue_index);

  [[nodiscard]] Bridge* bridge_by_call_id(const std::string& call_id, bool& is_leg_a);
  [[nodiscard]] sip::Sdp anchored_sdp(const sip::Sdp& original, std::uint16_t port);

  PbxConfig config_;
  ChannelPool channels_;
  CpuModel cpu_;
  CdrLog cdrs_;
  Dialplan dialplan_;
  Directory directory_;
  Registrar registrar_;
  ErlangPredictiveCac cac_;

  std::vector<std::unique_ptr<Bridge>> bridges_;
  std::unordered_map<std::string, std::size_t> by_call_id_a_;
  std::unordered_map<std::string, std::size_t> by_call_id_b_;
  std::unordered_map<std::uint32_t, std::size_t> by_ssrc_;

  std::unordered_map<std::string, std::uint32_t> active_calls_by_user_;
  std::uint64_t policy_rejections_{0};
  std::uint64_t b2b_counter_{0};

  /// kQueueWhenBusy wait line (shares the ACD's race-safe queue type; the
  /// entries' max_wait_event doubles as the renege timer).
  AcdWaitQueue queue_;
  std::uint64_t queued_total_{0};
  std::uint64_t queue_served_{0};
  std::uint64_t queue_timeouts_{0};
  stats::Summary queue_wait_s_;
  MediaPortAllocator media_ports_;
  AcdSubsystem acd_;
  std::uint64_t voicemail_calls_{0};
  std::uint64_t voicemail_rtp_absorbed_{0};
  std::uint64_t rtp_relayed_{0};
  std::uint64_t transcoded_bridges_{0};
  std::uint64_t transcoded_rtp_{0};
  std::uint64_t rtp_dropped_no_session_{0};
  std::size_t active_bridges_{0};

  // SIP service queue + degradation state.
  TimePoint sip_busy_until_{};   // single worker: when it frees up
  std::uint32_t sip_backlog_{0};
  std::uint64_t boot_epoch_{0};  // bumped per crash; orphans queued work
  TimePoint dead_until_{};       // crash: drop everything before this
  TimePoint stall_until_{};      // stall: defer SIP / drop RTP before this
  /// Branches of INVITEs accepted into the service queue but not yet
  /// serviced. Their retransmissions must pass the overload gate: no server
  /// transaction exists yet, and an out-of-band 503 would race the queued
  /// original (caller gives up, PBX admits — a leaked channel).
  std::unordered_set<std::string> queued_invite_branches_;
  /// Branches the overload gate answered 503. The caller ACKs that final
  /// (non-2xx ACK, same branch); the gate must absorb it as cheaply as it
  /// shed the INVITE, or each shed call still costs a service slot and the
  /// "stateless" rejection feeds the very queue it protects.
  std::unordered_set<std::string> shed_invite_branches_;
  std::uint64_t sip_queue_dropped_{0};
  std::uint64_t overload_rejections_{0};
  std::uint64_t crashes_{0};
  std::uint64_t stalls_{0};
  std::uint64_t dropped_dead_{0};
  std::uint64_t rtp_dropped_stall_{0};

  // Telemetry handles; null when telemetry is absent or disabled.
  telemetry::Counter* tm_invites_{nullptr};
  telemetry::Counter* tm_blocked_policy_{nullptr};
  telemetry::Counter* tm_blocked_cac_{nullptr};
  telemetry::Counter* tm_blocked_channels_{nullptr};
  telemetry::Counter* tm_blocked_queue_full_{nullptr};
  telemetry::Counter* tm_answered_{nullptr};
  telemetry::Counter* tm_failed_{nullptr};
  telemetry::Counter* tm_queued_{nullptr};
  telemetry::Counter* tm_queue_served_{nullptr};
  telemetry::Counter* tm_queue_timeouts_{nullptr};
  telemetry::Counter* tm_rtp_relayed_{nullptr};
  telemetry::Counter* tm_rtp_transcoded_{nullptr};
  telemetry::Counter* tm_rtp_dropped_{nullptr};
  telemetry::Counter* tm_overload_503_{nullptr};
  telemetry::Counter* tm_sip_queue_dropped_{nullptr};
  telemetry::Gauge* tm_active_channels_{nullptr};
  telemetry::SpanTracer* tracer_{nullptr};
  std::uint32_t span_setup_name_{0};
  std::uint32_t span_media_name_{0};
  std::uint32_t span_teardown_name_{0};
};

}  // namespace pbxcap::pbx
