// Telephone-traffic units and workload characterization (paper §III-A).
//
// One Erlang is one voice channel in continuous use for one hour. The paper's
// Equation (1):
//
//     Erlang = calls/h * duration(minutes) / 60
//
// is the product of call arrival rate and mean holding time expressed on a
// common time base (Little's law applied to the busy hour).
#pragma once

#include "util/time.hpp"

namespace pbxcap::erlang {

/// Strong type for offered/carried traffic intensity in Erlangs.
class Erlangs {
 public:
  constexpr Erlangs() noexcept = default;
  explicit constexpr Erlangs(double value) noexcept : value_{value} {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr auto operator<=>(const Erlangs&) const noexcept = default;

  friend constexpr Erlangs operator+(Erlangs a, Erlangs b) noexcept {
    return Erlangs{a.value_ + b.value_};
  }
  friend constexpr Erlangs operator-(Erlangs a, Erlangs b) noexcept {
    return Erlangs{a.value_ - b.value_};
  }
  friend constexpr Erlangs operator*(Erlangs a, double k) noexcept {
    return Erlangs{a.value_ * k};
  }
  friend constexpr Erlangs operator*(double k, Erlangs a) noexcept { return a * k; }

 private:
  double value_{0.0};
};

/// Busy-hour workload description: arrival volume and mean holding time.
struct Workload {
  double calls_per_hour{0.0};
  Duration mean_hold_time{};

  /// Equation (1): offered traffic in Erlangs.
  [[nodiscard]] Erlangs offered_traffic() const noexcept {
    return Erlangs{calls_per_hour * mean_hold_time.to_seconds() / 3600.0};
  }

  /// Mean call arrival rate in calls per second.
  [[nodiscard]] double arrival_rate_per_second() const noexcept {
    return calls_per_hour / 3600.0;
  }
};

/// Equation (1) in its paper form (duration given in minutes).
[[nodiscard]] constexpr Erlangs erlangs_from_calls(double calls_per_hour,
                                                   double duration_minutes) noexcept {
  return Erlangs{calls_per_hour * duration_minutes / 60.0};
}

/// Inverse of Equation (1): arrival volume sustaining traffic A at the given
/// mean duration.
[[nodiscard]] constexpr double calls_per_hour_for(Erlangs a, double duration_minutes) noexcept {
  return duration_minutes <= 0.0 ? 0.0 : a.value() * 60.0 / duration_minutes;
}

/// Offered traffic from an arrival rate (calls/s) and hold time — the form
/// used by the empirical method (§III-C): A = lambda * h.
[[nodiscard]] inline Erlangs erlangs_from_rate(double calls_per_second, Duration hold) noexcept {
  return Erlangs{calls_per_second * hold.to_seconds()};
}

}  // namespace pbxcap::erlang
