// Busy-hour capacity planning (paper §IV): the Erlang-B toolkit applied to
// the UnB VoWiFi deployment questions.
//
//  * "3,000 calls in the busy hour, 3-minute mean duration, N = 165
//     channels => P_b = 1.8 %" (paper §IV).
//  * Fig. 7: population of 8,000, x % of users each placing one call of mean
//    duration d minutes in the busy hour => blocking on N = 165 channels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/traffic.hpp"
#include "util/time.hpp"

namespace pbxcap::erlang {

/// A dimensioning answer for one (workload, channels) point.
struct CapacityPoint {
  Workload workload;
  Erlangs offered{};
  std::uint32_t channels{0};
  double blocking_probability{0.0};
  double carried_erlangs{0.0};
};

/// Evaluates blocking for a given busy-hour workload on `channels` channels.
[[nodiscard]] CapacityPoint evaluate_capacity(const Workload& workload, std::uint32_t channels);

/// Channels needed so the workload sees blocking <= `target_pb`.
[[nodiscard]] std::uint32_t dimension_channels(const Workload& workload, double target_pb);

/// Maximum busy-hour call volume (calls/h) sustainable on `channels` channels
/// at blocking <= target_pb, for a given mean duration.
[[nodiscard]] double max_calls_per_hour(std::uint32_t channels, Duration mean_hold,
                                        double target_pb);

/// Fig. 7 scenario: `population` users; `fraction` of them each place one
/// call of mean duration `mean_hold` during the busy hour. Returns the
/// resulting Erlang-B blocking on `channels` channels.
struct PopulationScenario {
  std::uint32_t population{8'000};
  double fraction{0.0};          // in [0, 1]
  Duration mean_hold{};          // mean call duration
  std::uint32_t channels{165};
};

[[nodiscard]] CapacityPoint evaluate_population(const PopulationScenario& scenario);

/// Sweep helper for Fig. 7: blocking across fractions for one duration.
[[nodiscard]] std::vector<CapacityPoint> population_sweep(std::uint32_t population,
                                                          const std::vector<double>& fractions,
                                                          Duration mean_hold,
                                                          std::uint32_t channels);

}  // namespace pbxcap::erlang
