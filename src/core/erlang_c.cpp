#include "core/erlang_c.hpp"

#include <cmath>
#include <stdexcept>

#include "core/erlang_b.hpp"

namespace pbxcap::erlang {

double erlang_c(Erlangs a, std::uint32_t n) {
  const double load = a.value();
  if (load < 0.0 || !std::isfinite(load)) {
    throw std::invalid_argument{"erlang_c: offered traffic must be finite and non-negative"};
  }
  if (load == 0.0) return 0.0;
  if (static_cast<double>(n) <= load) return 1.0;  // unstable queue: every call waits
  // Standard identity: C = N*B / (N - A*(1-B)) with B the Erlang-B blocking.
  const double b = erlang_b(a, n);
  const double nn = static_cast<double>(n);
  return nn * b / (nn - load * (1.0 - b));
}

Duration erlang_c_mean_wait(Erlangs a, std::uint32_t n, Duration mean_hold) {
  const double load = a.value();
  if (static_cast<double>(n) <= load) return Duration::max();
  const double c = erlang_c(a, n);
  const double w = c * mean_hold.to_seconds() / (static_cast<double>(n) - load);
  return Duration::from_seconds(w);
}

double erlang_c_service_level(Erlangs a, std::uint32_t n, Duration mean_hold,
                              Duration target_wait) {
  const double load = a.value();
  if (static_cast<double>(n) <= load) return 0.0;
  const double c = erlang_c(a, n);
  const double exponent =
      -(static_cast<double>(n) - load) * target_wait.to_seconds() / mean_hold.to_seconds();
  return 1.0 - c * std::exp(exponent);
}

std::uint32_t agents_for_wait_probability(Erlangs a, double target) {
  if (!(target > 0.0 && target <= 1.0)) {
    throw std::invalid_argument{"agents_for_wait_probability: target must be in (0,1]"};
  }
  // Stability alone demands n > a; start there and walk up. erlang_c is
  // strictly decreasing in n in the stable region.
  auto n = static_cast<std::uint32_t>(std::floor(a.value())) + 1;
  while (erlang_c(a, n) > target) {
    ++n;
    if (n > 10'000'000) throw std::runtime_error{"agents_for_wait_probability: did not converge"};
  }
  return n;
}

}  // namespace pbxcap::erlang
