#include "core/dimensioning.hpp"

#include <stdexcept>

#include "core/erlang_b.hpp"

namespace pbxcap::erlang {

CapacityPoint evaluate_capacity(const Workload& workload, std::uint32_t channels) {
  CapacityPoint point;
  point.workload = workload;
  point.offered = workload.offered_traffic();
  point.channels = channels;
  point.blocking_probability = erlang_b(point.offered, channels);
  point.carried_erlangs = carried_traffic(point.offered, channels);
  return point;
}

std::uint32_t dimension_channels(const Workload& workload, double target_pb) {
  return channels_for_blocking(workload.offered_traffic(), target_pb);
}

double max_calls_per_hour(std::uint32_t channels, Duration mean_hold, double target_pb) {
  if (mean_hold <= Duration::zero()) {
    throw std::invalid_argument{"max_calls_per_hour: hold time must be positive"};
  }
  const Erlangs a = offered_load_for_blocking(channels, target_pb);
  return a.value() * 3600.0 / mean_hold.to_seconds();
}

CapacityPoint evaluate_population(const PopulationScenario& scenario) {
  if (scenario.fraction < 0.0 || scenario.fraction > 1.0) {
    throw std::invalid_argument{"evaluate_population: fraction must be in [0,1]"};
  }
  Workload w;
  w.calls_per_hour = static_cast<double>(scenario.population) * scenario.fraction;
  w.mean_hold_time = scenario.mean_hold;
  return evaluate_capacity(w, scenario.channels);
}

std::vector<CapacityPoint> population_sweep(std::uint32_t population,
                                            const std::vector<double>& fractions,
                                            Duration mean_hold, std::uint32_t channels) {
  std::vector<CapacityPoint> out;
  out.reserve(fractions.size());
  for (const double f : fractions) {
    out.push_back(evaluate_population({population, f, mean_hold, channels}));
  }
  return out;
}

}  // namespace pbxcap::erlang
