// Engset loss model: blocking with a finite caller population.
//
// Erlang-B assumes Poisson arrivals from an infinite population. The paper's
// Fig. 7 reasons about a finite campus population (8,000 candidate callers);
// for small populations relative to N the Engset model is the correct finite-
// source refinement, and it converges to Erlang-B as the population grows.
// We provide it so the Fig. 7 analysis can be validated against the proper
// finite-source model (ablation A3 in DESIGN.md).
#pragma once

#include <cstdint>

#include "core/traffic.hpp"

namespace pbxcap::erlang {

/// Time-blocking probability for `sources` independent callers, each idle-to-
/// offered ratio `alpha` = per-source offered intensity / (1 - intensity),
/// on `n` channels. Computed with the stable Engset recurrence.
///
/// `per_source_erlangs` is the traffic one free source would offer
/// (lambda_i * h in Erlangs, must be < 1). Returns the *call* blocking
/// probability (blocking seen by arriving calls, i.e. with M-1 sources),
/// which is the quantity comparable to Erlang-B's P_b.
[[nodiscard]] double engset_blocking(std::uint32_t sources, double per_source_erlangs,
                                     std::uint32_t n);

/// Engset blocking parameterized like Erlang-B: total offered traffic
/// `a` split evenly across `sources` callers. Converges to erlang_b(a, n)
/// as sources -> infinity.
[[nodiscard]] double engset_blocking_total(Erlangs a, std::uint32_t sources, std::uint32_t n);

}  // namespace pbxcap::erlang
