#include "core/erlang_a.hpp"

#include <cmath>
#include <stdexcept>

namespace pbxcap::erlang {

ErlangAResult erlang_a(Erlangs a, std::uint32_t n, Duration mean_hold, Duration mean_patience) {
  const double load = a.value();
  if (load < 0.0 || !std::isfinite(load)) {
    throw std::invalid_argument{"erlang_a: offered traffic must be finite and non-negative"};
  }
  if (n == 0) throw std::invalid_argument{"erlang_a: need at least one agent"};
  const double h = mean_hold.to_seconds();
  const double p = mean_patience.to_seconds();
  if (h <= 0.0 || p <= 0.0) {
    throw std::invalid_argument{"erlang_a: mean hold and patience must be positive"};
  }
  ErlangAResult result;
  if (load == 0.0) return result;

  // Rates. Absolute time scale cancels out of every probability, so work in
  // units of mu = 1: lambda = a, theta = h / p.
  const double lambda = load;
  const double theta = h / p;
  const double nn = static_cast<double>(n);

  // Unnormalised stationary weights x_j, renormalised on the fly whenever
  // they grow large so heavy overloads (big pre-n ramp) cannot overflow.
  double x = 1.0;            // x_j for the current j
  double norm = 0.0;         // sum of x_j so far
  double busy_weighted = 0.0;  // sum of min(j, n) x_j  -> mean busy agents
  double wait_weight = 0.0;  // sum over j >= n of x_j
  double queue_weighted = 0.0;  // sum over j > n of (j - n) x_j

  const auto rescale = [&](double by) {
    x /= by;
    norm /= by;
    busy_weighted /= by;
    wait_weight /= by;
    queue_weighted /= by;
  };

  std::uint64_t j = 0;
  while (true) {
    norm += x;
    busy_weighted += std::min(static_cast<double>(j), nn) * x;
    if (j >= n) {
      wait_weight += x;
      queue_weighted += static_cast<double>(j - n) * x;
    }
    // Past the agent boundary the death rate n + (j - n) theta grows without
    // bound while the birth rate is fixed, so the tail decays faster than
    // geometrically: stop once it cannot move any accumulator.
    if (j >= n && x < norm * 1e-16) break;
    const double down = std::min(static_cast<double>(j) + 1.0, nn) +
                        std::max(static_cast<double>(j) + 1.0 - nn, 0.0) * theta;
    x *= lambda / down;
    ++j;
    if (x > 1e250) rescale(1e250);
    if (j > 100'000'000) {
      throw std::runtime_error{"erlang_a: stationary distribution did not converge"};
    }
  }

  const double p_wait = wait_weight / norm;
  const double mean_queue = queue_weighted / norm;
  result.wait_probability = p_wait;
  result.mean_queue_length = mean_queue;
  result.abandon_probability = std::min(1.0, theta * mean_queue / lambda);
  // E[W] in mu = 1 units is E[Q] / lambda holds; scale back to seconds.
  result.mean_wait = Duration::from_seconds(mean_queue / lambda * h);
  result.agent_occupancy = busy_weighted / norm / nn;
  return result;
}

}  // namespace pbxcap::erlang
