#include "core/engset.hpp"

#include <cmath>
#include <stdexcept>

#include "core/erlang_b.hpp"

namespace pbxcap::erlang {
namespace {

// Time-congestion recurrence: B(0) = 1, and for j = 1..n
//   B(j) = (M - j + 1) a B(j-1) / (j + (M - j + 1) a B(j-1))
// where a is the offered intensity per idle source.
double engset_time_congestion(std::uint32_t sources, double alpha, std::uint32_t n) {
  if (n >= sources) return 0.0;  // every source can hold a channel: no blocking
  double b = 1.0;
  for (std::uint32_t j = 1; j <= n; ++j) {
    const double m = static_cast<double>(sources - j + 1);
    b = m * alpha * b / (static_cast<double>(j) + m * alpha * b);
  }
  return b;
}

}  // namespace

double engset_blocking(std::uint32_t sources, double per_source_erlangs, std::uint32_t n) {
  if (sources == 0) return 0.0;
  if (per_source_erlangs < 0.0 || !std::isfinite(per_source_erlangs)) {
    throw std::invalid_argument{"engset_blocking: per-source traffic must be non-negative"};
  }
  if (per_source_erlangs == 0.0) return 0.0;
  if (n == 0) return 1.0;
  // Call congestion (blocking experienced by an arriving call) equals time
  // congestion computed over the remaining M-1 sources.
  return engset_time_congestion(sources - 1, per_source_erlangs, n);
}

double engset_blocking_total(Erlangs a, std::uint32_t sources, std::uint32_t n) {
  const double load = a.value();
  if (load < 0.0 || !std::isfinite(load)) {
    throw std::invalid_argument{"engset_blocking_total: invalid offered traffic"};
  }
  if (load == 0.0) return 0.0;
  if (static_cast<double>(sources) <= load) {
    throw std::invalid_argument{
        "engset_blocking_total: population must exceed offered traffic in Erlangs"};
  }
  // Split A over M sources: per-idle-source intensity alpha with
  // M * alpha / (1 + alpha) = A  =>  alpha = A / (M - A).
  const double alpha = load / (static_cast<double>(sources) - load);
  return engset_blocking(sources, alpha, n);
}

}  // namespace pbxcap::erlang
