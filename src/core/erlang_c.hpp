// Erlang-C delay model (M/M/N queue, infinite waiting room).
//
// The paper's Asterisk deployment blocks on channel exhaustion (Erlang-B),
// but contact-center dimensioning — the model family the paper cites via
// Angus's "An introduction to Erlang B and Erlang C" — also needs the queued
// variant. Provided as part of the dimensioning toolkit.
#pragma once

#include <cstdint>

#include "core/traffic.hpp"
#include "util/time.hpp"

namespace pbxcap::erlang {

/// Probability an arriving call waits (finds all N servers busy).
/// Requires a < n for a stable queue; returns 1.0 when a >= n.
[[nodiscard]] double erlang_c(Erlangs a, std::uint32_t n);

/// Mean wait over all calls: W = C(a,n) * h / (n - a).
[[nodiscard]] Duration erlang_c_mean_wait(Erlangs a, std::uint32_t n, Duration mean_hold);

/// Service level: fraction of calls answered within `target_wait`.
///   SL = 1 - C(a,n) * exp(-(n - a) * t / h)
[[nodiscard]] double erlang_c_service_level(Erlangs a, std::uint32_t n, Duration mean_hold,
                                            Duration target_wait);

/// Smallest N achieving wait probability <= target (requires target in (0,1]).
[[nodiscard]] std::uint32_t agents_for_wait_probability(Erlangs a, double target);

}  // namespace pbxcap::erlang
