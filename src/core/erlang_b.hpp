// Erlang-B loss model (paper §III-B, Equation (2)).
//
//   P_b = (A^N / N!) / sum_{i=0..N} A^i / i!
//
// Direct evaluation overflows for the paper's ranges (A up to 240, N up to
// 300), so blocking is computed with the standard numerically stable
// recurrence
//
//   B(0, A) = 1
//   B(n, A) = A * B(n-1, A) / (n + A * B(n-1, A))
//
// which is exact (it is Equation (2) rewritten) and runs in O(N).
#pragma once

#include <cstdint>

#include "core/traffic.hpp"

namespace pbxcap::erlang {

/// Blocking probability for offered traffic `a` on `n` channels.
/// Domain: a >= 0. n = 0 yields 1 (every call blocked).
[[nodiscard]] double erlang_b(Erlangs a, std::uint32_t n);

/// Convenience overload on a raw Erlang value.
[[nodiscard]] inline double erlang_b(double a, std::uint32_t n) {
  return erlang_b(Erlangs{a}, n);
}

/// Smallest channel count N with erlang_b(a, N) <= target_pb.
/// target_pb must be in (0, 1]. Runs the recurrence once, O(N_answer).
[[nodiscard]] std::uint32_t channels_for_blocking(Erlangs a, double target_pb);

/// Largest offered traffic A with erlang_b(A, n) <= target_pb, via bisection
/// (erlang_b is strictly increasing in A for fixed n >= 1).
[[nodiscard]] Erlangs offered_load_for_blocking(std::uint32_t n, double target_pb,
                                                double tolerance = 1e-9);

/// Carried traffic A * (1 - P_b): the load the server actually serves.
[[nodiscard]] double carried_traffic(Erlangs a, std::uint32_t n);

/// Extended Erlang-B: a fraction `recall_factor` in [0,1) of blocked callers
/// immediately retries, inflating the offered load. Solved by fixed-point
/// iteration; models the "redial on busy" behaviour classic Erlang-B ignores.
/// Returns the blocking probability seen by attempts at the fixed point.
[[nodiscard]] double extended_erlang_b(Erlangs a, std::uint32_t n, double recall_factor,
                                       double tolerance = 1e-10);

}  // namespace pbxcap::erlang
