// Erlang-A abandonment model (Palm's M/M/N+M queue).
//
// Extends the Erlang-C delay system with exponentially impatient callers:
// each waiting caller abandons after an Exp(theta) patience, theta = 1 /
// mean_patience. Unlike Erlang-C the system is stable for any offered load
// (abandonment self-limits the queue), which is exactly what makes it the
// right analytic bracket for the ACD sweep's rho > 1 points.
//
// Solved exactly from the birth-death stationary distribution:
//   up-rate    lambda                     (Poisson arrivals)
//   down-rate  min(j, n) * mu + max(j - n, 0) * theta
// with the standard steady-state identities
//   P(wait)    = sum_{j >= n} pi_j                    (PASTA)
//   E[Q]       = sum_{j > n} (j - n) pi_j
//   P(abandon) = theta * E[Q] / lambda                (flow balance)
//   E[W]       = E[Q] / lambda                        (Little, all arrivals)
#pragma once

#include <cstdint>

#include "core/traffic.hpp"
#include "util/time.hpp"

namespace pbxcap::erlang {

/// Steady-state quantities of the M/M/N+M system.
struct ErlangAResult {
  double wait_probability{0.0};     // arriving call finds all N agents busy
  double abandon_probability{0.0};  // arriving call reneges before service
  Duration mean_wait{};             // E[W] over ALL arrivals (served + abandoned)
  double mean_queue_length{0.0};    // E[Q], callers waiting (excl. in service)
  double agent_occupancy{0.0};      // mean busy agents / N
};

/// Evaluates the Erlang-A model for offered load `a` = lambda * mean_hold on
/// `n` agents with exponential patience of the given mean. Throws
/// std::invalid_argument for non-finite/negative load, n == 0, or
/// non-positive hold/patience (use erlang_c for infinitely patient callers).
[[nodiscard]] ErlangAResult erlang_a(Erlangs a, std::uint32_t n, Duration mean_hold,
                                     Duration mean_patience);

}  // namespace pbxcap::erlang
