#include "core/erlang_b.hpp"

#include <cmath>
#include <stdexcept>

namespace pbxcap::erlang {

double erlang_b(Erlangs a, std::uint32_t n) {
  const double load = a.value();
  if (load < 0.0 || !std::isfinite(load)) {
    throw std::invalid_argument{"erlang_b: offered traffic must be finite and non-negative"};
  }
  if (load == 0.0) return 0.0;
  double b = 1.0;  // B(0, A)
  for (std::uint32_t i = 1; i <= n; ++i) {
    b = load * b / (static_cast<double>(i) + load * b);
  }
  return b;
}

std::uint32_t channels_for_blocking(Erlangs a, double target_pb) {
  if (!(target_pb > 0.0 && target_pb <= 1.0)) {
    throw std::invalid_argument{"channels_for_blocking: target_pb must be in (0,1]"};
  }
  const double load = a.value();
  if (load < 0.0 || !std::isfinite(load)) {
    throw std::invalid_argument{"channels_for_blocking: invalid offered traffic"};
  }
  if (load == 0.0) return 0;
  double b = 1.0;
  std::uint32_t n = 0;
  while (b > target_pb) {
    ++n;
    b = load * b / (static_cast<double>(n) + load * b);
    // The recurrence shrinks b toward 0 strictly once n exceeds A, so this
    // loop always terminates; the guard is a defensive backstop.
    if (n > 10'000'000) throw std::runtime_error{"channels_for_blocking: did not converge"};
  }
  return n;
}

Erlangs offered_load_for_blocking(std::uint32_t n, double target_pb, double tolerance) {
  if (!(target_pb > 0.0 && target_pb < 1.0)) {
    throw std::invalid_argument{"offered_load_for_blocking: target_pb must be in (0,1)"};
  }
  if (n == 0) return Erlangs{0.0};
  double lo = 0.0;
  double hi = static_cast<double>(n);
  while (erlang_b(Erlangs{hi}, n) < target_pb) hi *= 2.0;
  while (hi - lo > tolerance * (1.0 + hi)) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_b(Erlangs{mid}, n) < target_pb) lo = mid;
    else hi = mid;
  }
  return Erlangs{0.5 * (lo + hi)};
}

double carried_traffic(Erlangs a, std::uint32_t n) {
  return a.value() * (1.0 - erlang_b(a, n));
}

double extended_erlang_b(Erlangs a, std::uint32_t n, double recall_factor, double tolerance) {
  if (!(recall_factor >= 0.0 && recall_factor < 1.0)) {
    throw std::invalid_argument{"extended_erlang_b: recall_factor must be in [0,1)"};
  }
  double offered = a.value();
  double pb = erlang_b(Erlangs{offered}, n);
  for (int iter = 0; iter < 10'000; ++iter) {
    // Blocked * recall_factor re-enters the offered stream.
    const double next_offered = a.value() / (1.0 - recall_factor * pb);
    const double next_pb = erlang_b(Erlangs{next_offered}, n);
    const bool converged = std::fabs(next_pb - pb) < tolerance &&
                           std::fabs(next_offered - offered) < tolerance * (1.0 + offered);
    offered = next_offered;
    pb = next_pb;
    if (converged) return pb;
  }
  return pb;  // fixed point is a contraction for recall_factor < 1; best effort
}

}  // namespace pbxcap::erlang
