// Streaming summary statistics (Welford's online algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace pbxcap::stats {

/// Single-pass mean/variance/min/max accumulator. O(1) memory, numerically
/// stable for long runs (Welford recurrence, not sum-of-squares).
class Summary {
 public:
  void add(double x) noexcept;

  /// Adds the same value `n` times in O(1) (closed-form Welford batch; the
  /// fluid media path records one constant transit for a whole packet run).
  void add_repeated(double x, std::uint64_t n) noexcept;

  /// Merges another summary (parallel reduction; Chan et al. combination).
  void merge(const Summary& other) noexcept;

  void reset() noexcept { *this = Summary{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Sample variance (divisor n-1); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Population variance (divisor n).
  [[nodiscard]] double variance_population() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean: s / sqrt(n).
  [[nodiscard]] double stderr_mean() const noexcept;

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace pbxcap::stats
