// Confidence intervals for replicated-experiment means.
#pragma once

#include <cstdint>

namespace pbxcap::stats {

class Summary;

/// Two-sided confidence interval [lo, hi] for a mean.
struct Interval {
  double lo{0.0};
  double hi{0.0};
  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
  [[nodiscard]] double center() const noexcept { return (hi + lo) / 2.0; }
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }
};

/// Two-sided critical value of Student's t with `dof` degrees of freedom at
/// confidence `conf` in (0,1), e.g. conf=0.95. Computed by bisection on the
/// regularized incomplete beta CDF — exact to ~1e-8, no tables.
[[nodiscard]] double student_t_critical(std::uint64_t dof, double conf);

/// CDF of Student's t distribution.
[[nodiscard]] double student_t_cdf(double t, double dof);

/// Regularized incomplete beta function I_x(a,b) (continued fraction).
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// t-based CI for the mean of `s` (requires >= 2 samples; degenerate
/// single-point interval otherwise).
[[nodiscard]] Interval mean_confidence(const Summary& s, double conf = 0.95);

/// Wilson score interval for a binomial proportion (successes/trials) —
/// used for blocking-probability estimates, which are proportions.
[[nodiscard]] Interval proportion_confidence(std::uint64_t successes, std::uint64_t trials,
                                             double conf = 0.95);

}  // namespace pbxcap::stats
