// Event-rate measurement over the simulation clock.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/time.hpp"

namespace pbxcap::stats {

/// Counts events and reports the average rate over the observed interval.
/// Used for SIP messages/s and RTP packets/s figures (the paper's
/// "100 messages per second" per-call RTP rate).
class RateMeter {
 public:
  void record(TimePoint at, std::uint64_t n = 1) noexcept {
    if (count_ == 0) first_ = at;
    last_ = at;
    count_ += n;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Events per second over [first, horizon]. Pass the experiment horizon so
  /// quiet tails are included in the denominator. The span is floored at one
  /// simulator tick (1 ns): a burst recorded at a single instant reports a
  /// finite rate rather than silently collapsing to zero.
  [[nodiscard]] double rate_per_second(TimePoint horizon) const noexcept {
    if (count_ == 0) return 0.0;
    constexpr double kMinSpanSeconds = 1e-9;  // one Duration tick
    const double span = std::max((horizon - first_).to_seconds(), kMinSpanSeconds);
    return static_cast<double>(count_) / span;
  }

  [[nodiscard]] TimePoint first_event() const noexcept { return first_; }
  [[nodiscard]] TimePoint last_event() const noexcept { return last_; }

 private:
  std::uint64_t count_{0};
  TimePoint first_{};
  TimePoint last_{};
};

}  // namespace pbxcap::stats
