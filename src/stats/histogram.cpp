#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace pbxcap::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument{"Histogram: hi must exceed lo"};
  if (bins == 0) throw std::invalid_argument{"Histogram: need at least one bin"};
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ || other.hi_ != hi_) {
    throw std::invalid_argument{"Histogram::merge: incompatible binning"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const noexcept { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string() const {
  return util::format("[%.4g..%.4g) n=%llu p50=%.4g p95=%.4g p99=%.4g under=%llu over=%llu",
                      lo_, hi_, static_cast<unsigned long long>(total_), quantile(0.50),
                      quantile(0.95), quantile(0.99), static_cast<unsigned long long>(underflow_),
                      static_cast<unsigned long long>(overflow_));
}

}  // namespace pbxcap::stats
