// Fixed-width-bin histogram with quantile estimation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pbxcap::stats {

/// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
/// overflow buckets. Quantiles are estimated by linear interpolation within
/// the containing bin — adequate for latency/jitter distributions where bin
/// width is chosen well below the scale of interest.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

  /// q in [0,1]. Underflow samples count as `lo`, overflow as `hi`.
  [[nodiscard]] double quantile(double q) const;

  /// Compact one-line rendering "lo..hi n=... p50=... p95=... p99=...".
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

}  // namespace pbxcap::stats
