#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace pbxcap::stats {

void Summary::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::add_repeated(double x, std::uint64_t n) noexcept {
  if (n == 0) return;
  // Chan merge with a degenerate (zero-variance) summary of n copies of x.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(n);
  const double delta = x - mean_;
  const double n_total = na + nb;
  mean_ = n_ == 0 ? x : mean_ + delta * nb / n_total;
  m2_ += n_ == 0 ? 0.0 : delta * delta * na * nb / n_total;
  n_ += n;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::variance_population() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::stderr_mean() const noexcept {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace pbxcap::stats
