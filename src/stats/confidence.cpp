#include "stats/confidence.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace pbxcap::stats {
namespace {

// Lentz's continued-fraction evaluation for the incomplete beta function.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (dof <= 0.0) throw std::invalid_argument{"student_t_cdf: dof must be positive"};
  const double x = dof / (dof + t * t);
  const double p = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double student_t_critical(std::uint64_t dof, double conf) {
  if (dof == 0) throw std::invalid_argument{"student_t_critical: dof must be >= 1"};
  if (!(conf > 0.0 && conf < 1.0)) {
    throw std::invalid_argument{"student_t_critical: conf must be in (0,1)"};
  }
  const double target = 1.0 - (1.0 - conf) / 2.0;  // upper-tail quantile
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_cdf(hi, static_cast<double>(dof)) < target) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, static_cast<double>(dof)) < target) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-10) break;
  }
  return 0.5 * (lo + hi);
}

Interval mean_confidence(const Summary& s, double conf) {
  if (s.count() < 2) return {s.mean(), s.mean()};
  const double t = student_t_critical(s.count() - 1, conf);
  const double hw = t * s.stderr_mean();
  return {s.mean() - hw, s.mean() + hw};
}

Interval proportion_confidence(std::uint64_t successes, std::uint64_t trials, double conf) {
  if (trials == 0) return {0.0, 1.0};
  if (successes > trials) throw std::invalid_argument{"proportion_confidence: successes > trials"};
  // z from the normal approximation; t with huge dof converges to z.
  const double z = student_t_critical(1'000'000, conf);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {center - half, center + half};
}

}  // namespace pbxcap::stats
