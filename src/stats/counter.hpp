// Named monotonic counters, used by packet taps and protocol layers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pbxcap::stats {

/// A registry of named uint64 counters. Deterministic (ordered) iteration so
/// reports are stable across runs. Not thread-safe: each simulation run owns
/// its own registry.
class CounterSet {
 public:
  void increment(std::string_view name, std::uint64_t by = 1) {
    counters_[std::string{name}] += by;
  }

  [[nodiscard]] std::uint64_t value(std::string_view name) const {
    const auto it = counters_.find(std::string{name});
    return it == counters_.end() ? 0 : it->second;
  }

  void merge(const CounterSet& other) {
    for (const auto& [name, v] : other.counters_) counters_[name] += v;
  }

  void reset() { counters_.clear(); }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const noexcept {
    return counters_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace pbxcap::stats
