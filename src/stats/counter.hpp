// Named monotonic counters, used by packet taps and protocol layers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pbxcap::stats {

/// A registry of named uint64 counters. Deterministic (ordered) iteration so
/// reports are stable across runs. Not thread-safe: each simulation run owns
/// its own registry.
///
/// Legacy shim: new code should prefer telemetry::MetricsRegistry, whose
/// interned handles avoid per-update map lookups entirely. Lookups here use
/// transparent comparison (std::less<>) so a string is only materialised when
/// a genuinely new counter name is first seen.
class CounterSet {
 public:
  using Map = std::map<std::string, std::uint64_t, std::less<>>;

  void increment(std::string_view name, std::uint64_t by = 1) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second += by;
    } else {
      counters_.emplace(std::string{name}, by);
    }
  }

  [[nodiscard]] std::uint64_t value(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void merge(const CounterSet& other) {
    for (const auto& [name, v] : other.counters_) counters_[name] += v;
  }

  void reset() { counters_.clear(); }

  [[nodiscard]] const Map& all() const noexcept { return counters_; }

 private:
  Map counters_;
};

}  // namespace pbxcap::stats
