// Parameter sweeps with replications — the machinery behind Fig. 6.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/testbed.hpp"
#include "monitor/report.hpp"
#include "stats/confidence.hpp"
#include "stats/summary.hpp"

namespace pbxcap::exp {

/// Aggregate of all replications at one offered-load point.
struct SweepPoint {
  double offered_erlangs{0.0};
  stats::Summary blocking;      // one sample per replication
  stats::Summary mos;           // pooled per-replication means
  stats::Summary cpu_mean;      // per-replication mean CPU
  std::uint64_t calls_attempted{0};
  std::uint64_t calls_blocked{0};
  std::vector<monitor::ExperimentReport> replications;

  [[nodiscard]] double blocking_mean() const noexcept { return blocking.mean(); }
  [[nodiscard]] stats::Interval blocking_ci(double conf = 0.95) const {
    return stats::mean_confidence(blocking, conf);
  }
};

struct SweepConfig {
  TestbedConfig base;              // scenario.arrival_rate is overwritten per point
  std::vector<double> erlangs;     // offered loads to visit
  std::uint32_t replications{3};
  unsigned threads{0};             // 0 = default_threads()
};

/// Runs the full factorial (loads x replications), parallelized. Seeds are
/// derived deterministically from base.seed, point and replication indices.
[[nodiscard]] std::vector<SweepPoint> run_blocking_sweep(const SweepConfig& config);

}  // namespace pbxcap::exp
