// Report population shared by run_testbed and run_cluster.
//
// Both experiment paths must fill the same ExperimentReport the same way —
// historically the cluster path re-derived a subset by hand and silently
// left most fields zero (no CPU summary, no SIP census, no steady-state
// blocking, ...). The horizon heuristic had the same duplication problem.
// Everything either path derives from the run now lives here, once.
#pragma once

#include <cstdint>
#include <vector>

#include "loadgen/scenario.hpp"
#include "monitor/capture.hpp"
#include "monitor/report.hpp"

namespace pbxcap {
namespace loadgen {
class SipCaller;
class SipReceiver;
}  // namespace loadgen
namespace net {
class Link;
}
namespace pbx {
class AsteriskPbx;
}
namespace sim {
class Simulator;
}
}  // namespace pbxcap

namespace pbxcap::exp {

/// How long to run the simulator for one experiment: placement window, plus
/// the hold time scaled by the distribution-tail slack (deterministic holds
/// end exactly at window + h; stochastic models get 4x for the tail), plus
/// the caller-supplied drain for BYE handshakes and retransmission timers.
[[nodiscard]] Duration run_horizon(const loadgen::CallScenario& scenario, Duration drain);

/// One PBX's worth of observation sources. The captures may be null (the
/// corresponding census fields then stay zero for that backend).
struct BackendSources {
  const pbx::AsteriskPbx* pbx{nullptr};
  const monitor::SipCapture* sip{nullptr};
  const monitor::RtpCapture* rtp{nullptr};
};

/// Builds the full ExperimentReport from a finished run: call outcomes and
/// steady-state blocking from the caller's log, voice-quality summaries,
/// per-backend channel/CPU/RTP observations (summed or merged over the
/// fleet), the SIP message census, retransmission totals across all three
/// transaction layers, fault/overload counters, impairment drops over
/// `links`, and the DES event count. Call after finalize_remaining() and
/// after merging receiver-heard quality into the log.
[[nodiscard]] monitor::ExperimentReport build_report(
    const loadgen::CallScenario& scenario, std::uint64_t seed,
    const loadgen::SipCaller& caller, const loadgen::SipReceiver& receiver,
    const std::vector<BackendSources>& backends, const std::vector<const net::Link*>& links,
    const sim::Simulator& simulator);

/// Same, but with the DES event count supplied directly — a sharded run has
/// one simulator per shard and reports the sum.
[[nodiscard]] monitor::ExperimentReport build_report(
    const loadgen::CallScenario& scenario, std::uint64_t seed,
    const loadgen::SipCaller& caller, const loadgen::SipReceiver& receiver,
    const std::vector<BackendSources>& backends, const std::vector<const net::Link*>& links,
    std::uint64_t events_processed);

}  // namespace pbxcap::exp
