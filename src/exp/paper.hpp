// Paper-figure formatters: each function regenerates one table/figure of
// the evaluation section as a TextTable (and CSV via TextTable::to_csv).
#pragma once

#include <cstdint>
#include <vector>

#include "exp/sweep.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pbxcap::exp {

/// Fig. 3: Erlang-B blocking vs channel count for a family of loads.
/// One row per channel count in [n_lo, n_hi] step `n_step`; one column per
/// load in `erlangs`.
[[nodiscard]] util::TextTable fig3_erlang_b_curves(const std::vector<double>& erlangs,
                                                   std::uint32_t n_lo, std::uint32_t n_hi,
                                                   std::uint32_t n_step);

/// Fig. 6: measured blocking vs offered load, with Erlang-B overlays at the
/// given channel counts.
[[nodiscard]] util::TextTable fig6_empirical_vs_model(const std::vector<SweepPoint>& sweep,
                                                      const std::vector<std::uint32_t>& overlay_n);

/// Fig. 7: blocking vs calling fraction of a finite population, one column
/// per mean call duration.
[[nodiscard]] util::TextTable fig7_population_blocking(std::uint32_t population,
                                                       const std::vector<double>& fractions,
                                                       const std::vector<Duration>& durations,
                                                       std::uint32_t channels);

/// §IV headline: busy-hour dimensioning summary for a calls/hour volume.
[[nodiscard]] util::TextTable busy_hour_summary(double calls_per_hour, Duration mean_hold,
                                                const std::vector<std::uint32_t>& channel_options);

}  // namespace pbxcap::exp
