#include "exp/report_util.hpp"

#include <algorithm>

#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "net/link.hpp"
#include "pbx/asterisk_pbx.hpp"
#include "sim/simulator.hpp"

namespace pbxcap::exp {

Duration run_horizon(const loadgen::CallScenario& scenario, Duration drain) {
  // Hold tail: deterministic holds end exactly at window + h; stochastic
  // models need slack for the distribution's tail before the drain cutoff.
  const double hold_tail_factor =
      scenario.hold_model == sim::HoldTimeModel::kDeterministic ? 1.0 : 4.0;
  return scenario.placement_window +
         Duration::from_seconds(scenario.hold_time.to_seconds() * hold_tail_factor) + drain;
}

monitor::ExperimentReport build_report(const loadgen::CallScenario& scenario, std::uint64_t seed,
                                       const loadgen::SipCaller& caller,
                                       const loadgen::SipReceiver& receiver,
                                       const std::vector<BackendSources>& backends,
                                       const std::vector<const net::Link*>& links,
                                       const sim::Simulator& simulator) {
  return build_report(scenario, seed, caller, receiver, backends, links,
                      simulator.events_processed());
}

monitor::ExperimentReport build_report(const loadgen::CallScenario& scenario, std::uint64_t seed,
                                       const loadgen::SipCaller& caller,
                                       const loadgen::SipReceiver& receiver,
                                       const std::vector<BackendSources>& backends,
                                       const std::vector<const net::Link*>& links,
                                       std::uint64_t events_processed) {
  const monitor::CallLog& log = caller.log();
  monitor::ExperimentReport report;
  report.offered_erlangs = scenario.offered_erlangs();
  report.arrival_rate_per_s = scenario.arrival_rate_per_s;
  report.hold_time = scenario.hold_time;
  report.seed = seed;

  report.calls_attempted = log.attempted();
  report.calls_completed = log.completed();
  report.calls_blocked = log.blocked();
  report.calls_failed = log.failed();
  report.blocking_probability = log.blocking_probability();
  const TimePoint steady_from =
      TimePoint::at(std::min(scenario.hold_time, scenario.placement_window));
  report.blocking_probability_steady = log.blocking_probability_since(steady_from);
  report.calls_attempted_steady = log.attempted_since(steady_from);

  // CPU over the loaded steady interval: after the ramp (one hold time),
  // until the placement window closes. When holds outlast the window (short
  // smoke runs), fall back to the second half of the window so the interval
  // is never empty.
  Duration cpu_from_d = std::min(scenario.hold_time, scenario.placement_window);
  if (cpu_from_d >= scenario.placement_window) {
    cpu_from_d = Duration::nanos(scenario.placement_window.ns() / 2);
  }
  const TimePoint cpu_from = TimePoint::at(cpu_from_d);
  const TimePoint cpu_to = TimePoint::at(scenario.placement_window);

  report.sip_retransmissions =
      caller.transactions().total_retransmissions() + receiver.transactions().total_retransmissions();
  for (const BackendSources& backend : backends) {
    if (backend.pbx != nullptr) {
      const pbx::AsteriskPbx& pbx = *backend.pbx;
      report.channels_configured += pbx.channels().capacity();
      report.channels_peak += pbx.channels().peak();
      report.cpu_utilization.merge(pbx.cpu().utilization(cpu_from, cpu_to));
      report.rtp_relayed += pbx.rtp_relayed();
      report.transcoded_bridges += pbx.transcoded_bridges();
      report.transcoded_rtp += pbx.transcoded_rtp();
      report.sip_retransmissions += pbx.transactions().total_retransmissions();
      report.overload_rejections += pbx.overload_rejections();
      report.sip_queue_dropped += pbx.sip_queue_dropped();
      const pbx::AcdSubsystem& acd = pbx.acd();
      if (acd.enabled()) {
        for (std::size_t qi = 0; qi < acd.queue_count(); ++qi) {
          const pbx::AcdQueueStats& qs = acd.stats(qi);
          report.acd.offered += qs.offered;
          report.acd.queued += qs.queued;
          report.acd.served += qs.served;
          report.acd.abandoned += qs.abandoned;
          report.acd.timed_out += qs.timed_out;
          report.acd.voicemail += qs.voicemail;
          report.acd.blocked_full += qs.blocked_full;
          report.acd.announcements += qs.announcements;
          report.acd.serve_retries += qs.serve_retries;
          report.acd.serve_failures += qs.serve_failures;
          report.acd.wait_s.merge(qs.wait_s);
          report.acd.wait_served_s.merge(qs.wait_served_s);
          report.acd.busy_agent_s += qs.busy_agent_s;
          report.acd.agents += static_cast<std::uint32_t>(acd.agent_count(qi));
        }
      }
    }
    if (backend.sip != nullptr) {
      const monitor::SipCapture& sip = *backend.sip;
      report.sip_total += sip.total();
      report.sip_invite += sip.invites();
      report.sip_100 += sip.trying_100();
      report.sip_180 += sip.ringing_180();
      report.sip_200 += sip.ok_200();
      report.sip_ack += sip.acks();
      report.sip_bye += sip.byes();
      report.sip_errors += sip.errors();
    }
    if (backend.rtp != nullptr) report.rtp_packets_at_pbx += backend.rtp->packets_in();
  }

  report.mos = log.mos_summary();
  report.setup_delay_ms = log.setup_delay_summary();
  report.effective_loss = log.loss_summary();
  report.jitter_ms = log.jitter_summary();

  report.calls_retried = caller.retries();
  report.retries_rerouted = caller.retries_rerouted();
  report.codec_rejections_488 = receiver.rejected_488();
  for (const net::Link* link : links) {
    if (link == nullptr) continue;
    for (const net::NodeId end : {link->endpoint_a(), link->endpoint_b()}) {
      const net::LinkDirectionStats& stats = link->stats_from(end);
      report.link_dropped_impairment += stats.dropped_impairment;
      report.trunk_frames += stats.trunk_frames;
      report.trunk_mini_frames += stats.trunk_mini_frames;
    }
  }

  report.events_processed = events_processed;
  return report;
}

}  // namespace pbxcap::exp
