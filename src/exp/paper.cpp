#include "exp/paper.hpp"

#include "core/dimensioning.hpp"
#include "core/erlang_b.hpp"
#include "util/strings.hpp"

namespace pbxcap::exp {

using erlang::Erlangs;

util::TextTable fig3_erlang_b_curves(const std::vector<double>& erlangs, std::uint32_t n_lo,
                                     std::uint32_t n_hi, std::uint32_t n_step) {
  std::vector<std::string> header{"N"};
  for (const double a : erlangs) header.push_back(util::format("%.0f E", a));
  util::TextTable table{std::move(header)};
  for (std::uint32_t n = n_lo; n <= n_hi; n += n_step) {
    std::vector<std::string> row{util::format("%u", n)};
    for (const double a : erlangs) {
      row.push_back(util::format("%.4f%%", erlang::erlang_b(Erlangs{a}, n) * 100.0));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::TextTable fig6_empirical_vs_model(const std::vector<SweepPoint>& sweep,
                                        const std::vector<std::uint32_t>& overlay_n) {
  std::vector<std::string> header{"A (Erlangs)", "Empirical Pb", "Pb 95% CI"};
  for (const auto n : overlay_n) header.push_back(util::format("Erlang-B N=%u", n));
  util::TextTable table{std::move(header)};
  for (const auto& point : sweep) {
    const auto ci = point.blocking_ci();
    std::vector<std::string> row{
        util::format("%.0f", point.offered_erlangs),
        util::format("%.2f%%", point.blocking_mean() * 100.0),
        util::format("[%.2f%%, %.2f%%]", std::max(0.0, ci.lo) * 100.0, ci.hi * 100.0)};
    for (const auto n : overlay_n) {
      row.push_back(
          util::format("%.2f%%", erlang::erlang_b(Erlangs{point.offered_erlangs}, n) * 100.0));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::TextTable fig7_population_blocking(std::uint32_t population,
                                         const std::vector<double>& fractions,
                                         const std::vector<Duration>& durations,
                                         std::uint32_t channels) {
  std::vector<std::string> header{"Population %"};
  for (const auto d : durations) header.push_back(util::format("%.1f min", d.to_minutes()));
  util::TextTable table{std::move(header)};
  for (const double f : fractions) {
    std::vector<std::string> row{util::format("%.0f%%", f * 100.0)};
    for (const auto d : durations) {
      const auto point = erlang::evaluate_population({population, f, d, channels});
      row.push_back(util::format("%.2f%%", point.blocking_probability * 100.0));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::TextTable busy_hour_summary(double calls_per_hour, Duration mean_hold,
                                  const std::vector<std::uint32_t>& channel_options) {
  util::TextTable table{{"N (channels)", "offered (E)", "P_b", "carried (E)"}};
  const erlang::Workload workload{calls_per_hour, mean_hold};
  for (const auto n : channel_options) {
    const auto point = erlang::evaluate_capacity(workload, n);
    table.add_row({util::format("%u", n), util::format("%.1f", point.offered.value()),
                   util::format("%.2f%%", point.blocking_probability * 100.0),
                   util::format("%.1f", point.carried_erlangs)});
  }
  return table;
}

}  // namespace pbxcap::exp
