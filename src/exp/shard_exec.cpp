#include "exp/shard_exec.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/parallel.hpp"
#include "sim/profile.hpp"

namespace pbxcap::exp {

namespace {
// Rounds allowed at the horizon before declaring a livelock. Legitimate
// at-horizon chains are short (a fluid batch crossing twice, an event at
// exactly the horizon handing one message over); thousands of rounds mean
// model code keeps generating work at the same instant forever.
constexpr std::uint64_t kMaxHorizonRounds = 1000;
}  // namespace

ShardExecutor::ShardExecutor(std::vector<sim::Simulator*> sims, const ShardExecConfig& config)
    : sims_{std::move(sims)}, lookahead_ns_{config.lookahead.ns()} {
  if (sims_.empty()) throw std::invalid_argument{"ShardExecutor: need at least one shard"};
  for (const sim::Simulator* sim : sims_) {
    if (sim == nullptr) throw std::invalid_argument{"ShardExecutor: null shard simulator"};
  }
  if (lookahead_ns_ <= 0) {
    throw std::invalid_argument{
        "ShardExecutor: lookahead must be positive (a zero-delay cross-shard "
        "link admits no conservative window)"};
  }
  const unsigned requested = config.threads == 0 ? default_threads() : config.threads;
  workers_ = static_cast<unsigned>(
      std::min<std::size_t>(std::max(requested, 1u), sims_.size()));
  channels_.resize(sims_.size() * sims_.size());
  stats_.resize(sims_.size());
  clamped_by_src_.resize(sims_.size(), 0);
  events_base_.resize(sims_.size(), 0);
}

void ShardExecutor::post(std::size_t src, std::size_t dst, std::int64_t at_ns,
                         sim::Callback deliver) {
  if (src >= sims_.size() || dst >= sims_.size() || src == dst) {
    throw std::invalid_argument{"ShardExecutor::post: bad shard pair"};
  }
  // Causality clamp: a message may never land in the destination's past.
  // window_end_ns_ is stable for the duration of the window (only the
  // barrier completion step writes it), so reading it from a worker is safe.
  std::int64_t at = at_ns;
  if (at < window_end_ns_) {
    at = window_end_ns_;
    ++clamped_by_src_[src];
  }
  ++stats_[src].messages_out;
  channels_[src * sims_.size() + dst].push(at, std::move(deliver));
}

void ShardExecutor::run(TimePoint horizon) {
  horizon_ns_ = horizon.ns();
  const std::int64_t start = sims_.front()->now().ns();
  for (const sim::Simulator* sim : sims_) {
    if (sim->now().ns() != start) {
      throw std::invalid_argument{"ShardExecutor::run: shard clocks must agree at start"};
    }
  }
  if (horizon_ns_ < start) {
    throw std::invalid_argument{"ShardExecutor::run: horizon is in the past"};
  }
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    events_base_[s] = sims_[s]->events_processed();
  }

  if (sims_.size() == 1) {
    // Degenerate case: one shard is just a plain single-threaded run (no
    // windows, no barriers, nothing to post to).
    workers_ = 1;
    rounds_ = 1;
    window_end_ns_ = horizon_ns_;
    const auto t0 = std::chrono::steady_clock::now();
    sims_[0]->run_until(horizon);
    stats_[0].wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    stats_[0].events = sims_[0]->events_processed() - events_base_[0];
    return;
  }

  done_ = false;
  final_ = false;
  window_end_ns_ = start;
  advance_window();  // first window: [start or first-event jump, +lookahead)

  auto completion = [this]() noexcept { on_round(); };
  std::barrier<decltype(completion)> barrier{static_cast<std::ptrdiff_t>(workers_),
                                             completion};
  auto work = [&](unsigned w) {
    while (!done_) {
      for (std::size_t s = w; s < sims_.size(); s += workers_) run_shard_window(s);
      barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) pool.emplace_back(work, w);
  work(0);
  for (auto& t : pool) t.join();

  for (std::size_t s = 0; s < sims_.size(); ++s) {
    stats_[s].events = sims_[s]->events_processed() - events_base_[s];
  }
  if (error_) std::rethrow_exception(error_);
}

void ShardExecutor::run_shard_window(std::size_t s) noexcept {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Intermediate windows are exclusive of their end (all integer-ns
    // events with t < end), so a drained message at exactly `end` is still
    // strictly in this shard's future. The final window is the inclusive
    // run_until(horizon) the monolithic path performs.
    const std::int64_t target = final_ ? horizon_ns_ : window_end_ns_ - 1;
    sims_[s]->run_until(TimePoint::at(Duration::nanos(target)));
  } catch (...) {
    record_error(std::current_exception());
  }
  stats_[s].wall_s +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void ShardExecutor::on_round() noexcept {
  try {
    ++rounds_;
    {
      const std::scoped_lock lock{error_mutex_};
      if (error_) {
        done_ = true;
        return;
      }
    }
    const bool any = drain_all();
    if (final_) {
      if (!any) {
        done_ = true;
        return;
      }
      // Events at exactly the horizon handed work across the boundary; run
      // the horizon again so it fires, like a single event queue would.
      if (++horizon_rounds_ > kMaxHorizonRounds) {
        throw std::runtime_error{
            "ShardExecutor: cross-shard message livelock at the horizon"};
      }
      return;
    }
    advance_window();
  } catch (...) {
    record_error(std::current_exception());
    done_ = true;
  }
}

bool ShardExecutor::drain_all() {
  const std::size_t shard_count = sims_.size();
  bool any = false;
  // Destination-major, source-ascending: every destination schedules its
  // inbound messages in (src, FIFO) order, so the simulator's (time, seq)
  // tie-break yields the deterministic (at, src_shard, seq) merge.
  for (std::size_t dst = 0; dst < shard_count; ++dst) {
    for (std::size_t src = 0; src < shard_count; ++src) {
      sim::ShardChannel& channel = channels_[src * shard_count + dst];
      if (channel.empty()) continue;
      any = true;
      std::vector<sim::ShardMessage> messages = channel.drain();
      stats_[dst].messages_in += messages.size();
      const sim::CategoryScope cat_scope{*sims_[dst], sim::Category::kShardMailbox};
      for (sim::ShardMessage& msg : messages) {
        sims_[dst]->schedule_at(TimePoint::at(Duration::nanos(msg.at_ns)),
                                std::move(msg.deliver));
      }
    }
  }
  return any;
}

void ShardExecutor::advance_window() {
  std::int64_t next_event = sim::Simulator::kNoEvent;
  for (sim::Simulator* sim : sims_) next_event = std::min(next_event, sim->next_event_ns());
  // Everything already drained is inside the simulators, so next_event is a
  // complete lower bound on future activity anywhere.
  std::int64_t start = window_end_ns_;
  if (next_event > start) start = next_event;  // jump the global idle gap
  if (start >= horizon_ns_ || horizon_ns_ - start <= lookahead_ns_) {
    final_ = true;
    window_end_ns_ = horizon_ns_;
  } else {
    window_end_ns_ = start + lookahead_ns_;
  }
}

void ShardExecutor::record_error(std::exception_ptr err) noexcept {
  const std::scoped_lock lock{error_mutex_};
  if (!error_) error_ = err;
}

std::uint64_t ShardExecutor::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const ShardStats& s : stats_) total += s.events;
  return total;
}

std::uint64_t ShardExecutor::messages_clamped() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : clamped_by_src_) total += c;
  return total;
}

}  // namespace pbxcap::exp
