// Multi-server scaling experiment (paper §IV conclusion: "increasing the
// number of servers ... are also a possible alternative").
//
// Builds the Fig. 4 testbed with k Asterisk PBXs behind the switch and a
// caller bank fronted by one of two routing tiers:
//
//   * kDnsRotation — blind round-robin at attempt time (the paper's
//     DNS-rotation front end). With even splitting each server sees A/k
//     Erlangs on its own N channels, so cluster blocking follows
//     Erlang-B(A/k, N) — but a saturated or crashed backend keeps
//     receiving its 1/k share of the traffic.
//   * kDispatcher — a dispatch::Dispatcher node owning per-backend state:
//     pluggable policies (round-robin / least-loaded / weighted),
//     Retry-After-aware backoff, OPTIONS health probes and circuit
//     breaking, and failover rerouting of timed-out INVITEs. This is the
//     configuration that survives a crash_restart fault on one backend.
//
// Either way the run produces a full ExperimentReport (the same fields
// run_testbed fills, aggregated over the fleet) plus per-backend and
// dispatcher observations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dispatch/dispatcher.hpp"
#include "exp/testbed.hpp"
#include "fault/plan.hpp"
#include "monitor/report.hpp"
#include "stats/summary.hpp"
#include "telemetry/telemetry.hpp"

namespace pbxcap::exp {

enum class ClusterRouting : std::uint8_t { kDnsRotation, kDispatcher };

/// One fleet member. Heterogeneous clusters list one spec per server; the
/// homogeneous shorthand (servers x channels_per_server) builds these
/// automatically. weight 0 means "use the channel count" (so the weighted
/// policy splits load proportionally to capacity by default).
struct ServerSpec {
  std::uint32_t channels{165};
  std::uint32_t weight{0};
};

struct ClusterConfig {
  loadgen::CallScenario scenario;
  std::uint32_t servers{2};
  std::uint32_t channels_per_server{165};
  /// Heterogeneous fleet: when non-empty, overrides servers /
  /// channels_per_server (hosts are still named pbx<i>.unb.br).
  std::vector<ServerSpec> fleet;
  std::uint64_t seed{1};
  Duration drain{Duration::seconds(30)};

  /// Routing front end. kDnsRotation reproduces the original blind
  /// rotation; kDispatcher routes through dispatch::Dispatcher below.
  ClusterRouting routing{ClusterRouting::kDnsRotation};
  dispatch::DispatcherConfig dispatcher{};

  /// Applied to every backend (the per-backend knobs the overload bench
  /// uses: single-threaded SIP service model + 503/Retry-After gate).
  pbx::SipServiceConfig sip_service{};
  pbx::OverloadControlConfig overload{};

  /// Codec policy applied to every backend: when non-empty, overrides the
  /// PbxConfig default allowed payload-type set (e.g. {18} for a G.729-only
  /// fleet — the configuration where IAX2-style trunking pays most).
  std::vector<std::uint8_t> allowed_payload_types;

  /// ACD queues, replicated on every backend (each backend runs its own
  /// agent pool; the patience RNG seed is re-mixed per backend so shards
  /// stay deterministic at any worker count). Pair with scenario.acd to
  /// route a fraction of the offered calls at the queues.
  pbx::AcdConfig acd{};

  /// Hybrid fluid/packet media engine (off by default: exact per-packet
  /// simulation). Enables the 100k+ concurrent-call scaling points in
  /// bench_cluster_scaling.
  rtp::FluidConfig fluid;

  /// IAX2-style trunk aggregation window for the inter-PBX uplinks (zero =
  /// off). All concurrent calls' media crossing an uplink within one window
  /// share a single trunk frame (net/trunk.hpp): one meta header plus a
  /// 4-byte mini-frame per packet instead of full per-packet
  /// Ethernet/IP/UDP/RTP encapsulation — the classic IAX2 answer to G.729's
  /// 20-byte payloads drowning in 58 bytes of headers. Applies to the pbx
  /// uplinks in both monolithic and sharded runs; 20 ms (one ptime) is the
  /// natural setting.
  Duration trunk_window{Duration::zero()};

  /// Optional fault schedule. Link targets resolve to: client = the caller
  /// bank's access link, server = the receiver's, pbx = backend
  /// `fault_backend`'s uplink. `pbx stall`/`pbx crash` hit that backend too.
  const fault::FaultPlan* faults{nullptr};
  std::uint32_t fault_backend{0};

  /// Optional telemetry sink (owned by the caller, one per run). Adds
  /// per-backend registry metrics (routed calls, peaks, congestion, circuit
  /// opens, labelled by backend host) on top of the endpoint instrumentation.
  telemetry::Telemetry* telemetry{nullptr};

  /// Sharded parallel execution (off by default: the exact monolithic
  /// single-threaded run). When enabled, the cluster is partitioned into one
  /// shard per backend plus a hub shard (caller bank + switch + routing
  /// tier), each on its own sim::Simulator, synchronized conservatively with
  /// `lookahead` as the barrier window. Per-seed results are byte-identical
  /// for any `threads` value; they differ from the monolithic run because
  /// every pbx uplink's propagation delay is floored to `lookahead`.
  struct ShardConfig {
    bool enabled{false};
    /// Worker threads; 0 = auto (PBXCAP_THREADS / hardware concurrency).
    unsigned threads{0};
    /// Conservative lookahead = minimum cross-shard propagation delay.
    Duration lookahead{Duration::millis(1)};
  };
  ShardConfig shard;
};

/// Per-backend observations of one cluster run.
struct BackendObservation {
  std::string host;
  std::uint32_t channels{0};
  std::uint32_t peak_channels{0};
  std::uint64_t congestion{0};     // CDR CONGESTION count
  std::uint64_t rtp_relayed{0};
  std::uint64_t crashes{0};
  stats::Summary cpu_utilization;  // over the steady interval
  // Dispatcher-mode routing/health state (zero in DNS mode).
  std::uint64_t calls_routed{0};
  std::uint64_t probe_failures{0};
  std::uint64_t circuit_opens{0};
  dispatch::CircuitState final_circuit{dispatch::CircuitState::kClosed};
};

struct ClusterResult {
  monitor::ExperimentReport report;  // aggregate over the whole cluster
  std::vector<BackendObservation> backends;
  std::vector<std::uint32_t> peak_channels_per_server;
  std::vector<std::uint64_t> congestion_per_server;  // CDR CONGESTION counts

  /// Wire traffic offered onto the inter-PBX uplinks (all backends, both
  /// directions): the trunk ablation's denominators. With trunking on,
  /// packets count trunk shells, not the media frames inside them.
  std::uint64_t uplink_bytes{0};
  std::uint64_t uplink_packets{0};

  // Dispatcher totals (zero in DNS mode).
  std::uint64_t failovers{0};          // timed-out INVITEs rescued elsewhere
  std::uint64_t dispatch_rejected{0};  // picks with no eligible backend
  std::uint64_t probes_sent{0};
  std::uint64_t probe_failures{0};
  std::uint64_t circuit_opens{0};

  /// Per-shard observations of a sharded run (empty in monolithic mode).
  /// Shard 0 is the hub; shard 1+i is backend i. events / messages are
  /// deterministic per seed; wall_s is host time (imbalance diagnostics).
  struct ShardObservation {
    std::uint64_t events{0};
    std::uint64_t messages_in{0};
    std::uint64_t messages_out{0};
    double wall_s{0.0};
  };
  std::vector<ShardObservation> shards;
  unsigned shard_threads{0};            // worker count actually used
  std::uint64_t shard_rounds{0};        // barrier rounds executed
  std::uint64_t shard_clamped{0};       // messages raised to the causality bound

  /// Per-shard event-attribution profiles of a sharded run with profiling
  /// on (empty otherwise). Entry 0 is "hub"; entry 1+i is backend i's host.
  /// Deterministic per seed for any thread count (wall timing excluded).
  std::vector<telemetry::ShardProfile> shard_profiles;

  /// One merged Chrome/Perfetto trace of a sharded run with tracing on
  /// (empty otherwise): one trace process per shard, in shard order, so a
  /// call's journey reads across processes. Byte-identical per seed for any
  /// thread count.
  std::string merged_trace;
};

[[nodiscard]] ClusterResult run_cluster(const ClusterConfig& config);

/// Sharded implementation behind ClusterConfig::shard.enabled; run_cluster
/// dispatches here automatically — call directly only from tests.
[[nodiscard]] ClusterResult run_cluster_sharded(const ClusterConfig& config);

}  // namespace pbxcap::exp
