// Multi-server scaling experiment (paper §IV conclusion: "increasing the
// number of servers ... are also a possible alternative").
//
// Builds the Fig. 4 testbed with k Asterisk PBXs behind the switch and a
// caller bank that spreads calls round-robin across them (DNS-rotation
// front end). With even splitting, each server sees A/k Erlangs on its own
// N channels, so the cluster's blocking follows Erlang-B(A/k, N) — much
// better than one server with k*N channels would need to be provisioned
// piecewise, and directly comparable to the analytical prediction.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/testbed.hpp"
#include "monitor/report.hpp"

namespace pbxcap::exp {

struct ClusterConfig {
  loadgen::CallScenario scenario;
  std::uint32_t servers{2};
  std::uint32_t channels_per_server{165};
  std::uint64_t seed{1};
  Duration drain{Duration::seconds(30)};
};

struct ClusterResult {
  monitor::ExperimentReport report;       // aggregate over the whole cluster
  std::vector<std::uint32_t> peak_channels_per_server;
  std::vector<std::uint64_t> congestion_per_server;  // CDR CONGESTION counts
};

[[nodiscard]] ClusterResult run_cluster(const ClusterConfig& config);

}  // namespace pbxcap::exp
