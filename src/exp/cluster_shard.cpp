// Sharded cluster run: one simulator per PBX backend plus a hub shard,
// synchronized conservatively by exp::ShardExecutor.
//
// Partition (gated behind ClusterConfig::shard.enabled):
//
//   shard 0 (hub)      caller bank, receiver, switch, routing tier
//                      (dispatcher), client/server access links, the hub
//                      half of every pbx uplink, fluid engine, the caller-
//                      provided telemetry sink;
//   shard 1 + i        backend i: the AsteriskPbx, the pbx half of its
//                      uplink, its capture taps, a private Telemetry
//                      (registry + sampler, tracing off) merged after the
//                      run in shard order.
//
// The pbx uplink of Fig. 4 is split into two half-links, one per shard,
// each owning one direction's queue/impairment state (Link direction state
// is independent, so the split is exact). Remote hosts are PortalNodes:
// packets a Link would deliver to a portal become timestamped cross-shard
// messages; node ids are translated at the boundary so each shard's
// Network stays self-contained. Cross-shard propagation is floored to the
// executor lookahead (default 1 ms vs the monolithic 5 us) — that is the
// accuracy cost of the parallel mode, and the reason sharded results are
// compared across thread counts, not against the monolithic run.
//
// Determinism: the window schedule, drain order and id translation are all
// thread-count independent, so per-seed reports, exports and per-second
// series are byte-identical for any ClusterConfig::shard.threads value.
#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "exp/cluster.hpp"
#include "exp/report_util.hpp"
#include "exp/shard_exec.hpp"
#include "fault/injector.hpp"
#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "monitor/capture.hpp"
#include "net/network.hpp"
#include "net/portal.hpp"
#include "net/switch_node.hpp"
#include "net/trunk.hpp"
#include "rtp/fluid.hpp"
#include "sim/simulator.hpp"
#include "telemetry/export.hpp"
#include "util/strings.hpp"

namespace pbxcap::exp {

namespace {

/// Node-id translation table for one hub <-> backend boundary.
struct ShardIdMap {
  // Hub-side ids.
  net::NodeId hub_caller{net::kInvalidNode};
  net::NodeId hub_receiver{net::kInvalidNode};
  net::NodeId hub_dispatcher{net::kInvalidNode};
  net::NodeId hub_switch{net::kInvalidNode};
  net::NodeId hub_portal{net::kInvalidNode};  // P_i, stands in for the pbx
  // Backend-side ids.
  net::NodeId be_caller{net::kInvalidNode};
  net::NodeId be_receiver{net::kInvalidNode};
  net::NodeId be_dispatcher{net::kInvalidNode};
  net::NodeId be_portal{net::kInvalidNode};  // S_i, stands in for the switch
  net::NodeId be_pbx{net::kInvalidNode};

  [[nodiscard]] net::NodeId to_backend(net::NodeId hub_id) const {
    if (hub_id == hub_caller) return be_caller;
    if (hub_id == hub_receiver) return be_receiver;
    if (hub_id == hub_dispatcher) return be_dispatcher;
    throw std::logic_error{"cluster_shard: untranslatable hub node id"};
  }

  [[nodiscard]] net::NodeId to_hub(net::NodeId be_id) const {
    if (be_id == be_caller) return hub_caller;
    if (be_id == be_receiver) return hub_receiver;
    if (be_id == be_dispatcher) return hub_dispatcher;
    throw std::logic_error{"cluster_shard: untranslatable backend node id"};
  }
};

/// Shard 0: everything except the PBXs.
struct HubShard {
  sim::Simulator sim;
  net::Network net;
  sip::HostResolver resolver;
  rtp::SsrcAllocator ssrcs;
  net::SwitchNode lan_switch{"switch"};
  std::vector<std::unique_ptr<net::PortalNode>> portals;  // P_i per backend
  std::vector<net::Link*> portal_links;                   // hub half of each uplink
  std::unique_ptr<loadgen::SipCaller> caller;
  std::unique_ptr<loadgen::SipReceiver> receiver;
  net::Link* client_link{nullptr};
  net::Link* server_link{nullptr};
  std::optional<dispatch::Dispatcher> dispatcher;
  rtp::FluidEngine fluid;
  std::optional<fault::FaultInjector> injector;

  HubShard(sim::Random impairment, const rtp::FluidConfig& fluid_cfg)
      : net{sim, std::move(impairment)}, fluid{sim, fluid_cfg} {}
};

/// Shard 1 + i: one backend PBX with its half of the uplink.
struct BackendShard {
  sim::Simulator sim;
  net::Network net;
  sip::HostResolver resolver;
  net::PortalNode to_switch{"portal-switch"};
  // Unlinked stand-ins so the resolver has ids for the remote SIP hosts;
  // they never receive locally (the pbx is single-homed onto the uplink).
  net::PortalNode caller_stub{"stub-sipp-client"};
  net::PortalNode receiver_stub{"stub-sipp-server"};
  net::PortalNode dispatcher_stub{"stub-dispatcher"};
  std::unique_ptr<pbx::AsteriskPbx> pbx;
  net::Link* uplink{nullptr};  // pbx half of the uplink
  std::unique_ptr<monitor::SipCapture> sip_capture;
  std::unique_ptr<monitor::RtpCapture> rtp_capture;
  telemetry::Telemetry telemetry;  // private; merged post-run
  std::optional<fault::FaultInjector> injector;

  BackendShard(sim::Random impairment, const telemetry::Config& tel_cfg)
      : net{sim, std::move(impairment)}, telemetry{tel_cfg} {}
};

[[nodiscard]] Duration max_duration(Duration a, Duration b) noexcept {
  return a.ns() < b.ns() ? b : a;
}

}  // namespace

ClusterResult run_cluster_sharded(const ClusterConfig& config) {
  std::vector<ServerSpec> fleet = config.fleet;
  if (fleet.empty()) {
    if (config.servers == 0) {
      throw std::invalid_argument{"run_cluster_sharded: need at least one server"};
    }
    fleet.assign(config.servers, ServerSpec{config.channels_per_server, 0});
  }

  // RNG fork order mirrors run_cluster's first two forks exactly, so the
  // caller's arrival stream (and every monolithic-comparable aggregate that
  // follows from it) is seed-compatible; the per-backend impairment streams
  // come after and are sharded-mode-only.
  sim::Random master{config.seed};
  sim::Random hub_impairment = master.fork();
  sim::Random arrival_rng = master.fork();

  telemetry::Telemetry* tel = config.telemetry;
  const bool tel_on = tel != nullptr && tel->enabled();
  telemetry::Config backend_tel_cfg;
  backend_tel_cfg.enabled = tel_on;
  // Backend shards mirror the hub sink's tracing/profiling switches: their
  // span rings become per-shard processes of the merged trace, and their
  // profiles per-shard rows of the attribution export.
  backend_tel_cfg.tracing = tel_on && tel->config().tracing;
  backend_tel_cfg.trace_capacity = backend_tel_cfg.tracing ? tel->config().trace_capacity : 1;
  backend_tel_cfg.profiling = tel_on && tel->config().profiling;
  backend_tel_cfg.profile_sample_period =
      tel_on ? tel->config().profile_sample_period : telemetry::Config{}.profile_sample_period;
  backend_tel_cfg.sample_period = tel_on ? tel->config().sample_period : Duration::seconds(1);

  HubShard hub{std::move(hub_impairment), config.fluid};
  std::vector<std::unique_ptr<BackendShard>> backends;
  backends.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    backends.push_back(std::make_unique<BackendShard>(master.fork(), backend_tel_cfg));
  }

  // Cross-shard links: propagation floored to the lookahead so every
  // boundary message lands at least one window ahead (the conservative
  // synchronization contract).
  net::LinkConfig cross_cfg{};
  cross_cfg.propagation = max_duration(cross_cfg.propagation, config.shard.lookahead);
  cross_cfg.trunk_window = config.trunk_window;

  // ---- hub topology ----
  hub.net.attach(hub.lan_switch);
  std::vector<std::string> pbx_hosts;
  std::vector<dispatch::BackendConfig> backend_configs;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string host = util::format("pbx%u.unb.br", static_cast<unsigned>(i));
    pbx_hosts.push_back(host);
    backend_configs.push_back(
        {host, fleet[i].weight != 0 ? fleet[i].weight : fleet[i].channels});
    auto portal = std::make_unique<net::PortalNode>(util::format("portal-%s", host.c_str()));
    hub.net.attach(*portal);
    hub.portal_links.push_back(&hub.net.connect(*portal, hub.lan_switch, cross_cfg));
    hub.resolver.add(host, portal->id());
    hub.portals.push_back(std::move(portal));
  }

  hub.caller = std::make_unique<loadgen::SipCaller>("sipp-client.unb.br", pbx_hosts, hub.sim,
                                                    hub.resolver, hub.ssrcs, config.scenario,
                                                    std::move(arrival_rng));
  hub.receiver = std::make_unique<loadgen::SipReceiver>("sipp-server.unb.br", hub.sim,
                                                        hub.resolver, hub.ssrcs,
                                                        config.scenario);
  hub.net.attach(*hub.caller);
  hub.net.attach(*hub.receiver);
  hub.client_link = &hub.net.connect(*hub.caller, hub.lan_switch, {});
  hub.server_link = &hub.net.connect(*hub.receiver, hub.lan_switch, {});
  hub.caller->bind();
  hub.receiver->bind();

  if (config.fluid.enabled) {
    hub.fluid.watch_link(*hub.client_link);
    hub.fluid.watch_link(*hub.server_link);
    for (net::Link* link : hub.portal_links) hub.fluid.watch_link(*link);
    hub.caller->set_fluid_engine(&hub.fluid);
    hub.receiver->set_fluid_engine(&hub.fluid);
  }

  if (config.routing == ClusterRouting::kDispatcher) {
    hub.dispatcher.emplace("dispatcher.unb.br", backend_configs, config.dispatcher, hub.sim,
                           hub.resolver);
    hub.net.attach(*hub.dispatcher);
    hub.net.connect(*hub.dispatcher, hub.lan_switch, {});
    hub.dispatcher->bind();
    hub.caller->set_dispatcher(&*hub.dispatcher);
  }

  // ---- backend topologies ----
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    BackendShard& be = *backends[i];
    be.net.attach(be.to_switch);
    be.net.attach(be.caller_stub);
    be.net.attach(be.receiver_stub);
    be.net.attach(be.dispatcher_stub);
    be.resolver.add(hub.caller->sip_host(), be.caller_stub.id());
    be.resolver.add(hub.receiver->sip_host(), be.receiver_stub.id());
    if (hub.dispatcher) be.resolver.add(hub.dispatcher->sip_host(), be.dispatcher_stub.id());

    pbx::PbxConfig pbx_config;
    pbx_config.host = pbx_hosts[i];
    pbx_config.max_channels = fleet[i].channels;
    pbx_config.sip_service = config.sip_service;
    pbx_config.overload = config.overload;
    if (!config.allowed_payload_types.empty()) {
      pbx_config.allowed_payload_types = config.allowed_payload_types;
    }
    pbx_config.acd = config.acd;
    // Same per-backend seed mix as the monolithic run: shard results must be
    // byte-identical to it (and to themselves at any worker count).
    pbx_config.acd.seed = config.acd.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    be.pbx = std::make_unique<pbx::AsteriskPbx>(pbx_config, be.sim, be.resolver);
    be.net.attach(*be.pbx);
    be.uplink = &be.net.connect(*be.pbx, be.to_switch, cross_cfg);
    be.pbx->bind();
    be.pbx->dialplan().add("recv-", hub.receiver->sip_host());
    be.pbx->dialplan().add("queue-", hub.receiver->sip_host());

    be.sip_capture = std::make_unique<monitor::SipCapture>(be.pbx->id());
    be.rtp_capture = std::make_unique<monitor::RtpCapture>(be.pbx->id());
    be.sip_capture->attach(be.net);
    be.rtp_capture->attach(be.net);
  }

  // ---- telemetry ----
  if (tel_on) {
    hub.caller->set_telemetry(tel);
    hub.receiver->set_telemetry(tel);
    auto& sampler = tel->sampler();
    if (hub.dispatcher) {
      dispatch::Dispatcher* d = &*hub.dispatcher;
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        sampler.add_gauge(util::format("dispatcher_occupancy_pbx%u", static_cast<unsigned>(i)),
                          [d, i] { return static_cast<double>(d->occupancy(i)); });
      }
      // Routing-tier health per second (mirrors run_cluster's columns).
      sampler.add_rate("dispatch_picks_per_s",
                       [d] { return static_cast<double>(d->picks_total()); });
      sampler.add_gauge("dispatch_open_circuits",
                        [d] { return static_cast<double>(d->open_circuits()); });
      sampler.add_gauge("dispatch_benched_backends", [d, &hub] {
        return static_cast<double>(d->benched_backends(hub.sim.now()));
      });
    }
    if (config.fluid.enabled) {
      hub.fluid.set_boundary_period(tel->config().sample_period);
      sampler.set_pre_sample_hook([&hub] { hub.fluid.flush_all(); });
    }
    sampler.start(hub.sim, tel->config().sample_period);
    if (tel->profiler() != nullptr) tel->profiler()->attach(hub.sim);

    for (std::size_t i = 0; i < fleet.size(); ++i) {
      BackendShard& be = *backends[i];
      be.pbx->set_telemetry(&be.telemetry);
      pbx::AsteriskPbx* pbx = be.pbx.get();
      be.telemetry.sampler().add_gauge(
          util::format("active_channels_pbx%u", static_cast<unsigned>(i)),
          [pbx] { return static_cast<double>(pbx->channels().in_use()); });
      be.telemetry.sampler().start(be.sim, tel->config().sample_period);
      if (be.telemetry.profiler() != nullptr) be.telemetry.profiler()->attach(be.sim);
    }
  }

  // ---- fault injection ----
  // Same plan armed once per shard that owns a target half: link events on
  // the pbx uplink apply to both halves (each half carries one direction),
  // client/server link and pbx host events apply where those objects live.
  const std::size_t fb = std::min<std::size_t>(config.fault_backend, fleet.size() - 1);
  if (config.faults != nullptr && !config.faults->empty()) {
    hub.injector.emplace(hub.sim, *config.faults,
                         fault::FaultTargets{hub.client_link, hub.server_link,
                                             hub.portal_links[fb], nullptr});
    if (config.fluid.enabled) {
      hub.injector->set_pre_apply([&hub] { hub.fluid.on_transient(); });
    }
    if (tel_on) hub.injector->set_tracer(tel->tracer());
    hub.injector->arm();

    BackendShard& be = *backends[fb];
    be.injector.emplace(be.sim, *config.faults,
                        fault::FaultTargets{nullptr, nullptr, be.uplink, be.pbx.get()});
    be.injector->set_tracer(be.telemetry.tracer());
    be.injector->arm();
  }

  // ---- executor + boundary conduits ----
  std::vector<sim::Simulator*> sims;
  sims.push_back(&hub.sim);
  for (auto& be : backends) sims.push_back(&be->sim);
  ShardExecConfig exec_cfg;
  exec_cfg.threads = config.shard.threads;
  exec_cfg.lookahead = config.shard.lookahead;
  ShardExecutor exec{sims, exec_cfg};

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    BackendShard& be = *backends[i];
    ShardIdMap map;
    map.hub_caller = hub.caller->id();
    map.hub_receiver = hub.receiver->id();
    map.hub_dispatcher = hub.dispatcher ? hub.dispatcher->id() : net::kInvalidNode;
    map.hub_switch = hub.lan_switch.id();
    map.hub_portal = hub.portals[i]->id();
    map.be_caller = be.caller_stub.id();
    map.be_receiver = be.receiver_stub.id();
    map.be_dispatcher = be.dispatcher_stub.id();
    map.be_portal = be.to_switch.id();
    map.be_pbx = be.pbx->id();
    const std::size_t backend_shard = i + 1;

    // hub -> backend: the packet was heading for portal P_i; it enters the
    // backend shard off the uplink as a delivery to the pbx.
    hub.net.set_remote_sink(
        map.hub_portal,
        [&exec, map, backend_shard, net = &be.net](net::Packet&& pkt, net::NodeId /*from*/,
                                                   TimePoint deliver_at) {
          if (pkt.kind == net::PacketKind::kTrunk) {
            // Trunk shell off the hub half of the uplink: translate every
            // aggregated frame like a bare delivery; the shell itself is
            // link-local framing and just needs backend-valid endpoints.
            net::remap_trunk_frames(pkt, [&map](net::Packet& inner) {
              inner.src = map.to_backend(inner.src);
              inner.dst = map.be_pbx;
            });
            pkt.src = map.be_portal;
            pkt.dst = map.be_pbx;
          } else {
            pkt.src = map.to_backend(pkt.src);
            pkt.dst = map.be_pbx;
          }
          exec.post(0, backend_shard, deliver_at.ns(),
                    [net, p = std::move(pkt), from = map.be_portal] {
                      net->deliver(p, from, p.dst);
                    });
        });

    // backend -> hub: the packet was heading for portal S_i; it enters the
    // hub shard off the uplink as a delivery to the switch, which re-routes
    // by dst (paying its processing delay) exactly as in the monolithic run.
    be.net.set_remote_sink(
        map.be_portal,
        [&exec, map, backend_shard, net = &hub.net](net::Packet&& pkt, net::NodeId /*from*/,
                                                    TimePoint deliver_at) {
          if (pkt.src != map.be_pbx) {
            throw std::logic_error{"cluster_shard: unexpected backend egress source"};
          }
          pkt.src = map.hub_portal;
          if (pkt.kind == net::PacketKind::kTrunk) {
            // The shell is unwrapped at the hub switch; each aggregated
            // frame then re-routes by its own translated dst.
            net::remap_trunk_frames(pkt, [&map](net::Packet& inner) {
              inner.src = map.hub_portal;
              inner.dst = map.to_hub(inner.dst);
            });
            pkt.dst = map.hub_switch;
          } else {
            pkt.dst = map.to_hub(pkt.dst);
          }
          exec.post(backend_shard, 0, deliver_at.ns(),
                    [net, p = std::move(pkt), from = map.hub_portal, to = map.hub_switch] {
                      net->deliver(p, from, to);
                    });
        });
  }

  // ---- run ----
  if (hub.dispatcher) hub.dispatcher->start();
  hub.fluid.start();
  hub.caller->start();
  exec.run(TimePoint::at(run_horizon(config.scenario, config.drain)));
  hub.caller->finalize_remaining();
  if (tel_on) {
    tel->sampler().stop();
    for (auto& be : backends) be->telemetry.sampler().stop();
  }
  if (tel_on && tel->profiler() != nullptr) tel->profiler()->detach();
  if (tel_on) {
    for (auto& be : backends) {
      if (be->telemetry.profiler() != nullptr) be->telemetry.profiler()->detach();
    }
  }

  // ---- epilogue (single-threaded, same shape as run_cluster's) ----
  for (auto& record : hub.caller->log().records_mutable()) {
    if (const auto* q = hub.receiver->finished(record.call_index)) {
      record.mos_callee_heard = q->mos;
      record.loss_callee_heard = q->effective_loss;
      record.jitter_callee_heard = q->jitter;
      record.rtp_received_callee = q->rtp_received;
    }
  }

  std::vector<BackendSources> sources;
  std::vector<const net::Link*> links{hub.client_link, hub.server_link};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const BackendShard& be = *backends[i];
    sources.push_back({be.pbx.get(), be.sip_capture.get(), be.rtp_capture.get()});
    links.push_back(hub.portal_links[i]);  // hub half: switch->pbx direction
    links.push_back(be.uplink);            // pbx half: pbx->switch direction
  }

  ClusterResult result;
  result.report = build_report(config.scenario, config.seed, *hub.caller, *hub.receiver,
                               sources, links, exec.total_events());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    // Each uplink half transmits one direction; summing both endpoints of
    // both halves counts each direction exactly once.
    for (const net::Link* link : {static_cast<const net::Link*>(hub.portal_links[i]),
                                  static_cast<const net::Link*>(backends[i]->uplink)}) {
      for (const net::NodeId end : {link->endpoint_a(), link->endpoint_b()}) {
        result.uplink_bytes += link->stats_from(end).bytes_sent;
        result.uplink_packets += link->stats_from(end).packets_sent;
      }
    }
  }

  Duration cpu_from_d =
      std::min(config.scenario.hold_time, config.scenario.placement_window);
  if (cpu_from_d >= config.scenario.placement_window) {
    cpu_from_d = Duration::nanos(config.scenario.placement_window.ns() / 2);
  }
  const TimePoint cpu_from = TimePoint::at(cpu_from_d);
  const TimePoint cpu_to = TimePoint::at(config.scenario.placement_window);

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const pbx::AsteriskPbx& pbx = *backends[i]->pbx;
    BackendObservation obs;
    obs.host = pbx_hosts[i];
    obs.channels = pbx.channels().capacity();
    obs.peak_channels = pbx.channels().peak();
    obs.congestion = pbx.cdrs().count(pbx::Disposition::kCongestion);
    obs.rtp_relayed = pbx.rtp_relayed();
    obs.crashes = pbx.crashes();
    obs.cpu_utilization = pbx.cpu().utilization(cpu_from, cpu_to);
    if (hub.dispatcher) {
      const dispatch::BackendStats ds = hub.dispatcher->backend_stats(i);
      obs.calls_routed = ds.calls_routed;
      obs.probe_failures = ds.probe_failures;
      obs.circuit_opens = ds.circuit_opens;
      obs.final_circuit = ds.circuit;
    }
    result.backends.push_back(obs);
    result.peak_channels_per_server.push_back(obs.peak_channels);
    result.congestion_per_server.push_back(obs.congestion);
  }
  if (hub.dispatcher) {
    result.failovers = hub.caller->failovers();
    result.dispatch_rejected = hub.dispatcher->picks_rejected();
    result.probes_sent = hub.dispatcher->probes_sent();
    result.probe_failures = hub.dispatcher->probe_failures();
    result.circuit_opens = hub.dispatcher->circuit_opens();
  }

  if (tel_on) {
    // Fold the backend shards' private registries and samplers into the
    // caller's sink, in shard order — the combined export is deterministic
    // for any thread count.
    for (auto& be : backends) {
      tel->registry().absorb(be->telemetry.registry());
      tel->sampler().merge_columns(be->telemetry.sampler());
    }
    auto& reg = tel->registry();
    for (const BackendObservation& obs : result.backends) {
      reg.counter("pbxcap_cluster_calls_routed_total", {{"backend", obs.host}},
                  "Calls the routing tier dispatched to each backend")
          .add(obs.calls_routed);
      reg.counter("pbxcap_cluster_congestion_total", {{"backend", obs.host}},
                  "Channel-exhaustion rejections per backend")
          .add(obs.congestion);
      reg.counter("pbxcap_cluster_circuit_opens_total", {{"backend", obs.host}},
                  "Circuit-breaker ejections per backend")
          .add(obs.circuit_opens);
      reg.gauge("pbxcap_cluster_peak_channels", {{"backend", obs.host}},
                "Peak concurrent channels per backend")
          .set(static_cast<double>(obs.peak_channels));
    }
    reg.counter("pbxcap_cluster_failovers_total", {},
                "Timed-out INVITEs rescued onto a surviving backend")
        .add(result.failovers);
    reg.counter("pbxcap_cluster_dispatch_rejected_total", {},
                "Calls with no eligible backend at pick time")
        .add(result.dispatch_rejected);
    reg.counter("pbxcap_cluster_probes_total", {}, "Health probes sent").add(result.probes_sent);
    reg.counter("pbxcap_cluster_probe_failures_total", {}, "Health probes failed")
        .add(result.probe_failures);
    if (hub.dispatcher) {
      reg.counter("pbxcap_dispatch_picks_total", {},
                  "Successful backend picks (initial routes, retries, failovers)")
          .add(hub.dispatcher->picks_total());
      reg.gauge("pbxcap_dispatch_benched_backends", {},
                "Backends on 503 Retry-After backoff at run end")
          .set(static_cast<double>(hub.dispatcher->benched_backends(hub.sim.now())));
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        reg.gauge("pbxcap_dispatch_circuit_state", {{"backend", pbx_hosts[i]}},
                  "Circuit-breaker state (0 closed, 1 open, 2 half-open)")
            .set(static_cast<double>(hub.dispatcher->circuit(i)));
      }
    }

    // Per-shard event attribution: hub first, then backends in shard order,
    // so the export (and the hub-share headline) is thread-count invariant.
    if (tel->profiler() != nullptr) {
      result.shard_profiles.push_back({"hub", tel->profiler()->snapshot()});
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        result.shard_profiles.push_back(
            {pbx_hosts[i], backends[i]->telemetry.profiler()->snapshot()});
      }
    }

    // One Perfetto trace for the whole cluster: process 1 = hub, process
    // 2+i = backend i. A failed-over call reads left to right across the
    // hub's journey track and both backends' transaction tracks.
    if (tel->tracer() != nullptr) {
      std::vector<telemetry::TraceProcess> processes;
      processes.push_back({"hub", tel->tracer()});
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        processes.push_back({pbx_hosts[i], backends[i]->telemetry.tracer()});
      }
      result.merged_trace = telemetry::to_chrome_trace_merged(processes);
    }
  }

  result.shard_threads = exec.workers();
  result.shard_rounds = exec.rounds();
  result.shard_clamped = exec.messages_clamped();
  for (const ShardExecutor::ShardStats& s : exec.stats()) {
    result.shards.push_back({s.events, s.messages_in, s.messages_out, s.wall_s});
  }
  return result;
}

}  // namespace pbxcap::exp
