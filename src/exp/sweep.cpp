#include "exp/sweep.hpp"

#include "exp/parallel.hpp"

namespace pbxcap::exp {

std::vector<SweepPoint> run_blocking_sweep(const SweepConfig& config) {
  const std::size_t points = config.erlangs.size();
  const std::size_t reps = config.replications;
  const std::size_t jobs = points * reps;
  std::vector<monitor::ExperimentReport> reports(jobs);

  // threads == 0 means "auto"; parallel_for owns that convention now.
  parallel_for(jobs, config.threads, [&](std::size_t job) {
    const std::size_t point = job / reps;
    TestbedConfig tb = config.base;
    const Duration hold = tb.scenario.hold_time;
    tb.scenario.arrival_rate_per_s = config.erlangs[point] / hold.to_seconds();
    // Spread seeds so replications and points are independent streams.
    tb.seed = config.base.seed + 0x9e3779b9ULL * (job + 1);
    reports[job] = run_testbed(tb);
  });

  std::vector<SweepPoint> out(points);
  for (std::size_t point = 0; point < points; ++point) {
    SweepPoint& sp = out[point];
    sp.offered_erlangs = config.erlangs[point];
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto& report = reports[point * reps + rep];
      sp.blocking.add(report.blocking_probability);
      if (!report.mos.empty()) sp.mos.add(report.mos.mean());
      if (!report.cpu_utilization.empty()) sp.cpu_mean.add(report.cpu_utilization.mean());
      sp.calls_attempted += report.calls_attempted;
      sp.calls_blocked += report.calls_blocked;
      sp.replications.push_back(report);
    }
  }
  return out;
}

}  // namespace pbxcap::exp
