#include "exp/testbed.hpp"

#include <algorithm>
#include <optional>

#include "fault/injector.hpp"
#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "monitor/capture.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"

namespace pbxcap::exp {

monitor::ExperimentReport run_testbed(const TestbedConfig& config, WifiObservations* wifi_out) {
  sim::Simulator simulator;
  sim::Random master{config.seed};
  sim::Random impairment_rng = master.fork();
  sim::Random arrival_rng = master.fork();

  net::Network network{simulator, impairment_rng};
  sip::HostResolver resolver;
  rtp::SsrcAllocator ssrcs;

  net::SwitchNode lan_switch{"switch"};
  pbx::AsteriskPbx pbx{config.pbx, simulator, resolver};
  loadgen::SipCaller caller{"sipp-client.unb.br", config.pbx.host, simulator, resolver, ssrcs,
                            config.scenario, arrival_rng};
  loadgen::SipReceiver receiver{"sipp-server.unb.br", simulator, resolver, ssrcs,
                                config.scenario};

  net::WifiCell wifi_cell{"ap", config.wifi_cell.value_or(net::WifiCellConfig{})};

  network.attach(lan_switch);
  network.attach(pbx);
  network.attach(caller);
  network.attach(receiver);
  net::Link* client_link = nullptr;
  if (config.wifi_cell) {
    // VoWiFi access: caller -> AP (radio) -> switch (wired uplink).
    network.attach(wifi_cell);
    client_link = &network.connect(caller, wifi_cell, config.client_link);
    net::Link& uplink = network.connect(wifi_cell, lan_switch, {});
    wifi_cell.set_uplink(uplink);
    lan_switch.add_route(caller.id(), uplink);
  } else {
    client_link = &network.connect(caller, lan_switch, config.client_link);
  }
  net::Link& server_link = network.connect(receiver, lan_switch, config.server_link);
  net::Link& pbx_link = network.connect(pbx, lan_switch, config.pbx_link);
  pbx.bind();
  caller.bind();
  receiver.bind();

  // Dialplan: every recv-* extension terminates on the SIP server host.
  pbx.dialplan().add("recv-", receiver.sip_host());
  pbx.directory().allow_prefix("caller-");

  monitor::SipCapture sip_capture{pbx.id()};
  monitor::RtpCapture rtp_capture{pbx.id()};
  sip_capture.attach(network);
  rtp_capture.attach(network);
  if (config.trace != nullptr) config.trace->attach(network);

  telemetry::Telemetry* tel = config.telemetry;
  if (tel != nullptr && tel->enabled()) {
    pbx.set_telemetry(tel);
    caller.set_telemetry(tel);
    receiver.set_telemetry(tel);

    // Per-second series. Probes capture locals of this frame; they only run
    // while the simulator below is running, so the references stay valid.
    auto& sampler = tel->sampler();
    const Duration period = tel->config().sample_period;
    sampler.add_gauge("active_channels",
                      [&pbx] { return static_cast<double>(pbx.channels().in_use()); });
    sampler.add_gauge("cpu_utilization", [&pbx, &simulator, period] {
      // Utilization over the elapsed part of the last sample period.
      const TimePoint now = simulator.now();
      const Duration back = std::min(period, now - TimePoint::origin());
      return back > Duration::zero() ? pbx.cpu().utilization(now - back, now).mean() : 0.0;
    });
    // Live cumulative P_b = blocked so far / placed so far. The call log's
    // own blocking_probability() only counts *finalized* calls in its
    // denominator — blocked calls finalize instantly but completed ones only
    // at teardown, which would spike the mid-run curve toward 1.0 right when
    // the pool first saturates.
    const telemetry::Counter& offered =
        tel->registry().counter("pbxcap_caller_calls_offered_total");
    sampler.add_gauge("blocking_probability", [&caller, &offered] {
      const auto placed = static_cast<double>(offered.value());
      return placed > 0.0 ? static_cast<double>(caller.log().blocked()) / placed : 0.0;
    });
    sampler.add_rate("calls_blocked_per_s",
                     [&caller] { return static_cast<double>(caller.log().blocked()); });
    sampler.add_rate("sip_msgs_per_s",
                     [&sip_capture] { return static_cast<double>(sip_capture.total()); });
    sampler.add_rate("rtp_pkts_per_s",
                     [&rtp_capture] { return static_cast<double>(rtp_capture.packets_in()); });
    if (config.pbx.sip_service.enabled) {
      sampler.add_gauge("sip_queue_depth",
                        [&pbx] { return static_cast<double>(pbx.sip_backlog()); });
    }
    sampler.start(simulator, period);
  }

  std::optional<fault::FaultInjector> injector;
  if (config.faults != nullptr && !config.faults->empty()) {
    injector.emplace(simulator, *config.faults,
                     fault::FaultTargets{client_link, &server_link, &pbx_link, &pbx});
    injector->arm();
  }

  caller.start();
  // Hold tail: deterministic holds end exactly at window + h; stochastic
  // models need slack for the distribution's tail before the drain cutoff.
  const double hold_tail_factor =
      config.scenario.hold_model == sim::HoldTimeModel::kDeterministic ? 1.0 : 4.0;
  const Duration horizon_d =
      config.scenario.placement_window +
      Duration::from_seconds(config.scenario.hold_time.to_seconds() * hold_tail_factor) +
      config.drain;
  simulator.run_until(TimePoint::at(horizon_d));
  caller.finalize_remaining();

  if (tel != nullptr && tel->enabled()) {
    tel->sampler().stop();  // cancel the pending tick before the sim dies
    // Mirror the NIC-tap message census and ring drop counts into the
    // registry so one Prometheus snapshot carries the full picture.
    auto& reg = tel->registry();
    for (const auto& [key, v] : sip_capture.counters().all()) {
      reg.counter("pbxcap_sip_messages_observed_total", {{"type", key}},
                  "SIP messages by method/status observed at the PBX NIC")
          .add(v);
    }
    reg.counter("pbxcap_sip_errors_observed_total", {},
                "Error responses (>= 400) observed at the PBX NIC")
        .add(sip_capture.errors());
    if (config.trace != nullptr) {
      reg.counter("pbxcap_trace_events_dropped_total", {},
                  "Packet-trace ring overwrites (oldest events lost)")
          .add(config.trace->dropped());
    }
    if (tel->tracer() != nullptr) {
      reg.counter("pbxcap_trace_spans_dropped_total", {},
                  "Span-ring overwrites (oldest spans lost)")
          .add(tel->tracer()->dropped());
    }
    if (config.faults != nullptr) {
      // Chaos runs get the per-link drop census; plain runs skip it so their
      // exports stay byte-identical to the pre-fault-injection era.
      const auto mirror = [&reg](const char* name, const net::Link& link) {
        const net::LinkDirectionStats& fwd = link.stats_from(link.endpoint_a());
        const net::LinkDirectionStats& rev = link.stats_from(link.endpoint_b());
        const auto add = [&](const char* reason, std::uint64_t v) {
          reg.counter("pbxcap_link_dropped_total", {{"link", name}, {"reason", reason}},
                      "Packets dropped by testbed links, by cause")
              .add(v);
        };
        add("queue_full", fwd.dropped_queue_full + rev.dropped_queue_full);
        add("random_loss", fwd.dropped_random_loss + rev.dropped_random_loss);
        add("impairment", fwd.dropped_impairment + rev.dropped_impairment);
      };
      if (client_link != nullptr) mirror("client", *client_link);
      mirror("server", server_link);
      mirror("pbx", pbx_link);
    }
  }

  // Merge receiver-side heard quality into the caller's per-call records.
  for (auto& record : caller.log().records_mutable()) {
    if (const auto* q = receiver.finished(record.call_index)) {
      record.mos_callee_heard = q->mos;
      record.loss_callee_heard = q->effective_loss;
      record.jitter_callee_heard = q->jitter;
      record.rtp_received_callee = q->rtp_received;
    }
  }

  const monitor::CallLog& log = caller.log();
  monitor::ExperimentReport report;
  report.offered_erlangs = config.scenario.offered_erlangs();
  report.arrival_rate_per_s = config.scenario.arrival_rate_per_s;
  report.hold_time = config.scenario.hold_time;
  report.seed = config.seed;

  report.calls_attempted = log.attempted();
  report.calls_completed = log.completed();
  report.calls_blocked = log.blocked();
  report.calls_failed = log.failed();
  report.blocking_probability = log.blocking_probability();
  const TimePoint steady_from =
      TimePoint::at(std::min(config.scenario.hold_time, config.scenario.placement_window));
  report.blocking_probability_steady = log.blocking_probability_since(steady_from);
  report.calls_attempted_steady = log.attempted_since(steady_from);

  report.channels_configured = pbx.channels().capacity();
  report.channels_peak = pbx.channels().peak();
  // CPU over the loaded steady interval: after the ramp (one hold time),
  // until the placement window closes. When holds outlast the window (short
  // smoke runs), fall back to the second half of the window so the interval
  // is never empty.
  Duration cpu_from_d = std::min(config.scenario.hold_time, config.scenario.placement_window);
  if (cpu_from_d >= config.scenario.placement_window) {
    cpu_from_d = Duration::nanos(config.scenario.placement_window.ns() / 2);
  }
  const TimePoint cpu_from = TimePoint::at(cpu_from_d);
  const TimePoint cpu_to = TimePoint::at(config.scenario.placement_window);
  report.cpu_utilization = pbx.cpu().utilization(cpu_from, cpu_to);
  report.rtp_packets_at_pbx = rtp_capture.packets_in();
  report.rtp_relayed = pbx.rtp_relayed();

  report.mos = log.mos_summary();
  report.setup_delay_ms = log.setup_delay_summary();
  report.effective_loss = log.loss_summary();
  report.jitter_ms = log.jitter_summary();

  report.sip_total = sip_capture.total();
  report.sip_invite = sip_capture.invites();
  report.sip_100 = sip_capture.trying_100();
  report.sip_180 = sip_capture.ringing_180();
  report.sip_200 = sip_capture.ok_200();
  report.sip_ack = sip_capture.acks();
  report.sip_bye = sip_capture.byes();
  report.sip_errors = sip_capture.errors();
  report.sip_retransmissions = pbx.transactions().total_retransmissions() +
                               caller.transactions().total_retransmissions() +
                               receiver.transactions().total_retransmissions();

  report.overload_rejections = pbx.overload_rejections();
  report.calls_retried = caller.retries();
  report.sip_queue_dropped = pbx.sip_queue_dropped();
  const auto impairment_drops = [](const net::Link& link) {
    return link.stats_from(link.endpoint_a()).dropped_impairment +
           link.stats_from(link.endpoint_b()).dropped_impairment;
  };
  report.link_dropped_impairment = impairment_drops(server_link) + impairment_drops(pbx_link) +
                                   (client_link != nullptr ? impairment_drops(*client_link) : 0);

  report.events_processed = simulator.events_processed();

  if (wifi_out != nullptr && config.wifi_cell) {
    wifi_out->medium_utilization = wifi_cell.medium_utilization(simulator.now());
    wifi_out->frames_forwarded = wifi_cell.frames_forwarded();
    wifi_out->frames_dropped_queue = wifi_cell.frames_dropped_queue();
    wifi_out->frames_dropped_radio = wifi_cell.frames_dropped_radio();
  }
  return report;
}

monitor::ExperimentReport run_offered_load(double erlangs, std::uint64_t seed,
                                           std::uint32_t max_channels) {
  TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(erlangs);
  config.pbx.max_channels = max_channels;
  config.seed = seed;
  return run_testbed(config);
}

}  // namespace pbxcap::exp
