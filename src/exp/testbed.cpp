#include "exp/testbed.hpp"

#include <algorithm>
#include <optional>

#include "exp/report_util.hpp"
#include "fault/injector.hpp"
#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "monitor/capture.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"

namespace pbxcap::exp {

monitor::ExperimentReport run_testbed(const TestbedConfig& config, WifiObservations* wifi_out) {
  sim::Simulator simulator;
  sim::Random master{config.seed};
  sim::Random impairment_rng = master.fork();
  sim::Random arrival_rng = master.fork();

  net::Network network{simulator, impairment_rng};
  sip::HostResolver resolver;
  rtp::SsrcAllocator ssrcs;

  net::SwitchNode lan_switch{"switch"};
  pbx::AsteriskPbx pbx{config.pbx, simulator, resolver};
  loadgen::SipCaller caller{"sipp-client.unb.br", config.pbx.host, simulator, resolver, ssrcs,
                            config.scenario, arrival_rng};
  loadgen::SipReceiver receiver{"sipp-server.unb.br", simulator, resolver, ssrcs,
                                config.scenario};

  net::WifiCell wifi_cell{"ap", config.wifi_cell.value_or(net::WifiCellConfig{})};

  network.attach(lan_switch);
  network.attach(pbx);
  network.attach(caller);
  network.attach(receiver);
  net::Link* client_link = nullptr;
  if (config.wifi_cell) {
    // VoWiFi access: caller -> AP (radio) -> switch (wired uplink).
    network.attach(wifi_cell);
    client_link = &network.connect(caller, wifi_cell, config.client_link);
    net::Link& uplink = network.connect(wifi_cell, lan_switch, {});
    wifi_cell.set_uplink(uplink);
    lan_switch.add_route(caller.id(), uplink);
  } else {
    client_link = &network.connect(caller, lan_switch, config.client_link);
  }
  net::Link& server_link = network.connect(receiver, lan_switch, config.server_link);
  net::Link& pbx_link = network.connect(pbx, lan_switch, config.pbx_link);
  pbx.bind();
  caller.bind();
  receiver.bind();

  const bool fluid_on = config.fluid.enabled && !config.wifi_cell;
  rtp::FluidConfig fluid_cfg = config.fluid;
  fluid_cfg.enabled = fluid_on;
  rtp::FluidEngine fluid_engine{simulator, fluid_cfg};
  if (fluid_on) {
    fluid_engine.watch_link(*client_link);
    fluid_engine.watch_link(server_link);
    fluid_engine.watch_link(pbx_link);
    caller.set_fluid_engine(&fluid_engine);
    receiver.set_fluid_engine(&fluid_engine);
  }

  // Dialplan: every recv-* extension terminates on the SIP server host, and
  // so do the agent legs of ACD calls (the receiver plays every agent).
  pbx.dialplan().add("recv-", receiver.sip_host());
  pbx.dialplan().add("queue-", receiver.sip_host());
  pbx.directory().allow_prefix("caller-");

  monitor::SipCapture sip_capture{pbx.id()};
  monitor::RtpCapture rtp_capture{pbx.id()};
  sip_capture.attach(network);
  rtp_capture.attach(network);
  if (config.trace != nullptr) config.trace->attach(network);

  telemetry::Telemetry* tel = config.telemetry;
  if (tel != nullptr && tel->enabled()) {
    pbx.set_telemetry(tel);
    caller.set_telemetry(tel);
    receiver.set_telemetry(tel);

    // Per-second series. Probes capture locals of this frame; they only run
    // while the simulator below is running, so the references stay valid.
    auto& sampler = tel->sampler();
    const Duration period = tel->config().sample_period;
    sampler.add_gauge("active_channels",
                      [&pbx] { return static_cast<double>(pbx.channels().in_use()); });
    sampler.add_gauge("cpu_utilization", [&pbx, &simulator, period] {
      // Utilization over the elapsed part of the last sample period.
      const TimePoint now = simulator.now();
      const Duration back = std::min(period, now - TimePoint::origin());
      return back > Duration::zero() ? pbx.cpu().utilization(now - back, now).mean() : 0.0;
    });
    // Live cumulative P_b = blocked so far / placed so far. The call log's
    // own blocking_probability() only counts *finalized* calls in its
    // denominator — blocked calls finalize instantly but completed ones only
    // at teardown, which would spike the mid-run curve toward 1.0 right when
    // the pool first saturates.
    const telemetry::Counter& offered =
        tel->registry().counter("pbxcap_caller_calls_offered_total");
    sampler.add_gauge("blocking_probability", [&caller, &offered] {
      const auto placed = static_cast<double>(offered.value());
      return placed > 0.0 ? static_cast<double>(caller.log().blocked()) / placed : 0.0;
    });
    sampler.add_rate("calls_blocked_per_s",
                     [&caller] { return static_cast<double>(caller.log().blocked()); });
    sampler.add_rate("sip_msgs_per_s",
                     [&sip_capture] { return static_cast<double>(sip_capture.total()); });
    sampler.add_rate("rtp_pkts_per_s",
                     [&rtp_capture] { return static_cast<double>(rtp_capture.packets_in()); });
    if (config.pbx.sip_service.enabled) {
      sampler.add_gauge("sip_queue_depth",
                        [&pbx] { return static_cast<double>(pbx.sip_backlog()); });
    }
    if (config.pbx.acd.enabled) {
      sampler.add_gauge("acd_queue_depth",
                        [&pbx] { return static_cast<double>(pbx.acd().total_depth()); });
    }
    if (fluid_on) {
      // Streams leave fluid mode `boundary_guard` before each tick so the
      // guard window drains per-packet; the pre-sample flush is the safety
      // net that keeps every row exact even if a boundary is missed.
      fluid_engine.set_boundary_period(period);
      sampler.set_pre_sample_hook([&fluid_engine] { fluid_engine.flush_all(); });
    }
    sampler.start(simulator, period);
    if (tel->profiler() != nullptr) {
      tel->profiler()->attach(simulator);
      tel->profiler()->start_series(period);  // Chrome counter-track source
    }
  }

  std::optional<fault::FaultInjector> injector;
  if (config.faults != nullptr && !config.faults->empty()) {
    injector.emplace(simulator, *config.faults,
                     fault::FaultTargets{client_link, &server_link, &pbx_link, &pbx});
    if (fluid_on) {
      injector->set_pre_apply([&fluid_engine] { fluid_engine.on_transient(); });
    }
    if (tel != nullptr && tel->enabled()) injector->set_tracer(tel->tracer());
    injector->arm();
  }

  fluid_engine.start();
  caller.start();
  simulator.run_until(TimePoint::at(run_horizon(config.scenario, config.drain)));
  caller.finalize_remaining();

  if (tel != nullptr && tel->enabled()) {
    tel->sampler().stop();  // cancel the pending tick before the sim dies
    if (tel->profiler() != nullptr) tel->profiler()->detach();
    // Mirror the NIC-tap message census and ring drop counts into the
    // registry so one Prometheus snapshot carries the full picture.
    auto& reg = tel->registry();
    for (const auto& [key, v] : sip_capture.counters().all()) {
      reg.counter("pbxcap_sip_messages_observed_total", {{"type", key}},
                  "SIP messages by method/status observed at the PBX NIC")
          .add(v);
    }
    reg.counter("pbxcap_sip_errors_observed_total", {},
                "Error responses (>= 400) observed at the PBX NIC")
        .add(sip_capture.errors());
    if (config.trace != nullptr) {
      reg.counter("pbxcap_trace_events_dropped_total", {},
                  "Packet-trace ring overwrites (oldest events lost)")
          .add(config.trace->dropped());
    }
    if (tel->tracer() != nullptr) {
      reg.counter("pbxcap_trace_spans_dropped_total", {},
                  "Span-ring overwrites (oldest spans lost)")
          .add(tel->tracer()->dropped());
    }
    if (config.faults != nullptr) {
      // Chaos runs get the per-link drop census; plain runs skip it so their
      // exports stay byte-identical to the pre-fault-injection era.
      const auto mirror = [&reg](const char* name, const net::Link& link) {
        const net::LinkDirectionStats& fwd = link.stats_from(link.endpoint_a());
        const net::LinkDirectionStats& rev = link.stats_from(link.endpoint_b());
        const auto add = [&](const char* reason, std::uint64_t v) {
          reg.counter("pbxcap_link_dropped_total", {{"link", name}, {"reason", reason}},
                      "Packets dropped by testbed links, by cause")
              .add(v);
        };
        add("queue_full", fwd.dropped_queue_full + rev.dropped_queue_full);
        add("random_loss", fwd.dropped_random_loss + rev.dropped_random_loss);
        add("impairment", fwd.dropped_impairment + rev.dropped_impairment);
      };
      if (client_link != nullptr) mirror("client", *client_link);
      mirror("server", server_link);
      mirror("pbx", pbx_link);
    }
  }

  // Merge receiver-side heard quality into the caller's per-call records.
  for (auto& record : caller.log().records_mutable()) {
    if (const auto* q = receiver.finished(record.call_index)) {
      record.mos_callee_heard = q->mos;
      record.loss_callee_heard = q->effective_loss;
      record.jitter_callee_heard = q->jitter;
      record.rtp_received_callee = q->rtp_received;
    }
  }

  monitor::ExperimentReport report =
      build_report(config.scenario, config.seed, caller, receiver,
                   {{&pbx, &sip_capture, &rtp_capture}},
                   {&server_link, &pbx_link, client_link}, simulator);

  if (wifi_out != nullptr && config.wifi_cell) {
    wifi_out->medium_utilization = wifi_cell.medium_utilization(simulator.now());
    wifi_out->frames_forwarded = wifi_cell.frames_forwarded();
    wifi_out->frames_dropped_queue = wifi_cell.frames_dropped_queue();
    wifi_out->frames_dropped_radio = wifi_cell.frames_dropped_radio();
  }
  return report;
}

monitor::ExperimentReport run_offered_load(double erlangs, std::uint64_t seed,
                                           std::uint32_t max_channels) {
  TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(erlangs);
  config.pbx.max_channels = max_channels;
  config.seed = seed;
  return run_testbed(config);
}

}  // namespace pbxcap::exp
