// Conservative barrier-window executor for sharded simulations.
//
// Runs S sim::Simulator instances ("shards") to a common horizon, each on a
// pinned worker thread (shard s runs on worker s % W, so the assignment —
// and therefore every result — is independent of how many workers exist).
// Synchronization is conservative, with the minimum cross-shard link
// propagation delay as the lookahead L:
//
//   * Time advances in windows of exactly L. During the window [W0, W1)
//     every shard runs its own events with t < W1 (run_until(W1 - 1ns));
//     anything crossing a shard boundary is post()ed as a timestamped
//     message. Causality holds because a message emitted at local time
//     t in [W0, W1) carries a delivery timestamp >= t + L >= W1: it can
//     never land in a neighbor's past. Posts below the bound (fluid
//     batches, which traverse links inline with their timing carried in
//     the payload; or a fault shrinking a cross-shard propagation below L)
//     are clamped up to the window boundary.
//   * At the barrier, a single completion step drains every channel into
//     its destination simulator in deterministic (at, src_shard, FIFO)
//     order — see sim/shard.hpp — and picks the next window. If every
//     shard's next event and every pending message lie beyond the next
//     boundary, the window start jumps forward to the earliest of them
//     (idle drain phases cost barriers proportional to activity, not to
//     simulated time).
//   * The final window runs run_until(horizon) inclusive, then repeats
//     (drain, re-run at the horizon) until no shard produced a message —
//     events at exactly the horizon may hand work across one more boundary.
//
// Thread count changes only which OS thread runs a shard, never the order
// of events inside one or the merge order between them: per-seed results
// are byte-identical for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace pbxcap::exp {

struct ShardExecConfig {
  /// Worker threads; 0 means "auto" (default_threads()). Clamped to the
  /// shard count — extra workers would only idle at the barrier.
  unsigned threads{0};
  /// Conservative lookahead: every cross-shard link's propagation delay
  /// must be >= this. Must be positive (a zero-delay boundary admits no
  /// conservative window at all).
  Duration lookahead{Duration::millis(1)};
};

class ShardExecutor {
 public:
  /// Per-shard observations of one run. `events` and `messages_*` are
  /// deterministic per seed; `wall_s` is the host-time cost of the shard's
  /// windows (load-imbalance diagnostics — never byte-compared).
  struct ShardStats {
    std::uint64_t events{0};
    std::uint64_t messages_in{0};
    std::uint64_t messages_out{0};
    double wall_s{0.0};
  };

  /// `sims` are borrowed; one per shard, all at t = 0 with their models
  /// already built and start()ed callbacks scheduled. Throws
  /// std::invalid_argument on an empty shard list or non-positive lookahead.
  ShardExecutor(std::vector<sim::Simulator*> sims, const ShardExecConfig& config);

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Queues a cross-shard message: run `deliver` in shard `dst` at
  /// `at_ns` (clamped up to the executor's current causality bound). Must
  /// be called from shard `src`'s running window — i.e. from model code
  /// executing inside that shard's simulator.
  void post(std::size_t src, std::size_t dst, std::int64_t at_ns, sim::Callback deliver);

  /// Runs every shard to `horizon` (inclusive, matching
  /// Simulator::run_until semantics). Blocks the calling thread, which
  /// participates as worker 0. The single-shard case degenerates to a plain
  /// run_until with no threads and no barriers.
  void run(TimePoint horizon);

  [[nodiscard]] const std::vector<ShardStats>& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned workers() const noexcept { return workers_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept;
  /// Messages whose timestamp was raised to the causality bound (fluid
  /// batches crossing a boundary, or faults shrinking a cross-shard
  /// propagation below the lookahead). Deterministic per seed.
  [[nodiscard]] std::uint64_t messages_clamped() const noexcept;

 private:
  void run_shard_window(std::size_t s) noexcept;
  /// Barrier completion step: drain channels, pick the next window (or
  /// finish). Runs exactly once per round while all workers are blocked.
  void on_round() noexcept;
  [[nodiscard]] bool drain_all();
  /// Advances window_end_ns_ past the global idle gap; flips final_ when the
  /// remaining span fits inside one lookahead.
  void advance_window();
  void record_error(std::exception_ptr err) noexcept;

  std::vector<sim::Simulator*> sims_;
  std::int64_t lookahead_ns_;
  unsigned workers_{1};

  // channels_[src * S + dst]: single-writer (src's worker) during a window,
  // drained by on_round() at the barrier.
  std::vector<sim::ShardChannel> channels_;

  // Window state: written by on_round() only, read by workers after the
  // barrier (the barrier's completion step sequences both).
  std::int64_t horizon_ns_{0};
  std::int64_t window_end_ns_{0};  // exclusive end of the window being run
  bool final_{false};              // current window runs run_until(horizon)
  bool done_{false};
  std::uint64_t rounds_{0};
  std::uint64_t horizon_rounds_{0};

  std::vector<ShardStats> stats_;
  std::vector<std::uint64_t> clamped_by_src_;  // single-writer like the channels
  std::vector<std::uint64_t> events_base_;

  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace pbxcap::exp
