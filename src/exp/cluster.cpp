#include "exp/cluster.hpp"

#include <algorithm>
#include <memory>

#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "monitor/capture.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace pbxcap::exp {

ClusterResult run_cluster(const ClusterConfig& config) {
  if (config.servers == 0) throw std::invalid_argument{"run_cluster: need at least one server"};

  sim::Simulator simulator;
  sim::Random master{config.seed};
  sim::Random impairment_rng = master.fork();
  sim::Random arrival_rng = master.fork();

  net::Network network{simulator, impairment_rng};
  sip::HostResolver resolver;
  rtp::SsrcAllocator ssrcs;

  net::SwitchNode lan_switch{"switch"};
  network.attach(lan_switch);

  std::vector<std::unique_ptr<pbx::AsteriskPbx>> pbxs;
  std::vector<std::string> pbx_hosts;
  for (std::uint32_t i = 0; i < config.servers; ++i) {
    pbx::PbxConfig pbx_config;
    pbx_config.host = util::format("pbx%u.unb.br", i);
    pbx_config.max_channels = config.channels_per_server;
    pbxs.push_back(std::make_unique<pbx::AsteriskPbx>(pbx_config, simulator, resolver));
    pbx_hosts.push_back(pbx_config.host);
  }

  loadgen::SipCaller caller{"sipp-client.unb.br", pbx_hosts, simulator, resolver, ssrcs,
                            config.scenario, arrival_rng};
  loadgen::SipReceiver receiver{"sipp-server.unb.br", simulator, resolver, ssrcs,
                                config.scenario};

  network.attach(caller);
  network.attach(receiver);
  network.connect(caller, lan_switch, {});
  network.connect(receiver, lan_switch, {});
  caller.bind();
  receiver.bind();
  for (auto& pbx : pbxs) {
    network.attach(*pbx);
    network.connect(*pbx, lan_switch, {});
    pbx->bind();
    pbx->dialplan().add("recv-", receiver.sip_host());
  }

  caller.start();
  const double hold_tail =
      config.scenario.hold_model == sim::HoldTimeModel::kDeterministic ? 1.0 : 4.0;
  const Duration horizon =
      config.scenario.placement_window +
      Duration::from_seconds(config.scenario.hold_time.to_seconds() * hold_tail) + config.drain;
  simulator.run_until(TimePoint::at(horizon));
  caller.finalize_remaining();

  for (auto& record : caller.log().records_mutable()) {
    if (const auto* q = receiver.finished(record.call_index)) {
      record.mos_callee_heard = q->mos;
      record.loss_callee_heard = q->effective_loss;
      record.jitter_callee_heard = q->jitter;
      record.rtp_received_callee = q->rtp_received;
    }
  }

  const monitor::CallLog& log = caller.log();
  ClusterResult result;
  result.report.offered_erlangs = config.scenario.offered_erlangs();
  result.report.arrival_rate_per_s = config.scenario.arrival_rate_per_s;
  result.report.hold_time = config.scenario.hold_time;
  result.report.seed = config.seed;
  result.report.calls_attempted = log.attempted();
  result.report.calls_completed = log.completed();
  result.report.calls_blocked = log.blocked();
  result.report.calls_failed = log.failed();
  result.report.blocking_probability = log.blocking_probability();
  result.report.mos = log.mos_summary();
  result.report.setup_delay_ms = log.setup_delay_summary();
  result.report.channels_configured = config.channels_per_server * config.servers;

  std::uint32_t peak_total = 0;
  for (auto& pbx : pbxs) {
    result.peak_channels_per_server.push_back(pbx->channels().peak());
    result.congestion_per_server.push_back(pbx->cdrs().count(pbx::Disposition::kCongestion));
    peak_total += pbx->channels().peak();
  }
  result.report.channels_peak = peak_total;
  return result;
}

}  // namespace pbxcap::exp
