#include "exp/cluster.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "exp/report_util.hpp"
#include "fault/injector.hpp"
#include "loadgen/caller.hpp"
#include "loadgen/receiver.hpp"
#include "monitor/capture.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "rtp/fluid.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace pbxcap::exp {

ClusterResult run_cluster(const ClusterConfig& config) {
  if (config.shard.enabled) return run_cluster_sharded(config);
  // Resolve the fleet: explicit heterogeneous specs, or the homogeneous
  // servers x channels_per_server shorthand.
  std::vector<ServerSpec> fleet = config.fleet;
  if (fleet.empty()) {
    if (config.servers == 0) {
      throw std::invalid_argument{"run_cluster: need at least one server"};
    }
    fleet.assign(config.servers, ServerSpec{config.channels_per_server, 0});
  }

  sim::Simulator simulator;
  sim::Random master{config.seed};
  sim::Random impairment_rng = master.fork();
  sim::Random arrival_rng = master.fork();

  net::Network network{simulator, impairment_rng};
  sip::HostResolver resolver;
  rtp::SsrcAllocator ssrcs;

  net::SwitchNode lan_switch{"switch"};
  network.attach(lan_switch);

  std::vector<std::unique_ptr<pbx::AsteriskPbx>> pbxs;
  std::vector<std::string> pbx_hosts;
  std::vector<dispatch::BackendConfig> backend_configs;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pbx::PbxConfig pbx_config;
    pbx_config.host = util::format("pbx%u.unb.br", static_cast<unsigned>(i));
    pbx_config.max_channels = fleet[i].channels;
    pbx_config.sip_service = config.sip_service;
    pbx_config.overload = config.overload;
    if (!config.allowed_payload_types.empty()) {
      pbx_config.allowed_payload_types = config.allowed_payload_types;
    }
    pbx_config.acd = config.acd;
    // Independent patience streams per backend, deterministic in i only.
    pbx_config.acd.seed = config.acd.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    pbxs.push_back(std::make_unique<pbx::AsteriskPbx>(pbx_config, simulator, resolver));
    pbx_hosts.push_back(pbx_config.host);
    backend_configs.push_back(
        {pbx_config.host, fleet[i].weight != 0 ? fleet[i].weight : fleet[i].channels});
  }

  loadgen::SipCaller caller{"sipp-client.unb.br", pbx_hosts, simulator, resolver, ssrcs,
                            config.scenario, arrival_rng};
  loadgen::SipReceiver receiver{"sipp-server.unb.br", simulator, resolver, ssrcs,
                                config.scenario};

  network.attach(caller);
  network.attach(receiver);
  net::Link& client_link = network.connect(caller, lan_switch, {});
  net::Link& server_link = network.connect(receiver, lan_switch, {});
  caller.bind();
  receiver.bind();
  net::LinkConfig uplink_cfg{};
  uplink_cfg.trunk_window = config.trunk_window;
  std::vector<net::Link*> pbx_links;
  for (auto& pbx : pbxs) {
    network.attach(*pbx);
    pbx_links.push_back(&network.connect(*pbx, lan_switch, uplink_cfg));
    pbx->bind();
    pbx->dialplan().add("recv-", receiver.sip_host());
    pbx->dialplan().add("queue-", receiver.sip_host());
  }

  rtp::FluidEngine fluid_engine{simulator, config.fluid};
  if (config.fluid.enabled) {
    fluid_engine.watch_link(client_link);
    fluid_engine.watch_link(server_link);
    for (net::Link* link : pbx_links) fluid_engine.watch_link(*link);
    caller.set_fluid_engine(&fluid_engine);
    receiver.set_fluid_engine(&fluid_engine);
  }

  // Routing tier. The dispatcher is a real node on the LAN — its OPTIONS
  // probes traverse the switch like any other SIP traffic — but routing
  // decisions are redirect-style (the caller asks, then talks to the
  // backend directly), so the Fig. 2 ladder and the media path are
  // unchanged from the paper's testbed.
  std::optional<dispatch::Dispatcher> dispatcher;
  if (config.routing == ClusterRouting::kDispatcher) {
    dispatcher.emplace("dispatcher.unb.br", backend_configs, config.dispatcher, simulator,
                       resolver);
    network.attach(*dispatcher);
    network.connect(*dispatcher, lan_switch, {});
    dispatcher->bind();
    caller.set_dispatcher(&*dispatcher);
  }

  // Capture taps on every backend NIC (the Wireshark observation point,
  // once per server) so the aggregate SIP/RTP census is populated exactly
  // like run_testbed's.
  std::vector<std::unique_ptr<monitor::SipCapture>> sip_captures;
  std::vector<std::unique_ptr<monitor::RtpCapture>> rtp_captures;
  for (auto& pbx : pbxs) {
    sip_captures.push_back(std::make_unique<monitor::SipCapture>(pbx->id()));
    rtp_captures.push_back(std::make_unique<monitor::RtpCapture>(pbx->id()));
    sip_captures.back()->attach(network);
    rtp_captures.back()->attach(network);
  }

  telemetry::Telemetry* tel = config.telemetry;
  if (tel != nullptr && tel->enabled()) {
    caller.set_telemetry(tel);
    receiver.set_telemetry(tel);
    for (auto& pbx : pbxs) pbx->set_telemetry(tel);
    auto& sampler = tel->sampler();
    for (std::size_t i = 0; i < pbxs.size(); ++i) {
      pbx::AsteriskPbx* pbx = pbxs[i].get();
      sampler.add_gauge(util::format("active_channels_pbx%u", static_cast<unsigned>(i)),
                        [pbx] { return static_cast<double>(pbx->channels().in_use()); });
    }
    if (dispatcher) {
      dispatch::Dispatcher* d = &*dispatcher;
      for (std::size_t i = 0; i < pbxs.size(); ++i) {
        sampler.add_gauge(util::format("dispatcher_occupancy_pbx%u", static_cast<unsigned>(i)),
                          [d, i] { return static_cast<double>(d->occupancy(i)); });
      }
      // Routing-tier health per second: pick throughput, breaker state, and
      // how much of the fleet is benched on 503 backoff.
      sampler.add_rate("dispatch_picks_per_s",
                       [d] { return static_cast<double>(d->picks_total()); });
      sampler.add_gauge("dispatch_open_circuits",
                        [d] { return static_cast<double>(d->open_circuits()); });
      sampler.add_gauge("dispatch_benched_backends", [d, &simulator] {
        return static_cast<double>(d->benched_backends(simulator.now()));
      });
    }
    if (config.fluid.enabled) {
      fluid_engine.set_boundary_period(tel->config().sample_period);
      sampler.set_pre_sample_hook([&fluid_engine] { fluid_engine.flush_all(); });
    }
    sampler.start(simulator, tel->config().sample_period);
    if (tel->profiler() != nullptr) {
      tel->profiler()->attach(simulator);
      tel->profiler()->start_series(tel->config().sample_period);
    }
  }

  std::optional<fault::FaultInjector> injector;
  if (config.faults != nullptr && !config.faults->empty()) {
    const std::size_t fb = std::min<std::size_t>(config.fault_backend, pbxs.size() - 1);
    injector.emplace(simulator, *config.faults,
                     fault::FaultTargets{&client_link, &server_link, pbx_links[fb],
                                         pbxs[fb].get()});
    if (config.fluid.enabled) {
      injector->set_pre_apply([&fluid_engine] { fluid_engine.on_transient(); });
    }
    if (tel != nullptr && tel->enabled()) injector->set_tracer(tel->tracer());
    injector->arm();
  }

  if (dispatcher) dispatcher->start();
  fluid_engine.start();
  caller.start();
  simulator.run_until(TimePoint::at(run_horizon(config.scenario, config.drain)));
  caller.finalize_remaining();
  if (tel != nullptr && tel->enabled()) {
    tel->sampler().stop();
    if (tel->profiler() != nullptr) tel->profiler()->detach();
  }

  for (auto& record : caller.log().records_mutable()) {
    if (const auto* q = receiver.finished(record.call_index)) {
      record.mos_callee_heard = q->mos;
      record.loss_callee_heard = q->effective_loss;
      record.jitter_callee_heard = q->jitter;
      record.rtp_received_callee = q->rtp_received;
    }
  }

  std::vector<BackendSources> sources;
  std::vector<const net::Link*> links{&client_link, &server_link};
  for (std::size_t i = 0; i < pbxs.size(); ++i) {
    sources.push_back({pbxs[i].get(), sip_captures[i].get(), rtp_captures[i].get()});
    links.push_back(pbx_links[i]);
  }

  ClusterResult result;
  result.report =
      build_report(config.scenario, config.seed, caller, receiver, sources, links, simulator);
  for (const net::Link* link : pbx_links) {
    for (const net::NodeId end : {link->endpoint_a(), link->endpoint_b()}) {
      result.uplink_bytes += link->stats_from(end).bytes_sent;
      result.uplink_packets += link->stats_from(end).packets_sent;
    }
  }

  // The CPU steady-interval used by build_report (duplicated here only for
  // the per-backend summaries; the merge lives in the shared helper).
  Duration cpu_from_d =
      std::min(config.scenario.hold_time, config.scenario.placement_window);
  if (cpu_from_d >= config.scenario.placement_window) {
    cpu_from_d = Duration::nanos(config.scenario.placement_window.ns() / 2);
  }
  const TimePoint cpu_from = TimePoint::at(cpu_from_d);
  const TimePoint cpu_to = TimePoint::at(config.scenario.placement_window);

  for (std::size_t i = 0; i < pbxs.size(); ++i) {
    const pbx::AsteriskPbx& pbx = *pbxs[i];
    BackendObservation obs;
    obs.host = pbx_hosts[i];
    obs.channels = pbx.channels().capacity();
    obs.peak_channels = pbx.channels().peak();
    obs.congestion = pbx.cdrs().count(pbx::Disposition::kCongestion);
    obs.rtp_relayed = pbx.rtp_relayed();
    obs.crashes = pbx.crashes();
    obs.cpu_utilization = pbx.cpu().utilization(cpu_from, cpu_to);
    if (dispatcher) {
      const dispatch::BackendStats ds = dispatcher->backend_stats(i);
      obs.calls_routed = ds.calls_routed;
      obs.probe_failures = ds.probe_failures;
      obs.circuit_opens = ds.circuit_opens;
      obs.final_circuit = ds.circuit;
    }
    result.backends.push_back(obs);
    result.peak_channels_per_server.push_back(obs.peak_channels);
    result.congestion_per_server.push_back(obs.congestion);
  }
  if (dispatcher) {
    result.failovers = caller.failovers();
    result.dispatch_rejected = dispatcher->picks_rejected();
    result.probes_sent = dispatcher->probes_sent();
    result.probe_failures = dispatcher->probe_failures();
    result.circuit_opens = dispatcher->circuit_opens();
  }

  if (tel != nullptr && tel->enabled()) {
    // Mirror the per-backend routing/health picture into the registry so a
    // single Prometheus snapshot carries the whole cluster.
    auto& reg = tel->registry();
    for (const BackendObservation& obs : result.backends) {
      reg.counter("pbxcap_cluster_calls_routed_total", {{"backend", obs.host}},
                  "Calls the routing tier dispatched to each backend")
          .add(obs.calls_routed);
      reg.counter("pbxcap_cluster_congestion_total", {{"backend", obs.host}},
                  "Channel-exhaustion rejections per backend")
          .add(obs.congestion);
      reg.counter("pbxcap_cluster_circuit_opens_total", {{"backend", obs.host}},
                  "Circuit-breaker ejections per backend")
          .add(obs.circuit_opens);
      reg.gauge("pbxcap_cluster_peak_channels", {{"backend", obs.host}},
                "Peak concurrent channels per backend")
          .set(static_cast<double>(obs.peak_channels));
    }
    reg.counter("pbxcap_cluster_failovers_total", {},
                "Timed-out INVITEs rescued onto a surviving backend")
        .add(result.failovers);
    reg.counter("pbxcap_cluster_dispatch_rejected_total", {},
                "Calls with no eligible backend at pick time")
        .add(result.dispatch_rejected);
    reg.counter("pbxcap_cluster_probes_total", {}, "Health probes sent").add(result.probes_sent);
    reg.counter("pbxcap_cluster_probe_failures_total", {}, "Health probes failed")
        .add(result.probe_failures);
    if (dispatcher) {
      reg.counter("pbxcap_dispatch_picks_total", {},
                  "Successful backend picks (initial routes, retries, failovers)")
          .add(dispatcher->picks_total());
      reg.gauge("pbxcap_dispatch_benched_backends", {},
                "Backends on 503 Retry-After backoff at run end")
          .set(static_cast<double>(dispatcher->benched_backends(simulator.now())));
      for (std::size_t i = 0; i < pbxs.size(); ++i) {
        reg.gauge("pbxcap_dispatch_circuit_state", {{"backend", pbx_hosts[i]}},
                  "Circuit-breaker state (0 closed, 1 open, 2 half-open)")
            .set(static_cast<double>(dispatcher->circuit(i)));
      }
    }
  }
  return result;
}

}  // namespace pbxcap::exp
