// The Fig. 4 testbed, assembled: SIPp client host + SIPp server host +
// Asterisk PBX behind one 10/100 switch, with capture taps on the PBX NIC.
//
// One Testbed::run() call is one experiment: build, offer calls for the
// placement window, drain, and return a merged ExperimentReport (the caller's
// call log joined with the receiver-side heard quality, the PBX's channel/
// CPU/CDR observations, and the Wireshark-style message census).
#pragma once

#include <cstdint>

#include <optional>

#include "fault/plan.hpp"
#include "loadgen/scenario.hpp"
#include "monitor/report.hpp"
#include "monitor/trace.hpp"
#include "net/link.hpp"
#include "net/wifi_cell.hpp"
#include "pbx/asterisk_pbx.hpp"
#include "rtp/fluid.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace pbxcap::exp {

struct TestbedConfig {
  loadgen::CallScenario scenario;
  pbx::PbxConfig pbx;
  /// Access links host<->switch. Default: Fast Ethernet, Fig. 4.
  net::LinkConfig client_link;
  net::LinkConfig server_link;
  net::LinkConfig pbx_link;
  std::uint64_t seed{1};
  /// Extra drain time after placement window + hold (BYE handshakes, timers).
  Duration drain{Duration::seconds(30)};
  /// Hybrid fluid/packet media engine (off by default: exact per-packet
  /// simulation). Ignored when `wifi_cell` is set — shared-medium contention
  /// is never in closed-form steady state.
  rtp::FluidConfig fluid;
  /// When set, the caller host reaches the switch through a shared-medium
  /// Wi-Fi cell instead of a dedicated wire — the VoWiFi access topology of
  /// Fig. 1. Both SIP and the caller-side RTP contend for cell airtime.
  std::optional<net::WifiCellConfig> wifi_cell;
  /// Optional capture: when non-null, attached to the network before the
  /// run so callers can dump CSV traces or Fig.-2-style SIP ladders.
  monitor::PacketTrace* trace{nullptr};
  /// Optional telemetry sink: when non-null and enabled, every endpoint is
  /// instrumented, the sim-time sampler records per-second series (active
  /// channels, CPU, blocking, SIP/RTP rates), and call-lifecycle spans land
  /// in the tracer. The Telemetry instance is owned by the caller and is not
  /// thread-safe — give each run its own, like the Simulator.
  telemetry::Telemetry* telemetry{nullptr};
  /// Optional fault-injection schedule (see FAULTS.md). When non-null, every
  /// event is armed on the simulator before the run starts: `link client`
  /// addresses the caller's access link, `link server` the receiver's,
  /// `link pbx` the PBX uplink, and `pbx stall`/`pbx crash` the PBX host.
  /// Also enables the per-link drop-counter mirror in the telemetry export.
  const fault::FaultPlan* faults{nullptr};
};

/// Extra observations available when the testbed ran with a Wi-Fi cell.
struct WifiObservations {
  double medium_utilization{0.0};
  std::uint64_t frames_forwarded{0};
  std::uint64_t frames_dropped_queue{0};
  std::uint64_t frames_dropped_radio{0};
};

/// Runs the full packet-level experiment and reports Table-I-style metrics.
/// `wifi_out`, when non-null and the config has a Wi-Fi cell, receives the
/// cell's medium statistics.
[[nodiscard]] monitor::ExperimentReport run_testbed(const TestbedConfig& config,
                                                    WifiObservations* wifi_out = nullptr);

/// Convenience: Table I column for offered load `erlangs` (h = 120 s,
/// 180 s placement window, G.711, default PBX).
[[nodiscard]] monitor::ExperimentReport run_offered_load(double erlangs, std::uint64_t seed = 1,
                                                         std::uint32_t max_channels = 165);

}  // namespace pbxcap::exp
