// Parallel replication runner.
//
// Each simulation run is strictly single-threaded and self-contained, so
// replications and sweep points parallelize embarrassingly: a small worker
// pool pulls indices from an atomic counter (CP.* guidance: share nothing
// mutable between threads except the counter and the preallocated results).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pbxcap::exp {

/// Number of workers to use by default: the hardware concurrency, at least 1.
[[nodiscard]] inline unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(i) for i in [0, n) across `threads` workers. fn must write only
/// to per-index state. The first exception thrown by any worker is rethrown
/// on the calling thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pbxcap::exp
