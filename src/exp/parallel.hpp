// Parallel replication runner.
//
// Each simulation run is strictly single-threaded and self-contained, so
// replications and sweep points parallelize embarrassingly: a small worker
// pool pulls index chunks from an atomic counter (CP.* guidance: share
// nothing mutable between threads except the counter and the preallocated
// results).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pbxcap::exp {

/// Number of workers to use by default: the PBXCAP_THREADS environment
/// override when set to a positive integer, else the hardware concurrency,
/// at least 1. The override caps every auto-sized pool — replication sweeps
/// and the shard executor alike — so CI and benchmarks can pin parallelism
/// without plumbing a flag through each harness.
[[nodiscard]] inline unsigned default_threads() noexcept {
  if (const char* env = std::getenv("PBXCAP_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(i) for i in [0, n) across up to `threads` workers; `threads == 0`
/// means "auto" (default_threads()) — the same convention SweepConfig and
/// the shard executor use, resolved here so no caller needs its own clamp.
/// fn must write only to per-index state. The first exception thrown by any
/// worker is rethrown on the calling thread after all workers join.
///
/// Workers claim contiguous chunks of indices rather than one index per
/// fetch_add: with many cheap items (fine-grained sweep points) a single
/// shared counter line ping-pongs between cores; handing out ~8 chunks per
/// worker keeps contention negligible while still load-balancing tail
/// imbalance from uneven run lengths.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads == 0) threads = default_threads();
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(threads, n));
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(1, n / (std::size_t{workers} * 8));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        try {
          for (std::size_t i = begin; i < end; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            fn(i);
          }
        } catch (...) {
          const std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pbxcap::exp
