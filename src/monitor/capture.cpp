#include "monitor/capture.hpp"

#include "rtp/packet.hpp"
#include "util/strings.hpp"

namespace pbxcap::monitor {

void SipCapture::attach(net::Network& network) {
  network.add_tap([this](const net::Packet& pkt, net::NodeId from, net::NodeId to) {
    on_packet(pkt, from, to);
  });
}

void SipCapture::on_packet(const net::Packet& pkt, net::NodeId from, net::NodeId to) {
  if (pkt.kind != net::PacketKind::kSip) return;
  // Ingress: delivery whose final hop lands on the watched node.
  // Egress: first hop, leaving the watched node.
  const bool ingress = pkt.dst == node_ && to == node_;
  const bool egress = pkt.src == node_ && from == node_;
  if (!ingress && !egress) return;

  const auto* payload = pkt.payload_as<sip::SipPayload>();
  if (payload == nullptr) return;
  const sip::Message& msg = payload->msg;
  ++total_;
  if (msg.is_request()) {
    counters_.increment(to_string(msg.method()));
  } else {
    counters_.increment(util::format("%d", msg.status_code()));
    if (sip::is_error(msg.status_code())) ++errors_;
  }
}

void RtpCapture::attach(net::Network& network) {
  network.add_tap([this](const net::Packet& pkt, net::NodeId from, net::NodeId to) {
    if (pkt.kind != net::PacketKind::kRtp) return;
    if (pkt.dst == node_ && to == node_) {
      packets_in_ += pkt.batch;
      bytes_in_ += static_cast<std::uint64_t>(pkt.size_bytes) * pkt.batch;
      if (pkt.fluid) {
        // Fluid batch: the RateMeter keys on departure stamps (sent_at in
        // per-packet mode); feed it the batch's last nominal departure so
        // first/last spans match per-packet runs. The stream's first packet
        // is always emitted per-packet, so `first_` is already anchored.
        if (const auto* b = pkt.payload_as<rtp::RtpBatchPayload>()) {
          ingress_rate_.record(b->first_departure + b->spacing * (pkt.batch - 1), pkt.batch);
        } else {
          ingress_rate_.record(pkt.sent_at, pkt.batch);
        }
      } else {
        ingress_rate_.record(pkt.sent_at);
      }
    } else if (pkt.src == node_ && from == node_) {
      packets_out_ += pkt.batch;
    }
  });
}

}  // namespace pbxcap::monitor
