#include "monitor/trace.hpp"

#include <sstream>

#include "rtp/packet.hpp"
#include "sip/message.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pbxcap::monitor {
namespace {

std::string summarize(const net::Packet& pkt, std::string& call_id_out) {
  if (const auto* sip = pkt.payload_as<sip::SipPayload>()) {
    call_id_out = sip->msg.call_id();
    if (sip->msg.is_request()) {
      return std::string{to_string(sip->msg.method())} + " " +
             sip->msg.request_uri().to_string();
    }
    return util::format("%d %s", sip->msg.status_code(), sip->msg.reason().c_str());
  }
  if (const auto* rtp = pkt.payload_as<rtp::RtpPayload>()) {
    return util::format("RTP ssrc=%u seq=%u", rtp->header.ssrc, rtp->header.sequence);
  }
  return std::string{to_string(pkt.kind)};
}

}  // namespace

void PacketTrace::attach(net::Network& network, bool sip_only) {
  net::Network* net_ptr = &network;  // valid for the network's lifetime only
  network.add_tap(
      [this, sip_only, net_ptr](const net::Packet& pkt, net::NodeId from, net::NodeId to) {
        if (to != pkt.dst) return;  // record final-hop deliveries only
        if (sip_only && pkt.kind != net::PacketKind::kSip) return;
        TraceEvent event;
        event.at = net_ptr->simulator().now();
        event.packet_id = pkt.id;
        event.kind = pkt.kind;
        event.src = pkt.src;
        event.dst = pkt.dst;
        event.hop_from = from;
        event.hop_to = to;
        event.size_bytes = pkt.size_bytes;
        event.src_name = net_ptr->node(pkt.src).name();
        event.dst_name = net_ptr->node(pkt.dst).name();
        event.summary = summarize(pkt, event.call_id);
        record(std::move(event));
      });
}

void PacketTrace::record(TraceEvent event) {
  if (max_events_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < max_events_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<TraceEvent> PacketTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::string PacketTrace::to_csv() const {
  util::TextTable table{{"time_s", "id", "kind", "src", "dst", "bytes", "summary", "call_id"}};
  for_each([&table](const TraceEvent& e) {
    table.add_row({util::format("%.6f", e.at.to_seconds()),
                   util::format("%llu", (unsigned long long)e.packet_id),
                   std::string{to_string(e.kind)}, e.src_name, e.dst_name,
                   util::format("%u", e.size_bytes), e.summary, e.call_id});
  });
  return table.to_csv();
}

std::string PacketTrace::sip_ladder(const std::string& call_id_fragment) const {
  std::ostringstream os;
  for_each([&os, &call_id_fragment](const TraceEvent& e) {
    if (e.kind != net::PacketKind::kSip) return;
    if (e.call_id.find(call_id_fragment) == std::string::npos) return;
    os << util::format("%10.4fs  %-12s ---[ %-28s ]--> %s\n", e.at.to_seconds(),
                       e.src_name.c_str(), e.summary.c_str(), e.dst_name.c_str());
  });
  return os.str();
}

}  // namespace pbxcap::monitor
