// Packet trace capture — the "save the pcap" counterpart to the counters.
//
// Records per-delivery events from the network taps with protocol detail
// (SIP method/status, RTP SSRC/seq), exports CSV for external analysis, and
// renders the classic Wireshark-style SIP call-flow ladder (Fig. 2) for any
// Call-ID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/time.hpp"

namespace pbxcap::monitor {

struct TraceEvent {
  TimePoint at{};
  std::uint64_t packet_id{0};
  net::PacketKind kind{net::PacketKind::kOther};
  net::NodeId src{net::kInvalidNode};      // end-to-end source
  net::NodeId dst{net::kInvalidNode};      // end-to-end destination
  net::NodeId hop_from{net::kInvalidNode}; // link endpoints of this delivery
  net::NodeId hop_to{net::kInvalidNode};
  std::uint32_t size_bytes{0};
  std::string src_name;  // captured at event time: valid after the network dies
  std::string dst_name;
  std::string summary;   // "INVITE sip:recv-1@pbx", "200 OK", "RTP ssrc=7 seq=42"
  std::string call_id;   // SIP only
};

class PacketTrace {
 public:
  /// `max_events` caps memory. The capture is a true ring buffer: once full,
  /// each new event overwrites the oldest one (tcpdump -W 1 semantics), so
  /// the retained window always ends at the most recent delivery. `dropped()`
  /// counts the overwritten events; testbed runs export it as the
  /// `pbxcap_trace_events_dropped_total` telemetry metric.
  explicit PacketTrace(std::size_t max_events = 100'000) : max_events_{max_events} {}

  /// Installs the tap. Records only final-hop deliveries (one event per
  /// end-to-end message per receiving node), optionally filtered by kind.
  void attach(net::Network& network, bool sip_only = false);

  /// Retained events, oldest first (chronological even after wrap-around).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Number of events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return max_events_; }

  [[nodiscard]] std::string to_csv() const;

  /// Renders the SIP message ladder for one call (all Call-IDs containing
  /// `call_id_fragment`), with node names as columns — the Fig. 2 picture.
  [[nodiscard]] std::string sip_ladder(const std::string& call_id_fragment) const;

 private:
  void record(TraceEvent event);
  /// Applies `fn` to each retained event in chronological order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }

  std::size_t max_events_;
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  // index of the oldest retained event once full
  std::uint64_t dropped_{0};
};

}  // namespace pbxcap::monitor
