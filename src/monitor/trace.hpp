// Packet trace capture — the "save the pcap" counterpart to the counters.
//
// Records per-delivery events from the network taps with protocol detail
// (SIP method/status, RTP SSRC/seq), exports CSV for external analysis, and
// renders the classic Wireshark-style SIP call-flow ladder (Fig. 2) for any
// Call-ID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/time.hpp"

namespace pbxcap::monitor {

struct TraceEvent {
  TimePoint at{};
  std::uint64_t packet_id{0};
  net::PacketKind kind{net::PacketKind::kOther};
  net::NodeId src{net::kInvalidNode};      // end-to-end source
  net::NodeId dst{net::kInvalidNode};      // end-to-end destination
  net::NodeId hop_from{net::kInvalidNode}; // link endpoints of this delivery
  net::NodeId hop_to{net::kInvalidNode};
  std::uint32_t size_bytes{0};
  std::string src_name;  // captured at event time: valid after the network dies
  std::string dst_name;
  std::string summary;   // "INVITE sip:recv-1@pbx", "200 OK", "RTP ssrc=7 seq=42"
  std::string call_id;   // SIP only
};

class PacketTrace {
 public:
  /// `max_events` caps memory; older events are kept, new ones dropped once
  /// full (a capture that stops when the buffer is full, like a ring-less
  /// pcap with -c).
  explicit PacketTrace(std::size_t max_events = 100'000) : max_events_{max_events} {}

  /// Installs the tap. Records only final-hop deliveries (one event per
  /// end-to-end message per receiving node), optionally filtered by kind.
  void attach(net::Network& network, bool sip_only = false);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::string to_csv() const;

  /// Renders the SIP message ladder for one call (all Call-IDs containing
  /// `call_id_fragment`), with node names as columns — the Fig. 2 picture.
  [[nodiscard]] std::string sip_ladder(const std::string& call_id_fragment) const;

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_{0};
};

}  // namespace pbxcap::monitor
