#include "monitor/report.hpp"

#include <algorithm>

#include <vector>

#include "util/strings.hpp"

namespace pbxcap::monitor {

std::string ExperimentReport::cpu_range_string() const {
  if (cpu_utilization.empty()) return "n/a";
  // Table I reports eyeballed "lo% to hi%" bands; mean +/- one standard
  // deviation (clipped to the observed extremes) reproduces that kind of
  // band without letting one bursty second dominate.
  const double lo =
      std::max(cpu_utilization.min(), cpu_utilization.mean() - cpu_utilization.stddev());
  const double hi =
      std::min(cpu_utilization.max(), cpu_utilization.mean() + cpu_utilization.stddev());
  return util::format("%.0f%% to %.0f%%", lo * 100.0, hi * 100.0);
}

util::TextTable make_table1(const std::vector<ExperimentReport>& reports) {
  std::vector<std::string> header{"metric"};
  for (const auto& r : reports) header.push_back(util::format("A=%.0f E", r.offered_erlangs));
  util::TextTable table{std::move(header)};

  const auto row = [&](const std::string& name, auto&& value_of) {
    std::vector<std::string> cells{name};
    for (const auto& r : reports) cells.push_back(value_of(r));
    table.add_row(std::move(cells));
  };
  const auto u64 = [](std::uint64_t v) { return util::format("%llu", static_cast<unsigned long long>(v)); };

  row("Number of Channels (N)", [&](const ExperimentReport& r) {
    return util::format("%u", r.channels_peak);
  });
  row("CPU Usage", [](const ExperimentReport& r) { return r.cpu_range_string(); });
  row("MOS", [](const ExperimentReport& r) {
    return r.mos.empty() ? std::string{"n/a"} : util::format("%.2f", r.mos.mean());
  });
  row("RTP Msg", [&](const ExperimentReport& r) { return u64(r.rtp_packets_at_pbx); });
  row("Blocked Calls (%)", [](const ExperimentReport& r) {
    return util::format("%.0f%%", r.blocking_probability * 100.0);
  });
  row("SIP Messages (Total)", [&](const ExperimentReport& r) { return u64(r.sip_total); });
  row("  INVITE", [&](const ExperimentReport& r) { return u64(r.sip_invite); });
  row("  100 TRY", [&](const ExperimentReport& r) { return u64(r.sip_100); });
  row("  180 RING", [&](const ExperimentReport& r) { return u64(r.sip_180); });
  row("  200 OK", [&](const ExperimentReport& r) { return u64(r.sip_200); });
  row("  ACK", [&](const ExperimentReport& r) { return u64(r.sip_ack); });
  row("  BYE", [&](const ExperimentReport& r) { return u64(r.sip_bye); });
  row("  Error Msgs", [&](const ExperimentReport& r) { return u64(r.sip_errors); });
  return table;
}

ExperimentReport merge_replications(const std::vector<ExperimentReport>& runs) {
  if (runs.empty()) return {};
  ExperimentReport out = runs.front();
  const auto n = static_cast<double>(runs.size());

  // Reset the accumulating fields, keep the identification fields.
  out.calls_attempted = out.calls_completed = out.calls_blocked = out.calls_failed = 0;
  out.calls_attempted_steady = 0;
  std::uint64_t blocked_steady_weighted = 0;
  out.channels_peak = 0;
  out.cpu_utilization = {};
  out.mos = {};
  out.setup_delay_ms = {};
  out.effective_loss = {};
  out.jitter_ms = {};
  double rtp_at_pbx = 0.0;
  double rtp_relayed = 0.0;
  double transcoded_rtp = 0.0;
  double trunk_frames = 0.0;
  double trunk_mini_frames = 0.0;
  double events = 0.0;
  double sip_total = 0.0;
  double sip_invite = 0.0;
  double sip_100 = 0.0;
  double sip_180 = 0.0;
  double sip_200 = 0.0;
  double sip_ack = 0.0;
  double sip_bye = 0.0;
  double sip_errors = 0.0;
  double sip_rtx = 0.0;
  double overload_503 = 0.0;
  double queue_dropped = 0.0;
  double impairment_dropped = 0.0;
  out.calls_retried = 0;
  out.retries_rerouted = 0;
  out.codec_rejections_488 = 0;
  out.transcoded_bridges = 0;
  const std::uint32_t acd_agents = out.acd.agents;  // config, not an observation
  out.acd = {};
  out.acd.agents = acd_agents;

  for (const auto& r : runs) {
    out.calls_attempted += r.calls_attempted;
    out.calls_completed += r.calls_completed;
    out.calls_blocked += r.calls_blocked;
    out.calls_failed += r.calls_failed;
    out.calls_attempted_steady += r.calls_attempted_steady;
    blocked_steady_weighted += static_cast<std::uint64_t>(
        r.blocking_probability_steady * static_cast<double>(r.calls_attempted_steady) + 0.5);
    out.channels_peak = std::max(out.channels_peak, r.channels_peak);
    out.cpu_utilization.merge(r.cpu_utilization);
    out.mos.merge(r.mos);
    out.setup_delay_ms.merge(r.setup_delay_ms);
    out.effective_loss.merge(r.effective_loss);
    out.jitter_ms.merge(r.jitter_ms);
    rtp_at_pbx += static_cast<double>(r.rtp_packets_at_pbx);
    rtp_relayed += static_cast<double>(r.rtp_relayed);
    transcoded_rtp += static_cast<double>(r.transcoded_rtp);
    trunk_frames += static_cast<double>(r.trunk_frames);
    trunk_mini_frames += static_cast<double>(r.trunk_mini_frames);
    sip_total += static_cast<double>(r.sip_total);
    sip_invite += static_cast<double>(r.sip_invite);
    sip_100 += static_cast<double>(r.sip_100);
    sip_180 += static_cast<double>(r.sip_180);
    sip_200 += static_cast<double>(r.sip_200);
    sip_ack += static_cast<double>(r.sip_ack);
    sip_bye += static_cast<double>(r.sip_bye);
    sip_errors += static_cast<double>(r.sip_errors);
    sip_rtx += static_cast<double>(r.sip_retransmissions);
    overload_503 += static_cast<double>(r.overload_rejections);
    queue_dropped += static_cast<double>(r.sip_queue_dropped);
    impairment_dropped += static_cast<double>(r.link_dropped_impairment);
    out.calls_retried += r.calls_retried;  // call-scale count: sums like outcomes
    out.retries_rerouted += r.retries_rerouted;
    out.codec_rejections_488 += r.codec_rejections_488;  // call outcomes: they sum
    out.transcoded_bridges += r.transcoded_bridges;
    out.acd.offered += r.acd.offered;  // ACD events are call outcomes: they sum
    out.acd.queued += r.acd.queued;
    out.acd.served += r.acd.served;
    out.acd.abandoned += r.acd.abandoned;
    out.acd.timed_out += r.acd.timed_out;
    out.acd.voicemail += r.acd.voicemail;
    out.acd.blocked_full += r.acd.blocked_full;
    out.acd.announcements += r.acd.announcements;
    out.acd.serve_retries += r.acd.serve_retries;
    out.acd.serve_failures += r.acd.serve_failures;
    out.acd.wait_s.merge(r.acd.wait_s);
    out.acd.wait_served_s.merge(r.acd.wait_served_s);
    out.acd.busy_agent_s += r.acd.busy_agent_s;
    events += static_cast<double>(r.events_processed);
  }

  out.blocking_probability =
      out.calls_attempted == 0
          ? 0.0
          : static_cast<double>(out.calls_blocked) / static_cast<double>(out.calls_attempted);
  out.blocking_probability_steady =
      out.calls_attempted_steady == 0
          ? 0.0
          : static_cast<double>(blocked_steady_weighted) /
                static_cast<double>(out.calls_attempted_steady);
  const auto mean_u64 = [n](double sum) {
    return static_cast<std::uint64_t>(sum / n + 0.5);
  };
  out.rtp_packets_at_pbx = mean_u64(rtp_at_pbx);
  out.rtp_relayed = mean_u64(rtp_relayed);
  out.transcoded_rtp = mean_u64(transcoded_rtp);
  out.trunk_frames = mean_u64(trunk_frames);
  out.trunk_mini_frames = mean_u64(trunk_mini_frames);
  out.sip_total = mean_u64(sip_total);
  out.sip_invite = mean_u64(sip_invite);
  out.sip_100 = mean_u64(sip_100);
  out.sip_180 = mean_u64(sip_180);
  out.sip_200 = mean_u64(sip_200);
  out.sip_ack = mean_u64(sip_ack);
  out.sip_bye = mean_u64(sip_bye);
  out.sip_errors = mean_u64(sip_errors);
  out.sip_retransmissions = mean_u64(sip_rtx);
  out.overload_rejections = mean_u64(overload_503);
  out.sip_queue_dropped = mean_u64(queue_dropped);
  out.link_dropped_impairment = mean_u64(impairment_dropped);
  out.events_processed = mean_u64(events);
  return out;
}

}  // namespace pbxcap::monitor
