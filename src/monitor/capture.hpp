// Packet capture taps — the Wireshark/VoIPmonitor observation point.
//
// Both taps attach to the Network and observe the PBX's NIC: a message is
// counted once on ingress (final hop into the PBX) and once on egress (first
// hop out), exactly what a capture on the server's interface sees. Table I's
// SIP per-type rows and the RTP message row are produced from these counts.
#pragma once

#include <cstdint>
#include <string>

#include "net/network.hpp"
#include "sip/message.hpp"
#include "stats/counter.hpp"
#include "stats/rate_meter.hpp"

namespace pbxcap::monitor {

/// Counts SIP messages by method / status class at one node's interface.
class SipCapture {
 public:
  explicit SipCapture(net::NodeId watch_node) : node_{watch_node} {}

  /// Installs the tap; call once after building the network.
  void attach(net::Network& network);

  [[nodiscard]] const stats::CounterSet& counters() const noexcept { return counters_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  // Table I row accessors.
  [[nodiscard]] std::uint64_t invites() const { return counters_.value("INVITE"); }
  [[nodiscard]] std::uint64_t trying_100() const { return counters_.value("100"); }
  [[nodiscard]] std::uint64_t ringing_180() const { return counters_.value("180"); }
  [[nodiscard]] std::uint64_t ok_200() const { return counters_.value("200"); }
  [[nodiscard]] std::uint64_t acks() const { return counters_.value("ACK"); }
  [[nodiscard]] std::uint64_t byes() const { return counters_.value("BYE"); }
  /// Error responses (>= 400), the Table I "Error Msgs" row.
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }

 private:
  void on_packet(const net::Packet& pkt, net::NodeId from, net::NodeId to);

  net::NodeId node_;
  stats::CounterSet counters_;
  std::uint64_t total_{0};
  std::uint64_t errors_{0};
};

/// Counts RTP packets and bytes entering one node (PBX ingress = the paper's
/// per-experiment RTP message count).
class RtpCapture {
 public:
  explicit RtpCapture(net::NodeId watch_node) : node_{watch_node} {}

  void attach(net::Network& network);

  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const noexcept { return packets_out_; }
  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] const stats::RateMeter& ingress_rate() const noexcept { return ingress_rate_; }

 private:
  net::NodeId node_;
  std::uint64_t packets_in_{0};
  std::uint64_t packets_out_{0};
  std::uint64_t bytes_in_{0};
  stats::RateMeter ingress_rate_;
};

}  // namespace pbxcap::monitor
