// Aggregated experiment report — one Table I column worth of measurements.
#pragma once

#include <cstdint>
#include <string>

#include "stats/summary.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pbxcap::monitor {

struct ExperimentReport {
  // Workload identification.
  double offered_erlangs{0.0};
  double arrival_rate_per_s{0.0};
  Duration hold_time{};
  std::uint64_t seed{0};

  // Call outcomes.
  std::uint64_t calls_attempted{0};
  std::uint64_t calls_completed{0};
  std::uint64_t calls_blocked{0};
  std::uint64_t calls_failed{0};
  /// Over all attempts in the placement window.
  double blocking_probability{0.0};
  /// Over attempts offered after one hold time. With the paper's short
  /// deterministic-hold experiment this phase is NOT an equilibrium (the
  /// departure process mirrors the admission process with a one-hold lag),
  /// so this is a diagnostic, not the headline number.
  double blocking_probability_steady{0.0};
  std::uint64_t calls_attempted_steady{0};

  // PBX-side observations.
  std::uint32_t channels_configured{0};
  std::uint32_t channels_peak{0};  // Table I "Number of Channels (N)"
  stats::Summary cpu_utilization;  // one sample per second of the run
  std::uint64_t rtp_packets_at_pbx{0};
  std::uint64_t rtp_relayed{0};

  // Codec / transcoding / trunking tier (all zero for single-codec,
  // untrunked runs).
  std::uint64_t codec_rejections_488{0};  // offers with no codec overlap
  std::uint64_t transcoded_bridges{0};    // bridges whose legs mismatched
  std::uint64_t transcoded_rtp{0};        // media frames that paid transcode work
  std::uint64_t trunk_frames{0};          // IAX2-style shells on the uplinks
  std::uint64_t trunk_mini_frames{0};     // media packets carried inside them

  // Voice quality over completed calls.
  stats::Summary mos;
  stats::Summary setup_delay_ms;
  stats::Summary effective_loss;
  stats::Summary jitter_ms;

  // SIP message census at the PBX interface (in + out).
  std::uint64_t sip_total{0};
  std::uint64_t sip_invite{0};
  std::uint64_t sip_100{0};
  std::uint64_t sip_180{0};
  std::uint64_t sip_200{0};
  std::uint64_t sip_ack{0};
  std::uint64_t sip_bye{0};
  std::uint64_t sip_errors{0};
  std::uint64_t sip_retransmissions{0};

  /// ACD observations, summed over backends and queues (all zero when the
  /// ACD subsystem is disabled).
  struct AcdReport {
    std::uint64_t offered{0};        // calls routed to an ACD queue
    std::uint64_t queued{0};         // entered the wait line (no agent free)
    std::uint64_t served{0};         // bridged to an agent
    std::uint64_t abandoned{0};      // reneged before service
    std::uint64_t timed_out{0};      // max-wait expiries rejected
    std::uint64_t voicemail{0};      // overflowed to the voicemail leg
    std::uint64_t blocked_full{0};   // rejected with the queue at capacity
    std::uint64_t announcements{0};  // 182 position updates sent
    std::uint64_t serve_retries{0};  // dispatches re-queued: no channel free
    std::uint64_t serve_failures{0}; // dispatches the PBX failed to bridge
    stats::Summary wait_s;           // waiting time, every call leaving a queue
    stats::Summary wait_served_s;    // waiting time of served calls only
    double busy_agent_s{0.0};        // agent talk seconds (occupancy numerator)
    std::uint32_t agents{0};         // configured agents across queues/backends
  };
  AcdReport acd;

  // Fault / overload-control observations (zero without faults or overload
  // control; see FAULTS.md).
  std::uint64_t overload_rejections{0};   // 503s from the PBX's overload gate
  std::uint64_t calls_retried{0};         // caller re-attempts after 503
  /// Re-attempts that landed on a *different* backend than the failed one
  /// (dispatcher failover, or DNS-rotation retry in the cluster path).
  std::uint64_t retries_rerouted{0};
  std::uint64_t sip_queue_dropped{0};     // SIP service-queue overflows
  std::uint64_t link_dropped_impairment{0};  // packets lost to blackouts

  /// DES kernel events the run consumed — the denominator for engine
  /// throughput (events/s wall-clock) in performance tracking.
  std::uint64_t events_processed{0};

  /// Formats "lo% to hi%" for the CPU row, as Table I reports ranges.
  [[nodiscard]] std::string cpu_range_string() const;
};

/// Renders reports as the paper's Table I (workloads as columns).
[[nodiscard]] util::TextTable make_table1(const std::vector<ExperimentReport>& reports);

/// Pools replications of the SAME workload into one report: counts sum,
/// summaries merge, probabilities recompute from pooled counts, and the
/// peak-channel figure takes the maximum. Message/packet counts become
/// per-replication means so the merged report stays comparable to a single
/// run (and to the paper's single-run Table I).
[[nodiscard]] ExperimentReport merge_replications(const std::vector<ExperimentReport>& runs);

}  // namespace pbxcap::monitor
