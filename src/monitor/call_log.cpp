#include "monitor/call_log.hpp"

namespace pbxcap::monitor {

std::uint64_t CallLog::count(CallOutcome outcome) const noexcept {
  std::uint64_t n = 0;
  for (const auto& rec : records_) {
    if (rec.outcome == outcome) ++n;
  }
  return n;
}

std::uint64_t CallLog::attempted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& rec : records_) {
    if (rec.outcome != CallOutcome::kAbandoned) ++n;
  }
  return n;
}

double CallLog::blocking_probability() const noexcept {
  const std::uint64_t n = attempted();
  return n == 0 ? 0.0 : static_cast<double>(blocked()) / static_cast<double>(n);
}

std::uint64_t CallLog::attempted_since(TimePoint from) const noexcept {
  std::uint64_t n = 0;
  for (const auto& rec : records_) {
    if (rec.outcome != CallOutcome::kAbandoned && rec.offered_at >= from) ++n;
  }
  return n;
}

std::uint64_t CallLog::blocked_since(TimePoint from) const noexcept {
  std::uint64_t n = 0;
  for (const auto& rec : records_) {
    if (rec.outcome == CallOutcome::kBlocked && rec.offered_at >= from) ++n;
  }
  return n;
}

double CallLog::blocking_probability_since(TimePoint from) const noexcept {
  const std::uint64_t n = attempted_since(from);
  return n == 0 ? 0.0 : static_cast<double>(blocked_since(from)) / static_cast<double>(n);
}

stats::Interval CallLog::blocking_confidence(double conf) const {
  return stats::proportion_confidence(blocked(), attempted(), conf);
}

stats::Summary CallLog::mos_summary() const {
  stats::Summary summary;
  for (const auto& rec : records_) {
    if (rec.outcome != CallOutcome::kCompleted) continue;
    if (rec.mos_caller_heard) summary.add(*rec.mos_caller_heard);
    if (rec.mos_callee_heard) summary.add(*rec.mos_callee_heard);
  }
  return summary;
}

stats::Summary CallLog::setup_delay_summary() const {
  stats::Summary summary;
  for (const auto& rec : records_) {
    if (rec.outcome == CallOutcome::kCompleted) summary.add(rec.setup_delay.to_millis());
  }
  return summary;
}

stats::Summary CallLog::loss_summary() const {
  stats::Summary summary;
  for (const auto& rec : records_) {
    if (rec.outcome != CallOutcome::kCompleted) continue;
    summary.add(rec.loss_caller_heard);
    summary.add(rec.loss_callee_heard);
  }
  return summary;
}

stats::Summary CallLog::jitter_summary() const {
  stats::Summary summary;
  for (const auto& rec : records_) {
    if (rec.outcome != CallOutcome::kCompleted) continue;
    summary.add(rec.jitter_caller_heard.to_millis());
    summary.add(rec.jitter_callee_heard.to_millis());
  }
  return summary;
}

}  // namespace pbxcap::monitor
