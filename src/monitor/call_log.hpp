// Per-call outcome log — the measurement record behind BP and MOS.
//
// The caller generator appends one record per attempted call. Blocking
// probability is blocked/attempted; MOS aggregation covers completed calls
// only, matching the paper's note that VoIPmonitor "does not consider
// dropped calls in the evaluations".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "util/time.hpp"

namespace pbxcap::monitor {

enum class CallOutcome : std::uint8_t {
  kCompleted,   // answered and torn down normally
  kBlocked,     // rejected by admission control (486/503/600)
  kFailed,      // other error or signalling timeout
  kAbandoned,   // still up when the experiment ended (excluded from BP/MOS)
};

struct CallRecord {
  std::uint64_t call_index{0};
  TimePoint offered_at{};
  CallOutcome outcome{CallOutcome::kFailed};
  Duration setup_delay{};       // INVITE -> 200 (completed calls)
  Duration talk_time{};
  // Voice-quality observations, one per direction (as heard at each end).
  std::optional<double> mos_caller_heard;
  std::optional<double> mos_callee_heard;
  double loss_caller_heard{0.0};   // effective loss incl. jitter discards
  double loss_callee_heard{0.0};
  Duration jitter_caller_heard{};
  Duration jitter_callee_heard{};
  std::uint64_t rtp_received_caller{0};
  std::uint64_t rtp_received_callee{0};
};

class CallLog {
 public:
  void add(CallRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<CallRecord>& records() const noexcept { return records_; }
  /// Mutable access for post-run enrichment (merging callee-side quality).
  [[nodiscard]] std::vector<CallRecord>& records_mutable() noexcept { return records_; }

  [[nodiscard]] std::uint64_t attempted() const noexcept;  // excludes abandoned
  [[nodiscard]] std::uint64_t completed() const noexcept { return count(CallOutcome::kCompleted); }
  [[nodiscard]] std::uint64_t blocked() const noexcept { return count(CallOutcome::kBlocked); }
  [[nodiscard]] std::uint64_t failed() const noexcept { return count(CallOutcome::kFailed); }
  [[nodiscard]] std::uint64_t count(CallOutcome outcome) const noexcept;

  /// Blocking probability: blocked / attempted (0 when no attempts).
  [[nodiscard]] double blocking_probability() const noexcept;
  /// Same, restricted to calls offered at or after `from` — used to measure
  /// the loaded steady state, excluding the ramp-up during which the channel
  /// pool cannot yet be full.
  [[nodiscard]] double blocking_probability_since(TimePoint from) const noexcept;
  [[nodiscard]] std::uint64_t attempted_since(TimePoint from) const noexcept;
  [[nodiscard]] std::uint64_t blocked_since(TimePoint from) const noexcept;
  /// Wilson confidence interval on the blocking probability.
  [[nodiscard]] stats::Interval blocking_confidence(double conf = 0.95) const;

  /// MOS over completed calls (both directions pooled).
  [[nodiscard]] stats::Summary mos_summary() const;
  /// Mean setup delay over completed calls.
  [[nodiscard]] stats::Summary setup_delay_summary() const;
  [[nodiscard]] stats::Summary loss_summary() const;
  [[nodiscard]] stats::Summary jitter_summary() const;

 private:
  std::vector<CallRecord> records_;
};

}  // namespace pbxcap::monitor
