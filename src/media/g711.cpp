#include "media/g711.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbxcap::media {
namespace {

constexpr std::int32_t kUlawBias = 0x84;   // 132: standard mu-law bias
constexpr std::int32_t kUlawClip = 32635;
constexpr std::int32_t kAlawClip = 32635;

}  // namespace

std::uint8_t ulaw_encode(std::int16_t pcm) noexcept {
  std::int32_t sample = pcm;
  const auto sign = static_cast<std::uint8_t>(sample < 0 ? 0x80 : 0x00);
  if (sample < 0) sample = -sample;
  sample = std::min(sample, kUlawClip);
  sample += kUlawBias;

  // Exponent: index of the segment containing the sample.
  int exponent = 7;
  for (std::int32_t mask = 0x4000; exponent > 0 && (sample & mask) == 0; --exponent, mask >>= 1) {
  }
  const auto mantissa = static_cast<std::uint8_t>((sample >> (exponent + 3)) & 0x0f);
  // G.711 transmits the one's complement, so silence (0) is 0xFF on the wire.
  return static_cast<std::uint8_t>(
      ~(sign | static_cast<std::uint8_t>(exponent << 4) | mantissa));
}

std::int16_t ulaw_decode(std::uint8_t code) noexcept {
  code = static_cast<std::uint8_t>(~code);
  const bool negative = (code & 0x80) != 0;
  const int exponent = (code >> 4) & 0x07;
  const int mantissa = code & 0x0f;
  std::int32_t sample = ((mantissa << 3) + kUlawBias) << exponent;
  sample -= kUlawBias;
  return static_cast<std::int16_t>(negative ? -sample : sample);
}

std::uint8_t alaw_encode(std::int16_t pcm) noexcept {
  std::int32_t sample = pcm;
  const std::uint8_t sign = sample >= 0 ? 0x80 : 0x00;
  if (sample < 0) sample = -sample - 1;  // A-law uses one's-complement folding
  sample = std::min(sample, kAlawClip);

  std::uint8_t code;
  if (sample < 256) {
    code = static_cast<std::uint8_t>(sample >> 4);
  } else {
    int exponent = 7;
    for (std::int32_t mask = 0x4000; exponent > 1 && (sample & mask) == 0;
         --exponent, mask >>= 1) {
    }
    const auto mantissa = static_cast<std::uint8_t>((sample >> (exponent + 3)) & 0x0f);
    code = static_cast<std::uint8_t>((exponent << 4) | mantissa);
  }
  return static_cast<std::uint8_t>((code | sign) ^ 0x55);  // even-bit inversion
}

std::int16_t alaw_decode(std::uint8_t code) noexcept {
  code ^= 0x55;
  const bool positive = (code & 0x80) != 0;
  const int exponent = (code >> 4) & 0x07;
  const int mantissa = code & 0x0f;
  std::int32_t sample;
  if (exponent == 0) {
    sample = (mantissa << 4) + 8;
  } else {
    sample = ((mantissa << 4) + 0x108) << (exponent - 1);
  }
  return static_cast<std::int16_t>(positive ? sample : -sample);
}

std::vector<std::uint8_t> ulaw_encode(std::span<const std::int16_t> pcm) {
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size());
  for (const auto s : pcm) out.push_back(ulaw_encode(s));
  return out;
}

std::vector<std::int16_t> ulaw_decode(std::span<const std::uint8_t> codes) {
  std::vector<std::int16_t> out;
  out.reserve(codes.size());
  for (const auto c : codes) out.push_back(ulaw_decode(c));
  return out;
}

std::vector<std::uint8_t> alaw_encode(std::span<const std::int16_t> pcm) {
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size());
  for (const auto s : pcm) out.push_back(alaw_encode(s));
  return out;
}

std::vector<std::int16_t> alaw_decode(std::span<const std::uint8_t> codes) {
  std::vector<std::int16_t> out;
  out.reserve(codes.size());
  for (const auto c : codes) out.push_back(alaw_decode(c));
  return out;
}

std::vector<std::int16_t> make_tone(double frequency_hz, std::uint32_t sample_rate_hz,
                                    Duration duration, double amplitude) {
  if (amplitude < 0.0 || amplitude > 1.0) {
    throw std::invalid_argument{"make_tone: amplitude must be in [0,1]"};
  }
  const auto n = static_cast<std::size_t>(duration.to_seconds() * sample_rate_hz);
  std::vector<std::int16_t> out(n);
  constexpr double kTwoPi = 6.28318530717958647692;
  const double scale = amplitude * 32767.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    out[i] = static_cast<std::int16_t>(std::lround(scale * std::sin(kTwoPi * frequency_hz * t)));
  }
  return out;
}

double snr_db(std::span<const std::int16_t> reference, std::span<const std::int16_t> degraded) {
  if (reference.size() != degraded.size() || reference.empty()) {
    throw std::invalid_argument{"snr_db: signals must be non-empty and equal length"};
  }
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double s = reference[i];
    const double e = static_cast<double>(reference[i]) - degraded[i];
    signal += s * s;
    noise += e * e;
  }
  if (noise == 0.0) return 1e9;
  return 10.0 * std::log10(signal / noise);
}

}  // namespace pbxcap::media
