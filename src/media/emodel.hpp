// ITU-T G.107 E-model, the objective MOS predictor.
//
// The paper scores completed calls with VoIPmonitor, which derives MOS from
// observed packet loss/jitter/delay with an E-model-style computation. We
// implement the published algorithm directly:
//
//   R = (Ro - Is) - Id(Ta) - Ie,eff(Ppl) + A
//
// with the standard default (Ro - Is) = 93.2 for the transmission-side
// factors the testbed does not vary, the Cole-Rosenbluth piecewise-linear
// delay impairment Id, and the G.113 packet-loss impairment
// Ie,eff = Ie + (95 - Ie) * Ppl / (Ppl + Bpl). R maps to MOS via the G.107
// Annex B cubic.
#pragma once

#include <string_view>

#include "rtp/codec.hpp"
#include "util/time.hpp"

namespace pbxcap::media {

struct EmodelInputs {
  /// One-way mouth-to-ear delay: network + jitter-buffer + codec lookahead.
  Duration one_way_delay{Duration::zero()};
  /// Effective packet loss fraction in [0,1]: network loss + late discards.
  double packet_loss{0.0};
  /// Codec equipment-impairment parameters.
  double codec_ie{0.0};
  double codec_bpl{4.3};
  /// Advantage factor (G.107 Table 1): 0 wired, 5 DECT/wireless-in-building,
  /// 10 cellular/VoWiFi mobility.
  double advantage{0.0};
};

/// Transmission rating factor R (clamped to [0, 100]).
[[nodiscard]] double r_factor(const EmodelInputs& inputs);

/// Delay impairment Id for a one-way delay (Cole-Rosenbluth approximation of
/// the G.107 Id curve).
[[nodiscard]] double delay_impairment(Duration one_way_delay);

/// Effective equipment impairment for random loss.
[[nodiscard]] double equipment_impairment(double packet_loss_fraction, double ie, double bpl);

/// G.107 Annex B mapping R -> MOS-CQE (1.0 .. 4.5).
[[nodiscard]] double mos_from_r(double r);

/// Convenience: full pipeline inputs -> MOS.
[[nodiscard]] double estimate_mos(const EmodelInputs& inputs);

/// ITU user-satisfaction bands for reporting.
enum class QualityBand { kBest, kHigh, kMedium, kLow, kPoor };

[[nodiscard]] QualityBand quality_band(double r);
[[nodiscard]] std::string_view to_string(QualityBand band) noexcept;

/// Inputs prefilled for a codec from the catalog (Ie/Bpl/lookahead).
[[nodiscard]] EmodelInputs inputs_for_codec(const rtp::Codec& codec, Duration network_delay,
                                            Duration jitter_buffer_delay, double effective_loss,
                                            double advantage = 0.0);

}  // namespace pbxcap::media
