// ITU-T G.711 companding: the actual ulaw/A-law codec the paper's calls use.
//
// The capacity study treats G.711 as a bitrate + packetization schedule; this
// module implements the codec itself (logarithmic PCM companding) so the
// media path can be exercised at signal level: tests verify the 8-bit code
// space round-trips within the G.711 quantization error and that speech-band
// tones survive with the expected ~38 dB SNR.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::media {

/// Encodes one 16-bit linear PCM sample to 8-bit ulaw (G.711 mu-law).
[[nodiscard]] std::uint8_t ulaw_encode(std::int16_t pcm) noexcept;
/// Decodes one ulaw byte back to linear PCM.
[[nodiscard]] std::int16_t ulaw_decode(std::uint8_t code) noexcept;

/// A-law variants (G.711 A-law, the E1-world counterpart).
[[nodiscard]] std::uint8_t alaw_encode(std::int16_t pcm) noexcept;
[[nodiscard]] std::int16_t alaw_decode(std::uint8_t code) noexcept;

/// Bulk helpers.
[[nodiscard]] std::vector<std::uint8_t> ulaw_encode(std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> ulaw_decode(std::span<const std::uint8_t> codes);
[[nodiscard]] std::vector<std::uint8_t> alaw_encode(std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> alaw_decode(std::span<const std::uint8_t> codes);

/// Generates a sine tone as 16-bit linear PCM.
[[nodiscard]] std::vector<std::int16_t> make_tone(double frequency_hz,
                                                  std::uint32_t sample_rate_hz,
                                                  Duration duration, double amplitude = 0.5);

/// Signal-to-noise ratio in dB between a reference and a degraded signal of
/// equal length. Returns +inf dB (1e9) for identical signals.
[[nodiscard]] double snr_db(std::span<const std::int16_t> reference,
                            std::span<const std::int16_t> degraded);

}  // namespace pbxcap::media
