#include "media/emodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbxcap::media {
namespace {

/// Default (Ro - Is): the G.107 rating with all transmission-side defaults.
constexpr double kBaseR = 93.2;

}  // namespace

double delay_impairment(Duration one_way_delay) {
  const double d_ms = one_way_delay.to_millis();
  if (d_ms < 0.0) throw std::invalid_argument{"delay_impairment: negative delay"};
  double id = 0.024 * d_ms;
  if (d_ms > 177.3) id += 0.11 * (d_ms - 177.3);
  return id;
}

double equipment_impairment(double packet_loss_fraction, double ie, double bpl) {
  if (packet_loss_fraction < 0.0 || packet_loss_fraction > 1.0) {
    throw std::invalid_argument{"equipment_impairment: loss fraction outside [0,1]"};
  }
  const double ppl = packet_loss_fraction * 100.0;  // G.113 formula uses percent
  return ie + (95.0 - ie) * ppl / (ppl + bpl);
}

double r_factor(const EmodelInputs& inputs) {
  const double r = kBaseR - delay_impairment(inputs.one_way_delay) -
                   equipment_impairment(inputs.packet_loss, inputs.codec_ie, inputs.codec_bpl) +
                   inputs.advantage;
  return std::clamp(r, 0.0, 100.0);
}

double mos_from_r(double r) {
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  const double mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6;
  // The Annex B cubic dips fractionally below 1 for small positive R; MOS is
  // defined on [1, 5], so clamp.
  return std::max(1.0, mos);
}

double estimate_mos(const EmodelInputs& inputs) { return mos_from_r(r_factor(inputs)); }

QualityBand quality_band(double r) {
  if (r >= 90.0) return QualityBand::kBest;
  if (r >= 80.0) return QualityBand::kHigh;
  if (r >= 70.0) return QualityBand::kMedium;
  if (r >= 60.0) return QualityBand::kLow;
  return QualityBand::kPoor;
}

std::string_view to_string(QualityBand band) noexcept {
  switch (band) {
    case QualityBand::kBest: return "best";
    case QualityBand::kHigh: return "high";
    case QualityBand::kMedium: return "medium";
    case QualityBand::kLow: return "low";
    case QualityBand::kPoor: return "poor";
  }
  return "?";
}

EmodelInputs inputs_for_codec(const rtp::Codec& codec, Duration network_delay,
                              Duration jitter_buffer_delay, double effective_loss,
                              double advantage) {
  EmodelInputs inputs;
  // Mouth-to-ear: one packetization interval (framing) + codec lookahead +
  // network one-way delay + playout buffer depth.
  inputs.one_way_delay =
      codec.packet_interval() + codec.lookahead + network_delay + jitter_buffer_delay;
  inputs.packet_loss = effective_loss;
  inputs.codec_ie = codec.ie;
  inputs.codec_bpl = codec.bpl;
  inputs.advantage = advantage;
  return inputs;
}

}  // namespace pbxcap::media
