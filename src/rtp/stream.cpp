#include "rtp/stream.hpp"

#include <algorithm>
#include <cmath>

#include "rtp/fluid.hpp"
#include "sim/profile.hpp"

namespace pbxcap::rtp {

RtpSender::RtpSender(sim::Simulator& simulator, Codec codec, std::uint32_t ssrc, EmitFn emit)
    : simulator_{simulator}, codec_{codec}, ssrc_{ssrc}, emit_{std::move(emit)} {}

RtpSender::~RtpSender() { stop(); }

void RtpSender::start() {
  if (running_) return;
  running_ = true;
  begin_segment(/*fluid=*/false);
  emit_one(/*first=*/true);
}

void RtpSender::stop() {
  if (!running_) return;
  if (fluid_active_) {
    // A pacing tick due exactly now would lose the FIFO race against the
    // stop (BYE) timer in per-packet mode, so the flush horizon is strict.
    flush_fluid(simulator_.now());
    fluid_active_ = false;
    if (fluid_ != nullptr) fluid_->remove(ssrc_);
  }
  running_ = false;
  if (next_event_ != 0) {
    simulator_.cancel(next_event_);
    next_event_ = 0;
  }
  end_segment();
}

void RtpSender::set_fluid(FluidEngine* engine, BatchEmitFn batch_emit) {
  fluid_ = engine;
  batch_emit_ = std::move(batch_emit);
}

void RtpSender::set_tracer(telemetry::SpanTracer* tracer, std::uint64_t track) {
  tracer_ = tracer;
  trace_track_ = track;
  if (tracer_ != nullptr) {
    seg_packet_name_ = tracer_->name_id("media.packet");
    seg_fluid_name_ = tracer_->name_id("media.fluid");
  }
}

void RtpSender::begin_segment(bool fluid) {
  if (tracer_ == nullptr) return;
  seg_span_ = tracer_->begin(fluid ? seg_fluid_name_ : seg_packet_name_, trace_track_,
                             simulator_.now());
}

void RtpSender::end_segment() {
  if (tracer_ == nullptr || seg_span_ == 0) return;
  tracer_->end(seg_span_, simulator_.now());
  seg_span_ = 0;
}

void RtpSender::emit_one(bool first) {
  if (!running_) return;
  RtpHeader header;
  header.payload_type = codec_.payload_type;
  header.sequence = seq_++;
  header.timestamp = timestamp_;
  header.ssrc = ssrc_;
  header.marker = first;
  timestamp_ += codec_.timestamp_step();
  ++sent_;
  if (packet_counter_ != nullptr) packet_counter_->add();
  emit_(header, codec_.wire_bytes());
  if (fluid_ != nullptr && batch_emit_ && simulator_.now() >= hold_until_ &&
      fluid_->try_enter(*this)) {
    // Coast: suspend the pacing tick; the engine flushes the accumulated
    // run in closed form at the next boundary. The first packet (marker)
    // always goes out per-packet above, anchoring receiver-side state.
    fluid_active_ = true;
    next_due_ = simulator_.now() + codec_.packet_interval();
    next_event_ = 0;
    if (tracer_ != nullptr) {
      end_segment();
      begin_segment(/*fluid=*/true);
    }
    return;
  }
  auto tick = [this] { emit_one(false); };
  // The 20 ms pacing tick dominates the event population at Table-I scale
  // (~3M events per operating point); it must never touch the allocator.
  static_assert(sim::Callback::stores_inline<decltype(tick)>(),
                "RTP pacing tick must stay on the allocation-free SBO path");
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kRtpPacket};
  next_event_ = simulator_.schedule_in(codec_.packet_interval(), std::move(tick));
}

std::uint64_t RtpSender::flush_fluid(TimePoint upto) {
  if (!fluid_active_ || !running_ || next_due_ >= upto) return 0;
  // Departures strictly before `upto`: k in [0, n) with next_due_ + k * T.
  const std::int64_t interval_ns = codec_.packet_interval().ns();
  std::uint64_t n =
      static_cast<std::uint64_t>((upto.ns() - 1 - next_due_.ns()) / interval_ns) + 1;
  const std::uint64_t flushed = n;
  while (n > 0) {
    // Packet::batch is 16-bit; long segments flush as chained chunks.
    const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 0xffff));
    RtpHeader header;
    header.payload_type = codec_.payload_type;
    header.sequence = seq_;
    header.timestamp = timestamp_;
    header.ssrc = ssrc_;
    header.marker = false;
    batch_emit_(header, codec_.wire_bytes(), chunk, next_due_);
    seq_ = static_cast<std::uint16_t>(seq_ + chunk);
    timestamp_ += codec_.timestamp_step() * chunk;
    sent_ += chunk;
    if (packet_counter_ != nullptr) packet_counter_->add(chunk);
    next_due_ = next_due_ + codec_.packet_interval() * static_cast<std::int64_t>(chunk);
    n -= chunk;
  }
  return flushed;
}

void RtpSender::exit_fluid() {
  if (!fluid_active_) return;
  fluid_active_ = false;
  if (!running_) return;
  if (tracer_ != nullptr) {
    end_segment();
    begin_segment(/*fluid=*/false);
  }
  auto tick = [this] { emit_one(false); };
  static_assert(sim::Callback::stores_inline<decltype(tick)>(),
                "RTP pacing tick must stay on the allocation-free SBO path");
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kRtpPacket};
  next_event_ = simulator_.schedule_at(next_due_, std::move(tick));
}

void RtpReceiverStats::on_packet(const RtpHeader& header, TimePoint arrival) {
  ++received_;
  last_arrival_ = arrival;

  if (!started_) {
    started_ = true;
    base_seq_ = header.sequence;
    max_seq_ = header.sequence;
    first_arrival_ = arrival;
  } else {
    const std::uint16_t delta = static_cast<std::uint16_t>(header.sequence - max_seq_);
    if (delta == 0) {
      ++duplicates_;
    } else if (delta < 0x8000) {
      // Forward step; detect wrap.
      if (header.sequence < max_seq_) cycles_ += 1;
      max_seq_ = header.sequence;
    } else {
      ++reordered_;  // late packet (sequence behind the max)
    }
  }

  // RFC 3550 A.8 jitter: J += (|D| - J) / 16, with D the difference in
  // relative transit time between consecutive packets, in media clock units.
  const double arrival_ticks = arrival.to_seconds() * static_cast<double>(clock_rate_hz_);
  const double transit = arrival_ticks - static_cast<double>(header.timestamp);
  if (have_transit_) {
    const double d = std::fabs(transit - last_transit_);
    jitter_ += (d - jitter_) / 16.0;
  }
  last_transit_ = transit;
  have_transit_ = true;
}

void RtpReceiverStats::on_batch(const RtpHeader& first, TimePoint first_arrival,
                                Duration spacing, std::uint32_t timestamp_step,
                                std::uint32_t count) {
  if (count == 0) return;
  if (count == 1) {
    on_packet(first, first_arrival);
    return;
  }
  received_ += count;
  const TimePoint last_arrival =
      first_arrival + spacing * static_cast<std::int64_t>(count - 1);
  last_arrival_ = last_arrival;

  // Closed-form sequence extension: the batch is in-order and contiguous
  // (the fluid path admits no loss, reordering, or duplication), so the
  // extended sequence advances by the forward delta of the first packet
  // plus count-1. Bit-identical to count on_packet calls.
  std::uint64_t ext;
  if (!started_) {
    started_ = true;
    base_seq_ = first.sequence;
    first_arrival_ = first_arrival;
    ext = static_cast<std::uint64_t>(first.sequence) + (count - 1);
  } else {
    const std::uint16_t delta = static_cast<std::uint16_t>(first.sequence - max_seq_);
    ext = ((static_cast<std::uint64_t>(cycles_) << 16) | max_seq_) + delta + (count - 1);
  }
  cycles_ = static_cast<std::uint32_t>(ext >> 16);
  max_seq_ = static_cast<std::uint16_t>(ext & 0xffff);

  // Jitter EWMA: one ordinary update for the batch's first packet against
  // the previous transit, then — the nominal transit being constant within
  // the batch (arrival spacing equals the timestamp step) — the remaining
  // count-1 updates each see D = 0 and decay the estimate geometrically.
  const double clock = static_cast<double>(clock_rate_hz_);
  const double transit_first =
      first_arrival.to_seconds() * clock - static_cast<double>(first.timestamp);
  if (have_transit_) {
    const double d = std::fabs(transit_first - last_transit_);
    jitter_ += (d - jitter_) / 16.0;
  }
  jitter_ *= std::pow(15.0 / 16.0, static_cast<double>(count - 1));
  const std::uint32_t last_ts = first.timestamp + timestamp_step * (count - 1);
  last_transit_ = last_arrival.to_seconds() * clock - static_cast<double>(last_ts);
  have_transit_ = true;
}

std::uint64_t RtpReceiverStats::expected() const noexcept {
  if (!started_) return 0;
  const std::uint64_t extended_max = (static_cast<std::uint64_t>(cycles_) << 16) | max_seq_;
  return extended_max - base_seq_ + 1;
}

std::uint64_t RtpReceiverStats::lost() const noexcept {
  const std::uint64_t exp = expected();
  const std::uint64_t recv_unique = received_ - duplicates_;
  return exp > recv_unique ? exp - recv_unique : 0;
}

double RtpReceiverStats::loss_fraction() const noexcept {
  const std::uint64_t exp = expected();
  return exp == 0 ? 0.0 : static_cast<double>(lost()) / static_cast<double>(exp);
}

Duration RtpReceiverStats::jitter() const noexcept {
  return Duration::from_seconds(jitter_ / static_cast<double>(clock_rate_hz_));
}

}  // namespace pbxcap::rtp
