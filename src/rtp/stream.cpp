#include "rtp/stream.hpp"

#include <cmath>

namespace pbxcap::rtp {

RtpSender::RtpSender(sim::Simulator& simulator, Codec codec, std::uint32_t ssrc, EmitFn emit)
    : simulator_{simulator}, codec_{codec}, ssrc_{ssrc}, emit_{std::move(emit)} {}

RtpSender::~RtpSender() { stop(); }

void RtpSender::start() {
  if (running_) return;
  running_ = true;
  emit_one(/*first=*/true);
}

void RtpSender::stop() {
  if (!running_) return;
  running_ = false;
  if (next_event_ != 0) {
    simulator_.cancel(next_event_);
    next_event_ = 0;
  }
}

void RtpSender::emit_one(bool first) {
  if (!running_) return;
  RtpHeader header;
  header.payload_type = codec_.payload_type;
  header.sequence = seq_++;
  header.timestamp = timestamp_;
  header.ssrc = ssrc_;
  header.marker = first;
  timestamp_ += codec_.timestamp_step();
  ++sent_;
  if (packet_counter_ != nullptr) packet_counter_->add();
  emit_(header, codec_.wire_bytes());
  auto tick = [this] { emit_one(false); };
  // The 20 ms pacing tick dominates the event population at Table-I scale
  // (~3M events per operating point); it must never touch the allocator.
  static_assert(sim::Callback::stores_inline<decltype(tick)>(),
                "RTP pacing tick must stay on the allocation-free SBO path");
  next_event_ = simulator_.schedule_in(codec_.packet_interval(), std::move(tick));
}

void RtpReceiverStats::on_packet(const RtpHeader& header, TimePoint arrival) {
  ++received_;
  last_arrival_ = arrival;

  if (!started_) {
    started_ = true;
    base_seq_ = header.sequence;
    max_seq_ = header.sequence;
    first_arrival_ = arrival;
  } else {
    const std::uint16_t delta = static_cast<std::uint16_t>(header.sequence - max_seq_);
    if (delta == 0) {
      ++duplicates_;
    } else if (delta < 0x8000) {
      // Forward step; detect wrap.
      if (header.sequence < max_seq_) cycles_ += 1;
      max_seq_ = header.sequence;
    } else {
      ++reordered_;  // late packet (sequence behind the max)
    }
  }

  // RFC 3550 A.8 jitter: J += (|D| - J) / 16, with D the difference in
  // relative transit time between consecutive packets, in media clock units.
  const double arrival_ticks = arrival.to_seconds() * static_cast<double>(clock_rate_hz_);
  const double transit = arrival_ticks - static_cast<double>(header.timestamp);
  if (have_transit_) {
    const double d = std::fabs(transit - last_transit_);
    jitter_ += (d - jitter_) / 16.0;
  }
  last_transit_ = transit;
  have_transit_ = true;
}

std::uint64_t RtpReceiverStats::expected() const noexcept {
  if (!started_) return 0;
  const std::uint64_t extended_max = (static_cast<std::uint64_t>(cycles_) << 16) | max_seq_;
  return extended_max - base_seq_ + 1;
}

std::uint64_t RtpReceiverStats::lost() const noexcept {
  const std::uint64_t exp = expected();
  const std::uint64_t recv_unique = received_ - duplicates_;
  return exp > recv_unique ? exp - recv_unique : 0;
}

double RtpReceiverStats::loss_fraction() const noexcept {
  const std::uint64_t exp = expected();
  return exp == 0 ? 0.0 : static_cast<double>(lost()) / static_cast<double>(exp);
}

Duration RtpReceiverStats::jitter() const noexcept {
  return Duration::from_seconds(jitter_ / static_cast<double>(clock_rate_hz_));
}

}  // namespace pbxcap::rtp
