// Voice codec catalog.
//
// The paper's testbed uses G.711 ulaw (20 ms packetization -> 50 packets/s
// per direction, i.e. the "100 messages per second" per call of §IV). Other
// codecs Asterisk commonly negotiates are included for the codec-capacity
// ablation (DESIGN.md A2); their Ie/Bpl equipment-impairment factors follow
// ITU-T G.113 Appendix I.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::rtp {

struct Codec {
  std::string_view name;
  std::uint8_t payload_type;   // RFC 3551 static assignment (or dynamic >= 96)
  std::uint32_t sample_rate_hz;
  std::uint32_t bitrate_bps;   // codec payload bitrate
  std::uint32_t ptime_ms;      // packetization interval
  double ie;                   // E-model equipment impairment factor
  double bpl;                  // E-model packet-loss robustness factor
  Duration lookahead{Duration::zero()};  // algorithmic delay beyond framing
  /// CPU work to code one frame of this codec on the paper's reference host
  /// (one side of a transcode: decode on ingress or encode on egress). A
  /// transcoded bridge direction pays in.transcode_cost + out.transcode_cost
  /// per relayed frame on top of the base relay cost; G.711 companding is
  /// table-lookup cheap, so a G.711<->G.711 bridge stays a zero-surcharge
  /// passthrough.
  Duration transcode_cost{Duration::zero()};

  [[nodiscard]] constexpr double packets_per_second() const noexcept {
    return 1000.0 / static_cast<double>(ptime_ms);
  }
  /// Codec payload bytes carried per RTP packet, rounded to nearest. The
  /// scale-then-divide order matters: iLBC's 13,333 bps x 30 ms frame is
  /// 399,990 bits, i.e. 49.99875 bytes -> 50 (the codec's real frame size),
  /// whereas dividing first truncates to 49.
  [[nodiscard]] constexpr std::uint32_t payload_bytes() const noexcept {
    const std::uint64_t bits_x1000 =
        static_cast<std::uint64_t>(bitrate_bps) * ptime_ms;
    return static_cast<std::uint32_t>((bits_x1000 + 4000) / 8000);
  }
  /// RTP timestamp increment per packet.
  [[nodiscard]] constexpr std::uint32_t timestamp_step() const noexcept {
    return sample_rate_hz * ptime_ms / 1000;
  }
  [[nodiscard]] Duration packet_interval() const noexcept {
    return Duration::millis(ptime_ms);
  }
  /// Full on-wire size of one RTP packet (RTP hdr + payload + UDP/IP/Eth).
  [[nodiscard]] std::uint32_t wire_bytes() const noexcept;
};

/// RFC 3551 static payload types for the catalog entries.
namespace payload_type {
inline constexpr std::uint8_t kPcmu = 0;   // G.711 ulaw
inline constexpr std::uint8_t kGsm = 3;    // GSM 06.10 full rate
inline constexpr std::uint8_t kPcma = 8;   // G.711 alaw
inline constexpr std::uint8_t kG722 = 9;
inline constexpr std::uint8_t kG729 = 18;
inline constexpr std::uint8_t kIlbc = 97;  // dynamic
inline constexpr std::uint8_t kOpusNb = 107;  // dynamic, narrowband profile
}  // namespace payload_type

/// The paper's codec: G.711 ulaw, 20 ms ptime.
[[nodiscard]] const Codec& g711_ulaw() noexcept;

/// All catalog codecs (stable order).
[[nodiscard]] const std::vector<Codec>& codec_catalog() noexcept;

/// Lookup by RTP payload type; nullopt when unknown.
[[nodiscard]] std::optional<Codec> codec_by_payload_type(std::uint8_t pt) noexcept;

/// Lookup by name ("PCMU", "G729", ...); case-insensitive.
[[nodiscard]] std::optional<Codec> codec_by_name(std::string_view name) noexcept;

}  // namespace pbxcap::rtp
