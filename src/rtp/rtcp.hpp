// RTCP (RFC 3550 §6) — sender/receiver reports and interval scheduling.
//
// The paper's reference stack ("RTP: A Transport Protocol for Real-Time
// Applications") pairs every RTP stream with an RTCP control stream that
// carries reception-quality feedback. VoIPmonitor-class analyzers read these
// reports. We implement the subset real softphones exchange: Sender Reports,
// Receiver Reports with the standard report block (fraction lost, cumulative
// lost, extended highest sequence, jitter, LSR/DLSR for RTT estimation), and
// the randomized reporting interval rule (5 s minimum, deterministic here
// via the simulation RNG).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "rtp/stream.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace pbxcap::rtp {

/// One reception report block (RFC 3550 §6.4.1).
struct ReportBlock {
  std::uint32_t source_ssrc{0};      // the stream being reported on
  std::uint8_t fraction_lost{0};     // fixed-point /256 since last report
  std::uint32_t cumulative_lost{0};
  std::uint32_t ext_highest_seq{0};
  std::uint32_t jitter_ticks{0};     // media clock units
  std::uint32_t last_sr_ts{0};       // middle 32 bits of the SR timestamp
  std::uint32_t delay_since_last_sr{0};  // 1/65536 s units
};

/// Sender report (SR) with an optional appended report block.
struct SenderReport {
  std::uint32_t sender_ssrc{0};
  std::uint64_t ntp_timestamp{0};    // here: simulation ns (monotone)
  std::uint32_t rtp_timestamp{0};
  std::uint32_t packet_count{0};
  std::uint32_t octet_count{0};
  std::optional<ReportBlock> report;
};

/// Receiver report (RR).
struct ReceiverReport {
  std::uint32_t sender_ssrc{0};      // who is reporting
  ReportBlock report;
};

/// Network payload carrying either report type.
struct RtcpPayload final : net::Payload {
  explicit RtcpPayload(SenderReport report) : sr{report} {}
  explicit RtcpPayload(ReceiverReport report) : rr{report} {}
  std::optional<SenderReport> sr;
  std::optional<ReceiverReport> rr;

  /// SSRC used by relays to route the packet like its RTP stream.
  [[nodiscard]] std::uint32_t routing_ssrc() const noexcept {
    return sr ? sr->sender_ssrc : rr->sender_ssrc;
  }
};

/// On-wire size of a compound SR+RR packet (RFC 3550 layouts + UDP/IP/Eth).
[[nodiscard]] std::uint32_t rtcp_wire_bytes(bool has_report_block) noexcept;

/// One endpoint's RTCP machine for a single call direction pair: paces
/// reports, fills them from local sender/receiver state, and consumes peer
/// reports (computing RTT from LSR/DLSR).
struct RtcpConfig {
  Duration min_interval{Duration::seconds(5)};
  /// RFC 3550 randomizes each interval over [0.5, 1.5] x the base.
  bool randomize{true};
};

class RtcpSession {
 public:
  using Config = RtcpConfig;
  using EmitFn = std::function<void(const RtcpPayload& payload, std::uint32_t wire_bytes)>;

  RtcpSession(sim::Simulator& simulator, sim::Random rng, std::uint32_t local_ssrc,
              std::uint32_t clock_rate_hz, EmitFn emit, Config config = {});
  ~RtcpSession();
  RtcpSession(const RtcpSession&) = delete;
  RtcpSession& operator=(const RtcpSession&) = delete;

  /// Starts periodic reporting. `sender` (may be null) supplies SR counts;
  /// `receiver` (may be null) supplies the report block.
  void start(const RtpSender* sender, const RtpReceiverStats* receiver);
  void stop();

  /// Feed a report received from the peer.
  void on_report(const RtcpPayload& payload, TimePoint arrival);

  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return received_; }
  /// Smoothed round-trip estimate from LSR/DLSR; zero until first sample.
  [[nodiscard]] Duration rtt() const noexcept { return rtt_; }
  /// Peer-observed loss fraction from the last report (in [0,1]).
  [[nodiscard]] double peer_loss() const noexcept { return peer_loss_; }

  /// Invoked at the top of emit_report, before any statistic is read. The
  /// fluid media engine uses it to flush the session's coasting streams so
  /// the report sees exact per-packet state.
  void set_pre_report_hook(std::function<void()> hook) { pre_report_ = std::move(hook); }

  /// Builds the report block from a receiver's current statistics (public
  /// for tests and analyzers).
  [[nodiscard]] static ReportBlock build_report_block(const RtpReceiverStats& rx,
                                                      std::uint32_t source_ssrc,
                                                      std::uint64_t prior_expected,
                                                      std::uint64_t prior_received);

 private:
  void schedule_next();
  void emit_report();

  sim::Simulator& simulator_;
  sim::Random rng_;
  std::uint32_t local_ssrc_;
  std::uint32_t clock_rate_hz_;
  EmitFn emit_;
  Config config_;
  std::function<void()> pre_report_;
  const RtpSender* sender_{nullptr};
  const RtpReceiverStats* receiver_{nullptr};
  bool running_{false};
  sim::EventId timer_{0};
  std::uint64_t sent_{0};
  std::uint64_t received_{0};
  std::uint64_t prior_expected_{0};
  std::uint64_t prior_received_{0};
  Duration rtt_{Duration::zero()};
  double peer_loss_{0.0};
  std::uint64_t last_sr_ntp_{0};     // for LSR echo when we send as receiver
  TimePoint last_sr_arrival_{};
};

}  // namespace pbxcap::rtp
