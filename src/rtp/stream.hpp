// RTP stream generation and reception accounting.
//
// RtpSender paces packets at the codec's ptime through a send callback, so
// the owning host decides the wire addressing. RtpReceiverStats implements
// the RFC 3550 receiver algorithms: sequence-number extension, loss
// counting, and the interarrival-jitter estimator — the quantities
// VoIPmonitor derives MOS from in the paper's testbed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "rtp/codec.hpp"
#include "rtp/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/time.hpp"

namespace pbxcap::rtp {

class FluidEngine;

class RtpSender {
 public:
  using EmitFn = std::function<void(const RtpHeader& header, std::uint32_t wire_bytes)>;
  /// Batch emitter for the fluid fast path: `first` is the header of the
  /// first packet in the run, `count` packets depart at
  /// `first_departure + i * codec.packet_interval()`.
  using BatchEmitFn = std::function<void(const RtpHeader& first, std::uint32_t wire_bytes,
                                         std::uint32_t count, TimePoint first_departure)>;

  RtpSender(sim::Simulator& simulator, Codec codec, std::uint32_t ssrc, EmitFn emit);
  ~RtpSender();
  RtpSender(const RtpSender&) = delete;
  RtpSender& operator=(const RtpSender&) = delete;

  /// Starts pacing; first packet goes out immediately (marker bit set).
  void start();
  /// Stops pacing; safe to call when not running.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] const Codec& codec() const noexcept { return codec_; }
  [[nodiscard]] std::uint32_t ssrc() const noexcept { return ssrc_; }

  /// Optional telemetry counter bumped once per emitted packet. The owning
  /// endpoint shares one counter across its senders; nullptr (the default)
  /// keeps the pacing tick on a single predictable branch.
  void set_packet_counter(telemetry::Counter* counter) noexcept { packet_counter_ = counter; }

  /// Opts this sender into the hybrid fluid fast path. Requires a batch
  /// emitter; the engine decides per-tick whether the stream may coast.
  void set_fluid(FluidEngine* engine, BatchEmitFn batch_emit);

  /// Optional call-journey tracing: per-packet and fluid media segments are
  /// recorded as distinct slices ("media.packet" / "media.fluid") on
  /// `track`. Set before start(); nullptr (the default) records nothing.
  void set_tracer(telemetry::SpanTracer* tracer, std::uint64_t track);

  /// True while the stream is coasting (no pacing ticks scheduled).
  [[nodiscard]] bool fluid_active() const noexcept { return fluid_active_; }
  /// Departure time of the next pending packet while coasting.
  [[nodiscard]] TimePoint next_due() const noexcept { return next_due_; }

  /// Emits every packet whose departure is strictly before `upto` as batch
  /// packets; returns how many were flushed. No-op unless coasting.
  std::uint64_t flush_fluid(TimePoint upto);

  /// Leaves fluid mode (without flushing) and re-arms the per-packet pacing
  /// tick at the next pending departure. Callers flush first.
  void exit_fluid();

  /// Holds the stream in per-packet mode (no fluid re-entry) until `until`.
  /// Used across SIP teardown: the tail packets racing the BYE through the
  /// PBX must drain with exact per-packet timing.
  void hold_packet_mode_until(TimePoint until) noexcept {
    hold_until_ = std::max(hold_until_, until);
  }

 private:
  void emit_one(bool first);
  void begin_segment(bool fluid);
  void end_segment();

  sim::Simulator& simulator_;
  Codec codec_;
  std::uint32_t ssrc_;
  EmitFn emit_;
  BatchEmitFn batch_emit_;
  FluidEngine* fluid_{nullptr};
  bool running_{false};
  bool fluid_active_{false};
  std::uint16_t seq_{0};
  std::uint32_t timestamp_{0};
  std::uint64_t sent_{0};
  TimePoint next_due_{};
  TimePoint hold_until_{};
  sim::EventId next_event_{0};
  telemetry::Counter* packet_counter_{nullptr};
  telemetry::SpanTracer* tracer_{nullptr};
  std::uint64_t trace_track_{0};
  std::uint32_t seg_packet_name_{0};
  std::uint32_t seg_fluid_name_{0};
  telemetry::SpanTracer::SpanId seg_span_{0};
};

/// Per-stream receiver statistics (RFC 3550 §6.4.1 / A.8).
class RtpReceiverStats {
 public:
  explicit RtpReceiverStats(std::uint32_t clock_rate_hz = 8000)
      : clock_rate_hz_{clock_rate_hz} {}

  /// Records one arrival. `arrival` is the local receive time.
  void on_packet(const RtpHeader& header, TimePoint arrival);

  /// Records a fluid batch: `count` in-order arrivals at
  /// `first_arrival + i * spacing`, sequence/timestamp advancing from
  /// `first` by 1 / `timestamp_step` per packet. Count fields (received,
  /// expected, cycles) are bit-identical to the per-packet loop; the jitter
  /// EWMA uses the closed-form decay (constant transit within the batch).
  void on_batch(const RtpHeader& first, TimePoint first_arrival, Duration spacing,
                std::uint32_t timestamp_step, std::uint32_t count);

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  /// Expected = extended-highest-seq - first-seq + 1 (0 before first packet).
  [[nodiscard]] std::uint64_t expected() const noexcept;
  /// Cumulative lost per RFC 3550 (can be negative transiently with
  /// duplicates; clamped at 0).
  [[nodiscard]] std::uint64_t lost() const noexcept;
  [[nodiscard]] double loss_fraction() const noexcept;
  [[nodiscard]] std::uint64_t out_of_order() const noexcept { return reordered_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }

  /// RFC 3550 interarrival jitter, converted to a Duration.
  [[nodiscard]] Duration jitter() const noexcept;

  [[nodiscard]] TimePoint first_arrival() const noexcept { return first_arrival_; }
  [[nodiscard]] TimePoint last_arrival() const noexcept { return last_arrival_; }

 private:
  std::uint32_t clock_rate_hz_;
  bool started_{false};
  std::uint64_t received_{0};
  std::uint64_t reordered_{0};
  std::uint64_t duplicates_{0};
  std::uint16_t base_seq_{0};
  std::uint16_t max_seq_{0};
  std::uint32_t cycles_{0};  // seq wrap count << 16
  double jitter_{0.0};       // in media clock units
  double last_transit_{0.0};
  bool have_transit_{false};
  TimePoint first_arrival_{};
  TimePoint last_arrival_{};
};

}  // namespace pbxcap::rtp
