// Hybrid fluid/packet media engine.
//
// At Table-I scale the 20 ms RTP pacing tick dominates the event population
// (~11 events per packet across pacing, link hops, switch forwarding, and
// PBX relay). While a stream's path is in steady state — no pending
// impairment edits, watched links loss-free, jitter-free, and far from
// queue saturation — per-packet simulation adds no information: every
// packet departs on the pacing grid, traverses the same fixed latency, and
// lands in the same statistics in closed form. The FluidEngine lets such
// streams *coast*: their pacing ticks are suspended and the accumulated
// packet run is fast-forwarded as a single batch packet at the next
// boundary (RTCP report, telemetry sample, fault edit, BYE, or the
// max-segment backstop). Exact per-packet counts stay bit-identical;
// EWMA-style estimators (RFC 3550 jitter) use closed-form decay.
//
// Segment state machine (per stream):
//
//   per-packet --try_enter()--> fluid --flush--> fluid        (stay: RTCP,
//        ^                        |                            max-segment)
//        |                        +--suspend/transient--> per-packet
//        +--- dwell + boundary guard hold re-entry (resume_at_)
//
// Flush triggers: (1) RtcpSession pre-report hook (per-SSRC, stays fluid);
// (2) pre-boundary flush `boundary_guard` before each telemetry sampling
// tick (suspends until the boundary so in-flight packets drain exactly);
// (3) fault transients — Link::apply_impairment pre-change listener and
// FaultInjector pre-apply hook (suspend for `dwell`); (4) the max-segment
// backstop; (5) sender stop (BYE).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace pbxcap::rtp {

class RtpSender;

struct FluidConfig {
  bool enabled{false};
  /// A watched link direction whose backlog exceeds this fraction of its
  /// queue limit is near saturation: streams stay per-packet (the paper's
  /// interesting regime is exactly the one we must not approximate).
  double backlog_threshold{0.25};
  /// Hold in per-packet mode after a transient (impairment edit, fault
  /// event) before streams may coast again.
  Duration dwell{Duration::millis(200)};
  /// Longest closed-form span; coasting streams flush at least this often.
  Duration max_segment{Duration::seconds(10)};
  /// Streams return to per-packet this long before each sampling boundary
  /// so packets in flight at the boundary drain exactly. Must exceed the
  /// end-to-end media path latency.
  Duration boundary_guard{Duration::millis(1)};
};

/// Registry and policy for coasting RTP streams. One engine per experiment;
/// senders opt in via RtpSender::set_fluid and consult the engine on every
/// per-packet emission.
class FluidEngine {
 public:
  FluidEngine(sim::Simulator& simulator, FluidConfig config)
      : simulator_{simulator}, config_{config} {}
  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  /// Adds a link to the steady-state eligibility checks and installs its
  /// pre-change listener (impairment edits become transients).
  void watch_link(net::Link& link);

  /// Telemetry sampling period; enables the pre-boundary flush schedule.
  void set_boundary_period(Duration period) { boundary_period_ = period; }

  /// Arms the max-segment backstop and (if a boundary period is set) the
  /// pre-boundary flush timers. Call once, before the run.
  void start();
  /// Flushes everything and cancels the engine's timers.
  void stop();

  /// Steady-state test: engine enabled, past any hold, and every watched
  /// link loss-free, jitter-free, not blacked out, and under the backlog
  /// threshold in both directions.
  [[nodiscard]] bool eligible() const;

  /// Registers `sender` as coasting if the path is eligible. The sender
  /// flips its own state on a true return.
  bool try_enter(RtpSender& sender);

  /// Unregisters a stream (sender stop / BYE path).
  void remove(std::uint32_t ssrc);

  /// Flushes one coasting stream to `now()`; it keeps coasting. Returns the
  /// number of packets materialized. Used by the RTCP pre-report hook —
  /// per-SSRC on purpose: a global flush per report would cost as much as
  /// per-packet mode at scale.
  std::uint64_t flush_stream(std::uint32_t ssrc);

  /// Flushes every coasting stream to `now()`; all keep coasting.
  std::uint64_t flush_all();

  /// SIP teardown boundary: flushes one coasting stream, returns it to
  /// per-packet pacing, and holds re-entry for `dwell`. Called by the BYE
  /// initiator on the *remote* stream — its pending segment must land while
  /// the PBX bridge is still up, and the tail racing the BYE through the
  /// PBX must drain with exact per-packet timing.
  void exit_stream(std::uint32_t ssrc);

  /// Flushes and exits every coasting stream, and holds re-entry until
  /// `resume` (pre-boundary and transient path).
  void suspend_until(TimePoint resume);

  /// A non-steady-state edit is about to land: flush under the current
  /// behaviour, fall back to exact per-packet simulation, dwell.
  void on_transient();

  [[nodiscard]] const FluidConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t active_streams() const noexcept { return streams_.size(); }
  [[nodiscard]] std::uint64_t segments_entered() const noexcept { return segments_; }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
  [[nodiscard]] std::uint64_t batched_packets() const noexcept { return batched_packets_; }
  [[nodiscard]] std::uint64_t transients() const noexcept { return transients_; }
  [[nodiscard]] TimePoint resume_at() const noexcept { return resume_at_; }

 private:
  void arm_boundary();
  void arm_segment();

  sim::Simulator& simulator_;
  FluidConfig config_;
  std::vector<net::Link*> links_;
  std::unordered_map<std::uint32_t, RtpSender*> streams_;
  TimePoint resume_at_{};
  Duration boundary_period_{Duration::zero()};
  sim::EventId boundary_event_{0};
  sim::EventId segment_event_{0};
  std::uint64_t segments_{0};
  std::uint64_t flushes_{0};
  std::uint64_t batched_packets_{0};
  std::uint64_t transients_{0};
};

}  // namespace pbxcap::rtp
