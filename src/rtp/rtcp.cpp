#include "rtp/rtcp.hpp"

#include <algorithm>

#include "sim/profile.hpp"

namespace pbxcap::rtp {

std::uint32_t rtcp_wire_bytes(bool has_report_block) noexcept {
  // SR: 8-byte header + 20-byte sender info; report block: 24 bytes.
  const std::uint32_t body = 8 + 20 + (has_report_block ? 24u : 0u);
  return net::wire_size(body);
}

RtcpSession::RtcpSession(sim::Simulator& simulator, sim::Random rng, std::uint32_t local_ssrc,
                         std::uint32_t clock_rate_hz, EmitFn emit, Config config)
    : simulator_{simulator},
      rng_{rng},
      local_ssrc_{local_ssrc},
      clock_rate_hz_{clock_rate_hz},
      emit_{std::move(emit)},
      config_{config} {}

RtcpSession::~RtcpSession() { stop(); }

void RtcpSession::start(const RtpSender* sender, const RtpReceiverStats* receiver) {
  if (running_) return;
  running_ = true;
  sender_ = sender;
  receiver_ = receiver;
  schedule_next();
}

void RtcpSession::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_ != 0) {
    simulator_.cancel(timer_);
    timer_ = 0;
  }
}

void RtcpSession::schedule_next() {
  if (!running_) return;
  double factor = 1.0;
  if (config_.randomize) factor = rng_.uniform(0.5, 1.5);
  const Duration gap =
      Duration::from_seconds(config_.min_interval.to_seconds() * factor);
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kRtpPacket};
  timer_ = simulator_.schedule_in(gap, [this] {
    emit_report();
    schedule_next();
  });
}

ReportBlock RtcpSession::build_report_block(const RtpReceiverStats& rx,
                                            std::uint32_t source_ssrc,
                                            std::uint64_t prior_expected,
                                            std::uint64_t prior_received) {
  ReportBlock block;
  block.source_ssrc = source_ssrc;
  const std::uint64_t expected = rx.expected();
  const std::uint64_t received = rx.received() - rx.duplicates();
  const std::uint64_t expected_interval = expected - std::min(expected, prior_expected);
  const std::uint64_t received_interval = received - std::min(received, prior_received);
  if (expected_interval > 0 && received_interval < expected_interval) {
    const double frac = static_cast<double>(expected_interval - received_interval) /
                        static_cast<double>(expected_interval);
    block.fraction_lost = static_cast<std::uint8_t>(std::min(255.0, frac * 256.0));
  }
  block.cumulative_lost = static_cast<std::uint32_t>(std::min<std::uint64_t>(rx.lost(), 0xffffff));
  block.ext_highest_seq = static_cast<std::uint32_t>(expected == 0 ? 0 : expected - 1);
  block.jitter_ticks = static_cast<std::uint32_t>(
      rx.jitter().to_seconds() * 8000.0);  // in 8 kHz ticks for narrowband
  return block;
}

void RtcpSession::emit_report() {
  if (pre_report_) pre_report_();
  RtcpPayload* out = nullptr;
  std::optional<ReportBlock> block;
  if (receiver_ != nullptr && receiver_->received() > 0) {
    block = build_report_block(*receiver_, /*source_ssrc=*/0, prior_expected_, prior_received_);
    prior_expected_ = receiver_->expected();
    prior_received_ = receiver_->received() - receiver_->duplicates();
    // Echo the last SR for the peer's RTT computation.
    block->last_sr_ts = static_cast<std::uint32_t>(last_sr_ntp_ >> 16);
    if (last_sr_ntp_ != 0) {
      const double delay_s = (simulator_.now() - last_sr_arrival_).to_seconds();
      block->delay_since_last_sr = static_cast<std::uint32_t>(delay_s * 65536.0);
    }
  }

  if (sender_ != nullptr && sender_->packets_sent() > 0) {
    SenderReport sr;
    sr.sender_ssrc = local_ssrc_;
    sr.ntp_timestamp = static_cast<std::uint64_t>(simulator_.now().ns());
    sr.rtp_timestamp = static_cast<std::uint32_t>(
        simulator_.now().to_seconds() * static_cast<double>(clock_rate_hz_));
    sr.packet_count = static_cast<std::uint32_t>(sender_->packets_sent());
    sr.octet_count = static_cast<std::uint32_t>(sender_->packets_sent() *
                                                sender_->codec().payload_bytes());
    sr.report = block;
    RtcpPayload payload{sr};
    ++sent_;
    emit_(payload, rtcp_wire_bytes(block.has_value()));
    (void)out;
    return;
  }
  if (block) {
    ReceiverReport rr;
    rr.sender_ssrc = local_ssrc_;
    rr.report = *block;
    RtcpPayload payload{rr};
    ++sent_;
    emit_(payload, rtcp_wire_bytes(true));
  }
}

void RtcpSession::on_report(const RtcpPayload& payload, TimePoint arrival) {
  ++received_;
  const ReportBlock* block = nullptr;
  if (payload.sr) {
    last_sr_ntp_ = payload.sr->ntp_timestamp;
    last_sr_arrival_ = arrival;
    if (payload.sr->report) block = &*payload.sr->report;
  } else if (payload.rr) {
    block = &payload.rr->report;
  }
  if (block == nullptr) return;
  peer_loss_ = static_cast<double>(block->fraction_lost) / 256.0;
  // RTT = now - LSR - DLSR. We store NTP as simulation ns; the middle-32
  // encoding shifts by 16 bits, losing sub-65536 ns precision — fine at
  // millisecond scales.
  if (block->last_sr_ts != 0) {
    const std::uint64_t lsr_ns = static_cast<std::uint64_t>(block->last_sr_ts) << 16;
    const double dlsr_s = static_cast<double>(block->delay_since_last_sr) / 65536.0;
    const double now_s = arrival.to_seconds();
    const double rtt_s = now_s - static_cast<double>(lsr_ns) * 1e-9 - dlsr_s;
    if (rtt_s >= 0.0 && rtt_s < 10.0) {
      // EWMA smoothing as real stacks do.
      const double prev = rtt_.to_seconds();
      rtt_ = Duration::from_seconds(prev == 0.0 ? rtt_s : 0.875 * prev + 0.125 * rtt_s);
    }
  }
}

}  // namespace pbxcap::rtp
