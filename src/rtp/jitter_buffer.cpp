#include "rtp/jitter_buffer.hpp"

#include <algorithm>

namespace pbxcap::rtp {

JitterBuffer::JitterBuffer(Codec codec, JitterBufferConfig config)
    : codec_{codec}, config_{config}, delay_{config.initial_delay} {}

bool JitterBuffer::on_packet(const RtpHeader& header, TimePoint arrival) {
  if (!started_ || header.marker) {
    // First packet, or the start of a talkspurt: (re-)anchor the playout
    // schedule. This is where an adaptive delay update takes effect. A
    // re-anchor after a delay *decrease* must not schedule the new reference
    // before audio already handed to the output — playout is monotonic.
    started_ = true;
    base_seq_ = header.sequence;
    epoch_ = std::max(arrival + delay_, last_playout_);
    last_playout_ = epoch_;
    ++played_;
    return true;
  }
  // Position relative to the reference packet; int16 wrap-aware difference.
  const auto offset = static_cast<std::int16_t>(header.sequence - base_seq_);
  const TimePoint playout = epoch_ + codec_.packet_interval() * static_cast<std::int64_t>(offset);
  if (arrival > playout) {
    ++discarded_;
    return false;
  }
  last_playout_ = std::max(last_playout_, playout);
  ++played_;
  return true;
}

std::uint64_t JitterBuffer::on_batch(const RtpHeader& first, TimePoint first_arrival,
                                     Duration spacing, std::uint32_t count) {
  if (count == 0) return 0;
  std::uint32_t idx = 0;
  std::uint64_t playable = 0;
  if (!started_ || first.marker) {
    // Re-anchor on the batch head exactly as the per-packet path would.
    if (on_packet(first, first_arrival)) ++playable;
    ++idx;
  }
  if (idx == count) return playable;
  const std::uint32_t n = count - idx;
  const auto seq_i = static_cast<std::uint16_t>(first.sequence + idx);
  const auto offset = static_cast<std::int16_t>(static_cast<std::uint16_t>(seq_i - base_seq_));
  const TimePoint playout =
      epoch_ + codec_.packet_interval() * static_cast<std::int64_t>(offset);
  const TimePoint arrival = first_arrival + spacing * static_cast<std::int64_t>(idx);
  if (arrival > playout) {
    // Arrival and playout advance in lock step across the batch, so every
    // remaining packet is late by the same margin.
    discarded_ += n;
    return playable;
  }
  played_ += n;
  const auto last_offset = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(first.sequence + count - 1) - base_seq_));
  last_playout_ = std::max(
      last_playout_, epoch_ + codec_.packet_interval() * static_cast<std::int64_t>(last_offset));
  return playable + n;
}

void JitterBuffer::update_delay(Duration jitter_estimate) {
  if (!config_.adaptive) return;
  const double target_s = config_.jitter_multiplier * jitter_estimate.to_seconds();
  const Duration target = Duration::from_seconds(target_s);
  // Takes effect at the next talkspurt re-anchor (marker bit in on_packet);
  // shifting the epoch mid-spurt would mis-order playout.
  delay_ = std::clamp(target, config_.min_delay, config_.max_delay);
}

}  // namespace pbxcap::rtp
