// RTP packet model (RFC 3550 subset: fixed header, no CSRC/extensions).
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace pbxcap::rtp {

inline constexpr std::uint32_t kRtpHeaderBytes = 12;

struct RtpHeader {
  std::uint8_t payload_type{0};
  std::uint16_t sequence{0};   // wraps mod 2^16; receivers extend it
  std::uint32_t timestamp{0};  // media clock units (e.g. 8 kHz for G.711)
  std::uint32_t ssrc{0};
  bool marker{false};          // set on the first packet of a talkspurt
};

/// Network payload carrying one RTP packet through the simulated fabric.
/// `originated_at` is stamped by the original sender and survives the PBX
/// relay, so receivers can measure true end-to-end (mouth-to-ear) delay.
struct RtpPayload final : net::Payload {
  RtpPayload(RtpHeader h, TimePoint originated) : header{h}, originated_at{originated} {}
  RtpHeader header;
  TimePoint originated_at{};
};

/// Fluid-mode batch: stands for Packet::batch consecutive RTP packets of one
/// stream. Packet i (0-based) has header fields first.{sequence,timestamp}
/// advanced i steps, nominal departure first_departure + i * spacing, and
/// nominal arrival departure + path_latency (accumulated hop by hop). The
/// headers themselves are never materialized; receivers apply the closed
/// forms over the whole run of packets.
struct RtpBatchPayload final : net::BatchPayload {
  RtpBatchPayload(RtpHeader first_header, Duration packet_spacing, TimePoint departure)
      : first{first_header}, spacing{packet_spacing}, first_departure{departure} {}

  [[nodiscard]] std::shared_ptr<net::BatchPayload> clone_batch() const override {
    return std::make_shared<RtpBatchPayload>(*this);
  }

  RtpHeader first;
  Duration spacing{};
  TimePoint first_departure{};
};

/// Hands out globally unique SSRCs for one simulation run. Real endpoints
/// pick SSRCs randomly and resolve collisions (RFC 3550 §8); a counter gives
/// the same uniqueness deterministically.
class SsrcAllocator {
 public:
  [[nodiscard]] std::uint32_t allocate() noexcept { return next_++; }

 private:
  std::uint32_t next_{1};
};

}  // namespace pbxcap::rtp
