#include "rtp/fluid.hpp"

#include <algorithm>

#include "sim/profile.hpp"

#include "rtp/stream.hpp"

namespace pbxcap::rtp {

void FluidEngine::watch_link(net::Link& link) {
  links_.push_back(&link);
  link.set_pre_change_listener([this] { on_transient(); });
}

void FluidEngine::start() {
  arm_segment();
  arm_boundary();
}

void FluidEngine::stop() {
  suspend_until(TimePoint::max());
  if (segment_event_ != 0) {
    simulator_.cancel(segment_event_);
    segment_event_ = 0;
  }
  if (boundary_event_ != 0) {
    simulator_.cancel(boundary_event_);
    boundary_event_ = 0;
  }
}

void FluidEngine::arm_segment() {
  if (!config_.enabled || config_.max_segment <= Duration::zero()) return;
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kRtpFluidFlush};
  segment_event_ = simulator_.schedule_in(config_.max_segment, [this] {
    flush_all();
    arm_segment();
  });
}

void FluidEngine::arm_boundary() {
  if (!config_.enabled || boundary_period_ <= Duration::zero()) return;
  const std::int64_t period = boundary_period_.ns();
  const std::int64_t guard =
      std::clamp<std::int64_t>(config_.boundary_guard.ns(), 1, period - 1);
  // First boundary whose pre-flush instant is strictly in the future.
  const std::int64_t k = (simulator_.now().ns() + guard) / period + 1;
  const TimePoint fire = TimePoint::at(Duration::nanos(k * period - guard));
  const TimePoint boundary = TimePoint::at(Duration::nanos(k * period));
  const sim::CategoryScope cat_scope{simulator_, sim::Category::kRtpFluidFlush};
  boundary_event_ = simulator_.schedule_at(fire, [this, boundary] {
    suspend_until(boundary);
    arm_boundary();
  });
}

bool FluidEngine::eligible() const {
  if (!config_.enabled || simulator_.now() < resume_at_) return false;
  for (const net::Link* link : links_) {
    if (link->blacked_out()) return false;
    const net::LinkConfig& cfg = link->config();
    if (cfg.loss_probability > 0.0) return false;
    if (cfg.jitter_mean != Duration::zero() || cfg.jitter_stddev != Duration::zero()) {
      return false;
    }
    const auto limit = static_cast<double>(cfg.queue_limit_packets);
    if (static_cast<double>(link->backlog_from(link->endpoint_a())) >
            config_.backlog_threshold * limit ||
        static_cast<double>(link->backlog_from(link->endpoint_b())) >
            config_.backlog_threshold * limit) {
      return false;
    }
  }
  return true;
}

bool FluidEngine::try_enter(RtpSender& sender) {
  if (!eligible()) return false;
  streams_[sender.ssrc()] = &sender;
  ++segments_;
  return true;
}

void FluidEngine::remove(std::uint32_t ssrc) { streams_.erase(ssrc); }

std::uint64_t FluidEngine::flush_stream(std::uint32_t ssrc) {
  const auto it = streams_.find(ssrc);
  if (it == streams_.end()) return 0;
  const std::uint64_t n = it->second->flush_fluid(simulator_.now());
  if (n > 0) {
    ++flushes_;
    batched_packets_ += n;
  }
  return n;
}

std::uint64_t FluidEngine::flush_all() {
  if (streams_.empty()) return 0;
  // Snapshot: flushing can, in principle, reach code that mutates the
  // registry (a stream stopping at the flush horizon).
  std::vector<RtpSender*> snapshot;
  snapshot.reserve(streams_.size());
  for (const auto& [ssrc, sender] : streams_) snapshot.push_back(sender);
  const TimePoint now = simulator_.now();
  std::uint64_t total = 0;
  for (RtpSender* sender : snapshot) total += sender->flush_fluid(now);
  if (total > 0) {
    ++flushes_;
    batched_packets_ += total;
  }
  return total;
}

void FluidEngine::exit_stream(std::uint32_t ssrc) {
  const auto it = streams_.find(ssrc);
  if (it == streams_.end()) return;
  RtpSender* sender = it->second;
  streams_.erase(it);
  const TimePoint now = simulator_.now();
  const std::uint64_t n = sender->flush_fluid(now);
  if (n > 0) batched_packets_ += n;
  ++flushes_;
  sender->exit_fluid();
  sender->hold_packet_mode_until(now + config_.dwell);
}

void FluidEngine::suspend_until(TimePoint resume) {
  if (!streams_.empty()) {
    std::vector<RtpSender*> snapshot;
    snapshot.reserve(streams_.size());
    for (const auto& [ssrc, sender] : streams_) snapshot.push_back(sender);
    streams_.clear();
    const TimePoint now = simulator_.now();
    std::uint64_t total = 0;
    for (RtpSender* sender : snapshot) {
      total += sender->flush_fluid(now);
      sender->exit_fluid();
    }
    if (total > 0) batched_packets_ += total;
    ++flushes_;
  }
  resume_at_ = std::max(resume_at_, resume);
}

void FluidEngine::on_transient() {
  ++transients_;
  suspend_until(simulator_.now() + config_.dwell);
}

}  // namespace pbxcap::rtp
