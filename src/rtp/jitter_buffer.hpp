// Receiver-side playout (jitter) buffer.
//
// A fixed-delay playout model: packet i is scheduled for playout at
// first_arrival + playout_delay + i * ptime. Packets arriving after their
// playout instant are discarded; discards add to the effective loss the
// E-model sees (Ppl = network loss + late discards). An adaptive variant
// re-estimates the delay from the observed jitter (multiple-of-jitter rule).
#pragma once

#include <cstdint>

#include "rtp/codec.hpp"
#include "rtp/packet.hpp"
#include "util/time.hpp"

namespace pbxcap::rtp {

struct JitterBufferConfig {
  Duration initial_delay{Duration::millis(60)};
  bool adaptive{false};
  double jitter_multiplier{3.0};      // adaptive: delay = multiplier * jitter
  Duration min_delay{Duration::millis(20)};
  Duration max_delay{Duration::millis(200)};
};

class JitterBuffer {
 public:
  JitterBuffer(Codec codec, JitterBufferConfig config = {});

  /// Feeds one arrival; returns true if the packet is playable, false if it
  /// was discarded (arrived past its playout instant).
  bool on_packet(const RtpHeader& header, TimePoint arrival);

  /// Feeds a fluid batch of `count` in-order arrivals at
  /// `first_arrival + i * spacing`. When `spacing` equals the codec's packet
  /// interval (the fluid path guarantees it), lateness is constant across
  /// the batch, so one comparison settles all `count` packets — results are
  /// identical to the per-packet loop. Returns how many were playable.
  std::uint64_t on_batch(const RtpHeader& first, TimePoint first_arrival, Duration spacing,
                         std::uint32_t count);

  /// Adaptive mode: updates the target delay from a jitter estimate.
  void update_delay(Duration jitter_estimate);

  [[nodiscard]] Duration playout_delay() const noexcept { return delay_; }
  /// Playout instant of the latest packet handed to the output. A talkspurt
  /// re-anchor never moves behind this point (monotonic playout).
  [[nodiscard]] TimePoint last_playout() const noexcept { return last_playout_; }
  [[nodiscard]] std::uint64_t played() const noexcept { return played_; }
  [[nodiscard]] std::uint64_t discarded_late() const noexcept { return discarded_; }
  [[nodiscard]] double discard_fraction() const noexcept {
    const std::uint64_t total = played_ + discarded_;
    return total == 0 ? 0.0 : static_cast<double>(discarded_) / static_cast<double>(total);
  }

 private:
  Codec codec_;
  JitterBufferConfig config_;
  Duration delay_;
  bool started_{false};
  TimePoint epoch_{};          // playout time of the reference packet
  TimePoint last_playout_{};   // latest playout instant handed out
  std::uint16_t base_seq_{0};
  std::uint64_t played_{0};
  std::uint64_t discarded_{0};
};

}  // namespace pbxcap::rtp
