#include "rtp/codec.hpp"

#include "net/packet.hpp"
#include "rtp/packet.hpp"
#include "util/strings.hpp"

namespace pbxcap::rtp {

std::uint32_t Codec::wire_bytes() const noexcept {
  return net::wire_size(kRtpHeaderBytes + payload_bytes());
}

const std::vector<Codec>& codec_catalog() noexcept {
  // Ie/Bpl values per ITU-T G.113 Appendix I (and common E-model practice
  // for the dynamic-PT entries). PCM entries use Bpl = 25.1 — the value for
  // G.711 *with* packet-loss concealment, which is what Asterisk endpoints
  // and VoIPmonitor's scoring assume (bare G.711 would be Bpl = 4.3).
  // lookahead: algorithmic delay of the coder.
  // transcode_cost: per-frame coding work on the paper's 2.67 GHz reference
  // host, ordered as Asterisk's translator benchmarks order them (G.729's
  // ACELP codebook search dominates, GSM RPE-LTP is mid-pack, G.711
  // companding is a table lookup).
  static const std::vector<Codec> catalog = {
      {"PCMU", payload_type::kPcmu, 8000, 64'000, 20, 0.0, 25.1, Duration::zero(),
       Duration::zero()},
      {"PCMA", payload_type::kPcma, 8000, 64'000, 20, 0.0, 25.1, Duration::zero(),
       Duration::zero()},
      {"G722", payload_type::kG722, 16000, 64'000, 20, 0.0, 25.1, Duration::zero(),
       Duration::micros(6)},
      {"GSM", payload_type::kGsm, 8000, 13'200, 20, 20.0, 10.0, Duration::zero(),
       Duration::micros(15)},
      {"G729", payload_type::kG729, 8000, 8'000, 20, 11.0, 19.0, Duration::millis(5),
       Duration::micros(40)},
      {"iLBC", payload_type::kIlbc, 8000, 13'333, 30, 11.0, 32.0, Duration::millis(10),
       Duration::micros(30)},
      {"OPUS-NB", payload_type::kOpusNb, 8000, 12'000, 20, 5.0, 15.0, Duration::millis(5),
       Duration::micros(25)},
  };
  return catalog;
}

const Codec& g711_ulaw() noexcept { return codec_catalog().front(); }

std::optional<Codec> codec_by_payload_type(std::uint8_t pt) noexcept {
  for (const auto& codec : codec_catalog()) {
    if (codec.payload_type == pt) return codec;
  }
  return std::nullopt;
}

std::optional<Codec> codec_by_name(std::string_view name) noexcept {
  for (const auto& codec : codec_catalog()) {
    if (util::iequals(codec.name, name)) return codec;
  }
  return std::nullopt;
}

}  // namespace pbxcap::rtp
