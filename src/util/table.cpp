#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pbxcap::util {

TextTable::TextTable(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"TextTable: header must be non-empty"};
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: row arity does not match header"};
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) { return os << t.to_string(); }

}  // namespace pbxcap::util
