// Small string utilities used by the SIP parser and report formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pbxcap::util {

/// Splits `s` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on the first occurrence of `sep`; `rest` empty if `sep` absent.
struct SplitPair {
  std::string_view head;
  std::string_view rest;
  bool found{false};
};
[[nodiscard]] SplitPair split_once(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

/// Case-insensitive comparison (ASCII), as required for SIP header names.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

[[nodiscard]] bool starts_with_i(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; returns false on any non-digit or overflow.
[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pbxcap::util
