#include "util/log.hpp"

#include <cstdio>

namespace pbxcap::util {
namespace {

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  const std::scoped_lock lock{mutex_};
  std::fprintf(stderr, "[%-5s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void log_trace(std::string_view c, std::string_view m) { Logger::instance().log(LogLevel::Trace, c, m); }
void log_debug(std::string_view c, std::string_view m) { Logger::instance().log(LogLevel::Debug, c, m); }
void log_info(std::string_view c, std::string_view m) { Logger::instance().log(LogLevel::Info, c, m); }
void log_warn(std::string_view c, std::string_view m) { Logger::instance().log(LogLevel::Warn, c, m); }
void log_error(std::string_view c, std::string_view m) { Logger::instance().log(LogLevel::Error, c, m); }

}  // namespace pbxcap::util
