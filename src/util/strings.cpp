#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace pbxcap::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

SplitPair split_once(std::string_view s, char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s, {}, false};
  return {s.substr(0, pos), s.substr(pos + 1), true};
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with_i(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace pbxcap::util
