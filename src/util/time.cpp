#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace pbxcap {

Duration Duration::from_seconds(double s) noexcept {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

Duration Duration::from_millis(double ms) noexcept {
  return Duration{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

std::string Duration::to_string() const {
  char buf[64];
  const std::int64_t n = ns_;
  const std::int64_t mag = n < 0 ? -n : n;
  if (mag >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(n) * 1e-9);
  } else if (mag >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(n) * 1e-6);
  } else if (mag >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(n) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(n));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  return Duration::nanos(ns_).to_string();
}

}  // namespace pbxcap
