// Plain-text table and CSV rendering for bench/report output.
//
// The paper reports results as tables (Table I) and plotted series
// (Figs. 3, 6, 7). TextTable renders aligned ASCII tables that mirror the
// paper's rows; the same data can be dumped as CSV for external plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pbxcap::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;
  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace pbxcap::util
