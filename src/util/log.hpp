// Minimal leveled logger.
//
// The simulation is deterministic and single-threaded per run, but experiment
// replications run runs on several threads, so emission is serialized with a
// mutex. Logging defaults to Warn to keep bench output clean.
#pragma once

#include <mutex>
#include <string_view>

namespace pbxcap::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  /// Process-wide logger instance.
  [[nodiscard]] static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::Warn};
  std::mutex mutex_;
};

void log_trace(std::string_view component, std::string_view message);
void log_debug(std::string_view component, std::string_view message);
void log_info(std::string_view component, std::string_view message);
void log_warn(std::string_view component, std::string_view message);
void log_error(std::string_view component, std::string_view message);

}  // namespace pbxcap::util
