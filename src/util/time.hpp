// Simulation time types.
//
// All simulated time in pbxcap is carried as integer nanoseconds to keep
// event ordering exact and reproducible across platforms (no floating-point
// accumulation drift over multi-hour simulated experiments).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace pbxcap {

/// A signed span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  /// Named constructors; prefer these over the raw-tick constructor.
  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) noexcept { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t u) noexcept { return Duration{u * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t m) noexcept { return Duration{m * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) noexcept { return Duration{s * 1'000'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) noexcept { return seconds(m * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) noexcept { return seconds(h * 3600); }

  /// Converts fractional seconds; rounds to the nearest nanosecond.
  [[nodiscard]] static Duration from_seconds(double s) noexcept;
  [[nodiscard]] static Duration from_millis(double ms) noexcept;

  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const noexcept { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_minutes() const noexcept { return to_seconds() / 60.0; }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration& operator+=(Duration d) noexcept { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) noexcept { ns_ -= d.ns_; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return a * k; }
  friend constexpr std::int64_t operator/(Duration a, Duration b) noexcept { return a.ns_ / b.ns_; }
  friend constexpr Duration operator-(Duration a) noexcept { return Duration{-a.ns_}; }

  /// "1.234s", "12ms", "340ns" — human-oriented; not meant to round-trip.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t n) noexcept : ns_{n} {}
  std::int64_t ns_{0};
};

/// An absolute point on the simulation clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;

  [[nodiscard]] static constexpr TimePoint at(Duration since_start) noexcept {
    return TimePoint{since_start.ns()};
  }
  [[nodiscard]] static constexpr TimePoint origin() noexcept { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() noexcept {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept { return TimePoint{t.ns_ + d.ns()}; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) noexcept { return TimePoint{t.ns_ - d.ns()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept {
    return Duration::nanos(a.ns_ - b.ns_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t n) noexcept : ns_{n} {}
  std::int64_t ns_{0};
};

}  // namespace pbxcap
