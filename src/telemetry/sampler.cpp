#include "telemetry/sampler.hpp"

#include <stdexcept>

#include "sim/profile.hpp"

#include "util/strings.hpp"

namespace pbxcap::telemetry {

void TimeSeriesSampler::add_gauge(std::string name, Probe probe) {
  if (running()) throw std::logic_error{"TimeSeriesSampler: add columns before start()"};
  columns_.push_back(Column{std::move(name), std::move(probe), /*rate=*/false, 0.0, {}});
}

void TimeSeriesSampler::add_rate(std::string name, Probe probe) {
  if (running()) throw std::logic_error{"TimeSeriesSampler: add columns before start()"};
  columns_.push_back(Column{std::move(name), std::move(probe), /*rate=*/true, 0.0, {}});
}

void TimeSeriesSampler::start(sim::Simulator& simulator, Duration period) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument{"TimeSeriesSampler: period must be positive"};
  }
  if (running()) throw std::logic_error{"TimeSeriesSampler: already started"};
  simulator_ = &simulator;
  period_ = period;
  for (auto& column : columns_) {
    if (column.rate) column.last = column.probe();
  }
  const sim::CategoryScope cat_scope{*simulator_, sim::Category::kTimerWheel};
  tick_event_ = simulator_->schedule_in(period_, [this] { tick(); });
}

void TimeSeriesSampler::stop() {
  if (tick_event_ != 0 && simulator_ != nullptr) simulator_->cancel(tick_event_);
  tick_event_ = 0;
}

void TimeSeriesSampler::tick() {
  if (pre_sample_) pre_sample_();
  const double period_s = period_.to_seconds();
  at_ns_.push_back(simulator_->now().ns());
  for (auto& column : columns_) {
    const double v = column.probe();
    if (column.rate) {
      column.values.push_back((v - column.last) / period_s);
      column.last = v;
    } else {
      column.values.push_back(v);
    }
  }
  const sim::CategoryScope cat_scope{*simulator_, sim::Category::kTimerWheel};
  tick_event_ = simulator_->schedule_in(period_, [this] { tick(); });
}

void TimeSeriesSampler::merge_columns(const TimeSeriesSampler& other) {
  if (running() || other.running()) {
    throw std::logic_error{"TimeSeriesSampler::merge_columns: stop both samplers first"};
  }
  if (other.columns_.empty()) return;
  if (at_ns_.empty() && columns_.empty()) {
    at_ns_ = other.at_ns_;
  } else if (at_ns_ != other.at_ns_) {
    throw std::invalid_argument{"TimeSeriesSampler::merge_columns: row timestamps differ"};
  }
  for (const Column& column : other.columns_) {
    // Probes reference the other run's objects; keep only the recorded data.
    columns_.push_back(Column{column.name, nullptr, column.rate, column.last, column.values});
  }
}

std::string TimeSeriesSampler::to_csv() const {
  std::string out{"time_s"};
  for (const auto& column : columns_) {
    out += ',';
    out += column.name;
  }
  out += '\n';
  for (std::size_t row = 0; row < at_ns_.size(); ++row) {
    out += util::format("%.3f", static_cast<double>(at_ns_[row]) * 1e-9);
    for (const auto& column : columns_) {
      out += util::format(",%.6g", column.values[row]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace pbxcap::telemetry
