// Telemetry facade — one object per simulation run bundling the metrics
// registry, the sim-time sampler, and the span tracer.
//
// Components take a nullable `Telemetry*` via set_telemetry(): with nullptr
// (or enabled == false) they register nothing and every instrumentation site
// reduces to one predictable null-handle branch — the fully-disabled path
// measured by bench_telemetry_overhead. Not thread-safe: like the Simulator,
// each run owns its own instance; parallelism happens across runs.
#pragma once

#include <cstddef>
#include <memory>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/span.hpp"
#include "util/time.hpp"

namespace pbxcap::telemetry {

struct Config {
  bool enabled{true};
  /// Span tracing can be switched off independently (the ring costs memory).
  bool tracing{true};
  /// Event-engine profiling (per-category counts + sampled latency) is off
  /// by default: even one increment per fire is measurable at 50M ev/s.
  bool profiling{false};
  Duration sample_period{Duration::seconds(1)};
  std::size_t trace_capacity{1u << 16};
  // Wall-clock every Nth fire of a category (rounded up to a power of two).
  std::uint32_t profile_sample_period{sim::ExecProfile::kDefaultSamplePeriod};
};

class Telemetry {
 public:
  explicit Telemetry(Config config = {})
      : config_{config},
        tracer_{config.enabled && config.tracing
                    ? std::make_unique<SpanTracer>(config.trace_capacity)
                    : nullptr},
        profiler_{config.enabled && config.profiling
                      ? std::make_unique<Profiler>(config.profile_sample_period)
                      : nullptr} {}

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] TimeSeriesSampler& sampler() noexcept { return sampler_; }
  [[nodiscard]] const TimeSeriesSampler& sampler() const noexcept { return sampler_; }
  /// Null when tracing (or telemetry entirely) is disabled.
  [[nodiscard]] SpanTracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const SpanTracer* tracer() const noexcept { return tracer_.get(); }
  /// Null when profiling (or telemetry entirely) is disabled.
  [[nodiscard]] Profiler* profiler() noexcept { return profiler_.get(); }
  [[nodiscard]] const Profiler* profiler() const noexcept { return profiler_.get(); }

 private:
  Config config_;
  MetricsRegistry registry_;
  TimeSeriesSampler sampler_;
  std::unique_ptr<SpanTracer> tracer_;
  std::unique_ptr<Profiler> profiler_;
};

}  // namespace pbxcap::telemetry
