// Sim-clock time-series sampler.
//
// Snapshots registered probes on a fixed simulated-time period (default 1 s)
// into columnar series — the per-second active-channels / CPU / blocking /
// SIP-rate curves that end-of-run aggregates hide. Two column flavours:
//   * gauge columns record the probe value as-is;
//   * rate columns record the per-second delta of a cumulative probe
//     (counter -> events/s).
// The sampler drives itself with a self-rescheduling simulator event, so it
// must be used with Simulator::run_until (or stop()ped) — under run() it
// would keep the queue alive forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace pbxcap::telemetry {

class TimeSeriesSampler {
 public:
  using Probe = std::function<double()>;

  TimeSeriesSampler() = default;
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Registers a level column (sampled value recorded directly).
  void add_gauge(std::string name, Probe probe);
  /// Registers a rate column: probe must be cumulative; the column records
  /// (probe(t) - probe(t - period)) / period_seconds.
  void add_rate(std::string name, Probe probe);

  /// Invoked at the top of every tick, before any probe runs. Subsystems
  /// that defer work (the fluid media engine's fast-forwarded streams) hook
  /// in here so each row reads fully settled state.
  void set_pre_sample_hook(std::function<void()> hook) { pre_sample_ = std::move(hook); }

  /// Begins sampling; the first row lands at now + period. Columns must be
  /// registered before start().
  void start(sim::Simulator& simulator, Duration period = Duration::seconds(1));
  /// Cancels the pending tick; the series keeps its rows.
  void stop();

  [[nodiscard]] bool running() const noexcept { return tick_event_ != 0; }
  [[nodiscard]] Duration period() const noexcept { return period_; }
  [[nodiscard]] std::size_t rows() const noexcept { return at_ns_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }
  [[nodiscard]] const std::string& column_name(std::size_t c) const {
    return columns_.at(c).name;
  }
  [[nodiscard]] double value(std::size_t column, std::size_t row) const {
    return columns_.at(column).values.at(row);
  }
  [[nodiscard]] TimePoint time(std::size_t row) const {
    return TimePoint::at(Duration::nanos(at_ns_.at(row)));
  }

  /// "time_s,<col>,..." CSV of the whole series, one row per sample.
  [[nodiscard]] std::string to_csv() const;

  /// Appends another sampler's columns after this one's. Both must be
  /// stopped with identical row timestamps (shards sample the same period
  /// over the same horizon, so their rows line up exactly); throws
  /// std::invalid_argument otherwise. Appending shards in a fixed order
  /// keeps the combined column order deterministic.
  void merge_columns(const TimeSeriesSampler& other);

 private:
  struct Column {
    std::string name;
    Probe probe;
    bool rate{false};
    double last{0.0};  // previous cumulative value for rate columns
    std::vector<double> values;
  };

  void tick();

  std::function<void()> pre_sample_;
  std::vector<Column> columns_;
  std::vector<std::int64_t> at_ns_;
  sim::Simulator* simulator_{nullptr};
  Duration period_{Duration::seconds(1)};
  sim::EventId tick_event_{0};
};

}  // namespace pbxcap::telemetry
