// Central metrics registry — the typed, exportable successor to the ad-hoc
// stats::CounterSet plumbing.
//
// Metrics are registered once by (name, fixed label set) and addressed
// through typed handles afterwards: a hot-path update is a pointer
// dereference and an add, never a string hash or map lookup. Handle
// pointers stay valid for the registry's lifetime (deque storage).
// Registration order is deterministic (single-threaded simulation), so every
// exporter emits byte-identical output for identical-seed runs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pbxcap::telemetry {

/// One `key="value"` pair of a metric's fixed label set.
struct Label {
  std::string key;
  std::string value;
};
using LabelSet = std::vector<Label>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Point-in-time level (active channels, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_{0.0};
};

/// Fixed-bucket histogram with explicit ascending upper bounds plus an
/// implicit +inf bucket — the Prometheus cumulative-bucket model. Use
/// log_linear_buckets() for latency-like quantities spanning decades
/// (setup delay, jitter) and linear_buckets() for bounded scores (MOS).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  /// Adds another histogram's observations bucket-by-bucket. Throws
  /// std::invalid_argument unless both have identical bounds.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Finite upper bounds; counts() has one extra trailing +inf bucket.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (last = +inf)
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// Log-linear bucket ladder: `per_decade` evenly spaced bounds within each
/// power of ten from `min_upper` up to at least `max_upper`. E.g.
/// (1.0, 1000.0, 5) yields 1, 2.8, 4.6, 6.4, 8.2, 10, 28, 46, ... 1000.
[[nodiscard]] std::vector<double> log_linear_buckets(double min_upper, double max_upper,
                                                     int per_decade);

/// `n` evenly spaced upper bounds over (lo, hi].
[[nodiscard]] std::vector<double> linear_buckets(double lo, double hi, std::size_t n);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric; the returned reference stays valid for
  /// the registry's lifetime. Re-registering the same (name, labels) returns
  /// the same instance; `help` is kept from the first registration. A name
  /// may not be reused with a different kind.
  Counter& counter(std::string_view name, LabelSet labels = {}, std::string_view help = "");
  Gauge& gauge(std::string_view name, LabelSet labels = {}, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       LabelSet labels = {}, std::string_view help = "");

  /// One registered metric, in registration order (deterministic).
  struct Row {
    std::string name;
    LabelSet labels;
    std::string help;
    MetricKind kind{MetricKind::kCounter};
    const Counter* counter{nullptr};
    const Gauge* gauge{nullptr};
    const Histogram* histogram{nullptr};
  };
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Folds another registry into this one: counters add, gauges add,
  /// histograms bucket-merge (bounds must match when a name collides).
  /// Metrics absent here are registered in `other`'s row order, so absorbing
  /// shards in a fixed order yields a deterministic combined registry. Used
  /// by the sharded cluster run to merge per-backend registries.
  void absorb(const MetricsRegistry& other);

 private:
  std::size_t intern(std::string_view name, LabelSet& labels, std::string_view help,
                     MetricKind kind, bool& existed);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Row> rows_;
  std::map<std::string, std::size_t, std::less<>> by_key_;  // "name{k=v,...}" -> row index
};

}  // namespace pbxcap::telemetry
