// Event-engine profiler — the rich wrapper over sim::ExecProfile.
//
// The simulator counts fires into the hot ExecProfile struct (one array
// increment per event; every sample_period-th callback wall-clocked, see
// sim/profile.hpp). This layer adds what the kernel must not know about:
// category names, an optional per-period event-count series driven by a
// self-scheduling tick (the source of Chrome counter tracks), deterministic
// shard-order merging, and the exporters — profile JSON, a Chrome-trace
// counter track file, the `pbxcap profile` top-N table, and the per-shard
// attribution JSON that backs ROADMAP open item 2.
//
// Determinism: category event counts and the per-period series are pure
// functions of the seed. Wall-clock fields (timed_ns, latency buckets) are
// host noise; exporters exclude them unless include_timing is set, so
// profile JSON participates in byte-identity goldens.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace pbxcap::telemetry {

/// Plain-data snapshot of one simulator's profile over its attached
/// interval. Mergeable across shards; the exporters below consume it.
struct ProfileData {
  struct Category {
    std::string name;
    sim::CategoryStats stats;
  };

  std::vector<Category> categories;  // builtin order, then dynamic extras
  /// Simulator::events_processed() delta over the attached interval; the
  /// category counts must sum to exactly this (checked by tools/check_telemetry.py).
  std::uint64_t events_processed{0};

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (const Category& cat : categories) total += cat.stats.events;
    return total;
  }

  /// Merges another snapshot (same category list) into this one. Callers
  /// merge shards in shard order so the result is deterministic.
  void merge(const ProfileData& other);
};

class Profiler {
 public:
  explicit Profiler(std::uint32_t sample_period = sim::ExecProfile::kDefaultSamplePeriod);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Starts counting this simulator's fires into the profile. One simulator
  /// per profiler; the baseline events_processed is captured here.
  void attach(sim::Simulator& simulator);
  /// Stops counting and latches the events_processed delta, so snapshot()
  /// stays valid after the simulator is destroyed. Call it in the harness
  /// epilogue, before the run's sim::Simulator leaves scope.
  void detach();

  /// Registers an experiment-defined category above the builtins; returns
  /// its id for use with Simulator::CategoryScope. Throws when the
  /// ExecProfile slot table is full.
  std::uint8_t register_category(std::string name);

  /// Self-schedules a per-period tick recording category event-count deltas
  /// (the Chrome counter-track series). Requires attach() first; the tick
  /// itself is attributed to timer-wheel. Use with run_until, like the
  /// sampler: under run() the tick keeps the queue alive forever.
  void start_series(Duration period);
  void stop_series();

  [[nodiscard]] const sim::ExecProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] const std::string& category_name(std::uint8_t cat) const {
    return names_.at(cat);
  }

  struct SeriesRow {
    std::int64_t at_ns{0};
    std::array<std::uint64_t, sim::ExecProfile::kMaxCategories> deltas{};
  };
  [[nodiscard]] const std::vector<SeriesRow>& series() const noexcept { return series_; }
  [[nodiscard]] Duration series_period() const noexcept { return series_period_; }

  [[nodiscard]] ProfileData snapshot() const;

 private:
  void tick();

  sim::ExecProfile profile_{};
  std::vector<std::string> names_;
  sim::Simulator* simulator_{nullptr};
  std::uint64_t attached_processed_{0};
  std::uint64_t latched_processed_{0};  // delta frozen by detach()
  Duration series_period_{Duration::seconds(1)};
  sim::EventId tick_event_{0};
  std::array<std::uint64_t, sim::ExecProfile::kMaxCategories> last_counts_{};
  std::vector<SeriesRow> series_;
};

/// Profile JSON: {"events_processed":N,"categories":[{"name":...,"events":N,
/// "share":...},...]}. Timing fields (wall-clock; nondeterministic) are
/// included only when include_timing is set — goldens leave it off.
[[nodiscard]] std::string to_json(const ProfileData& data, bool include_timing = false);

/// Chrome trace-event counter tracks ("C" phases) from the profiler's
/// per-period series: one counter per category, value = events per period.
[[nodiscard]] std::string to_chrome_counter_trace(const Profiler& profiler);

/// Human-readable top-N table (events, share, sampled mean latency) for the
/// `pbxcap profile` subcommand. Sorted by event count descending; ties break
/// by category id so the table is deterministic.
[[nodiscard]] std::string top_table(const ProfileData& data, std::size_t top_n = 10);

/// Per-shard attribution JSON backing the hub-shard share claim:
/// {"shards":[{"shard":...,"events":N,"share":...,"categories":{...}}],
///  "total":{...}}. Counts only — byte-identical for any worker count.
struct ShardProfile {
  std::string name;
  ProfileData data;
};
[[nodiscard]] std::string attribution_json(const std::vector<ShardProfile>& shards);

}  // namespace pbxcap::telemetry
