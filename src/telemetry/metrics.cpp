#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbxcap::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_{std::move(upper_bounds)} {
  if (bounds_.empty()) throw std::invalid_argument{"Histogram: need at least one bound"};
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must ascend"};
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument{"Histogram::merge: bucket bounds differ"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::observe(double x) noexcept {
  // First bucket whose upper bound admits x; the trailing bucket is +inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

std::vector<double> log_linear_buckets(double min_upper, double max_upper, int per_decade) {
  if (min_upper <= 0.0 || max_upper < min_upper || per_decade < 1) {
    throw std::invalid_argument{"log_linear_buckets: bad shape"};
  }
  std::vector<double> bounds;
  double decade = min_upper;
  while (true) {
    const double step = decade * 9.0 / static_cast<double>(per_decade);
    for (int i = 0; i < per_decade; ++i) {
      const double b = decade + step * static_cast<double>(i);
      bounds.push_back(b);
      if (b >= max_upper) return bounds;
    }
    decade *= 10.0;
  }
}

std::vector<double> linear_buckets(double lo, double hi, std::size_t n) {
  if (hi <= lo || n == 0) throw std::invalid_argument{"linear_buckets: bad shape"};
  std::vector<double> bounds;
  bounds.reserve(n);
  const double width = (hi - lo) / static_cast<double>(n);
  for (std::size_t i = 1; i <= n; ++i) bounds.push_back(lo + width * static_cast<double>(i));
  return bounds;
}

namespace {

std::string metric_key(std::string_view name, const LabelSet& labels) {
  std::string key{name};
  key += '{';
  for (const auto& label : labels) {
    key += label.key;
    key += '=';
    key += label.value;
    key += ',';
  }
  key += '}';
  return key;
}

}  // namespace

std::size_t MetricsRegistry::intern(std::string_view name, LabelSet& labels,
                                    std::string_view help, MetricKind kind, bool& existed) {
  std::string key = metric_key(name, labels);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    if (rows_[it->second].kind != kind) {
      throw std::invalid_argument{"MetricsRegistry: metric re-registered with another kind"};
    }
    existed = true;
    return it->second;
  }
  existed = false;
  Row row;
  row.name = std::string{name};
  row.labels = std::move(labels);
  row.help = std::string{help};
  row.kind = kind;
  rows_.push_back(std::move(row));
  by_key_.emplace(std::move(key), rows_.size() - 1);
  return rows_.size() - 1;
}

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels,
                                  std::string_view help) {
  bool existed = false;
  const std::size_t idx = intern(name, labels, help, MetricKind::kCounter, existed);
  if (!existed) {
    counters_.emplace_back();
    rows_[idx].counter = &counters_.back();
  }
  return const_cast<Counter&>(*rows_[idx].counter);
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelSet labels, std::string_view help) {
  bool existed = false;
  const std::size_t idx = intern(name, labels, help, MetricKind::kGauge, existed);
  if (!existed) {
    gauges_.emplace_back();
    rows_[idx].gauge = &gauges_.back();
  }
  return const_cast<Gauge&>(*rows_[idx].gauge);
}

void MetricsRegistry::absorb(const MetricsRegistry& other) {
  for (const Row& row : other.rows()) {
    switch (row.kind) {
      case MetricKind::kCounter:
        counter(row.name, row.labels, row.help).add(row.counter->value());
        break;
      case MetricKind::kGauge:
        gauge(row.name, row.labels, row.help).add(row.gauge->value());
        break;
      case MetricKind::kHistogram:
        histogram(row.name, row.histogram->bounds(), row.labels, row.help)
            .merge(*row.histogram);
        break;
    }
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds,
                                      LabelSet labels, std::string_view help) {
  bool existed = false;
  const std::size_t idx = intern(name, labels, help, MetricKind::kHistogram, existed);
  if (!existed) {
    histograms_.emplace_back(std::move(upper_bounds));
    rows_[idx].histogram = &histograms_.back();
  }
  return const_cast<Histogram&>(*rows_[idx].histogram);
}

}  // namespace pbxcap::telemetry
