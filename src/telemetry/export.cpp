#include "telemetry/export.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "util/strings.hpp"

namespace pbxcap::telemetry {
namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Escapes a Prometheus label value / JSON string body (shared rules: both
/// escape backslash, double quote, and newline).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders {k="v",...} including the given extra label, or "" when empty.
std::string prom_labels(const LabelSet& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out{"{"};
  bool first = true;
  for (const auto& label : labels) {
    if (!first) out += ',';
    first = false;
    out += label.key;
    out += "=\"";
    out += escaped(label.value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escaped(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string prom_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::format("%.17g", v);
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  // Rows of one family (same name, different labels) may have been
  // registered at different times by different components; the exposition
  // format wants each family's HELP/TYPE header exactly once, so group rows
  // by family in first-registration order.
  std::vector<std::string> family_order;
  std::map<std::string, std::vector<const MetricsRegistry::Row*>, std::less<>> families;
  for (const auto& row : registry.rows()) {
    auto& rows = families[row.name];
    if (rows.empty()) family_order.push_back(row.name);
    rows.push_back(&row);
  }

  std::string out;
  for (const auto& family : family_order) {
    bool header_done = false;
    for (const MetricsRegistry::Row* row_ptr : families.at(family)) {
      const auto& row = *row_ptr;
      if (!header_done) {
        header_done = true;
        if (!row.help.empty()) {
          out += "# HELP " + row.name + " " + row.help + "\n";
        }
        out += "# TYPE " + row.name + " " + kind_name(row.kind) + "\n";
      }
      switch (row.kind) {
      case MetricKind::kCounter:
        out += row.name + prom_labels(row.labels) +
               util::format(" %llu\n", static_cast<unsigned long long>(row.counter->value()));
        break;
      case MetricKind::kGauge:
        out += row.name + prom_labels(row.labels) + " " + prom_number(row.gauge->value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *row.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.counts()[i];
          out += row.name + "_bucket" +
                 prom_labels(row.labels, "le", util::format("%g", h.bounds()[i])) +
                 util::format(" %llu\n", static_cast<unsigned long long>(cumulative));
        }
        cumulative += h.counts().back();
        out += row.name + "_bucket" + prom_labels(row.labels, "le", "+Inf") +
               util::format(" %llu\n", static_cast<unsigned long long>(cumulative));
        out += row.name + "_sum" + prom_labels(row.labels) + " " + prom_number(h.sum()) + "\n";
        out += row.name + "_count" + prom_labels(row.labels) +
               util::format(" %llu\n", static_cast<unsigned long long>(h.count()));
        break;
      }
      }
    }
  }
  return out;
}

std::string to_json(const MetricsRegistry& registry) {
  std::string out{"{\"metrics\":["};
  bool first_row = true;
  for (const auto& row : registry.rows()) {
    if (!first_row) out += ',';
    first_row = false;
    out += "{\"name\":\"" + escaped(row.name) + "\",\"kind\":\"" + kind_name(row.kind) +
           "\",\"labels\":{";
    bool first_label = true;
    for (const auto& label : row.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += "\"" + escaped(label.key) + "\":\"" + escaped(label.value) + "\"";
    }
    out += "}";
    switch (row.kind) {
      case MetricKind::kCounter:
        out += util::format(",\"value\":%llu",
                            static_cast<unsigned long long>(row.counter->value()));
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + util::format("%.17g", row.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *row.histogram;
        out += util::format(",\"count\":%llu,\"sum\":%.17g,\"buckets\":[",
                            static_cast<unsigned long long>(h.count()), h.sum());
        for (std::size_t i = 0; i < h.counts().size(); ++i) {
          if (i != 0) out += ',';
          const std::string le =
              i < h.bounds().size() ? util::format("%g", h.bounds()[i]) : std::string{"+Inf"};
          out += util::format("{\"le\":\"%s\",\"n\":%llu}", le.c_str(),
                              static_cast<unsigned long long>(h.counts()[i]));
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

/// Appends one process's metadata + span events. `first` tracks whether a
/// leading comma is needed (the caller opened the traceEvents array).
void append_process_events(std::string& out, const SpanTracer& tracer, unsigned pid,
                           const std::string& process_name, bool& first) {
  const auto sep = [&]() -> const char* { return first ? (first = false, "") : ",\n"; };
  out += sep();
  out += util::format("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                      "\"args\":{\"name\":\"%s\"}}",
                      pid, escaped(process_name).c_str());
  const auto& tracks = tracer.track_keys();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    out += util::format(",\n{\"ph\":\"M\",\"pid\":%u,\"tid\":%llu,\"name\":\"thread_name\","
                        "\"args\":{\"name\":\"%s\"}}",
                        pid, static_cast<unsigned long long>(i + 1),
                        escaped(tracks[i]).c_str());
  }
  for (const auto& span : tracer.spans()) {
    if (span.end_ns < span.start_ns) continue;  // never ended; not exportable
    if (span.kind == SpanTracer::Kind::kInstant) {
      out += util::format(",\n{\"ph\":\"i\",\"pid\":%u,\"tid\":%llu,\"name\":\"%s\","
                          "\"ts\":%.3f,\"s\":\"t\"",
                          pid, static_cast<unsigned long long>(span.track),
                          escaped(tracer.name_of(span.name)).c_str(),
                          static_cast<double>(span.start_ns) / 1e3);
    } else {
      out += util::format(",\n{\"ph\":\"X\",\"pid\":%u,\"tid\":%llu,\"name\":\"%s\","
                          "\"ts\":%.3f,\"dur\":%.3f",
                          pid, static_cast<unsigned long long>(span.track),
                          escaped(tracer.name_of(span.name)).c_str(),
                          static_cast<double>(span.start_ns) / 1e3,
                          static_cast<double>(span.end_ns - span.start_ns) / 1e3);
    }
    if (span.detail != SpanTracer::kNoDetail) {
      out += util::format(",\"args\":{\"detail\":\"%s\"}",
                          escaped(tracer.name_of(span.detail)).c_str());
    }
    out += '}';
  }
}

}  // namespace

std::string to_chrome_trace(const SpanTracer& tracer) {
  std::string out{"{\"traceEvents\":[\n"};
  bool first = true;
  append_process_events(out, tracer, 1, "pbxcap", first);
  out += "\n]}\n";
  return out;
}

std::string to_chrome_trace_merged(const std::vector<TraceProcess>& processes) {
  std::string out{"{\"traceEvents\":[\n"};
  bool first = true;
  unsigned pid = 0;
  for (const TraceProcess& process : processes) {
    ++pid;
    if (process.tracer == nullptr) continue;
    append_process_events(out, *process.tracer, pid, process.name, first);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace pbxcap::telemetry
