#include "telemetry/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace pbxcap::telemetry {

Profiler::Profiler(std::uint32_t sample_period) {
  profile_.set_sample_period(sample_period);
  names_.reserve(sim::ExecProfile::kMaxCategories);
  for (std::size_t cat = 0; cat < sim::kCategoryCount; ++cat) {
    names_.emplace_back(sim::category_name(static_cast<std::uint8_t>(cat)));
  }
}

void Profiler::attach(sim::Simulator& simulator) {
  if (simulator_ != nullptr) throw std::logic_error{"Profiler: already attached"};
  simulator_ = &simulator;
  attached_processed_ = simulator.events_processed();
  simulator.set_profile(&profile_);
}

void Profiler::detach() {
  if (simulator_ == nullptr) return;
  stop_series();
  simulator_->set_profile(nullptr);
  latched_processed_ += simulator_->events_processed() - attached_processed_;
  simulator_ = nullptr;
}

std::uint8_t Profiler::register_category(std::string name) {
  if (names_.size() >= sim::ExecProfile::kMaxCategories) {
    throw std::length_error{"Profiler: category table full"};
  }
  names_.push_back(std::move(name));
  return static_cast<std::uint8_t>(names_.size() - 1);
}

void Profiler::start_series(Duration period) {
  if (simulator_ == nullptr) throw std::logic_error{"Profiler: attach before start_series"};
  if (period <= Duration::zero()) {
    throw std::invalid_argument{"Profiler: series period must be positive"};
  }
  if (tick_event_ != 0) throw std::logic_error{"Profiler: series already started"};
  series_period_ = period;
  for (std::size_t i = 0; i < sim::ExecProfile::kMaxCategories; ++i) {
    last_counts_[i] = profile_.counts[i];
  }
  const sim::Simulator::CategoryScope scope{
      *simulator_, static_cast<std::uint8_t>(sim::Category::kTimerWheel)};
  tick_event_ = simulator_->schedule_in(period, [this] { tick(); });
}

void Profiler::stop_series() {
  if (tick_event_ != 0 && simulator_ != nullptr) simulator_->cancel(tick_event_);
  tick_event_ = 0;
}

void Profiler::tick() {
  SeriesRow row;
  row.at_ns = simulator_->now().ns();
  for (std::size_t i = 0; i < sim::ExecProfile::kMaxCategories; ++i) {
    const std::uint64_t now = profile_.counts[i];
    row.deltas[i] = now - last_counts_[i];
    last_counts_[i] = now;
  }
  series_.push_back(row);
  // The tick fires inside a timer-wheel-categorized event, so the reschedule
  // inherits the right category without an explicit scope.
  tick_event_ = simulator_->schedule_in(series_period_, [this] { tick(); });
}

ProfileData Profiler::snapshot() const {
  ProfileData data;
  data.categories.reserve(names_.size());
  for (std::size_t cat = 0; cat < names_.size(); ++cat) {
    data.categories.push_back(ProfileData::Category{names_[cat], profile_.stats(cat)});
  }
  data.events_processed = latched_processed_;
  if (simulator_ != nullptr) {
    data.events_processed += simulator_->events_processed() - attached_processed_;
  }
  return data;
}

void ProfileData::merge(const ProfileData& other) {
  if (categories.size() < other.categories.size()) {
    categories.resize(other.categories.size());
  }
  for (std::size_t i = 0; i < other.categories.size(); ++i) {
    if (categories[i].name.empty()) {
      categories[i].name = other.categories[i].name;
    } else if (categories[i].name != other.categories[i].name) {
      throw std::invalid_argument{"ProfileData::merge: category tables diverge at \"" +
                                  categories[i].name + "\" vs \"" + other.categories[i].name +
                                  "\""};
    }
    categories[i].stats.merge(other.categories[i].stats);
  }
  events_processed += other.events_processed;
}

namespace {

std::string category_json(const ProfileData::Category& cat, std::uint64_t total,
                          bool include_timing) {
  const double share =
      total == 0 ? 0.0 : static_cast<double>(cat.stats.events) / static_cast<double>(total);
  std::string out = util::format("{\"name\":\"%s\",\"events\":%llu,\"share\":%.6f",
                                 cat.name.c_str(),
                                 static_cast<unsigned long long>(cat.stats.events), share);
  if (include_timing) {
    out += util::format(",\"timed_samples\":%llu,\"timed_ns\":%llu",
                        static_cast<unsigned long long>(cat.stats.timed_samples),
                        static_cast<unsigned long long>(cat.stats.timed_ns));
    out += ",\"latency_log2_ns\":[";
    for (std::size_t i = 0; i < cat.stats.latency_log2.size(); ++i) {
      if (i != 0) out += ',';
      out += util::format("%llu", static_cast<unsigned long long>(cat.stats.latency_log2[i]));
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_json(const ProfileData& data, bool include_timing) {
  const std::uint64_t total = data.total_events();
  std::string out = util::format("{\"events_processed\":%llu,\"categories\":[",
                                 static_cast<unsigned long long>(data.events_processed));
  for (std::size_t i = 0; i < data.categories.size(); ++i) {
    if (i != 0) out += ',';
    out += category_json(data.categories[i], total, include_timing);
  }
  out += "]}\n";
  return out;
}

std::string to_chrome_counter_trace(const Profiler& profiler) {
  std::string out{"{\"traceEvents\":[\n"};
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"pbxcap profile\"}}";
  const double period_s = profiler.series_period().to_seconds();
  for (const Profiler::SeriesRow& row : profiler.series()) {
    for (std::size_t cat = 0; cat < sim::ExecProfile::kMaxCategories; ++cat) {
      if (row.deltas[cat] == 0) continue;
      const double per_s = period_s <= 0.0
                               ? static_cast<double>(row.deltas[cat])
                               : static_cast<double>(row.deltas[cat]) / period_s;
      out += util::format(
          ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"events/s\",\"ts\":%.3f,\"args\":{\"%s\":%.1f}}",
          static_cast<double>(row.at_ns) / 1e3,
          profiler.category_name(static_cast<std::uint8_t>(cat)).c_str(), per_s);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string top_table(const ProfileData& data, std::size_t top_n) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < data.categories.size(); ++i) {
    if (data.categories[i].stats.events != 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::uint64_t ea = data.categories[a].stats.events;
    const std::uint64_t eb = data.categories[b].stats.events;
    return ea != eb ? ea > eb : a < b;
  });
  if (order.size() > top_n) order.resize(top_n);

  const std::uint64_t total = data.total_events();
  std::string out = util::format("%-18s %14s %8s %12s %14s\n", "category", "events", "share",
                                 "sampled", "mean ns/event");
  for (const std::size_t i : order) {
    const ProfileData::Category& cat = data.categories[i];
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(cat.stats.events) / static_cast<double>(total);
    const std::string mean =
        cat.stats.timed_samples == 0
            ? std::string{"-"}
            : util::format("%.0f", static_cast<double>(cat.stats.timed_ns) /
                                       static_cast<double>(cat.stats.timed_samples));
    out += util::format("%-18s %14llu %7.2f%% %12llu %14s\n", cat.name.c_str(),
                        static_cast<unsigned long long>(cat.stats.events), share,
                        static_cast<unsigned long long>(cat.stats.timed_samples), mean.c_str());
  }
  out += util::format("%-18s %14llu %7.2f%% (events_processed %llu)\n", "total",
                      static_cast<unsigned long long>(total), total == 0 ? 0.0 : 100.0,
                      static_cast<unsigned long long>(data.events_processed));
  return out;
}

std::string attribution_json(const std::vector<ShardProfile>& shards) {
  std::uint64_t fleet_total = 0;
  for (const ShardProfile& shard : shards) fleet_total += shard.data.total_events();

  ProfileData total;
  std::string out{"{\"shards\":[\n"};
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardProfile& shard = shards[s];
    if (s != 0) out += ",\n";
    const std::uint64_t events = shard.data.total_events();
    const double share =
        fleet_total == 0 ? 0.0 : static_cast<double>(events) / static_cast<double>(fleet_total);
    out += util::format("{\"shard\":\"%s\",\"events\":%llu,\"share\":%.6f,\"categories\":{",
                        shard.name.c_str(), static_cast<unsigned long long>(events), share);
    bool first = true;
    for (const ProfileData::Category& cat : shard.data.categories) {
      if (cat.stats.events == 0) continue;
      if (!first) out += ',';
      first = false;
      out += util::format("\"%s\":%llu", cat.name.c_str(),
                          static_cast<unsigned long long>(cat.stats.events));
    }
    out += "}}";
    total.merge(shard.data);
  }
  out += "\n],\"total\":";
  out += to_json(total);
  // to_json ends with a newline; fold it back into the enclosing object.
  while (!out.empty() && out.back() == '\n') out.pop_back();
  out += "}\n";
  return out;
}

}  // namespace pbxcap::telemetry
