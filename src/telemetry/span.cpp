#include "telemetry/span.hpp"

#include <stdexcept>

namespace pbxcap::telemetry {

SpanTracer::SpanTracer(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument{"SpanTracer: capacity must be positive"};
  ring_.resize(capacity);
}

std::uint32_t SpanTracer::name_id(std::string_view name) {
  if (const auto it = name_ids_.find(name); it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string{name}, id);
  return id;
}

std::uint64_t SpanTracer::track_id(std::string_view key) {
  if (const auto it = track_ids_.find(key); it != track_ids_.end()) return it->second;
  track_keys_.emplace_back(key);
  const std::uint64_t id = track_keys_.size();  // 1-based
  track_ids_.emplace(std::string{key}, id);
  return id;
}

SpanTracer::SpanId SpanTracer::begin(std::uint32_t name, std::uint64_t track, TimePoint at,
                                     std::uint32_t detail) {
  Span& slot = ring_[seq_ % ring_.size()];
  slot.name = name;
  slot.detail = detail;
  slot.track = track;
  slot.start_ns = at.ns();
  slot.end_ns = -1;
  slot.seq = seq_;
  slot.kind = Kind::kSlice;
  ++seq_;
  return seq_;  // id = seq of this span + 1, never 0
}

void SpanTracer::instant(std::uint32_t name, std::uint64_t track, TimePoint at,
                         std::uint32_t detail) {
  Span& slot = ring_[seq_ % ring_.size()];
  slot.name = name;
  slot.detail = detail;
  slot.track = track;
  slot.start_ns = at.ns();
  slot.end_ns = at.ns();  // closed at birth: always exportable
  slot.seq = seq_;
  slot.kind = Kind::kInstant;
  ++seq_;
}

void SpanTracer::end(SpanId id, TimePoint at) {
  if (id == 0) return;
  const std::uint64_t seq = id - 1;
  Span& slot = ring_[seq % ring_.size()];
  if (slot.seq != seq) return;  // overwritten by ring wrap; drop silently
  slot.end_ns = at.ns();
}

std::vector<SpanTracer::Span> SpanTracer::spans() const {
  std::vector<Span> out;
  const std::uint64_t retained = seq_ < ring_.size() ? seq_ : ring_.size();
  out.reserve(retained);
  for (std::uint64_t i = seq_ - retained; i < seq_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

}  // namespace pbxcap::telemetry
