// Call-lifecycle span tracing into a preallocated ring.
//
// Spans are begun/ended against the simulation clock and land in a
// fixed-capacity ring that keeps the NEWEST spans (oldest are overwritten
// and counted in dropped()). Names and tracks are interned once; recording
// a span is an array write, no allocation. Tracks map to Perfetto threads:
// one row per call, labelled with its Call-ID, so a single slow call can be
// drilled into visually (see OBSERVABILITY.md for the Perfetto workflow).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace pbxcap::telemetry {

class SpanTracer {
 public:
  /// Handle for closing a span. 0 is the null span: end(0, ...) is a no-op,
  /// so call sites need no branching when tracing never began a span.
  using SpanId = std::uint64_t;

  /// Sentinel for "no detail string" (0 is a valid interned name id).
  static constexpr std::uint32_t kNoDetail = 0xffffffffu;

  enum class Kind : std::uint8_t {
    kSlice,    // duration span: Perfetto "X" complete event
    kInstant,  // zero-duration marker: Perfetto "i" instant event
  };

  struct Span {
    std::uint32_t name{0};       // interned name id
    std::uint32_t detail{kNoDetail};  // interned arg string, or kNoDetail
    std::uint64_t track{0};      // interned track id (1-based)
    std::int64_t start_ns{0};
    std::int64_t end_ns{-1};     // -1 while open; unended spans are not exported
    std::uint64_t seq{0};        // global sequence; validates SpanIds after wrap
    Kind kind{Kind::kSlice};
  };

  explicit SpanTracer(std::size_t capacity = 1u << 16);

  /// Interns a span name; cheap after the first call per name.
  [[nodiscard]] std::uint32_t name_id(std::string_view name);
  /// Interns a track key (e.g. a Call-ID); the key becomes the Perfetto
  /// thread name. Ids are assigned sequentially from 1 in first-seen order.
  [[nodiscard]] std::uint64_t track_id(std::string_view key);

  [[nodiscard]] SpanId begin(std::uint32_t name, std::uint64_t track, TimePoint at,
                             std::uint32_t detail = kNoDetail);
  void end(SpanId id, TimePoint at);

  /// Records a zero-duration marker (dispatcher pick, fault firing). The
  /// optional detail is an interned string surfaced as a trace-event arg.
  void instant(std::uint32_t name, std::uint64_t track, TimePoint at,
               std::uint32_t detail = kNoDetail);

  /// Total spans begun, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return seq_; }
  /// Spans lost to ring wrap-around (oldest evicted first).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] const std::string& name_of(std::uint32_t id) const { return names_.at(id); }
  [[nodiscard]] const std::vector<std::string>& track_keys() const noexcept {
    return track_keys_;  // index i names track id i+1
  }

 private:
  std::vector<Span> ring_;
  std::uint64_t seq_{0};  // next slot = seq_ % ring_.size()
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::vector<std::string> track_keys_;
  std::map<std::string, std::uint64_t, std::less<>> track_ids_;
};

}  // namespace pbxcap::telemetry
