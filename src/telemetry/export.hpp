// Exporters for the telemetry subsystem.
//
//   * Prometheus text exposition (0.0.4) of the metrics registry — scrape
//     format, also the easiest to diff in golden tests;
//   * a JSON rendering of the registry for programmatic consumers;
//   * Chrome trace-event JSON of the span ring, loadable in Perfetto
//     (ui.perfetto.dev) with one named thread per call track.
//
// All output is a pure function of registry/tracer state: identical-seed
// runs export byte-identical bytes (asserted by tests/test_telemetry.cpp).
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace pbxcap::telemetry {

/// Prometheus text exposition: # HELP / # TYPE preamble per metric family,
/// histogram as cumulative _bucket{le=...} / _sum / _count.
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// {"metrics":[{"name":...,"kind":...,"labels":{...},"value":...}]}
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Chrome trace-event JSON: "X" complete events (ph/ts/dur/pid/tid/name) and
/// "i" instants, plus process/thread name metadata. Spans with an interned
/// detail string carry it as an args entry. Open-ended spans are omitted.
[[nodiscard]] std::string to_chrome_trace(const SpanTracer& tracer);

/// One Perfetto process of a merged multi-shard trace.
struct TraceProcess {
  std::string name;          // process_name metadata (e.g. "hub", "pbx-3")
  const SpanTracer* tracer;  // may be null: the process is skipped
};

/// Merged Chrome trace: one Perfetto process per entry (pid = index + 1),
/// each with its own thread (track) namespace. Processes are emitted in the
/// given order, so passing shards in shard order yields byte-identical
/// output for any worker count.
[[nodiscard]] std::string to_chrome_trace_merged(const std::vector<TraceProcess>& processes);

}  // namespace pbxcap::telemetry
