// Full-duplex point-to-point link with finite bandwidth, propagation delay,
// a drop-tail serialization queue, and optional impairments (random loss,
// delay jitter). Models both the wired 10/100 Mbps segments of Fig. 4 and —
// with loss/jitter configured — the Wi-Fi access segment of the VoWiFi
// deployment.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "util/time.hpp"

namespace pbxcap::net {

class Network;
class Node;

struct LinkConfig {
  double bandwidth_bps{100e6};          // Fast Ethernet by default (Fig. 4)
  Duration propagation{Duration::micros(5)};
  std::uint32_t queue_limit_packets{256};  // drop-tail beyond this backlog
  double loss_probability{0.0};            // random loss (Wi-Fi segment model)
  Duration jitter_mean{Duration::zero()};  // extra stochastic delay, mean
  Duration jitter_stddev{Duration::zero()};
  /// IAX2-style trunk aggregation window (net/trunk.hpp). When non-zero,
  /// per-packet (non-fluid) RTP offered to the link is held and sent as one
  /// trunk frame per window per direction, flushed on window boundaries of
  /// the simulation clock grid (so the schedule is independent of arrival
  /// phase — a requirement for byte-identical sharded runs at any worker
  /// count). SIP, RTCP, and fluid batches bypass the trunk, as RFC 5456
  /// trunking only carries media mini-frames. Zero disables trunking.
  Duration trunk_window{Duration::zero()};
};

/// Partial overlay applied onto a live link's LinkConfig mid-run (fault
/// injection: loss bursts, jitter ramps, bandwidth drops). Unset fields keep
/// their current value. `blackout` is link state, not config: while engaged
/// the link silently eats every packet in both directions.
struct LinkImpairment {
  std::optional<double> loss_probability;
  std::optional<double> bandwidth_bps;
  std::optional<Duration> propagation;
  std::optional<Duration> jitter_mean;
  std::optional<Duration> jitter_stddev;
  std::optional<std::uint32_t> queue_limit_packets;
  std::optional<bool> blackout;
};

/// Per-direction transmission statistics.
struct LinkDirectionStats {
  std::uint64_t packets_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t dropped_queue_full{0};
  std::uint64_t dropped_random_loss{0};
  std::uint64_t dropped_impairment{0};  // injected blackout ate the packet
  std::uint64_t trunk_frames{0};        // aggregation shells put on the wire
  std::uint64_t trunk_mini_frames{0};   // media packets carried inside them
  Duration busy_time{Duration::zero()};  // cumulative serialization time

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_queue_full + dropped_random_loss + dropped_impairment;
  }
};

class Link {
 public:
  /// Built by Network::connect; `a` and `b` are the endpoints' node ids.
  Link(Network& network, NodeId a, NodeId b, const LinkConfig& config);

  /// Transmits `pkt` from endpoint `from` toward the opposite endpoint.
  /// Applies queueing, serialization delay, propagation, loss and jitter.
  void transmit(NodeId from, Packet pkt);

  [[nodiscard]] NodeId endpoint_a() const noexcept { return a_; }
  [[nodiscard]] NodeId endpoint_b() const noexcept { return b_; }
  [[nodiscard]] NodeId peer_of(NodeId node) const noexcept { return node == a_ ? b_ : a_; }
  [[nodiscard]] bool attaches(NodeId node) const noexcept { return node == a_ || node == b_; }

  /// Mutates the live configuration (fault-injection path). Set fields
  /// overlay the current config and affect every packet offered from now on;
  /// packets already serialized keep their original delivery schedule.
  /// Validates like the constructor; throws std::invalid_argument on bad
  /// values (non-positive bandwidth, zero queue limit, loss outside [0,1]).
  void apply_impairment(const LinkImpairment& impairment);

  /// Invoked at the top of apply_impairment, before any config mutation.
  /// The fluid media engine uses it to flush fast-forwarded streams to exact
  /// per-packet state under the pre-change link behaviour.
  void set_pre_change_listener(std::function<void()> listener) {
    pre_change_ = std::move(listener);
  }

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool blacked_out() const noexcept { return blackout_; }
  /// Packets queued or in serialization in the `from`->peer direction (the
  /// fluid engine's near-saturation signal).
  [[nodiscard]] std::uint32_t backlog_from(NodeId from) const;
  /// Stats for the direction whose source is `from`.
  [[nodiscard]] const LinkDirectionStats& stats_from(NodeId from) const;

  /// Instantaneous utilization estimate of the `from`->peer direction over
  /// the interval observed so far (busy_time / elapsed).
  [[nodiscard]] double utilization_from(NodeId from, TimePoint now) const;

 private:
  struct Direction {
    TimePoint busy_until{};
    std::uint32_t backlog{0};  // packets queued or in serialization
    LinkDirectionStats stats;
    std::vector<Packet> trunk_pending;  // media awaiting the window flush
    bool trunk_flush_scheduled{false};
  };

  Direction& direction_from(NodeId from);
  void transmit_batch(NodeId from, Packet pkt);
  /// The pre-trunking per-packet path: queueing, serialization, loss,
  /// jitter, delivery. Trunk shells re-enter here once assembled.
  void transmit_now(NodeId from, Packet pkt);
  void enqueue_trunk(NodeId from, Packet pkt);
  void flush_trunk(NodeId from);

  Network& network_;
  NodeId a_;
  NodeId b_;
  LinkConfig config_;
  std::function<void()> pre_change_;
  bool blackout_{false};
  std::array<Direction, 2> directions_{};  // [0]: a->b, [1]: b->a
};

}  // namespace pbxcap::net
