// Stand-in node for a host simulated by another shard.
//
// A sharded cluster run (exp/cluster_shard.cpp) keeps each shard's Network
// self-contained: every remote host a shard talks to is represented by a
// PortalNode in the local id space. Portals that sit on a cross-shard link
// get a Network::set_remote_sink and never receive locally; portals that
// exist only so the HostResolver has an id to hand out (the backend shards'
// view of the caller bank) are never linked at all. Either way a local
// delivery reaching on_receive indicates a wiring bug, so it is counted
// rather than silently dropped.
#pragma once

#include <cstdint>
#include <string>

#include "net/node.hpp"

namespace pbxcap::net {

class PortalNode : public Node {
 public:
  explicit PortalNode(std::string name) : Node{std::move(name)} {}

  void on_receive(const Packet& /*pkt*/) override { ++swallowed_; }

  /// Local deliveries that reached the portal (should stay zero).
  [[nodiscard]] std::uint64_t swallowed() const noexcept { return swallowed_; }

 private:
  std::uint64_t swallowed_{0};
};

}  // namespace pbxcap::net
