// Store-and-forward Ethernet switch (the "Switch 10/100Mbps" of Fig. 4).
//
// Forwards by destination node id across its attached links after a small
// per-packet processing latency. All hosts in the paper's testbed hang off a
// single switch, so a directly-attached lookup suffices; static routes allow
// multi-switch topologies if an experiment needs them.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/node.hpp"
#include "util/time.hpp"

namespace pbxcap::net {

class Link;

class SwitchNode : public Node {
 public:
  explicit SwitchNode(std::string name, Duration processing_delay = Duration::micros(10))
      : Node{std::move(name)}, processing_delay_{processing_delay} {}

  void on_receive(const Packet& pkt) override;
  [[nodiscard]] bool multihomed() const noexcept override { return true; }

  /// Static route for destinations not directly attached.
  void add_route(NodeId dst, Link& via);

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_no_route() const noexcept { return dropped_no_route_; }

 private:
  [[nodiscard]] Link* route_for(NodeId dst);

  Duration processing_delay_;
  std::unordered_map<NodeId, Link*> static_routes_;
  std::unordered_map<NodeId, Link*> learned_;  // cache of attached-peer lookups
  std::uint64_t forwarded_{0};
  std::uint64_t dropped_no_route_{0};
};

}  // namespace pbxcap::net
