// Network packet model.
//
// Packets carry an opaque payload (SIP message, RTP packet) plus the wire
// metadata the transport layer needs: size in bytes, endpoints, and a kind
// tag so taps can count SIP vs RTP traffic the way the paper does with
// Wireshark.
#pragma once

#include <cstdint>
#include <memory>

#include "util/time.hpp"

namespace pbxcap::net {

/// Identifies an attached node within one Network. Dense, assigned at attach.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

/// kTrunk is an aggregation shell (net/trunk.hpp): one wire frame carrying
/// many calls' media across an inter-PBX link, IAX2-trunk style. Captures
/// that census application traffic filter on kSip/kRtp/kRtcp and therefore
/// see the re-delivered inner frames, never the shell.
enum class PacketKind : std::uint8_t { kSip, kRtp, kRtcp, kTrunk, kOther };

[[nodiscard]] constexpr const char* to_string(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::kSip: return "SIP";
    case PacketKind::kRtp: return "RTP";
    case PacketKind::kRtcp: return "RTCP";
    case PacketKind::kTrunk: return "TRUNK";
    case PacketKind::kOther: return "OTHER";
  }
  return "?";
}

/// Base class for anything carried inside a Packet.
struct Payload {
  Payload() = default;
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  Payload(Payload&&) = default;
  Payload& operator=(Payload&&) = default;
  virtual ~Payload() = default;
};

/// Per-layer encapsulation overhead on the wire (bytes). UDP transport for
/// both SIP and RTP, as in the paper's testbed.
inline constexpr std::uint32_t kUdpHeaderBytes = 8;
inline constexpr std::uint32_t kIpv4HeaderBytes = 20;
inline constexpr std::uint32_t kEthernetOverheadBytes = 18;  // MAC hdr + FCS
inline constexpr std::uint32_t kWireOverheadBytes =
    kUdpHeaderBytes + kIpv4HeaderBytes + kEthernetOverheadBytes;

struct Packet {
  std::uint64_t id{0};
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};
  PacketKind kind{PacketKind::kOther};
  /// Fluid-mode batch marker: the packet stands for `batch` wire packets and
  /// carries a BatchPayload; links/switches move it synchronously instead of
  /// scheduling per-hop events. Checked with one byte compare so the
  /// per-packet hot path never pays a dynamic_cast.
  bool fluid{false};
  /// Number of wire packets this Packet stands for. 1 for ordinary traffic;
  /// >= 1 when `fluid`, with per-packet timing in the BatchPayload. Every
  /// counter along the path accrues `batch`, not 1.
  std::uint16_t batch{1};
  std::uint32_t size_bytes{0};  // full on-wire size including headers
  TimePoint sent_at{};
  std::shared_ptr<const Payload> payload;

  /// Typed payload access; nullptr if the payload is of a different type.
  template <typename T>
  [[nodiscard]] const T* payload_as() const noexcept {
    return dynamic_cast<const T*>(payload.get());
  }
};

// The per-packet link delivery closure captures a Packet next to 16 bytes of
// context and must stay within sim::Callback's 64-byte inline buffer, so the
// batch count has to live in existing padding rather than grow the struct.
static_assert(sizeof(Packet) == 48, "Packet must stay within the SBO budget of hot closures");

/// Base for batch payloads: carries the nominal per-packet one-way latency
/// accumulated hop by hop while a batch traverses the topology synchronously
/// (no simulator events). Hops that would delay a packet clone-and-add via
/// add_batch_latency instead of scheduling; receivers reconstruct nominal
/// arrival times from it.
struct BatchPayload : Payload {
  Duration path_latency{Duration::zero()};

  [[nodiscard]] virtual std::shared_ptr<BatchPayload> clone_batch() const = 0;
};

/// Adds `extra` to the batch payload's accumulated path latency,
/// copy-on-write (the original may still be referenced upstream). No-op for
/// non-batch payloads.
inline void add_batch_latency(Packet& pkt, Duration extra) {
  if (const auto* batch = pkt.payload_as<BatchPayload>()) {
    auto copy = batch->clone_batch();
    copy->path_latency += extra;
    pkt.payload = std::move(copy);
  }
}

/// Full wire size for an application payload of `app_bytes`.
[[nodiscard]] constexpr std::uint32_t wire_size(std::uint32_t app_bytes) noexcept {
  return app_bytes + kWireOverheadBytes;
}

}  // namespace pbxcap::net
