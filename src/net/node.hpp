// Attachment point for anything that sends/receives packets.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace pbxcap::net {

class Network;

/// A device on the network (host, PBX, switch). Subclasses implement
/// on_receive; sending goes through the owning Network.
class Node {
 public:
  explicit Node(std::string name) : name_{std::move(name)} {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Network* network() const noexcept { return network_; }

  /// Delivery upcall; `pkt.dst` is this node (or broadcast via a switch).
  virtual void on_receive(const Packet& pkt) = 0;

  /// Forwarding devices (switches, access points) may hold several links;
  /// plain hosts are single-homed.
  [[nodiscard]] virtual bool multihomed() const noexcept { return false; }

 protected:
  /// Hands the packet to the attached link. No-op with a warning counter if
  /// the node is detached.
  void send(Packet pkt);

 private:
  friend class Network;
  std::string name_;
  NodeId id_{kInvalidNode};
  Network* network_{nullptr};
};

}  // namespace pbxcap::net
