// Shared-medium Wi-Fi cell (the VoWiFi access segment of Fig. 1).
//
// The paper's deployment context is voice over the campus 802.11 network;
// its testbed measures only the wired PBX side. This node models what the
// wireless hop adds: a half-duplex shared medium where every frame pays PHY
// airtime plus fixed MAC overhead (DIFS + preamble + SIFS + ACK) plus a
// contention backoff that grows with the instantaneous backlog, and loses
// frames with a configurable radio error rate. The well-known consequence —
// a VoIP call capacity far below what the nominal bit rate suggests (tens of
// G.711 calls on 802.11g, not hundreds) — emerges from the airtime math.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/node.hpp"
#include "util/time.hpp"

namespace pbxcap::net {

class Link;

struct WifiCellConfig {
  double phy_rate_bps{54e6};                    // 802.11g data rate
  Duration per_frame_overhead{Duration::micros(130)};  // DIFS+preamble+SIFS+ACK
  Duration slot_time{Duration::micros(9)};
  std::uint32_t cw_min{15};                     // contention window (slots)
  double frame_error_rate{0.01};                // radio loss after retries
  std::uint32_t queue_limit_frames{128};
};

class WifiCell final : public Node {
 public:
  explicit WifiCell(std::string name, WifiCellConfig config = {})
      : Node{std::move(name)}, config_{config} {}

  void on_receive(const Packet& pkt) override;
  [[nodiscard]] bool multihomed() const noexcept override { return true; }

  /// Static route for destinations not directly attached (e.g. the PBX
  /// behind the wired switch).
  void add_route(NodeId dst, Link& via);
  /// Fallback uplink for any unknown destination (the AP's wired port).
  void set_uplink(Link& via);

  [[nodiscard]] const WifiCellConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t frames_forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t frames_dropped_queue() const noexcept { return dropped_queue_; }
  [[nodiscard]] std::uint64_t frames_dropped_radio() const noexcept { return dropped_radio_; }
  [[nodiscard]] std::uint64_t frames_dropped_no_route() const noexcept {
    return dropped_no_route_;
  }
  /// Fraction of elapsed time the medium has been busy.
  [[nodiscard]] double medium_utilization(TimePoint now) const noexcept;

  /// Airtime one frame of `bytes` occupies, excluding contention.
  [[nodiscard]] Duration frame_airtime(std::uint32_t bytes) const noexcept;

 private:
  [[nodiscard]] Link* route_for(NodeId dst);

  WifiCellConfig config_;
  std::unordered_map<NodeId, Link*> static_routes_;
  std::unordered_map<NodeId, Link*> learned_;
  Link* uplink_{nullptr};
  TimePoint medium_busy_until_{};
  std::uint32_t backlog_{0};
  Duration busy_time_{Duration::zero()};
  std::uint64_t forwarded_{0};
  std::uint64_t dropped_queue_{0};
  std::uint64_t dropped_radio_{0};
  std::uint64_t dropped_no_route_{0};
};

}  // namespace pbxcap::net
