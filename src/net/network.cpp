#include "net/network.hpp"

#include "net/switch_node.hpp"
#include "net/trunk.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::net {

Network::Network(sim::Simulator& simulator, sim::Random impairment_rng)
    : simulator_{simulator}, rng_{impairment_rng} {}

NodeId Network::attach(Node& node) {
  if (node.network_ != nullptr) throw std::logic_error{"Network::attach: node already attached"};
  const auto id = static_cast<NodeId>(nodes_.size());
  node.id_ = id;
  node.network_ = this;
  nodes_.push_back(&node);
  return id;
}

Node& Network::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"Network::node: bad id"};
  return *nodes_[id];
}

std::vector<Link*> Network::links_of(NodeId node_id) const {
  std::vector<Link*> out;
  for (const auto& link : links_) {
    if (link->attaches(node_id)) out.push_back(link.get());
  }
  return out;
}

Link& Network::connect(Node& a, Node& b, const LinkConfig& config) {
  if (a.network_ != this || b.network_ != this) {
    throw std::logic_error{"Network::connect: attach both nodes first"};
  }
  for (const Node* n : {static_cast<const Node*>(&a), static_cast<const Node*>(&b)}) {
    if (!n->multihomed() && !links_of(n->id()).empty()) {
      throw std::logic_error{"Network::connect: host '" + n->name() + "' is already linked"};
    }
  }
  links_.push_back(std::make_unique<Link>(*this, a.id(), b.id(), config));
  return *links_.back();
}

void Network::send_from(NodeId src_node, Packet pkt) {
  const auto links = links_of(src_node);
  if (links.empty()) {
    util::log_warn("net", util::format("node %u sent a packet while detached", src_node));
    return;
  }
  if (links.size() > 1) {
    throw std::logic_error{"Network::send_from: multihomed node must transmit on a chosen link"};
  }
  pkt.sent_at = simulator_.now();
  links.front()->transmit(src_node, std::move(pkt));
}

void Network::set_remote_sink(NodeId node, RemoteSink sink) {
  if (node >= nodes_.size()) throw std::out_of_range{"Network::set_remote_sink: bad id"};
  if (remote_.size() <= node) remote_.resize(nodes_.size());
  remote_[node] = std::move(sink);
}

void Network::deliver_remote(Packet&& pkt, NodeId from, NodeId to, TimePoint deliver_at) {
  for (const auto& tap : taps_) tap(pkt, from, to);
  remote_[to](std::move(pkt), from, deliver_at);
}

void Network::deliver(const Packet& pkt, NodeId from, NodeId to) {
  // Trunk shells are framing for one link hop, not application traffic:
  // unwrap here and re-deliver the aggregated media individually, so the
  // receiving node (endpoint, or a switch re-routing each frame by its own
  // dst) and the kind-filtered captures see exactly the packets a
  // non-trunked link would have delivered. Taps still observe the shell —
  // that is what a wire sniffer on the trunked segment would record.
  if (pkt.kind == PacketKind::kTrunk) {
    if (const auto* trunk = pkt.payload_as<TrunkPayload>()) {
      for (const auto& tap : taps_) tap(pkt, from, to);
      for (const Packet& inner : trunk->frames) deliver(inner, from, to);
      return;
    }
  }
  delivered_ += pkt.batch;
  for (const auto& tap : taps_) tap(pkt, from, to);
  node(to).on_receive(pkt);
}

void Node::send(Packet pkt) {
  if (network_ == nullptr) {
    util::log_warn("net", "send on detached node '" + name_ + "'");
    return;
  }
  pkt.src = id_;
  if (pkt.id == 0) pkt.id = network_->next_packet_id();
  network_->send_from(id_, std::move(pkt));
}

}  // namespace pbxcap::net
