#include "net/wifi_cell.hpp"

#include <algorithm>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/profile.hpp"

namespace pbxcap::net {

void WifiCell::add_route(NodeId dst, Link& via) {
  if (!via.attaches(id())) throw std::logic_error{"WifiCell::add_route: link not attached"};
  static_routes_[dst] = &via;
}

void WifiCell::set_uplink(Link& via) {
  if (!via.attaches(id())) throw std::logic_error{"WifiCell::set_uplink: link not attached"};
  uplink_ = &via;
}

Link* WifiCell::route_for(NodeId dst) {
  if (const auto it = learned_.find(dst); it != learned_.end()) return it->second;
  if (const auto it = static_routes_.find(dst); it != static_routes_.end()) {
    learned_.emplace(dst, it->second);
    return it->second;
  }
  for (Link* link : network()->links_of(id())) {
    if (link->peer_of(id()) == dst) {
      learned_.emplace(dst, link);
      return link;
    }
  }
  return uplink_;  // may be null: then the frame is unroutable
}

Duration WifiCell::frame_airtime(std::uint32_t bytes) const noexcept {
  return config_.per_frame_overhead +
         Duration::from_seconds(static_cast<double>(bytes) * 8.0 / config_.phy_rate_bps);
}

double WifiCell::medium_utilization(TimePoint now) const noexcept {
  const double elapsed = now.to_seconds();
  return elapsed <= 0.0 ? 0.0 : std::min(1.0, busy_time_.to_seconds() / elapsed);
}

void WifiCell::on_receive(const Packet& pkt) {
  if (pkt.dst == id()) return;
  Link* out = route_for(pkt.dst);
  if (out == nullptr) {
    ++dropped_no_route_;
    return;
  }
  auto& sim = network()->simulator();
  const TimePoint now = sim.now();

  if (backlog_ >= config_.queue_limit_frames) {
    ++dropped_queue_;
    return;
  }

  // Contention: expected backoff is cw_min/2 slots when idle, and doubles
  // (bounded) as the backlog deepens — a coarse DCF stand-in that preserves
  // the key behaviour: per-frame cost rises under load.
  const double cw_factor = std::min(4.0, 1.0 + static_cast<double>(backlog_) / 8.0);
  const double mean_backoff_slots = static_cast<double>(config_.cw_min) / 2.0 * cw_factor;
  const Duration backoff = Duration::from_seconds(
      mean_backoff_slots * config_.slot_time.to_seconds() *
      network()->impairment_rng().uniform(0.5, 1.5));
  const Duration occupancy = frame_airtime(pkt.size_bytes) + backoff;

  const TimePoint start = std::max(now, medium_busy_until_);
  medium_busy_until_ = start + occupancy;
  busy_time_ += occupancy;
  ++backlog_;

  const bool lost = config_.frame_error_rate > 0.0 &&
                    network()->impairment_rng().chance(config_.frame_error_rate);

  // Radio occupancy events are attributed like wire events: by packet kind.
  const sim::Simulator::CategoryScope cat_scope{
      sim, pkt.kind == PacketKind::kSip ? sim::category_id(sim::Category::kSip)
           : pkt.kind == PacketKind::kOther ? sim.category()
                                            : sim::category_id(sim::Category::kRtpPacket)};
  sim.schedule_at(medium_busy_until_, [this, out, pkt, lost] {
    if (backlog_ > 0) --backlog_;
    if (lost) {
      ++dropped_radio_;
      return;
    }
    ++forwarded_;
    out->transmit(id(), pkt);
  });
}

}  // namespace pbxcap::net
