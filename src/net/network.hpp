// Network fabric: owns nodes, links, and the packet-level event plumbing.
//
// One Network per simulation run. It wires Node::send to the attached Link,
// delivers packets through the Simulator, and exposes a tap interface so the
// monitor module can observe every delivery (the Wireshark substitute).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace pbxcap::net {

/// Observation hook fired on every link delivery (post-impairment).
/// `from`/`to` are the link endpoints of the hop, not the end-to-end pair.
using PacketTap = std::function<void(const Packet& pkt, NodeId from, NodeId to)>;

/// Cross-shard egress hook. A node with a remote sink is a *portal*: it
/// stands in for a host simulated by another shard. Packets a Link would
/// deliver to it are handed to the sink at transmit time together with the
/// computed delivery timestamp, and become timestamped messages for the
/// destination shard (see sim/shard.hpp) instead of local simulator events.
using RemoteSink = std::function<void(Packet&& pkt, NodeId from, TimePoint deliver_at)>;

class Network {
 public:
  Network(sim::Simulator& simulator, sim::Random impairment_rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; the Network does not own it. Returns its id.
  NodeId attach(Node& node);

  /// Creates a link between two attached nodes. Non-switch nodes may have at
  /// most one link (hosts in Fig. 4 are single-homed).
  Link& connect(Node& a, Node& b, const LinkConfig& config = {});

  /// Sends from `src_node` over its attached link (host side) — called by
  /// Node::send. Switches transmit on explicit links instead.
  void send_from(NodeId src_node, Packet pkt);

  /// Delivery: invoked by Link when a packet reaches a node.
  void deliver(const Packet& pkt, NodeId from, NodeId to);

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }

  /// Marks `node` as a cross-shard portal: deliveries addressed to it leave
  /// this shard through `sink` instead of the local event loop. The node
  /// must already be attached.
  void set_remote_sink(NodeId node, RemoteSink sink);
  [[nodiscard]] bool is_remote(NodeId node) const noexcept {
    return node < remote_.size() && remote_[node] != nullptr;
  }
  /// Cross-shard hand-off: fires the taps (so egress captures at `from` see
  /// the hop exactly as a local delivery would show it) and invokes the
  /// portal's sink. Called by Link in place of scheduling a local delivery.
  void deliver_remote(Packet&& pkt, NodeId from, NodeId to, TimePoint deliver_at);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] sim::Random& impairment_rng() noexcept { return rng_; }

  [[nodiscard]] Node& node(NodeId id) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const noexcept { return links_; }
  /// Links attached to `node_id`.
  [[nodiscard]] std::vector<Link*> links_of(NodeId node_id) const;

  [[nodiscard]] std::uint64_t next_packet_id() noexcept { return next_packet_id_++; }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept { return delivered_; }

 private:
  sim::Simulator& simulator_;
  sim::Random rng_;
  std::vector<Node*> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<PacketTap> taps_;
  std::vector<RemoteSink> remote_;  // indexed by NodeId; empty when unsharded
  std::uint64_t next_packet_id_{1};
  std::uint64_t delivered_{0};
};

}  // namespace pbxcap::net
