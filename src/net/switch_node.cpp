#include "net/switch_node.hpp"

#include "net/link.hpp"
#include "net/network.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::net {

void SwitchNode::add_route(NodeId dst, Link& via) {
  if (!via.attaches(id())) throw std::logic_error{"SwitchNode::add_route: link not attached"};
  static_routes_[dst] = &via;
}

Link* SwitchNode::route_for(NodeId dst) {
  if (const auto it = learned_.find(dst); it != learned_.end()) return it->second;
  if (const auto it = static_routes_.find(dst); it != static_routes_.end()) {
    learned_.emplace(dst, it->second);
    return it->second;
  }
  for (Link* link : network()->links_of(id())) {
    if (link->peer_of(id()) == dst) {
      learned_.emplace(dst, link);
      return link;
    }
  }
  return nullptr;
}

void SwitchNode::on_receive(const Packet& pkt) {
  if (pkt.dst == id()) return;  // addressed to the switch itself: sink it
  Link* out = route_for(pkt.dst);
  if (out == nullptr) {
    ++dropped_no_route_;
    util::log_debug("switch", util::format("no route to node %u", pkt.dst));
    return;
  }
  forwarded_ += pkt.batch;
  if (pkt.fluid) {
    // Fluid batch: forward inline on the flush call stack; the per-packet
    // processing latency folds into the batch's nominal path latency.
    Packet batched = pkt;
    add_batch_latency(batched, processing_delay_);
    out->transmit(id(), std::move(batched));
    return;
  }
  network()->simulator().schedule_in(processing_delay_, [this, out, pkt] {
    out->transmit(id(), pkt);
  });
}

}  // namespace pbxcap::net
