// IAX2-style trunk aggregation (RFC 5456 §8.1.2).
//
// On a trunked link, every media packet offered within one trunk window
// (nominally one 20 ms ptime) is carried in a single wire frame: one meta
// trunk header for the frame, plus a small mini-frame header per call in
// place of each packet's full Ethernet/IP/UDP/RTP encapsulation. With k
// concurrent calls this turns k packets per window per direction into one,
// cutting both the per-packet wire overhead (the dominant cost of 20-byte
// G.729 payloads) and the per-packet event load on the inter-PBX segment.
//
// The shell is transport framing, not application traffic: Network::deliver
// unwraps it at the receiving end of the hop and re-delivers the aggregated
// frames individually, so endpoints, switches, and kind-filtered captures
// observe exactly the packets they would have seen without trunking.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace pbxcap::net {

/// Meta trunk frame header (RFC 5456 §8.1.2: full IAX meta header with the
/// trunk timestamp).
inline constexpr std::uint32_t kTrunkHeaderBytes = 8;
/// Per-call mini-frame header inside the trunk (source call number + length,
/// trunk-timestamped variant).
inline constexpr std::uint32_t kTrunkMiniHeaderBytes = 4;
/// Bytes the trunk sheds from each aggregated packet: its own
/// Ethernet/IP/UDP wire overhead plus the 12-byte RTP header, both replaced
/// by the shared shell framing and the mini-frame header.
inline constexpr std::uint32_t kTrunkStrippedPerPacketBytes = kWireOverheadBytes + 12;

/// Shell payload: the media packets aggregated into one trunk frame, in
/// arrival order. Each keeps its own src/dst/sent_at/payload untouched so
/// the unwrap at the far end of the hop re-delivers them verbatim.
struct TrunkPayload final : Payload {
  std::vector<Packet> frames;
};

/// Full wire size of a trunk frame carrying `frames`: shared encapsulation +
/// meta header + one mini-frame (header + codec payload) per packet.
[[nodiscard]] inline std::uint32_t trunk_wire_size(const std::vector<Packet>& frames) noexcept {
  std::uint32_t app_bytes = kTrunkHeaderBytes;
  for (const Packet& inner : frames) {
    const std::uint32_t carried = inner.size_bytes > kTrunkStrippedPerPacketBytes
                                      ? inner.size_bytes - kTrunkStrippedPerPacketBytes
                                      : 0;
    app_bytes += kTrunkMiniHeaderBytes + carried;
  }
  return wire_size(app_bytes);
}

/// Applies `remap` to every aggregated frame (cross-shard NodeId
/// translation). Copy-on-write: the shell's payload may still be referenced
/// on the sending shard. No-op for non-trunk packets.
template <typename Fn>
void remap_trunk_frames(Packet& shell, Fn&& remap) {
  const auto* trunk = shell.payload_as<TrunkPayload>();
  if (trunk == nullptr) return;
  auto copy = std::make_shared<TrunkPayload>(*trunk);
  for (Packet& inner : copy->frames) remap(inner);
  shell.payload = std::move(copy);
}

}  // namespace pbxcap::net
