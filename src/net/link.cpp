#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/network.hpp"
#include "net/trunk.hpp"
#include "sim/profile.hpp"

namespace pbxcap::net {
namespace {

/// Profiling category for a packet's wire events: signalling vs media.
/// kOther keeps the scheduler's inherited category.
std::uint8_t wire_category(const Packet& pkt, const sim::Simulator& sim) noexcept {
  switch (pkt.kind) {
    case PacketKind::kSip: return sim::category_id(sim::Category::kSip);
    case PacketKind::kRtp:
    case PacketKind::kRtcp:
    case PacketKind::kTrunk: return sim::category_id(sim::Category::kRtpPacket);
    case PacketKind::kOther: break;
  }
  return sim.category();
}

}  // namespace

Link::Link(Network& network, NodeId a, NodeId b, const LinkConfig& config)
    : network_{network}, a_{a}, b_{b}, config_{config} {
  if (a == b) throw std::invalid_argument{"Link: endpoints must differ"};
  if (config.bandwidth_bps <= 0.0) throw std::invalid_argument{"Link: bandwidth must be positive"};
  if (config.queue_limit_packets == 0) {
    throw std::invalid_argument{"Link: queue limit must be at least 1"};
  }
}

void Link::apply_impairment(const LinkImpairment& impairment) {
  // Fired before validation and mutation: listeners must observe (and flush
  // any fast-forwarded media under) the pre-change link behaviour.
  if (pre_change_) pre_change_();
  if (impairment.bandwidth_bps && *impairment.bandwidth_bps <= 0.0) {
    throw std::invalid_argument{"Link: impairment bandwidth must be positive"};
  }
  if (impairment.queue_limit_packets && *impairment.queue_limit_packets == 0) {
    throw std::invalid_argument{"Link: impairment queue limit must be at least 1"};
  }
  if (impairment.loss_probability &&
      (*impairment.loss_probability < 0.0 || *impairment.loss_probability > 1.0)) {
    throw std::invalid_argument{"Link: impairment loss probability must be in [0, 1]"};
  }
  if (impairment.loss_probability) config_.loss_probability = *impairment.loss_probability;
  if (impairment.bandwidth_bps) config_.bandwidth_bps = *impairment.bandwidth_bps;
  if (impairment.propagation) config_.propagation = *impairment.propagation;
  if (impairment.jitter_mean) config_.jitter_mean = *impairment.jitter_mean;
  if (impairment.jitter_stddev) config_.jitter_stddev = *impairment.jitter_stddev;
  if (impairment.queue_limit_packets) config_.queue_limit_packets = *impairment.queue_limit_packets;
  if (impairment.blackout) blackout_ = *impairment.blackout;
}

Link::Direction& Link::direction_from(NodeId from) {
  if (from == a_) return directions_[0];
  if (from == b_) return directions_[1];
  throw std::invalid_argument{"Link: node is not an endpoint"};
}

std::uint32_t Link::backlog_from(NodeId from) const {
  if (from == a_) return directions_[0].backlog;
  if (from == b_) return directions_[1].backlog;
  throw std::invalid_argument{"Link: node is not an endpoint"};
}

const LinkDirectionStats& Link::stats_from(NodeId from) const {
  if (from == a_) return directions_[0].stats;
  if (from == b_) return directions_[1].stats;
  throw std::invalid_argument{"Link: node is not an endpoint"};
}

double Link::utilization_from(NodeId from, TimePoint now) const {
  const auto& stats = stats_from(from);
  const double elapsed = now.to_seconds();
  return elapsed <= 0.0 ? 0.0 : std::min(1.0, stats.busy_time.to_seconds() / elapsed);
}

void Link::transmit_batch(NodeId from, Packet pkt) {
  // Fluid fast path: the batch stands for `pkt.batch` packets whose nominal
  // departures are already in the past (the fluid engine only flushes due
  // traffic) over a steady-state link (no loss, no jitter, backlog below the
  // near-saturation threshold — the engine's entry conditions). Each packet
  // would have serialized on an otherwise idle medium, so the per-packet
  // latency is the nominal tx_time + propagation; stats accrue exactly as
  // per-packet mode would have accrued them, and delivery happens inline on
  // the flush call stack — no simulator events, no busy_until/backlog churn.
  Direction& dir = direction_from(from);
  const NodeId to = peer_of(from);
  if (blackout_) {
    dir.stats.dropped_impairment += pkt.batch;
    return;
  }
  const auto n = static_cast<std::uint64_t>(pkt.batch);
  const Duration tx_time =
      Duration::from_seconds(static_cast<double>(pkt.size_bytes) * 8.0 / config_.bandwidth_bps);
  dir.stats.busy_time += tx_time * static_cast<std::int64_t>(n);
  dir.stats.packets_sent += n;
  dir.stats.bytes_sent += static_cast<std::uint64_t>(pkt.size_bytes) * n;
  add_batch_latency(pkt, tx_time + config_.propagation);
  if (network_.is_remote(to)) {
    // Cross-shard batch: the nominal per-packet timing is already in the
    // payload; the executor clamps the hand-off to its next window so the
    // destination shard never sees it in its past.
    network_.deliver_remote(std::move(pkt), from, to, network_.simulator().now());
    return;
  }
  network_.deliver(pkt, from, to);
}

void Link::transmit(NodeId from, Packet pkt) {
  if (pkt.fluid) {
    transmit_batch(from, std::move(pkt));
    return;
  }
  // IAX2-style trunking: hold per-packet media for the window flush. Only
  // RTP rides the trunk (RFC 5456 mini-frames carry media; signalling and
  // RTCP keep their own datagrams), and fluid batches were already diverted
  // above — trunking aggregates the packet-mode residue of hybrid runs.
  if (config_.trunk_window > Duration::zero() && pkt.kind == PacketKind::kRtp) {
    enqueue_trunk(from, std::move(pkt));
    return;
  }
  transmit_now(from, std::move(pkt));
}

void Link::enqueue_trunk(NodeId from, Packet pkt) {
  Direction& dir = direction_from(from);
  dir.trunk_pending.push_back(std::move(pkt));
  if (dir.trunk_flush_scheduled) return;
  dir.trunk_flush_scheduled = true;
  auto& sim = network_.simulator();
  // Flush on the next boundary of the absolute trunk-window grid, not
  // now + window: the flush schedule then depends only on the clock, never
  // on which packet happened to arrive first — the property that keeps
  // sharded runs byte-identical at any worker count.
  const std::int64_t window = config_.trunk_window.ns();
  const TimePoint flush_at =
      TimePoint::origin() + Duration::nanos(((sim.now().ns() / window) + 1) * window);
  const sim::Simulator::CategoryScope cat_scope{
      sim, sim::category_id(sim::Category::kRtpPacket)};
  auto flush = [this, from] { flush_trunk(from); };
  static_assert(sim::Callback::stores_inline<decltype(flush)>(),
                "trunk flush closure must stay on the allocation-free SBO path");
  sim.schedule_at(flush_at, std::move(flush));
}

void Link::flush_trunk(NodeId from) {
  Direction& dir = direction_from(from);
  dir.trunk_flush_scheduled = false;
  if (dir.trunk_pending.empty()) return;
  auto payload = std::make_shared<TrunkPayload>();
  payload->frames = std::move(dir.trunk_pending);
  dir.trunk_pending.clear();  // moved-from: restore a known-empty queue
  dir.stats.trunk_frames += 1;
  dir.stats.trunk_mini_frames += payload->frames.size();
  Packet shell;
  shell.id = network_.next_packet_id();
  shell.src = from;
  shell.dst = peer_of(from);
  shell.kind = PacketKind::kTrunk;
  shell.size_bytes = trunk_wire_size(payload->frames);
  shell.sent_at = network_.simulator().now();
  shell.payload = std::move(payload);
  // The shell is one wire frame: it queues, serializes, and is lost or
  // jittered as a unit (losing it loses every call's frame for this window,
  // exactly like a real trunk datagram).
  transmit_now(from, std::move(shell));
}

void Link::transmit_now(NodeId from, Packet pkt) {
  Direction& dir = direction_from(from);
  const NodeId to = peer_of(from);
  auto& sim = network_.simulator();
  const TimePoint now = sim.now();

  // Injected blackout: the segment is down; every frame offered to it dies.
  // Counted per direction so the loss is visible in the stats (and in the
  // telemetry counters the testbed mirrors them into), not silent.
  if (blackout_) {
    ++dir.stats.dropped_impairment;
    return;
  }

  // Drop-tail: refuse the packet if the serialization backlog is full.
  if (dir.backlog >= config_.queue_limit_packets) {
    ++dir.stats.dropped_queue_full;
    return;
  }

  const Duration tx_time =
      Duration::from_seconds(static_cast<double>(pkt.size_bytes) * 8.0 / config_.bandwidth_bps);
  const TimePoint start = std::max(now, dir.busy_until);
  const TimePoint serialized = start + tx_time;
  dir.busy_until = serialized;
  ++dir.backlog;
  dir.stats.busy_time += tx_time;

  // Random loss still consumes the medium (the frame is sent, then lost),
  // so it is decided after serialization accounting.
  const bool lost = config_.loss_probability > 0.0 &&
                    network_.impairment_rng().chance(config_.loss_probability);

  Duration extra = Duration::zero();
  if (config_.jitter_stddev > Duration::zero() || config_.jitter_mean > Duration::zero()) {
    const double jitter_s =
        network_.impairment_rng().normal(config_.jitter_mean.to_seconds(),
                                         config_.jitter_stddev.to_seconds());
    extra = Duration::from_seconds(std::max(0.0, jitter_s));
  }

  const TimePoint delivery = serialized + config_.propagation + extra;
  // Wire events (backlog drain + delivery) are attributed by packet kind, so
  // the profiler splits link traffic into signalling vs media regardless of
  // which subsystem's callback sent the packet.
  const sim::Simulator::CategoryScope cat_scope{sim, wire_category(pkt, sim)};
  auto drain = [this, from] { --direction_from(from).backlog; };
  static_assert(sim::Callback::stores_inline<decltype(drain)>(),
                "backlog drain closure must stay on the allocation-free SBO path");
  sim.schedule_at(serialized, std::move(drain));

  if (lost) {
    ++dir.stats.dropped_random_loss;
    return;
  }

  ++dir.stats.packets_sent;
  dir.stats.bytes_sent += pkt.size_bytes;
  if (network_.is_remote(to)) {
    // Cross-shard endpoint: the delivery becomes a timestamped message for
    // the peer shard instead of a local event. Queueing, serialization,
    // loss, and jitter above are all decided on this side — the remote half
    // only runs the receiver — so the stats stay identical to a local hop.
    network_.deliver_remote(std::move(pkt), from, to, delivery);
    return;
  }
  auto deliver = [this, from, to, pkt = std::move(pkt)]() mutable {
    network_.deliver(pkt, from, to);
  };
  // Fired once per packet at Table-I scale (~100 pkt/s per call direction):
  // the capture must fit sim::Callback's inline buffer or every RTP packet
  // pays a heap allocation. Packet is 48 bytes; this capture is exactly 64.
  static_assert(sim::Callback::stores_inline<decltype(deliver)>(),
                "per-packet delivery closure must stay on the allocation-free SBO path");
  sim.schedule_at(delivery, std::move(deliver));
}

}  // namespace pbxcap::net
