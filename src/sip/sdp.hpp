// Minimal SDP (RFC 4566 subset) for codec negotiation in INVITE/200 bodies.
//
// The paper's calls negotiate G.711 ulaw; SDP is included so (a) INVITE and
// 200 OK wire sizes are realistic and (b) the PBX can perform the offer/
// answer codec selection Asterisk does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pbxcap::sip {

struct SdpMedia {
  std::uint16_t rtp_port{0};
  std::vector<std::uint8_t> payload_types;  // RFC 3551 static types (0 = PCMU)
  std::uint32_t ssrc{0};  // RFC 5576 a=ssrc announcement; 0 = unannounced
};

struct Sdp {
  std::string origin_user{"pbxcap"};
  std::string connection_host;
  SdpMedia audio;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Sdp> parse(std::string_view text);

  /// Offer/answer: first payload type present in both lists, in the offerer's
  /// preference order. nullopt when there is no common codec.
  [[nodiscard]] static std::optional<std::uint8_t> negotiate(const Sdp& offer,
                                                             const Sdp& answer);
};

}  // namespace pbxcap::sip
