// SIP dialog state (RFC 3261 §12, subset).
//
// Tracks the established-call identifiers (Call-ID, local/remote tags and
// URIs, CSeq counters) so endpoints can issue correct in-dialog requests
// (the ACK for a 2xx and the BYE/200 teardown of Fig. 2).
#pragma once

#include <cstdint>
#include <string>

#include "sip/message.hpp"

namespace pbxcap::sip {

class Dialog {
 public:
  Dialog() = default;

  /// Dialog as seen by the caller once the 2xx arrives.
  [[nodiscard]] static Dialog from_uac(const Message& invite, const Message& final_2xx);
  /// Dialog as seen by the callee once it sends the 2xx.
  [[nodiscard]] static Dialog from_uas(const Message& invite, const Message& sent_2xx);

  /// Builds an in-dialog request (BYE, INFO, re-INVITE). Increments the
  /// local CSeq. Caller adds a fresh Via branch before sending.
  [[nodiscard]] Message make_request(Method method);

  /// Builds the end-to-end ACK for the 2xx (CSeq number of the INVITE).
  [[nodiscard]] Message make_ack();

  [[nodiscard]] const std::string& call_id() const noexcept { return call_id_; }
  [[nodiscard]] const NameAddr& local() const noexcept { return local_; }
  [[nodiscard]] const NameAddr& remote() const noexcept { return remote_; }
  [[nodiscard]] const Uri& remote_target() const noexcept { return remote_target_; }
  [[nodiscard]] std::uint32_t local_cseq() const noexcept { return local_cseq_; }

  /// Dialog id for table lookup: Call-ID + local tag + remote tag.
  [[nodiscard]] std::string id() const;

  /// Lookup key a message maps to on this side ("" if the message lacks tags).
  [[nodiscard]] static std::string id_of(const Message& msg, bool local_is_from);

 private:
  std::string call_id_;
  NameAddr local_;
  NameAddr remote_;
  Uri remote_target_;
  std::uint32_t local_cseq_{0};
  std::uint32_t invite_cseq_{0};
};

}  // namespace pbxcap::sip
