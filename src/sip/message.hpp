// SIP message model (RFC 3261 subset).
//
// Messages round-trip through the textual wire format (serialize/parse in
// parse.hpp) so packet sizes on the simulated network match real SIP sizes;
// within one simulation run the parsed object is carried by shared_ptr to
// avoid re-parsing on every hop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sip/types.hpp"
#include "sip/uri.hpp"

namespace pbxcap::sip {

/// One Via hop: protocol fixed to SIP/2.0/UDP; host plus branch parameter.
struct Via {
  std::string host;
  std::string branch;  // RFC 3261 magic-cookie branches: "z9hG4bK..."

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Via> parse(std::string_view text);
  [[nodiscard]] bool operator==(const Via&) const = default;
};

/// CSeq header value.
struct CSeq {
  std::uint32_t number{0};
  Method method{Method::kUnknown};

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<CSeq> parse(std::string_view text);
  [[nodiscard]] bool operator==(const CSeq&) const = default;
};

/// Name-addr with tag parameter, as used in From/To headers:
/// "<sip:user@host>;tag=abc".
struct NameAddr {
  Uri uri;
  std::string tag;  // empty when absent

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<NameAddr> parse(std::string_view text);
  [[nodiscard]] bool operator==(const NameAddr&) const = default;
};

class Message {
 public:
  /// An empty request shell; prefer the named constructors below.
  Message() = default;

  /// Builds a request line skeleton; callers fill the standard headers.
  [[nodiscard]] static Message request(Method method, Uri request_uri);
  /// Builds a response to `req` per RFC 3261 §8.2.6 (copies Via/From/To/
  /// Call-ID/CSeq; the TU may add a To-tag afterwards).
  [[nodiscard]] static Message response_to(const Message& req, int status_code);

  [[nodiscard]] bool is_request() const noexcept { return is_request_; }
  [[nodiscard]] bool is_response() const noexcept { return !is_request_; }

  // -- request line --
  [[nodiscard]] Method method() const noexcept { return method_; }
  [[nodiscard]] const Uri& request_uri() const noexcept { return request_uri_; }

  // -- status line --
  [[nodiscard]] int status_code() const noexcept { return status_code_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

  // -- standard headers (structured access) --
  std::vector<Via>& vias() noexcept { return vias_; }
  [[nodiscard]] const std::vector<Via>& vias() const noexcept { return vias_; }
  [[nodiscard]] const Via* top_via() const noexcept { return vias_.empty() ? nullptr : &vias_.front(); }

  NameAddr& from() noexcept { return from_; }
  [[nodiscard]] const NameAddr& from() const noexcept { return from_; }
  NameAddr& to() noexcept { return to_; }
  [[nodiscard]] const NameAddr& to() const noexcept { return to_; }

  void set_call_id(std::string id) { call_id_ = std::move(id); }
  [[nodiscard]] const std::string& call_id() const noexcept { return call_id_; }

  void set_cseq(CSeq cseq) noexcept { cseq_ = cseq; }
  [[nodiscard]] const CSeq& cseq() const noexcept { return cseq_; }

  void set_max_forwards(int n) noexcept { max_forwards_ = n; }
  [[nodiscard]] int max_forwards() const noexcept { return max_forwards_; }

  void set_contact(std::optional<Uri> contact) { contact_ = std::move(contact); }
  [[nodiscard]] const std::optional<Uri>& contact() const noexcept { return contact_; }

  // -- extension headers (order-preserving, case-insensitive names) --
  void add_header(std::string name, std::string value);
  [[nodiscard]] const std::string* header(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& extra_headers()
      const noexcept {
    return extra_headers_;
  }

  // -- body --
  void set_body(std::string body, std::string content_type);
  [[nodiscard]] const std::string& body() const noexcept { return body_; }
  [[nodiscard]] const std::string& content_type() const noexcept { return content_type_; }

  /// Wire size of the serialized message in bytes. Computed on first call
  /// and cached — call it only once the message is fully built.
  [[nodiscard]] std::uint32_t wire_bytes() const;

 private:
  friend struct MessageCodec;

  bool is_request_{true};
  Method method_{Method::kUnknown};
  Uri request_uri_;
  int status_code_{0};
  std::string reason_;

  std::vector<Via> vias_;
  NameAddr from_;
  NameAddr to_;
  std::string call_id_;
  CSeq cseq_;
  int max_forwards_{70};
  std::optional<Uri> contact_;
  std::vector<std::pair<std::string, std::string>> extra_headers_;
  std::string body_;
  std::string content_type_;

  mutable std::uint32_t cached_wire_bytes_{0};
};

/// Payload wrapper that carries a parsed message through the network layer.
struct SipPayload final : net::Payload {
  explicit SipPayload(Message message) : msg{std::move(message)} {}
  Message msg;
};

}  // namespace pbxcap::sip
