#include "sip/sdp.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/strings.hpp"

namespace pbxcap::sip {

std::string Sdp::to_string() const {
  // RFC 4566 §5.14 requires at least one format on an m-line. Serializing an
  // empty list would produce "m=audio N RTP/AVP" which parse() rejects, so
  // refuse to build the asymmetric form at the source.
  assert(!audio.payload_types.empty() &&
         "SDP m-line requires at least one payload type");
  std::ostringstream os;
  os << "v=0\r\n";
  os << "o=" << origin_user << " 0 0 IN IP4 " << connection_host << "\r\n";
  os << "s=pbxcap call\r\n";
  os << "c=IN IP4 " << connection_host << "\r\n";
  os << "t=0 0\r\n";
  os << "m=audio " << audio.rtp_port << " RTP/AVP";
  for (const auto pt : audio.payload_types) os << ' ' << static_cast<int>(pt);
  os << "\r\n";
  if (audio.ssrc != 0) os << "a=ssrc:" << audio.ssrc << " cname:pbxcap\r\n";
  return os.str();
}

std::optional<Sdp> Sdp::parse(std::string_view text) {
  Sdp sdp;
  bool have_media = false;
  for (const auto raw_line : util::split(text, '\n')) {
    std::string_view line = util::trim(raw_line);
    if (line.size() < 2 || line[1] != '=') continue;
    const char type = line[0];
    const std::string_view value = line.substr(2);
    if (type == 'c') {
      // c=IN IP4 <host>
      const auto parts = util::split(value, ' ');
      if (parts.size() >= 3) sdp.connection_host = std::string{parts[2]};
    } else if (type == 'o') {
      const auto parts = util::split(value, ' ');
      if (!parts.empty()) sdp.origin_user = std::string{parts[0]};
    } else if (type == 'm') {
      // m=audio <port> RTP/AVP <pt...>
      const auto parts = util::split(value, ' ');
      if (!parts.empty() && parts[0] != "audio") continue;  // ignore non-audio
      // An audio m-line with no format list ("m=audio N RTP/AVP") violates
      // RFC 4566 §5.14 — reject it instead of silently skipping, so
      // parse(to_string(x)) can never drop media that was serialized.
      if (parts.size() < 4) return std::nullopt;
      std::uint64_t port = 0;
      if (!util::parse_u64(parts[1], port) || port > 65535) return std::nullopt;
      sdp.audio.rtp_port = static_cast<std::uint16_t>(port);
      for (std::size_t i = 3; i < parts.size(); ++i) {
        std::uint64_t pt = 0;
        if (!util::parse_u64(parts[i], pt) || pt > 127) return std::nullopt;
        sdp.audio.payload_types.push_back(static_cast<std::uint8_t>(pt));
      }
      have_media = true;
    } else if (type == 'a') {
      // a=ssrc:<n> cname:...
      if (util::starts_with_i(value, "ssrc:")) {
        const auto rest = value.substr(5);
        const auto [num, tail, split] = util::split_once(rest, ' ');
        (void)tail;
        (void)split;
        std::uint64_t ssrc = 0;
        if (util::parse_u64(num, ssrc) && ssrc <= 0xffffffffULL) {
          sdp.audio.ssrc = static_cast<std::uint32_t>(ssrc);
        }
      }
    }
  }
  if (!have_media || sdp.connection_host.empty()) return std::nullopt;
  return sdp;
}

std::optional<std::uint8_t> Sdp::negotiate(const Sdp& offer, const Sdp& answer) {
  for (const auto pt : offer.audio.payload_types) {
    if (std::find(answer.audio.payload_types.begin(), answer.audio.payload_types.end(), pt) !=
        answer.audio.payload_types.end()) {
      return pt;
    }
  }
  return std::nullopt;
}

}  // namespace pbxcap::sip
