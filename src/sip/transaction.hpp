// SIP transaction layer (RFC 3261 §17, UDP transport).
//
// Implements the four transaction state machines — INVITE/non-INVITE on the
// client and server sides — including the unreliable-transport retransmission
// timers (A/B/D client-INVITE, E/F/K client-non-INVITE, G/H/I server-INVITE,
// J server-non-INVITE). On the simulated switched LAN retransmissions are
// rare, but they fire for real under queue-overflow loss at the highest
// offered loads, exactly the regime Table I's "Error Msgs" row captures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sip/message.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace pbxcap::sip {

/// RFC 3261 timer baseline values.
struct TimerConfig {
  Duration t1{Duration::millis(500)};
  Duration t2{Duration::seconds(4)};
  Duration t4{Duration::seconds(5)};

  [[nodiscard]] Duration timer_b() const noexcept { return t1 * 64; }
  [[nodiscard]] Duration timer_d() const noexcept { return Duration::seconds(32); }
  [[nodiscard]] Duration timer_f() const noexcept { return t1 * 64; }
  [[nodiscard]] Duration timer_h() const noexcept { return t1 * 64; }
};

/// Supplies the wire: the endpoint wraps the message into a net::Packet.
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;
  virtual void send_sip(const Message& msg, net::NodeId dst) = 0;
};

class TransactionLayer;

/// Client transaction: owns request retransmission and final-response ACK
/// generation for non-2xx INVITE outcomes.
class ClientTransaction {
 public:
  enum class State { kCalling, kTrying, kProceeding, kCompleted, kTerminated };

  using ResponseHandler = std::function<void(const Message& response)>;
  using TimeoutHandler = std::function<void()>;

  [[nodiscard]] const std::string& branch() const noexcept { return branch_; }
  [[nodiscard]] Method method() const noexcept { return request_.cseq().method; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t retransmissions() const noexcept { return retransmissions_; }

 private:
  friend class TransactionLayer;
  ClientTransaction(TransactionLayer& layer, Message request, net::NodeId dst,
                    ResponseHandler on_response, TimeoutHandler on_timeout);

  void start();
  void handle_response(const Message& response);
  void retransmit();
  void fire_timeout();
  void ack_non_2xx(const Message& response);
  void terminate();

  TransactionLayer& layer_;
  Message request_;
  net::NodeId dst_;
  std::string branch_;
  State state_;
  ResponseHandler on_response_;
  TimeoutHandler on_timeout_;
  Duration retransmit_interval_;
  sim::EventId retransmit_timer_{0};
  sim::EventId timeout_timer_{0};
  std::uint32_t retransmissions_{0};
  telemetry::SpanTracer::SpanId span_{0};  // request -> final response
};

/// Server transaction: absorbs request retransmissions and re-sends the last
/// response until the transaction completes.
class ServerTransaction {
 public:
  enum class State { kTrying, kProceeding, kCompleted, kConfirmed, kTerminated };

  /// Sends a response within this transaction (TU-facing).
  void respond(const Message& response);

  [[nodiscard]] const std::string& branch() const noexcept { return branch_; }
  [[nodiscard]] Method method() const noexcept { return method_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] net::NodeId peer() const noexcept { return peer_; }

 private:
  friend class TransactionLayer;
  ServerTransaction(TransactionLayer& layer, const Message& request, net::NodeId peer);

  void handle_retransmission();
  void handle_ack();
  void retransmit_response();
  void terminate();

  TransactionLayer& layer_;
  std::string branch_;
  Method method_;
  net::NodeId peer_;
  State state_;
  std::unique_ptr<Message> last_response_;
  Duration retransmit_interval_;
  sim::EventId retransmit_timer_{0};
  sim::EventId timeout_timer_{0};
  telemetry::SpanTracer::SpanId span_{0};  // request -> final response sent
};

/// Per-endpoint transaction manager.
class TransactionLayer {
 public:
  TransactionLayer(sim::Simulator& simulator, Transport& transport, std::string local_host,
                   TimerConfig timers = {});

  TransactionLayer(const TransactionLayer&) = delete;
  TransactionLayer& operator=(const TransactionLayer&) = delete;

  // ---- TU-facing API ----

  /// Sends `request` (which must carry a top Via with a fresh branch — use
  /// new_branch()) and runs the matching client state machine.
  ClientTransaction& send_request(Message request, net::NodeId dst,
                                  ClientTransaction::ResponseHandler on_response,
                                  ClientTransaction::TimeoutHandler on_timeout = {});

  /// Sends a message outside any transaction (ACK for a 2xx response).
  void send_stateless(const Message& msg, net::NodeId dst);

  /// Entry point for every SIP message the endpoint receives.
  void on_message(const Message& msg, net::NodeId from);

  /// Allocates an RFC 3261 branch token (magic cookie + unique suffix).
  [[nodiscard]] std::string new_branch();

  /// True when `request` matches a live server transaction — i.e. it is a
  /// retransmission the state machine will absorb, not new work. Lets
  /// front-door admission logic (overload gates) wave retransmissions
  /// through instead of answering them out of band.
  [[nodiscard]] bool matches_server_transaction(const Message& request) const;

  /// Silently terminates every active transaction — the state loss of a
  /// process crash. No timeout/response handlers fire; in-flight responses
  /// arriving afterwards fall through to on_stray_response.
  void reset();

  // ---- TU upcalls ----
  /// New (non-retransmitted) request other than a 2xx ACK.
  std::function<void(const Message& request, ServerTransaction& txn)> on_request;
  /// ACK for a 2xx final (end-to-end, not part of the INVITE transaction).
  std::function<void(const Message& ack)> on_ack;
  /// Response that matched no client transaction (late retransmission, ...).
  std::function<void(const Message& response)> on_stray_response;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] Transport& transport() noexcept { return transport_; }
  [[nodiscard]] const TimerConfig& timers() const noexcept { return timers_; }
  [[nodiscard]] const std::string& local_host() const noexcept { return local_host_; }

  [[nodiscard]] std::size_t active_client_transactions() const noexcept { return clients_.size(); }
  [[nodiscard]] std::size_t active_server_transactions() const noexcept { return servers_.size(); }
  [[nodiscard]] std::uint64_t total_retransmissions() const noexcept { return retransmissions_; }
  void note_retransmission() noexcept {
    ++retransmissions_;
    if (tm_retransmissions_ != nullptr) tm_retransmissions_->add();
  }

  /// Registers transaction counters and per-transaction span tracing.
  /// nullptr (or a disabled Telemetry) clears every handle, so each
  /// instrumentation site is a single predictable null-pointer branch.
  void set_telemetry(telemetry::Telemetry* tel);

 private:
  friend class ClientTransaction;
  friend class ServerTransaction;

  static std::string client_key(const std::string& branch, Method method);
  void remove_client(const std::string& key);
  void remove_server(const std::string& key);

  sim::Simulator& simulator_;
  Transport& transport_;
  std::string local_host_;
  TimerConfig timers_;
  std::unordered_map<std::string, std::unique_ptr<ClientTransaction>> clients_;
  std::unordered_map<std::string, std::unique_ptr<ServerTransaction>> servers_;
  std::uint64_t branch_counter_{0};
  std::uint64_t retransmissions_{0};

  // Telemetry handles; null when telemetry is absent or disabled.
  telemetry::Counter* tm_client_started_{nullptr};
  telemetry::Counter* tm_server_started_{nullptr};
  telemetry::Counter* tm_retransmissions_{nullptr};
  telemetry::Counter* tm_timeouts_{nullptr};
  telemetry::SpanTracer* tracer_{nullptr};
};

}  // namespace pbxcap::sip
