#include "sip/uri.hpp"

#include "util/strings.hpp"

namespace pbxcap::sip {

std::string Uri::to_string() const {
  std::string out = "sip:";
  if (!user_.empty()) {
    out += user_;
    out += '@';
  }
  out += host_;
  if (port_ != 5060) {
    out += ':';
    out += std::to_string(port_);
  }
  return out;
}

std::optional<Uri> Uri::parse(std::string_view text) {
  using util::parse_u64;
  using util::starts_with_i;
  text = util::trim(text);
  if (!starts_with_i(text, "sip:")) return std::nullopt;
  text.remove_prefix(4);
  if (text.empty()) return std::nullopt;

  std::string user;
  if (const auto at = text.find('@'); at != std::string_view::npos) {
    user = std::string{text.substr(0, at)};
    if (user.empty()) return std::nullopt;
    text.remove_prefix(at + 1);
  }

  std::uint16_t port = 5060;
  std::string_view host = text;
  if (const auto colon = text.rfind(':'); colon != std::string_view::npos) {
    std::uint64_t p = 0;
    if (!parse_u64(text.substr(colon + 1), p) || p == 0 || p > 65535) return std::nullopt;
    port = static_cast<std::uint16_t>(p);
    host = text.substr(0, colon);
  }
  if (host.empty()) return std::nullopt;
  return Uri{std::move(user), std::string{host}, port};
}

}  // namespace pbxcap::sip
