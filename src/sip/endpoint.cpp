#include "sip/endpoint.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::sip {

SipEndpoint::SipEndpoint(std::string node_name, std::string host, sim::Simulator& simulator,
                         HostResolver& resolver)
    : net::Node{std::move(node_name)},
      host_{std::move(host)},
      resolver_{resolver},
      layer_{simulator, *this, host_} {}

void SipEndpoint::bind() {
  if (network() == nullptr) throw std::logic_error{"SipEndpoint::bind: attach to a network first"};
  resolver_.add(host_, id());
}

void SipEndpoint::set_telemetry(telemetry::Telemetry* tel) {
  layer_.set_telemetry(tel);
  tm_sent_ = tm_received_ = nullptr;
  if (tel == nullptr || !tel->enabled()) return;
  auto& reg = tel->registry();
  tm_sent_ = &reg.counter("pbxcap_sip_messages_total", {{"host", host_}, {"direction", "tx"}},
                          "SIP messages sent/received at each endpoint");
  tm_received_ =
      &reg.counter("pbxcap_sip_messages_total", {{"host", host_}, {"direction", "rx"}});
}

std::string SipEndpoint::new_tag() {
  return util::format("%s-tag%llu", host_.c_str(), static_cast<unsigned long long>(++tag_counter_));
}

void SipEndpoint::send_sip(const Message& msg, net::NodeId dst) {
  if (dst == net::kInvalidNode) {
    util::log_warn("sip", "dropping message to unresolved destination");
    return;
  }
  ++sent_;
  if (tm_sent_ != nullptr) tm_sent_->add();
  net::Packet pkt;
  pkt.dst = dst;
  pkt.kind = net::PacketKind::kSip;
  pkt.size_bytes = net::wire_size(msg.wire_bytes());
  pkt.payload = std::make_shared<SipPayload>(msg);
  send(std::move(pkt));
}

void SipEndpoint::on_receive(const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::kSip) return;
  const auto* payload = pkt.payload_as<SipPayload>();
  if (payload == nullptr) {
    util::log_warn("sip", "SIP packet without SipPayload");
    return;
  }
  ++received_;
  if (tm_received_ != nullptr) tm_received_->add();
  layer_.on_message(payload->msg, pkt.src);
}

ClientTransaction& SipEndpoint::send_request_to(Message msg, const std::string& dst_host,
                                                ClientTransaction::ResponseHandler on_response,
                                                ClientTransaction::TimeoutHandler on_timeout) {
  const net::NodeId dst = resolver_.resolve(dst_host);
  if (dst == net::kInvalidNode) {
    throw std::invalid_argument{"send_request_to: unknown host " + dst_host};
  }
  msg.vias().insert(msg.vias().begin(), Via{host_, layer_.new_branch()});
  return layer_.send_request(std::move(msg), dst, std::move(on_response), std::move(on_timeout));
}

void SipEndpoint::send_stateless_to(Message msg, const std::string& dst_host) {
  const net::NodeId dst = resolver_.resolve(dst_host);
  if (dst == net::kInvalidNode) {
    util::log_warn("sip", "send_stateless_to: unknown host " + dst_host);
    return;
  }
  msg.vias().insert(msg.vias().begin(), Via{host_, layer_.new_branch()});
  layer_.send_stateless(msg, dst);
}

}  // namespace pbxcap::sip
