// SIP wire-format serializer and parser.
//
// Implements enough of the RFC 3261 grammar to round-trip every message the
// testbed generates: request/status lines, the structured headers the stack
// uses (Via, From, To, Call-ID, CSeq, Max-Forwards, Contact, Content-Type,
// Content-Length), arbitrary extension headers, and a body.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sip/message.hpp"

namespace pbxcap::sip {

struct ParseResult {
  std::optional<Message> message;
  std::string error;  // non-empty iff message is nullopt

  [[nodiscard]] bool ok() const noexcept { return message.has_value(); }
};

/// Renders the message in SIP/2.0 textual form (CRLF line endings,
/// Content-Length always emitted).
[[nodiscard]] std::string serialize(const Message& msg);

/// Parses a full SIP message. Strict on structure (start line, mandatory
/// headers present and well-formed), lenient on unknown headers.
[[nodiscard]] ParseResult parse_message(std::string_view text);

}  // namespace pbxcap::sip
