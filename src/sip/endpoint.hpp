// SIP endpoint: binds a TransactionLayer to a network Node.
//
// Everything that speaks SIP in the testbed (the SIPp-like caller/receiver
// hosts and the Asterisk-like PBX) derives from SipEndpoint, which handles
// wire encapsulation, name resolution, and transaction dispatch.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "net/node.hpp"
#include "sip/message.hpp"
#include "sip/transaction.hpp"

namespace pbxcap::sip {

/// Maps SIP host names to network node ids (the testbed's stand-in for DNS).
class HostResolver {
 public:
  void add(const std::string& host, net::NodeId id) { hosts_[host] = id; }

  [[nodiscard]] net::NodeId resolve(const std::string& host) const {
    const auto it = hosts_.find(host);
    return it == hosts_.end() ? net::kInvalidNode : it->second;
  }

 private:
  std::unordered_map<std::string, net::NodeId> hosts_;
};

class SipEndpoint : public net::Node, public Transport {
 public:
  /// `host` is the endpoint's SIP-layer name, e.g. "pbx.unb.br"; register it
  /// with the resolver after attaching to the network (see bind()).
  SipEndpoint(std::string node_name, std::string host, sim::Simulator& simulator,
              HostResolver& resolver);

  /// Call after Network::attach: registers host->node-id in the resolver.
  void bind();

  // Transport: wraps the message into a SIP packet and sends it.
  // Overridable so derived endpoints can account per-message costs.
  void send_sip(const Message& msg, net::NodeId dst) override;

  // net::Node: unwraps SIP packets into the transaction layer.
  void on_receive(const net::Packet& pkt) override;

  [[nodiscard]] TransactionLayer& transactions() noexcept { return layer_; }
  [[nodiscard]] const TransactionLayer& transactions() const noexcept { return layer_; }
  [[nodiscard]] const std::string& sip_host() const noexcept { return host_; }
  [[nodiscard]] HostResolver& resolver() noexcept { return resolver_; }

  /// Registers this endpoint's metrics/spans with `tel` and forwards the
  /// sink to the transaction layer. Passing nullptr (or a Telemetry with
  /// enabled == false) detaches: every instrumentation site then costs one
  /// predictable null-handle branch. Derived endpoints extend this to
  /// register their own handles and must call the base implementation.
  virtual void set_telemetry(telemetry::Telemetry* tel);

  [[nodiscard]] std::uint64_t sip_messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t sip_messages_received() const noexcept { return received_; }

  /// Allocates a locally unique tag for From/To headers.
  [[nodiscard]] std::string new_tag();

 protected:
  /// Convenience: resolve + send a request through a new client transaction.
  /// Adds the top Via (this host, fresh branch) before handing to the layer.
  ClientTransaction& send_request_to(Message msg, const std::string& dst_host,
                                     ClientTransaction::ResponseHandler on_response,
                                     ClientTransaction::TimeoutHandler on_timeout = {});

  /// Stateless send (2xx ACKs) with Via stamping.
  void send_stateless_to(Message msg, const std::string& dst_host);

 private:
  std::string host_;
  HostResolver& resolver_;
  TransactionLayer layer_;
  std::uint64_t sent_{0};
  std::uint64_t received_{0};
  std::uint64_t tag_counter_{0};
  telemetry::Counter* tm_sent_{nullptr};
  telemetry::Counter* tm_received_{nullptr};
};

}  // namespace pbxcap::sip
