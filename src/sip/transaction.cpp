#include "sip/transaction.hpp"

#include <algorithm>

#include "sim/profile.hpp"
#include <stdexcept>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::sip {
namespace {

/// Interns a "uac:INVITE"-style span name (side prefix + method).
std::uint32_t txn_span_name(telemetry::SpanTracer& tracer, const char* side, Method method) {
  return tracer.name_id(std::string{side} + std::string{to_string(method)});
}

}  // namespace

// ---------------------------------------------------------------- layer ----

TransactionLayer::TransactionLayer(sim::Simulator& simulator, Transport& transport,
                                   std::string local_host, TimerConfig timers)
    : simulator_{simulator},
      transport_{transport},
      local_host_{std::move(local_host)},
      timers_{timers} {}

std::string TransactionLayer::new_branch() {
  return util::format("z9hG4bK-%s-%llu", local_host_.c_str(),
                      static_cast<unsigned long long>(++branch_counter_));
}

std::string TransactionLayer::client_key(const std::string& branch, Method method) {
  // ACKs for non-2xx responses share the INVITE branch; fold them together.
  const Method key_method = method == Method::kAck ? Method::kInvite : method;
  return branch + ":" + std::string{to_string(key_method)};
}

void TransactionLayer::remove_client(const std::string& key) { clients_.erase(key); }
void TransactionLayer::remove_server(const std::string& key) { servers_.erase(key); }

bool TransactionLayer::matches_server_transaction(const Message& request) const {
  if (!request.is_request() || request.top_via() == nullptr) return false;
  const std::string key =
      request.top_via()->branch + ":" + std::string{to_string(request.method())};
  return servers_.find(key) != servers_.end();
}

void TransactionLayer::reset() {
  // Crash semantics: every state machine dies silently — no timeout upcalls,
  // no final responses, timers cancelled. terminate() defers the actual map
  // removal by one zero-delay event, so iterating here is safe even though
  // each call schedules an erase.
  for (auto& [key, txn] : clients_) txn->terminate();
  for (auto& [key, txn] : servers_) txn->terminate();
}

void TransactionLayer::set_telemetry(telemetry::Telemetry* tel) {
  tm_client_started_ = tm_server_started_ = tm_retransmissions_ = tm_timeouts_ = nullptr;
  tracer_ = nullptr;
  if (tel == nullptr || !tel->enabled()) return;
  auto& reg = tel->registry();
  tm_client_started_ =
      &reg.counter("pbxcap_sip_transactions_total", {{"host", local_host_}, {"side", "client"}},
                   "SIP transactions started, by endpoint and side");
  tm_server_started_ = &reg.counter("pbxcap_sip_transactions_total",
                                    {{"host", local_host_}, {"side", "server"}});
  tm_retransmissions_ =
      &reg.counter("pbxcap_sip_retransmissions_total", {{"host", local_host_}},
                   "SIP message retransmissions (timers A/E/G + server re-sends)");
  tm_timeouts_ = &reg.counter("pbxcap_sip_transaction_timeouts_total", {{"host", local_host_}},
                              "Client transactions abandoned on timer B/F");
  tracer_ = tel->tracer();
}

ClientTransaction& TransactionLayer::send_request(
    Message request, net::NodeId dst, ClientTransaction::ResponseHandler on_response,
    ClientTransaction::TimeoutHandler on_timeout) {
  if (request.vias().empty() || request.vias().front().branch.empty()) {
    throw std::invalid_argument{"send_request: request needs a top Via with a branch"};
  }
  const std::string key = client_key(request.vias().front().branch, request.cseq().method);
  auto txn = std::unique_ptr<ClientTransaction>{new ClientTransaction{
      *this, std::move(request), dst, std::move(on_response), std::move(on_timeout)}};
  ClientTransaction& ref = *txn;
  const auto [it, inserted] = clients_.emplace(key, std::move(txn));
  if (!inserted) throw std::logic_error{"send_request: duplicate client transaction branch"};
  if (tm_client_started_ != nullptr) tm_client_started_->add();
  it->second->start();
  return ref;
}

void TransactionLayer::send_stateless(const Message& msg, net::NodeId dst) {
  transport_.send_sip(msg, dst);
}

void TransactionLayer::on_message(const Message& msg, net::NodeId from) {
  if (msg.is_response()) {
    if (msg.top_via() == nullptr) return;  // malformed; drop
    const std::string key = client_key(msg.top_via()->branch, msg.cseq().method);
    if (const auto it = clients_.find(key); it != clients_.end()) {
      it->second->handle_response(msg);
      return;
    }
    if (on_stray_response) on_stray_response(msg);
    return;
  }

  // Request path.
  if (msg.top_via() == nullptr) return;
  const std::string& branch = msg.top_via()->branch;

  if (msg.method() == Method::kAck) {
    // Matches the INVITE server transaction for non-2xx finals; otherwise it
    // is the end-to-end ACK for a 2xx and belongs to the TU.
    const std::string key = branch + ":INVITE";
    if (const auto it = servers_.find(key); it != servers_.end()) {
      it->second->handle_ack();
      return;
    }
    if (on_ack) on_ack(msg);
    return;
  }

  const std::string key = branch + ":" + std::string{to_string(msg.method())};
  if (const auto it = servers_.find(key); it != servers_.end()) {
    it->second->handle_retransmission();
    return;
  }
  auto txn = std::unique_ptr<ServerTransaction>{new ServerTransaction{*this, msg, from}};
  ServerTransaction& ref = *txn;
  servers_.emplace(key, std::move(txn));
  if (tm_server_started_ != nullptr) tm_server_started_->add();
  if (on_request) on_request(msg, ref);
}

// ----------------------------------------------------- client transaction ----

ClientTransaction::ClientTransaction(TransactionLayer& layer, Message request, net::NodeId dst,
                                     ResponseHandler on_response, TimeoutHandler on_timeout)
    : layer_{layer},
      request_{std::move(request)},
      dst_{dst},
      branch_{request_.vias().front().branch},
      state_{request_.cseq().method == Method::kInvite ? State::kCalling : State::kTrying},
      on_response_{std::move(on_response)},
      on_timeout_{std::move(on_timeout)},
      retransmit_interval_{layer.timers().t1} {}

void ClientTransaction::start() {
  layer_.transport().send_sip(request_, dst_);
  auto& sim = layer_.simulator();
  if (layer_.tracer_ != nullptr) {
    auto& tracer = *layer_.tracer_;
    span_ = tracer.begin(txn_span_name(tracer, "uac:", method()),
                         tracer.track_id(request_.call_id()), sim.now());
  }
  auto rearm = [this] { retransmit(); };
  // Timers A/B (E/F) arm on every request; [this] captures ride the
  // sim::Callback inline buffer, and the A/E retransmit timers land on the
  // timer-wheel fast path (T1 = 500 ms sits inside the level-1 window).
  static_assert(sim::Callback::stores_inline<decltype(rearm)>(),
                "SIP timer closures must stay on the allocation-free SBO path");
  const sim::CategoryScope cat_scope{sim, sim::Category::kSip};
  retransmit_timer_ = sim.schedule_in(retransmit_interval_, std::move(rearm));
  const Duration overall =
      method() == Method::kInvite ? layer_.timers().timer_b() : layer_.timers().timer_f();
  timeout_timer_ = sim.schedule_in(overall, [this] { fire_timeout(); });
}

void ClientTransaction::retransmit() {
  // Timer A fires only while Calling — a provisional moves an INVITE to
  // Proceeding and stops request retransmissions (§17.1.1.2). Timer E keeps
  // firing in Proceeding too: a non-INVITE request must be retransmitted
  // until a *final* response arrives (§17.1.2.2), just pinned at T2.
  const bool invite = method() == Method::kInvite;
  const bool armed = invite ? state_ == State::kCalling
                            : state_ == State::kTrying || state_ == State::kProceeding;
  if (!armed) return;
  ++retransmissions_;
  layer_.note_retransmission();
  layer_.transport().send_sip(request_, dst_);
  if (invite) {
    // Timer A doubles unboundedly until Timer B ends the transaction.
    retransmit_interval_ = retransmit_interval_ * 2;
  } else if (state_ == State::kProceeding) {
    retransmit_interval_ = layer_.timers().t2;
  } else {
    // Timer E doubles capped at T2.
    retransmit_interval_ = std::min(retransmit_interval_ * 2, layer_.timers().t2);
  }
  const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
  retransmit_timer_ = layer_.simulator().schedule_in(retransmit_interval_, [this] { retransmit(); });
}

void ClientTransaction::fire_timeout() {
  // Timer B applies only while Calling (RFC 3261 §17.1.1.2): once a
  // provisional arrives, an INVITE waits indefinitely (the TU may apply its
  // own Timer C). Timer F for non-INVITE fires in Trying or Proceeding.
  const bool applies = method() == Method::kInvite
                           ? state_ == State::kCalling
                           : state_ == State::kTrying || state_ == State::kProceeding;
  if (!applies) return;
  if (layer_.tm_timeouts_ != nullptr) layer_.tm_timeouts_->add();
  if (layer_.tracer_ != nullptr) {
    layer_.tracer_->end(span_, layer_.simulator().now());
    span_ = 0;
  }
  if (on_timeout_) on_timeout_();
  terminate();
}

void ClientTransaction::ack_non_2xx(const Message& response) {
  // RFC 3261 §17.1.1.3: ACK reuses the INVITE's Request-URI, branch and CSeq
  // number, takes the To from the response (it carries the remote tag).
  Message ack = Message::request(Method::kAck, request_.request_uri());
  ack.vias() = request_.vias();
  ack.from() = request_.from();
  ack.to() = response.to();
  ack.set_call_id(request_.call_id());
  ack.set_cseq({request_.cseq().number, Method::kAck});
  layer_.transport().send_sip(ack, dst_);
}

void ClientTransaction::handle_response(const Message& response) {
  if (state_ == State::kTerminated) return;
  const int code = response.status_code();

  if (is_provisional(code)) {
    if (state_ == State::kCalling || state_ == State::kTrying) state_ = State::kProceeding;
    if (on_response_) on_response_(response);
    return;
  }

  if (state_ == State::kCompleted) {
    // Retransmitted final: re-ACK (INVITE) without re-notifying the TU.
    if (method() == Method::kInvite && !is_success(code)) ack_non_2xx(response);
    return;
  }

  // Final response reached the TU: the measured transaction span ends here,
  // not at terminate() — timers D/K absorb retransmissions and would inflate
  // the visible duration by tens of seconds.
  if (layer_.tracer_ != nullptr) {
    layer_.tracer_->end(span_, layer_.simulator().now());
    span_ = 0;
  }
  if (method() == Method::kInvite && !is_success(code)) ack_non_2xx(response);
  if (on_response_) on_response_(response);

  if (method() == Method::kInvite && !is_success(code)) {
    // Absorb retransmitted finals for timer D.
    state_ = State::kCompleted;
    layer_.simulator().cancel(retransmit_timer_);
    layer_.simulator().cancel(timeout_timer_);
    const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
    timeout_timer_ =
        layer_.simulator().schedule_in(layer_.timers().timer_d(), [this] { terminate(); });
    return;
  }
  if (method() != Method::kInvite) {
    // Timer K (T4) absorbs retransmitted finals for non-INVITE.
    state_ = State::kCompleted;
    layer_.simulator().cancel(retransmit_timer_);
    layer_.simulator().cancel(timeout_timer_);
    const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
    timeout_timer_ = layer_.simulator().schedule_in(layer_.timers().t4, [this] { terminate(); });
    return;
  }
  // INVITE 2xx: the transaction ends at once; the TU/dialog layer ACKs.
  terminate();
}

void ClientTransaction::terminate() {
  if (state_ == State::kTerminated) return;
  state_ = State::kTerminated;
  layer_.simulator().cancel(retransmit_timer_);
  layer_.simulator().cancel(timeout_timer_);
  const std::string key = TransactionLayer::client_key(branch_, method());
  // Deferred removal: destroying *this synchronously would free the frame
  // the caller is still executing in.
  const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
  layer_.simulator().schedule_in(Duration::zero(), [&layer = layer_, key] {
    layer.remove_client(key);
  });
}

// ----------------------------------------------------- server transaction ----

ServerTransaction::ServerTransaction(TransactionLayer& layer, const Message& request,
                                     net::NodeId peer)
    : layer_{layer},
      branch_{request.top_via()->branch},
      method_{request.method()},
      peer_{peer},
      state_{method_ == Method::kInvite ? State::kProceeding : State::kTrying},
      retransmit_interval_{layer.timers().t1} {
  if (layer_.tracer_ != nullptr) {
    auto& tracer = *layer_.tracer_;
    span_ = tracer.begin(txn_span_name(tracer, "uas:", method_),
                         tracer.track_id(request.call_id()), layer_.simulator().now());
  }
}

void ServerTransaction::respond(const Message& response) {
  if (state_ == State::kTerminated) {
    util::log_warn("sip", "respond() on terminated server transaction");
    return;
  }
  last_response_ = std::make_unique<Message>(response);
  layer_.transport().send_sip(response, peer_);
  const int code = response.status_code();
  if (is_provisional(code)) {
    state_ = State::kProceeding;
    return;
  }
  if (layer_.tracer_ != nullptr) {
    layer_.tracer_->end(span_, layer_.simulator().now());
    span_ = 0;
  }
  if (method_ == Method::kInvite) {
    if (is_success(code)) {
      // 2xx: retransmission responsibility moves to the TU; terminate.
      terminate();
      return;
    }
    // Non-2xx final: timer G retransmits until ACK; timer H gives up.
    state_ = State::kCompleted;
    const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
    retransmit_timer_ =
        layer_.simulator().schedule_in(retransmit_interval_, [this] { retransmit_response(); });
    timeout_timer_ =
        layer_.simulator().schedule_in(layer_.timers().timer_h(), [this] { terminate(); });
    return;
  }
  // Non-INVITE final: timer J absorbs request retransmissions.
  state_ = State::kCompleted;
  {
    const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
    timeout_timer_ =
        layer_.simulator().schedule_in(layer_.timers().timer_f(), [this] { terminate(); });
  }
}

void ServerTransaction::retransmit_response() {
  if (state_ != State::kCompleted || last_response_ == nullptr) return;
  layer_.note_retransmission();
  layer_.transport().send_sip(*last_response_, peer_);
  retransmit_interval_ = retransmit_interval_ * 2;
  if (retransmit_interval_ > layer_.timers().t2) retransmit_interval_ = layer_.timers().t2;
  const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
  retransmit_timer_ =
      layer_.simulator().schedule_in(retransmit_interval_, [this] { retransmit_response(); });
}

void ServerTransaction::handle_retransmission() {
  if (state_ == State::kTerminated) return;
  if (last_response_ != nullptr) {
    layer_.note_retransmission();
    layer_.transport().send_sip(*last_response_, peer_);
  }
}

void ServerTransaction::handle_ack() {
  if (state_ != State::kCompleted) return;
  // Timer I: brief absorb window for ACK retransmissions, then terminate.
  state_ = State::kConfirmed;
  layer_.simulator().cancel(retransmit_timer_);
  layer_.simulator().cancel(timeout_timer_);
  const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
  timeout_timer_ = layer_.simulator().schedule_in(layer_.timers().t4, [this] { terminate(); });
}

void ServerTransaction::terminate() {
  if (state_ == State::kTerminated) return;
  state_ = State::kTerminated;
  layer_.simulator().cancel(retransmit_timer_);
  layer_.simulator().cancel(timeout_timer_);
  const std::string key = branch_ + ":" + std::string{to_string(method_)};
  const sim::CategoryScope cat_scope{layer_.simulator(), sim::Category::kSip};
  layer_.simulator().schedule_in(Duration::zero(), [&layer = layer_, key] {
    layer.remove_server(key);
  });
}

}  // namespace pbxcap::sip
