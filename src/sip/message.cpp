#include "sip/message.hpp"

#include "sip/parse.hpp"
#include "util/strings.hpp"

namespace pbxcap::sip {

std::string Via::to_string() const {
  std::string out = "SIP/2.0/UDP " + host;
  if (!branch.empty()) out += ";branch=" + branch;
  return out;
}

std::optional<Via> Via::parse(std::string_view text) {
  text = util::trim(text);
  if (!util::starts_with_i(text, "SIP/2.0/UDP ")) return std::nullopt;
  text.remove_prefix(12);
  Via via;
  const auto [host_part, params, has_params] = util::split_once(text, ';');
  via.host = std::string{util::trim(host_part)};
  if (via.host.empty()) return std::nullopt;
  if (has_params) {
    for (const auto param : util::split(params, ';')) {
      const auto [name, value, has_value] = util::split_once(util::trim(param), '=');
      if (has_value && util::iequals(util::trim(name), "branch")) {
        via.branch = std::string{util::trim(value)};
      }
    }
  }
  return via;
}

std::string CSeq::to_string() const {
  return std::to_string(number) + " " + std::string{sip::to_string(method)};
}

std::optional<CSeq> CSeq::parse(std::string_view text) {
  const auto [num_part, method_part, has_method] = util::split_once(util::trim(text), ' ');
  if (!has_method) return std::nullopt;
  std::uint64_t n = 0;
  if (!util::parse_u64(util::trim(num_part), n) || n > UINT32_MAX) return std::nullopt;
  const Method m = method_from_string(util::trim(method_part));
  if (m == Method::kUnknown) return std::nullopt;
  return CSeq{static_cast<std::uint32_t>(n), m};
}

std::string NameAddr::to_string() const {
  std::string out = "<" + uri.to_string() + ">";
  if (!tag.empty()) out += ";tag=" + tag;
  return out;
}

std::optional<NameAddr> NameAddr::parse(std::string_view text) {
  text = util::trim(text);
  NameAddr out;
  std::string_view uri_part = text;
  std::string_view params;
  if (!text.empty() && text.front() == '<') {
    const auto close = text.find('>');
    if (close == std::string_view::npos) return std::nullopt;
    uri_part = text.substr(1, close - 1);
    params = text.substr(close + 1);
  } else {
    // Bare URI form: params begin at the first semicolon.
    const auto semi = text.find(';');
    if (semi != std::string_view::npos) {
      uri_part = text.substr(0, semi);
      params = text.substr(semi);
    }
  }
  const auto uri = Uri::parse(uri_part);
  if (!uri) return std::nullopt;
  out.uri = *uri;
  for (const auto param : util::split(params, ';')) {
    const auto [name, value, has_value] = util::split_once(util::trim(param), '=');
    if (has_value && util::iequals(util::trim(name), "tag")) {
      out.tag = std::string{util::trim(value)};
    }
  }
  return out;
}

Message Message::request(Method method, Uri request_uri) {
  Message msg;
  msg.is_request_ = true;
  msg.method_ = method;
  msg.request_uri_ = std::move(request_uri);
  return msg;
}

Message Message::response_to(const Message& req, int status_code) {
  Message msg;
  msg.is_request_ = false;
  msg.status_code_ = status_code;
  msg.reason_ = std::string{reason_phrase(status_code)};
  msg.vias_ = req.vias_;
  msg.from_ = req.from_;
  msg.to_ = req.to_;
  msg.call_id_ = req.call_id_;
  msg.cseq_ = req.cseq_;
  return msg;
}

void Message::add_header(std::string name, std::string value) {
  extra_headers_.emplace_back(std::move(name), std::move(value));
  cached_wire_bytes_ = 0;
}

const std::string* Message::header(std::string_view name) const noexcept {
  for (const auto& [hname, hvalue] : extra_headers_) {
    if (util::iequals(hname, name)) return &hvalue;
  }
  return nullptr;
}

void Message::set_body(std::string body, std::string content_type) {
  body_ = std::move(body);
  content_type_ = std::move(content_type);
  cached_wire_bytes_ = 0;
}

std::uint32_t Message::wire_bytes() const {
  if (cached_wire_bytes_ == 0) {
    cached_wire_bytes_ = static_cast<std::uint32_t>(serialize(*this).size());
  }
  return cached_wire_bytes_;
}

}  // namespace pbxcap::sip
