// SIP protocol vocabulary (RFC 3261 subset used by the paper's testbed).
#pragma once

#include <cstdint>
#include <string_view>

namespace pbxcap::sip {

enum class Method : std::uint8_t {
  kInvite,
  kAck,
  kBye,
  kCancel,
  kRegister,
  kOptions,
  kInfo,
  kUnknown,
};

[[nodiscard]] constexpr std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::kInvite: return "INVITE";
    case Method::kAck: return "ACK";
    case Method::kBye: return "BYE";
    case Method::kCancel: return "CANCEL";
    case Method::kRegister: return "REGISTER";
    case Method::kOptions: return "OPTIONS";
    case Method::kInfo: return "INFO";
    case Method::kUnknown: return "UNKNOWN";
  }
  return "?";
}

[[nodiscard]] Method method_from_string(std::string_view s) noexcept;

/// Status codes used in the evaluation scenarios. Plain integers are also
/// accepted throughout; these named constants cover the Fig. 2 ladder plus
/// the admission-control rejections.
namespace status {
inline constexpr int kTrying = 100;
inline constexpr int kRinging = 180;
inline constexpr int kOk = 200;
inline constexpr int kBadRequest = 400;
inline constexpr int kNotFound = 404;
inline constexpr int kRequestTimeout = 408;
inline constexpr int kBusyHere = 486;
inline constexpr int kTemporarilyUnavailable = 480;
inline constexpr int kInternalError = 500;
inline constexpr int kServiceUnavailable = 503;
inline constexpr int kDeclined = 603;
}  // namespace status

[[nodiscard]] std::string_view reason_phrase(int status_code) noexcept;

[[nodiscard]] constexpr bool is_provisional(int code) noexcept { return code >= 100 && code < 200; }
[[nodiscard]] constexpr bool is_final(int code) noexcept { return code >= 200; }
[[nodiscard]] constexpr bool is_success(int code) noexcept { return code >= 200 && code < 300; }
[[nodiscard]] constexpr bool is_error(int code) noexcept { return code >= 400; }

}  // namespace pbxcap::sip
