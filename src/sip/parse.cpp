#include "sip/parse.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace pbxcap::sip {

// MessageCodec is a friend of Message, giving the parser access to the
// private default constructor and fields without widening the public API.
struct MessageCodec {
  static Message make_request(Method m, Uri uri) { return Message::request(m, std::move(uri)); }

  static Message make_response(int code, std::string reason) {
    Message msg;
    msg.is_request_ = false;
    msg.status_code_ = code;
    msg.reason_ = std::move(reason);
    return msg;
  }

  static ParseResult parse(std::string_view text);
};

std::string serialize(const Message& msg) {
  std::ostringstream os;
  if (msg.is_request()) {
    os << to_string(msg.method()) << ' ' << msg.request_uri().to_string() << " SIP/2.0\r\n";
  } else {
    os << "SIP/2.0 " << msg.status_code() << ' ' << msg.reason() << "\r\n";
  }
  for (const auto& via : msg.vias()) os << "Via: " << via.to_string() << "\r\n";
  if (msg.is_request()) os << "Max-Forwards: " << msg.max_forwards() << "\r\n";
  os << "From: " << msg.from().to_string() << "\r\n";
  os << "To: " << msg.to().to_string() << "\r\n";
  os << "Call-ID: " << msg.call_id() << "\r\n";
  os << "CSeq: " << msg.cseq().to_string() << "\r\n";
  if (msg.contact()) os << "Contact: <" << msg.contact()->to_string() << ">\r\n";
  for (const auto& [name, value] : msg.extra_headers()) os << name << ": " << value << "\r\n";
  if (!msg.body().empty()) os << "Content-Type: " << msg.content_type() << "\r\n";
  os << "Content-Length: " << msg.body().size() << "\r\n\r\n";
  os << msg.body();
  return os.str();
}

namespace {

struct HeaderLine {
  std::string_view name;
  std::string_view value;
};

/// Splits raw text into start line, header lines, and body. Accepts both
/// CRLF and bare LF line endings.
bool split_lines(std::string_view text, std::string_view& start_line,
                 std::vector<HeaderLine>& headers, std::string_view& body, std::string& error) {
  std::size_t pos = 0;
  const auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= text.size()) return false;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size();
      return true;
    }
    std::size_t end = eol;
    if (end > pos && text[end - 1] == '\r') --end;
    line = text.substr(pos, end - pos);
    pos = eol + 1;
    return true;
  };

  if (!next_line(start_line) || start_line.empty()) {
    error = "missing start line";
    return false;
  }
  std::string_view line;
  while (next_line(line)) {
    if (line.empty()) {  // blank line: body follows
      body = text.substr(pos);
      return true;
    }
    const auto [name, value, has_colon] = util::split_once(line, ':');
    if (!has_colon) {
      error = "malformed header line";
      return false;
    }
    headers.push_back({util::trim(name), util::trim(value)});
  }
  body = {};
  return true;  // no blank line: message without body
}

}  // namespace

ParseResult MessageCodec::parse(std::string_view text) {
  std::string_view start_line;
  std::vector<HeaderLine> headers;
  std::string_view body;
  std::string error;
  if (!split_lines(text, start_line, headers, body, error)) return {std::nullopt, error};

  Message msg;
  if (util::starts_with_i(start_line, "SIP/2.0 ")) {
    // Status line: SIP/2.0 <code> <reason>
    std::string_view rest = start_line.substr(8);
    const auto [code_part, reason, has_reason] = util::split_once(rest, ' ');
    std::uint64_t code = 0;
    if (!util::parse_u64(util::trim(code_part), code) || code < 100 || code > 699) {
      return {std::nullopt, "bad status code"};
    }
    msg = make_response(static_cast<int>(code),
                        std::string{has_reason ? util::trim(reason) : std::string_view{}});
  } else {
    // Request line: <METHOD> <uri> SIP/2.0
    const auto parts = util::split(start_line, ' ');
    if (parts.size() != 3 || !util::iequals(parts[2], "SIP/2.0")) {
      return {std::nullopt, "bad request line"};
    }
    const Method m = method_from_string(parts[0]);
    if (m == Method::kUnknown) return {std::nullopt, "unknown method"};
    const auto uri = Uri::parse(parts[1]);
    if (!uri) return {std::nullopt, "bad request-URI"};
    msg = make_request(m, *uri);
  }

  bool have_from = false;
  bool have_to = false;
  bool have_call_id = false;
  bool have_cseq = false;
  std::uint64_t declared_length = body.size();

  for (const auto& [name, value] : headers) {
    if (util::iequals(name, "Via") || util::iequals(name, "v")) {
      const auto via = Via::parse(value);
      if (!via) return {std::nullopt, "bad Via"};
      msg.vias_.push_back(*via);
    } else if (util::iequals(name, "From") || util::iequals(name, "f")) {
      const auto addr = NameAddr::parse(value);
      if (!addr) return {std::nullopt, "bad From"};
      msg.from_ = *addr;
      have_from = true;
    } else if (util::iequals(name, "To") || util::iequals(name, "t")) {
      const auto addr = NameAddr::parse(value);
      if (!addr) return {std::nullopt, "bad To"};
      msg.to_ = *addr;
      have_to = true;
    } else if (util::iequals(name, "Call-ID") || util::iequals(name, "i")) {
      msg.call_id_ = std::string{value};
      have_call_id = true;
    } else if (util::iequals(name, "CSeq")) {
      const auto cseq = CSeq::parse(value);
      if (!cseq) return {std::nullopt, "bad CSeq"};
      msg.cseq_ = *cseq;
      have_cseq = true;
    } else if (util::iequals(name, "Max-Forwards")) {
      std::uint64_t mf = 0;
      if (!util::parse_u64(value, mf) || mf > 255) return {std::nullopt, "bad Max-Forwards"};
      msg.max_forwards_ = static_cast<int>(mf);
    } else if (util::iequals(name, "Contact") || util::iequals(name, "m")) {
      std::string_view uri_part = value;
      if (!uri_part.empty() && uri_part.front() == '<' && uri_part.back() == '>') {
        uri_part = uri_part.substr(1, uri_part.size() - 2);
      }
      const auto uri = Uri::parse(uri_part);
      if (!uri) return {std::nullopt, "bad Contact"};
      msg.contact_ = *uri;
    } else if (util::iequals(name, "Content-Type") || util::iequals(name, "c")) {
      msg.content_type_ = std::string{value};
    } else if (util::iequals(name, "Content-Length") || util::iequals(name, "l")) {
      if (!util::parse_u64(value, declared_length)) return {std::nullopt, "bad Content-Length"};
    } else {
      msg.extra_headers_.emplace_back(std::string{name}, std::string{value});
    }
  }

  if (!have_from) return {std::nullopt, "missing From"};
  if (!have_to) return {std::nullopt, "missing To"};
  if (!have_call_id) return {std::nullopt, "missing Call-ID"};
  if (!have_cseq) return {std::nullopt, "missing CSeq"};
  if (declared_length > body.size()) return {std::nullopt, "truncated body"};
  msg.body_ = std::string{body.substr(0, declared_length)};

  return {std::move(msg), {}};
}

ParseResult parse_message(std::string_view text) { return MessageCodec::parse(text); }

}  // namespace pbxcap::sip
