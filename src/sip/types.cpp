#include "sip/types.hpp"

#include "util/strings.hpp"

namespace pbxcap::sip {

Method method_from_string(std::string_view s) noexcept {
  using util::iequals;
  if (iequals(s, "INVITE")) return Method::kInvite;
  if (iequals(s, "ACK")) return Method::kAck;
  if (iequals(s, "BYE")) return Method::kBye;
  if (iequals(s, "CANCEL")) return Method::kCancel;
  if (iequals(s, "REGISTER")) return Method::kRegister;
  if (iequals(s, "OPTIONS")) return Method::kOptions;
  if (iequals(s, "INFO")) return Method::kInfo;
  return Method::kUnknown;
}

std::string_view reason_phrase(int status_code) noexcept {
  switch (status_code) {
    case status::kTrying: return "Trying";
    case status::kRinging: return "Ringing";
    case 182: return "Queued";
    case 183: return "Session Progress";
    case status::kOk: return "OK";
    case 202: return "Accepted";
    case status::kBadRequest: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case status::kNotFound: return "Not Found";
    case status::kRequestTimeout: return "Request Timeout";
    case status::kTemporarilyUnavailable: return "Temporarily Unavailable";
    case 481: return "Call/Transaction Does Not Exist";
    case status::kBusyHere: return "Busy Here";
    case 487: return "Request Terminated";
    case status::kInternalError: return "Server Internal Error";
    case 501: return "Not Implemented";
    case status::kServiceUnavailable: return "Service Unavailable";
    case 504: return "Server Time-out";
    case 600: return "Busy Everywhere";
    case status::kDeclined: return "Decline";
    default: return "Unknown";
  }
}

}  // namespace pbxcap::sip
