#include "sip/dialog.hpp"

namespace pbxcap::sip {

Dialog Dialog::from_uac(const Message& invite, const Message& final_2xx) {
  Dialog d;
  d.call_id_ = invite.call_id();
  d.local_ = invite.from();
  d.remote_ = final_2xx.to();  // carries the remote (To) tag
  d.remote_target_ = final_2xx.contact() ? *final_2xx.contact() : invite.request_uri();
  d.local_cseq_ = invite.cseq().number;
  d.invite_cseq_ = invite.cseq().number;
  return d;
}

Dialog Dialog::from_uas(const Message& invite, const Message& sent_2xx) {
  Dialog d;
  d.call_id_ = invite.call_id();
  d.local_ = sent_2xx.to();  // our side, with the tag we assigned
  d.remote_ = invite.from();
  d.remote_target_ = invite.contact() ? *invite.contact() : invite.request_uri();
  d.local_cseq_ = 0;
  d.invite_cseq_ = invite.cseq().number;
  return d;
}

Message Dialog::make_request(Method method) {
  Message msg = Message::request(method, remote_target_);
  msg.from() = local_;
  msg.to() = remote_;
  msg.set_call_id(call_id_);
  msg.set_cseq({++local_cseq_, method});
  return msg;
}

Message Dialog::make_ack() {
  Message msg = Message::request(Method::kAck, remote_target_);
  msg.from() = local_;
  msg.to() = remote_;
  msg.set_call_id(call_id_);
  msg.set_cseq({invite_cseq_, Method::kAck});
  return msg;
}

std::string Dialog::id() const {
  return call_id_ + "|" + local_.tag + "|" + remote_.tag;
}

std::string Dialog::id_of(const Message& msg, bool local_is_from) {
  const std::string& local_tag = local_is_from ? msg.from().tag : msg.to().tag;
  const std::string& remote_tag = local_is_from ? msg.to().tag : msg.from().tag;
  return msg.call_id() + "|" + local_tag + "|" + remote_tag;
}

}  // namespace pbxcap::sip
