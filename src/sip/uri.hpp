// SIP URI: the subset "sip:user@host[:port]" the testbed exchanges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pbxcap::sip {

class Uri {
 public:
  Uri() = default;
  Uri(std::string user, std::string host, std::uint16_t port = 5060)
      : user_{std::move(user)}, host_{std::move(host)}, port_{port} {}

  [[nodiscard]] const std::string& user() const noexcept { return user_; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] std::string to_string() const;

  /// Parses "sip:user@host[:port]"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Uri> parse(std::string_view text);

  [[nodiscard]] bool operator==(const Uri&) const = default;

 private:
  std::string user_;
  std::string host_;
  std::uint16_t port_{5060};
};

}  // namespace pbxcap::sip
