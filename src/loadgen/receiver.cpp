#include "loadgen/receiver.hpp"

#include "media/emodel.hpp"
#include "sim/profile.hpp"
#include "rtp/fluid.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::loadgen {

using sip::Message;
using sip::Method;
using sip::Sdp;

std::optional<std::uint64_t> call_index_of_user(std::string_view user) {
  const auto dash = user.rfind('-');
  if (dash == std::string_view::npos) return std::nullopt;
  std::uint64_t idx = 0;
  if (!util::parse_u64(user.substr(dash + 1), idx)) return std::nullopt;
  return idx;
}

SipReceiver::SipReceiver(std::string host, sim::Simulator& simulator,
                         sip::HostResolver& resolver, rtp::SsrcAllocator& ssrcs,
                         const CallScenario& scenario)
    : sip::SipEndpoint{"sipp-server", std::move(host), simulator, resolver},
      ssrcs_{ssrcs},
      scenario_{scenario} {
  transactions().on_request = [this](const Message& req, sip::ServerTransaction& txn) {
    switch (req.method()) {
      case Method::kInvite:
        handle_invite(req, txn);
        return;
      case Method::kBye:
        handle_bye(req, txn);
        return;
      default: {
        Message resp = Message::response_to(req, 501);
        txn.respond(resp);
        return;
      }
    }
  };
  transactions().on_ack = [this](const Message& ack) { handle_ack(ack); };
}

void SipReceiver::handle_invite(const Message& req, sip::ServerTransaction& txn) {
  Message ringing = Message::response_to(req, sip::status::kRinging);
  ringing.to().tag = new_tag();
  txn.respond(ringing);
  if (scenario_.answer_delay > Duration::zero()) {
    // Keep the assigned tag so 180 and 200 agree.
    const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kLoadgen};
    network()->simulator().schedule_in(
        scenario_.answer_delay,
        [this, req, &txn, tag = ringing.to().tag]() mutable {
          Message invite = req;
          invite.to().tag = tag;  // carry the tag through to answer()
          answer(invite, txn);
        });
  } else {
    Message invite = req;
    invite.to().tag = ringing.to().tag;
    answer(invite, txn);
  }
}

void SipReceiver::answer(const Message& invite, sip::ServerTransaction& txn) {
  const auto offer = Sdp::parse(invite.body());
  if (!offer || offer->audio.payload_types.empty()) {
    Message resp = Message::response_to(invite, sip::status::kBadRequest);
    txn.respond(resp);
    return;
  }
  // Offer/answer (RFC 3264): pick the first offered payload type this
  // endpoint supports — the offerer's preference order — instead of blindly
  // taking the front of the list (which fails outright when the offer merely
  // *leads* with a codec we lack). No overlap is 488 Not Acceptable Here.
  Sdp supported;
  if (scenario_.receiver_payload_types.empty()) {
    for (const auto& entry : rtp::codec_catalog()) {
      supported.audio.payload_types.push_back(entry.payload_type);
    }
  } else {
    supported.audio.payload_types = scenario_.receiver_payload_types;
  }
  const auto negotiated_pt = Sdp::negotiate(*offer, supported);
  std::optional<rtp::Codec> codec;
  if (negotiated_pt) codec = rtp::codec_by_payload_type(*negotiated_pt);
  if (!codec) {
    ++rejected_488_;
    if (tm_rejected_488_ != nullptr) tm_rejected_488_->add();
    Message resp = Message::response_to(invite, 488);
    txn.respond(resp);
    return;
  }

  const auto call_index = call_index_of_user(invite.request_uri().user());
  auto session = std::make_unique<Session>(Session{
      .call_index = call_index.value_or(0),
      .report_quality = call_index.has_value(),
      .dialog = {},
      .codec = *codec,
      .local_ssrc = ssrcs_.allocate(),
      .remote_ssrc = offer->audio.ssrc,
      .media_dst = resolver().resolve(offer->connection_host),
      .sender = nullptr,
      .rtcp = nullptr,
      .rx = rtp::RtpReceiverStats{codec->sample_rate_hz},
      .jbuf = rtp::JitterBuffer{*codec, scenario_.jitter_buffer},
      .transit_s = {},
  });

  Sdp answer_sdp;
  answer_sdp.connection_host = sip_host();
  answer_sdp.audio.rtp_port = 20'000;
  answer_sdp.audio.payload_types = {codec->payload_type};
  answer_sdp.audio.ssrc = session->local_ssrc;

  Message ok = Message::response_to(invite, sip::status::kOk);
  ok.to().tag = invite.to().tag;  // tag assigned at 180 time
  ok.set_contact(sip::Uri{invite.request_uri().user(), sip_host()});
  ok.set_body(answer_sdp.to_string(), "application/sdp");
  txn.respond(ok);

  session->dialog = sip::Dialog::from_uas(invite, ok);
  if (session->remote_ssrc != 0) by_remote_ssrc_[session->remote_ssrc] = session.get();
  sessions_.emplace(invite.call_id(), std::move(session));
  ++answered_;
  if (tm_answered_ != nullptr) tm_answered_->add();
}

void SipReceiver::set_telemetry(telemetry::Telemetry* tel) {
  sip::SipEndpoint::set_telemetry(tel);
  tm_answered_ = tm_rejected_488_ = tm_rtp_sent_ = nullptr;
  tracer_ = nullptr;
  if (tel == nullptr || !tel->enabled()) return;
  tracer_ = tel->tracer();
  auto& reg = tel->registry();
  tm_answered_ = &reg.counter("pbxcap_receiver_calls_answered_total", {},
                              "Calls answered by the receiver host");
  tm_rejected_488_ = &reg.counter("pbxcap_receiver_rejected_488_total", {},
                                  "Offers rejected for lack of codec overlap");
  tm_rtp_sent_ = &reg.counter("pbxcap_rtp_packets_sent_total", {{"host", sip_host()}},
                              "RTP packets emitted by this endpoint's senders");
}

void SipReceiver::handle_ack(const Message& ack) {
  const auto it = sessions_.find(ack.call_id());
  if (it == sessions_.end()) return;
  start_media(*it->second);
}

void SipReceiver::start_media(Session& session) {
  if (session.sender != nullptr || session.media_dst == net::kInvalidNode) return;
  session.sender = std::make_unique<rtp::RtpSender>(
      network()->simulator(), session.codec, session.local_ssrc,
      [this, dst = session.media_dst](const rtp::RtpHeader& header, std::uint32_t bytes) {
        net::Packet pkt;
        pkt.dst = dst;
        pkt.kind = net::PacketKind::kRtp;
        pkt.size_bytes = bytes;
        pkt.payload =
            std::make_shared<rtp::RtpPayload>(header, network()->simulator().now());
        send(std::move(pkt));
      });
  session.sender->set_packet_counter(tm_rtp_sent_);
  if (tracer_ != nullptr) {
    // Same track key as the caller side: in single-process runs both media
    // directions stack on the call's journey row.
    session.sender->set_tracer(
        tracer_, tracer_->track_id(util::format(
                     "call-%llu", static_cast<unsigned long long>(session.call_index))));
  }
  if (fluid_engine_ != nullptr) {
    session.sender->set_fluid(
        fluid_engine_,
        [this, dst = session.media_dst, spacing = session.codec.packet_interval()](
            const rtp::RtpHeader& first, std::uint32_t bytes, std::uint32_t count,
            TimePoint departure) {
          net::Packet pkt;
          pkt.dst = dst;
          pkt.kind = net::PacketKind::kRtp;
          pkt.fluid = true;
          pkt.batch = static_cast<std::uint16_t>(count);
          pkt.size_bytes = bytes;
          pkt.payload = std::make_shared<rtp::RtpBatchPayload>(first, spacing, departure);
          send(std::move(pkt));
        });
  }
  session.sender->start();
  if (scenario_.rtcp) {
    session.rtcp = std::make_unique<rtp::RtcpSession>(
        network()->simulator(), rtcp_rng_.fork(), session.local_ssrc,
        session.codec.sample_rate_hz,
        [this, dst = session.media_dst](const rtp::RtcpPayload& payload, std::uint32_t bytes) {
          net::Packet pkt;
          pkt.dst = dst;
          pkt.kind = net::PacketKind::kRtcp;
          pkt.size_bytes = bytes;
          pkt.payload = std::make_shared<rtp::RtcpPayload>(payload);
          send(std::move(pkt));
        });
    if (fluid_engine_ != nullptr) {
      // Per-SSRC on purpose (see SipCaller::start_media).
      session.rtcp->set_pre_report_hook(
          [this, local = session.local_ssrc, remote = session.remote_ssrc] {
            fluid_engine_->flush_stream(local);
            if (remote != 0) fluid_engine_->flush_stream(remote);
          });
    }
    session.rtcp->start(session.sender.get(), &session.rx);
  }
}

HeardQuality SipReceiver::summarize(const Session& session) const {
  HeardQuality q;
  q.rtp_received = session.rx.received();
  const std::uint64_t expected = session.rx.expected();
  const std::uint64_t missing = session.rx.lost() + session.jbuf.discarded_late();
  q.effective_loss =
      expected == 0 ? 0.0
                    : std::min(1.0, static_cast<double>(missing) / static_cast<double>(expected));
  q.jitter = session.rx.jitter();
  q.mean_transit = Duration::from_seconds(session.transit_s.mean());
  const auto inputs = media::inputs_for_codec(session.codec, q.mean_transit,
                                              session.jbuf.playout_delay(), q.effective_loss);
  q.mos = media::estimate_mos(inputs);
  return q;
}

void SipReceiver::handle_bye(const Message& req, sip::ServerTransaction& txn) {
  Message ok = Message::response_to(req, sip::status::kOk);
  txn.respond(ok);
  const auto it = sessions_.find(req.call_id());
  if (it == sessions_.end()) return;
  Session& session = *it->second;
  if (session.sender != nullptr) session.sender->stop();
  if (session.rtcp != nullptr) session.rtcp->stop();
  if (session.report_quality) finished_[session.call_index] = summarize(session);
  if (session.remote_ssrc != 0) by_remote_ssrc_.erase(session.remote_ssrc);
  sessions_.erase(it);
}

void SipReceiver::handle_rtp(const net::Packet& pkt) {
  if (const auto* rtp = pkt.payload_as<rtp::RtpPayload>()) {
    const auto it = by_remote_ssrc_.find(rtp->header.ssrc);
    if (it == by_remote_ssrc_.end()) return;
    Session& session = *it->second;
    const TimePoint now = network()->simulator().now();
    session.rx.on_packet(rtp->header, now);
    session.jbuf.on_packet(rtp->header, now);
    session.transit_s.add((now - rtp->originated_at).to_seconds());
    return;
  }
  const auto* batch = pkt.payload_as<rtp::RtpBatchPayload>();
  if (batch == nullptr) return;
  const auto it = by_remote_ssrc_.find(batch->first.ssrc);
  if (it == by_remote_ssrc_.end()) return;
  Session& session = *it->second;
  const TimePoint first_arrival = batch->first_departure + batch->path_latency;
  session.rx.on_batch(batch->first, first_arrival, batch->spacing,
                      session.codec.timestamp_step(), pkt.batch);
  session.jbuf.on_batch(batch->first, first_arrival, batch->spacing, pkt.batch);
  session.transit_s.add_repeated(batch->path_latency.to_seconds(), pkt.batch);
}

void SipReceiver::on_receive(const net::Packet& pkt) {
  if (pkt.kind == net::PacketKind::kRtp) {
    handle_rtp(pkt);
    return;
  }
  if (pkt.kind == net::PacketKind::kRtcp) {
    if (const auto* rtcp = pkt.payload_as<rtp::RtcpPayload>()) {
      const auto it = by_remote_ssrc_.find(rtcp->routing_ssrc());
      if (it != by_remote_ssrc_.end() && it->second->rtcp != nullptr) {
        it->second->rtcp->on_report(*rtcp, network()->simulator().now());
      }
    }
    return;
  }
  sip::SipEndpoint::on_receive(pkt);
}

const HeardQuality* SipReceiver::finished(std::uint64_t call_index) const {
  const auto it = finished_.find(call_index);
  return it == finished_.end() ? nullptr : &it->second;
}

}  // namespace pbxcap::loadgen
