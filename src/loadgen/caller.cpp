#include "loadgen/caller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dispatch/dispatcher.hpp"
#include "sim/profile.hpp"
#include "loadgen/receiver.hpp"  // call_index_of_user
#include "media/emodel.hpp"
#include "rtp/fluid.hpp"
#include "sip/sdp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::loadgen {

using sip::Message;
using sip::Method;
using sip::Sdp;

SipCaller::SipCaller(std::string host, std::string pbx_host, sim::Simulator& simulator,
                     sip::HostResolver& resolver, rtp::SsrcAllocator& ssrcs,
                     CallScenario scenario, sim::Random rng)
    : SipCaller{std::move(host), std::vector<std::string>{std::move(pbx_host)}, simulator,
                resolver, ssrcs, scenario, rng} {}

SipCaller::SipCaller(std::string host, std::vector<std::string> pbx_hosts,
                     sim::Simulator& simulator, sip::HostResolver& resolver,
                     rtp::SsrcAllocator& ssrcs, CallScenario scenario, sim::Random rng)
    : sip::SipEndpoint{"sipp-client", std::move(host), simulator, resolver},
      pbx_hosts_{std::move(pbx_hosts)},
      ssrcs_{ssrcs},
      scenario_{scenario},
      rng_{rng} {
  if (pbx_hosts_.empty()) throw std::invalid_argument{"SipCaller: need at least one PBX host"};
  transactions().on_request = [](const Message&, sip::ServerTransaction& txn) {
    // The caller never expects requests (the PBX tears down via leg B BYEs
    // only when the callee hangs up first, which this generator never does).
    (void)txn;
  };
  transactions().on_ack = [](const Message&) {};
}

void SipCaller::set_telemetry(telemetry::Telemetry* tel) {
  sip::SipEndpoint::set_telemetry(tel);
  tm_offered_ = tm_completed_ = tm_blocked_ = tm_failed_ = tm_abandoned_ = tm_retried_ =
      tm_rtp_sent_ = nullptr;
  tm_setup_delay_ms_ = tm_mos_ = nullptr;
  tracer_ = nullptr;
  if (tel == nullptr || !tel->enabled()) return;
  tracer_ = tel->tracer();
  if (tracer_ != nullptr) {
    jn_pick_ = tracer_->name_id("dispatch.pick");
    jn_repick_ = tracer_->name_id("dispatch.repick");
    jn_reject_ = tracer_->name_id("dispatch.reject");
    jn_bench_ = tracer_->name_id("dispatch.bench");
    jn_timeout_ = tracer_->name_id("invite.timeout");
    jn_failover_ = tracer_->name_id("dispatch.failover");
    jn_setup_ = tracer_->name_id("call.setup");
  }
  auto& reg = tel->registry();
  tm_offered_ = &reg.counter("pbxcap_caller_calls_offered_total", {},
                             "Calls placed by the load generator");
  tm_completed_ = &reg.counter("pbxcap_caller_calls_total", {{"outcome", "completed"}},
                               "Finished calls by outcome");
  tm_blocked_ = &reg.counter("pbxcap_caller_calls_total", {{"outcome", "blocked"}});
  tm_failed_ = &reg.counter("pbxcap_caller_calls_total", {{"outcome", "failed"}});
  tm_abandoned_ = &reg.counter("pbxcap_caller_calls_total", {{"outcome", "abandoned"}});
  tm_retried_ = &reg.counter("pbxcap_caller_retries_total", {},
                             "INVITE re-attempts after 503 + backoff");
  tm_rtp_sent_ = &reg.counter("pbxcap_rtp_packets_sent_total", {{"host", sip_host()}},
                              "RTP packets emitted by this endpoint's senders");
  tm_setup_delay_ms_ =
      &reg.histogram("pbxcap_caller_setup_delay_ms",
                     telemetry::log_linear_buckets(1.0, 10'000.0, 5), {},
                     "INVITE to 200 OK setup delay of answered calls (ms)");
  tm_mos_ = &reg.histogram("pbxcap_caller_mos", telemetry::linear_buckets(1.0, 5.0, 8), {},
                           "Caller-heard MOS of answered calls");
}

void SipCaller::start() {
  if (started_) return;
  started_ = true;
  if (scenario_.finite_population > 0) {
    idle_users_ = scenario_.finite_population;
  }
  schedule_next_arrival();
}

void SipCaller::schedule_next_arrival() {
  const TimePoint now = network()->simulator().now();
  const TimePoint window_end = TimePoint::at(scenario_.placement_window);
  if (now >= window_end || window_closed_) {
    window_closed_ = true;
    return;
  }
  if (scenario_.max_calls != 0 && next_call_index_ >= scenario_.max_calls) return;

  double rate = scenario_.arrival_rate_per_s;
  if (scenario_.finite_population > 0) {
    rate = scenario_.per_user_rate_per_s * static_cast<double>(idle_users_);
    if (rate <= 0.0) return;  // every user busy; resumes on user_became_idle()
  }
  const Duration gap = Duration::from_seconds(rng_.exponential(1.0 / rate));
  const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kLoadgen};
  arrival_timer_ = network()->simulator().schedule_in(gap, [this] {
    if (network()->simulator().now() < TimePoint::at(scenario_.placement_window)) {
      place_call();
    }
    schedule_next_arrival();
  });
}

void SipCaller::user_became_idle() {
  ++idle_users_;
  // Re-arm the arrival process: the aggregate rate just changed. Cancelling
  // and redrawing is valid because the exponential is memoryless.
  if (started_ && !window_closed_ && arrival_timer_ != 0) {
    network()->simulator().cancel(arrival_timer_);
    arrival_timer_ = 0;
    schedule_next_arrival();
  }
}

void SipCaller::place_call() {
  if (scenario_.finite_population > 0) {
    if (idle_users_ == 0) return;
    --idle_users_;
  }

  const std::uint64_t index = next_call_index_++;
  if (tm_offered_ != nullptr) tm_offered_->add();
  auto call = std::make_unique<Call>();
  call->index = index;
  call->offered_at = network()->simulator().now();
  call->hold = draw_hold_time(rng_, scenario_.hold_model, scenario_.hold_time, scenario_.hold_cv);
  call->codec = draw_codec();
  call->local_ssrc = ssrcs_.allocate();
  // ACD traffic class. Draw only when mixing (fraction in (0,1)): default
  // single-class runs must consume the exact same RNG sequence as before.
  if (scenario_.acd.fraction >= 1.0) {
    call->acd = true;
  } else if (scenario_.acd.fraction > 0.0) {
    call->acd = rng_.chance(scenario_.acd.fraction);
  }
  call->rx = rtp::RtpReceiverStats{call->codec.sample_rate_hz};
  call->jbuf = rtp::JitterBuffer{call->codec, scenario_.jitter_buffer};
  if (tracer_ != nullptr) {
    // One track per call: every routing decision, attempt, and media
    // segment of this call's journey lands on the same Perfetto row.
    call->journey = tracer_->track_id(
        util::format("call-%llu", static_cast<unsigned long long>(index)));
    call->setup_span = tracer_->begin(jn_setup_, call->journey, call->offered_at);
  }

  if (dispatcher_ != nullptr) {
    const std::string* host = dispatcher_->pick();
    if (host == nullptr) {
      // Every backend ejected or benched: the dispatcher's own 503. The
      // attempt is recorded as blocked without any INVITE hitting the wire.
      ++dispatch_rejected_;
      journey_instant(*call, jn_reject_);
      calls_.emplace(index, std::move(call));
      finish(index, monitor::CallOutcome::kBlocked);
      return;
    }
    call->pbx_host = *host;
    journey_instant(*call, jn_pick_, &call->pbx_host);
  } else {
    call->pbx_host = pbx_hosts_[static_cast<std::size_t>(index) % pbx_hosts_.size()];
  }

  Call& ref = *call;
  calls_.emplace(index, std::move(call));
  send_invite(ref);
}

void SipCaller::send_invite(Call& call) {
  const std::uint64_t index = call.index;
  const std::string caller_user =
      util::format("caller-%llu", static_cast<unsigned long long>(index));
  const std::string callee_user =
      call.acd ? "queue-" + scenario_.acd.queue
               : util::format("recv-%llu", static_cast<unsigned long long>(index));

  Message invite = Message::request(Method::kInvite, sip::Uri{callee_user, call.pbx_host});
  invite.from() = sip::NameAddr{sip::Uri{caller_user, sip_host()}, new_tag()};
  invite.to() = sip::NameAddr{sip::Uri{callee_user, call.pbx_host}, ""};
  // A re-attempt after 503 is a new call (new Call-ID), per RFC 3261 §8.1:
  // the previous transaction completed with a final response.
  invite.set_call_id(
      call.attempt == 1
          ? util::format("call-%llu@%s", static_cast<unsigned long long>(index),
                         sip_host().c_str())
          : util::format("call-%llu-r%u@%s", static_cast<unsigned long long>(index),
                         call.attempt - 1U, sip_host().c_str()));
  invite.set_cseq({1, Method::kInvite});
  invite.set_contact(sip::Uri{caller_user, sip_host()});

  Sdp offer;
  offer.connection_host = sip_host();
  offer.audio.rtp_port = static_cast<std::uint16_t>(30'000 + (index * 2) % 20'000);
  // Preference list: the call's drawn codec leads, the rest of the mix
  // follows in declared order as fallbacks (RFC 3264 preference semantics).
  offer.audio.payload_types = {call.codec.payload_type};
  for (const auto& share : scenario_.codec_mix) {
    const std::uint8_t pt = share.codec.payload_type;
    if (std::find(offer.audio.payload_types.begin(), offer.audio.payload_types.end(), pt) ==
        offer.audio.payload_types.end()) {
      offer.audio.payload_types.push_back(pt);
    }
  }
  offer.audio.ssrc = call.local_ssrc;
  invite.set_body(offer.to_string(), "application/sdp");

  call.invite = invite;
  send_request_to(
      std::move(invite), call.pbx_host,
      [this, index](const Message& resp) { on_invite_response(index, resp); },
      [this, index] { on_invite_timeout(index); });
}

void SipCaller::schedule_retry(std::uint64_t index, Duration delay) {
  Call* call = find(index);
  if (call == nullptr) return;
  ++call->attempt;
  ++retries_;
  if (tm_retried_ != nullptr) tm_retried_->add();
  const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kLoadgen};
  call->retry_timer = network()->simulator().schedule_in(delay, [this, index] {
    Call* c = find(index);
    if (c == nullptr) return;
    c->retry_timer = 0;
    // Re-target at fire time, not at scheduling time: by the end of the
    // backoff the dispatcher's health view (circuits, benches) has moved on.
    if (!reroute_for_retry(*c)) return;
    send_invite(*c);
  });
}

bool SipCaller::reroute_for_retry(Call& call) {
  if (dispatcher_ != nullptr) {
    dispatcher_->release(call.pbx_host);
    const std::string* host = dispatcher_->repick(call.pbx_host);
    if (host == nullptr) {
      ++dispatch_rejected_;
      journey_instant(call, jn_reject_);
      call.pbx_host.clear();  // slot already released; finish() must not re-release
      finish(call.index, monitor::CallOutcome::kBlocked);
      return false;
    }
    if (*host != call.pbx_host) ++retries_rerouted_;
    call.pbx_host = *host;
    journey_instant(call, jn_repick_, &call.pbx_host);
    return true;
  }
  if (pbx_hosts_.size() > 1) {
    // DNS-rotation cluster: step to the next server in the rotation instead
    // of re-hitting the one that just said 503 (it is the most likely of the
    // fleet to still be saturated or down).
    const std::size_t n = pbx_hosts_.size();
    const std::size_t base = static_cast<std::size_t>(call.index) % n;
    const std::string& next = pbx_hosts_[(base + call.attempt - 1) % n];
    if (next != call.pbx_host) ++retries_rerouted_;
    call.pbx_host = next;
  }
  return true;
}

SipCaller::Call* SipCaller::find(std::uint64_t index) {
  const auto it = calls_.find(index);
  return it == calls_.end() ? nullptr : it->second.get();
}

rtp::Codec SipCaller::draw_codec() {
  if (scenario_.codec_mix.empty()) return scenario_.codec;
  if (scenario_.codec_mix.size() == 1) return scenario_.codec_mix.front().codec;
  double total = 0.0;
  for (const auto& share : scenario_.codec_mix) total += std::max(0.0, share.weight);
  if (total <= 0.0) return scenario_.codec_mix.front().codec;
  double u = rng_.uniform() * total;
  for (const auto& share : scenario_.codec_mix) {
    u -= std::max(0.0, share.weight);
    if (u < 0.0) return share.codec;
  }
  return scenario_.codec_mix.back().codec;
}

void SipCaller::journey_instant(Call& call, std::uint32_t name, const std::string* detail) {
  if (tracer_ == nullptr || call.journey == 0) return;
  tracer_->instant(name, call.journey, network()->simulator().now(),
                   detail == nullptr ? telemetry::SpanTracer::kNoDetail
                                     : tracer_->name_id(*detail));
}

void SipCaller::on_invite_response(std::uint64_t index, const Message& resp) {
  Call* call = find(index);
  if (call == nullptr) return;
  const int code = resp.status_code();
  if (sip::is_provisional(code)) return;  // 100 / 180: ladder progress only

  if (sip::is_success(code)) {
    if (dispatcher_ != nullptr) dispatcher_->on_call_admitted(call->pbx_host);
    call->answered = true;
    call->answered_at = network()->simulator().now();
    if (tracer_ != nullptr && call->setup_span != 0) {
      tracer_->end(call->setup_span, call->answered_at);
      call->setup_span = 0;
    }
    call->dialog = sip::Dialog::from_uac(call->invite, resp);
    send_stateless_to(call->dialog.make_ack(), call->pbx_host);
    if (const auto answer = Sdp::parse(resp.body())) {
      call->remote_ssrc = answer->audio.ssrc;
      if (call->remote_ssrc != 0) by_remote_ssrc_[call->remote_ssrc] = call;
      // Adopt the answered codec before any media flows: the negotiated
      // payload type — not the offer's first preference — drives this leg's
      // packetization, jitter-buffer sizing, and E-model Ie/Bpl.
      if (!answer->audio.payload_types.empty()) {
        const std::uint8_t pt = answer->audio.payload_types.front();
        if (pt != call->codec.payload_type) {
          if (const auto negotiated = rtp::codec_by_payload_type(pt)) {
            call->codec = *negotiated;
            call->rx = rtp::RtpReceiverStats{negotiated->sample_rate_hz};
            call->jbuf = rtp::JitterBuffer{*negotiated, scenario_.jitter_buffer};
          }
        }
      }
    }
    start_media(*call);
    const sim::CategoryScope cat_scope{network()->simulator(), sim::Category::kLoadgen};
    call->bye_timer =
        network()->simulator().schedule_in(call->hold, [this, index] { send_bye(index); });
    return;
  }

  Duration retry_after = Duration::zero();
  if (code == sip::status::kServiceUnavailable) {
    if (const std::string* after = resp.header("Retry-After")) {
      std::uint64_t secs = 0;
      if (util::parse_u64(*after, secs) && secs > 0 && secs < 3600) {
        retry_after = Duration::seconds(static_cast<std::int64_t>(secs));
      }
    }
    // Feed the dispatcher's per-backend backoff state: a Retry-After-bearing
    // 503 benches this backend so the next arrivals steer around it.
    if (dispatcher_ != nullptr) {
      dispatcher_->on_reject_503(call->pbx_host, retry_after);
      journey_instant(*call, jn_bench_, &call->pbx_host);
    }
  }

  // 503 with retry budget left: back off exponentially and re-attempt,
  // honouring the server's Retry-After hint for the base delay (the client
  // half of RFC 6357-style overload control).
  if (code == sip::status::kServiceUnavailable && scenario_.retry.enabled &&
      call->attempt < scenario_.retry.max_attempts &&
      network()->simulator().now() < TimePoint::at(scenario_.placement_window)) {
    const Duration base = retry_after > Duration::zero() ? retry_after : scenario_.retry.base_backoff;
    double delay_s =
        base.to_seconds() *
        std::pow(scenario_.retry.multiplier, static_cast<double>(call->attempt - 1));
    delay_s = std::min(delay_s, scenario_.retry.max_backoff.to_seconds());
    delay_s *= 1.0 + 0.1 * rng_.uniform();  // de-synchronise the herd
    schedule_retry(index, Duration::from_seconds(delay_s));
    return;
  }

  // Final error. 486/503/600 are the admission-control outcomes = blocked.
  const bool blocked = code == sip::status::kBusyHere ||
                       code == sip::status::kServiceUnavailable || code == 600;
  finish(index, blocked ? monitor::CallOutcome::kBlocked : monitor::CallOutcome::kFailed);
}

void SipCaller::on_invite_timeout(std::uint64_t index) {
  Call* call = find(index);
  if (call == nullptr) return;
  journey_instant(*call, jn_timeout_, call->pbx_host.empty() ? nullptr : &call->pbx_host);
  if (dispatcher_ != nullptr && !call->pbx_host.empty()) {
    // Strong down-signal: Timer B fired with no response at all. Tell the
    // circuit breaker, then fail the attempt over to a surviving backend —
    // the in-flight-INVITE half of failover (the probe loop only protects
    // calls that have not been routed yet).
    dispatcher_->on_invite_timeout(call->pbx_host);
    if (scenario_.retry.enabled && call->attempt < scenario_.retry.max_attempts) {
      dispatcher_->release(call->pbx_host);
      const std::string* host = dispatcher_->repick(call->pbx_host);
      if (host != nullptr) {
        ++call->attempt;
        ++retries_;
        ++failovers_;
        if (*host != call->pbx_host) ++retries_rerouted_;
        if (tm_retried_ != nullptr) tm_retried_->add();
        call->pbx_host = *host;
        journey_instant(*call, jn_failover_, &call->pbx_host);
        send_invite(*call);
        return;
      }
      ++dispatch_rejected_;
      call->pbx_host.clear();  // slot already released
    }
  }
  finish(index, monitor::CallOutcome::kFailed);
}

void SipCaller::start_media(Call& call) {
  const net::NodeId pbx_node = resolver().resolve(call.pbx_host);
  call.sender = std::make_unique<rtp::RtpSender>(
      network()->simulator(), call.codec, call.local_ssrc,
      [this, pbx_node](const rtp::RtpHeader& header, std::uint32_t bytes) {
        net::Packet pkt;
        pkt.dst = pbx_node;
        pkt.kind = net::PacketKind::kRtp;
        pkt.size_bytes = bytes;
        pkt.payload = std::make_shared<rtp::RtpPayload>(header, network()->simulator().now());
        send(std::move(pkt));
      });
  call.sender->set_packet_counter(tm_rtp_sent_);
  if (tracer_ != nullptr && call.journey != 0) call.sender->set_tracer(tracer_, call.journey);
  if (fluid_engine_ != nullptr) {
    call.sender->set_fluid(
        fluid_engine_,
        [this, pbx_node, spacing = call.codec.packet_interval()](
            const rtp::RtpHeader& first, std::uint32_t bytes, std::uint32_t count,
            TimePoint departure) {
          net::Packet pkt;
          pkt.dst = pbx_node;
          pkt.kind = net::PacketKind::kRtp;
          pkt.fluid = true;
          pkt.batch = static_cast<std::uint16_t>(count);
          pkt.size_bytes = bytes;
          pkt.payload = std::make_shared<rtp::RtpBatchPayload>(first, spacing, departure);
          send(std::move(pkt));
        });
  }
  call.sender->start();
  if (scenario_.rtcp) {
    call.rtcp = std::make_unique<rtp::RtcpSession>(
        network()->simulator(), rng_.fork(), call.local_ssrc, call.codec.sample_rate_hz,
        [this, pbx_node](const rtp::RtcpPayload& payload, std::uint32_t bytes) {
          ++rtcp_sent_;
          net::Packet pkt;
          pkt.dst = pbx_node;
          pkt.kind = net::PacketKind::kRtcp;
          pkt.size_bytes = bytes;
          pkt.payload = std::make_shared<rtp::RtcpPayload>(payload);
          send(std::move(pkt));
        });
    if (fluid_engine_ != nullptr) {
      // Per-SSRC on purpose: the report must read exact state for this
      // session's two streams only; a global flush per report would cost as
      // much as per-packet mode at scale.
      call.rtcp->set_pre_report_hook(
          [this, local = call.local_ssrc, remote = call.remote_ssrc] {
            fluid_engine_->flush_stream(local);
            if (remote != 0) fluid_engine_->flush_stream(remote);
          });
    }
    call.rtcp->start(call.sender.get(), &call.rx);
  }
}

void SipCaller::send_bye(std::uint64_t index) {
  Call* call = find(index);
  if (call == nullptr) return;
  if (call->sender != nullptr) call->sender->stop();
  if (fluid_engine_ != nullptr && call->remote_ssrc != 0) {
    // The BYE is about to fold the PBX bridge: the remote stream's pending
    // segment must land now, and its tail must race the BYE per-packet.
    fluid_engine_->exit_stream(call->remote_ssrc);
  }
  Message bye = call->dialog.make_request(Method::kBye);
  send_request_to(
      bye, call->pbx_host,
      [this, index](const Message& resp) {
        if (sip::is_final(resp.status_code())) {
          finish(index, monitor::CallOutcome::kCompleted);
        }
      },
      [this, index] { finish(index, monitor::CallOutcome::kCompleted); });
}

void SipCaller::finish(std::uint64_t index, monitor::CallOutcome outcome) {
  const auto it = calls_.find(index);
  if (it == calls_.end()) return;
  Call& call = *it->second;
  if (tracer_ != nullptr && call.setup_span != 0) {
    tracer_->end(call.setup_span, network()->simulator().now());
    call.setup_span = 0;
  }

  switch (outcome) {
    case monitor::CallOutcome::kCompleted:
      if (tm_completed_ != nullptr) tm_completed_->add();
      break;
    case monitor::CallOutcome::kBlocked:
      if (tm_blocked_ != nullptr) tm_blocked_->add();
      break;
    case monitor::CallOutcome::kFailed:
      if (tm_failed_ != nullptr) tm_failed_->add();
      break;
    case monitor::CallOutcome::kAbandoned:
      if (tm_abandoned_ != nullptr) tm_abandoned_->add();
      break;
  }

  monitor::CallRecord record;
  record.call_index = index;
  record.offered_at = call.offered_at;
  record.outcome = outcome;
  if (call.answered) {
    record.setup_delay = call.answered_at - call.offered_at;
    record.talk_time = network()->simulator().now() - call.answered_at;
    // Caller-heard quality (media from the callee, relayed by the PBX).
    const std::uint64_t expected = call.rx.expected();
    const std::uint64_t missing = call.rx.lost() + call.jbuf.discarded_late();
    record.loss_caller_heard =
        expected == 0
            ? 0.0
            : std::min(1.0, static_cast<double>(missing) / static_cast<double>(expected));
    record.jitter_caller_heard = call.rx.jitter();
    record.rtp_received_caller = call.rx.received();
    const auto inputs = media::inputs_for_codec(
        call.codec, Duration::from_seconds(call.transit_s.mean()), call.jbuf.playout_delay(),
        record.loss_caller_heard);
    record.mos_caller_heard = media::estimate_mos(inputs);
    if (tm_setup_delay_ms_ != nullptr) tm_setup_delay_ms_->observe(record.setup_delay.to_millis());
    if (tm_mos_ != nullptr && record.mos_caller_heard) tm_mos_->observe(*record.mos_caller_heard);
  }
  log_.add(std::move(record));

  if (dispatcher_ != nullptr && !call.pbx_host.empty()) dispatcher_->release(call.pbx_host);
  if (call.bye_timer != 0) network()->simulator().cancel(call.bye_timer);
  if (call.retry_timer != 0) network()->simulator().cancel(call.retry_timer);
  if (call.remote_ssrc != 0) by_remote_ssrc_.erase(call.remote_ssrc);
  if (call.sender != nullptr) call.sender->stop();
  if (call.rtcp != nullptr) {
    call.rtcp->stop();
    if (call.rtcp->rtt() > Duration::zero()) rtcp_rtt_ms_.add(call.rtcp->rtt().to_millis());
  }
  calls_.erase(it);

  if (scenario_.finite_population > 0) user_became_idle();
}

void SipCaller::finalize_remaining() {
  std::vector<std::uint64_t> open;
  open.reserve(calls_.size());
  for (const auto& [index, call] : calls_) open.push_back(index);
  for (const std::uint64_t index : open) finish(index, monitor::CallOutcome::kAbandoned);
}

void SipCaller::handle_rtp(const net::Packet& pkt) {
  if (const auto* rtp = pkt.payload_as<rtp::RtpPayload>()) {
    const auto it = by_remote_ssrc_.find(rtp->header.ssrc);
    if (it == by_remote_ssrc_.end()) return;
    Call& call = *it->second;
    const TimePoint now = network()->simulator().now();
    call.rx.on_packet(rtp->header, now);
    call.jbuf.on_packet(rtp->header, now);
    call.transit_s.add((now - rtp->originated_at).to_seconds());
    return;
  }
  const auto* batch = pkt.payload_as<rtp::RtpBatchPayload>();
  if (batch == nullptr) return;
  const auto it = by_remote_ssrc_.find(batch->first.ssrc);
  if (it == by_remote_ssrc_.end()) return;
  Call& call = *it->second;
  // Nominal per-packet arrivals: departure grid shifted by the constant
  // path latency the batch accumulated hop by hop.
  const TimePoint first_arrival = batch->first_departure + batch->path_latency;
  call.rx.on_batch(batch->first, first_arrival, batch->spacing,
                   call.codec.timestamp_step(), pkt.batch);
  call.jbuf.on_batch(batch->first, first_arrival, batch->spacing, pkt.batch);
  call.transit_s.add_repeated(batch->path_latency.to_seconds(), pkt.batch);
}

void SipCaller::on_receive(const net::Packet& pkt) {
  if (pkt.kind == net::PacketKind::kRtp) {
    handle_rtp(pkt);
    return;
  }
  if (pkt.kind == net::PacketKind::kRtcp) {
    if (const auto* rtcp = pkt.payload_as<rtp::RtcpPayload>()) {
      const auto it = by_remote_ssrc_.find(rtcp->routing_ssrc());
      if (it != by_remote_ssrc_.end() && it->second->rtcp != nullptr) {
        ++rtcp_received_;
        it->second->rtcp->on_report(*rtcp, network()->simulator().now());
      }
    }
    return;
  }
  sip::SipEndpoint::on_receive(pkt);
}

}  // namespace pbxcap::loadgen
