// Traffic scenario description — the knobs of the paper's empirical method.
//
// §III-C: "The SIP Client generates calls with an arrival rate of lambda;
// the SIP Server answers the calls; both exchange RTP packets for h seconds."
// Offered traffic A = lambda * h Erlangs. The paper uses a 180 s placement
// window and h = 120 s deterministic hold time.
#pragma once

#include <cstdint>
#include <vector>

#include "rtp/codec.hpp"
#include "rtp/jitter_buffer.hpp"
#include "sim/random.hpp"
#include "util/time.hpp"

namespace pbxcap::loadgen {

/// Caller reaction to 503 Service Unavailable: exponential backoff with a
/// retry budget (the client half of SIP overload control). The server's
/// Retry-After header, when present, replaces `base_backoff` as the first
/// delay; each further attempt doubles (times `multiplier`) up to
/// `max_backoff`, with up to +10 % deterministic jitter so a cohort of
/// callers rejected together does not return as one thundering herd.
struct RetryPolicy {
  bool enabled{false};
  std::uint32_t max_attempts{4};  // total INVITEs per call, first included
  Duration base_backoff{Duration::seconds(2)};
  double multiplier{2.0};
  Duration max_backoff{Duration::seconds(16)};
};

struct CallScenario {
  /// Mean call arrival rate (calls per second). For a target offered load A
  /// in Erlangs: lambda = A / h.
  double arrival_rate_per_s{1.0};
  /// Calls are offered during [0, placement_window).
  Duration placement_window{Duration::seconds(180)};
  /// Mean call duration h.
  Duration hold_time{Duration::seconds(120)};
  sim::HoldTimeModel hold_model{sim::HoldTimeModel::kDeterministic};
  double hold_cv{1.0};  // lognormal only
  /// Voice codec for the media streams (paper: G.711 ulaw). When
  /// `codec_mix` is non-empty this is only the fallback for calls placed
  /// before the mix was configured — see below.
  rtp::Codec codec{rtp::g711_ulaw()};
  /// One entry of the weighted codec mix.
  struct CodecShare {
    rtp::Codec codec;
    double weight{1.0};
  };
  /// Scenario-weighted codec preference mix (e.g. 60% PCMU / 30% G729 /
  /// 10% iLBC). Each offered call draws its *preferred* codec from this
  /// distribution and offers it first, followed by the remaining mix codecs
  /// in declared order (its fallback list) — the SDP offer the PBX filters
  /// and the receiver answers. Empty keeps the classic single-codec
  /// scenario: every call offers `codec` alone and the arrival process
  /// consumes the exact same RNG sequence as before.
  std::vector<CodecShare> codec_mix{};
  /// Payload types the receiver endpoint is willing to answer (its allow
  /// list, matched against the offer via Sdp::negotiate). Empty = every
  /// catalog codec. A no-overlap offer is rejected with 488 Not Acceptable
  /// Here; restricting this set against a caller mix is how a run forces
  /// the PBX into transcoded bridges.
  std::vector<std::uint8_t> receiver_payload_types{};
  /// Callee behaviour: delay between 180 Ringing and 200 OK.
  Duration answer_delay{Duration::millis(200)};
  /// Receiver-side playout buffer.
  rtp::JitterBufferConfig jitter_buffer{};
  /// Exchange RTCP sender/receiver reports alongside the media (off by
  /// default to keep Table I's RTP census identical to the paper's).
  bool rtcp{false};
  /// 0 = infinite population (Poisson). Otherwise an Engset-style finite
  /// source model: `finite_population` users, each idle user re-attempting
  /// at `per_user_rate_per_s`; `arrival_rate_per_s` is ignored.
  std::uint32_t finite_population{0};
  double per_user_rate_per_s{0.0};
  /// Hard cap on total attempts (0 = unlimited).
  std::uint64_t max_calls{0};
  /// 503 backoff-and-retry behaviour (off by default: Table-I callers take
  /// the blocking at face value, as the paper's SIPp scenario does).
  RetryPolicy retry{};
  /// Second traffic class: a fraction of calls dial an ACD queue
  /// ("queue-<name>") instead of a plain receiver. 0 keeps the classic
  /// single-class scenario (and draws no extra random numbers).
  struct AcdTraffic {
    double fraction{0.0};          // probability a call targets the queue
    std::string queue{"support"};  // AcdQueueConfig::name to dial
  };
  AcdTraffic acd{};

  [[nodiscard]] double offered_erlangs() const noexcept {
    return arrival_rate_per_s * hold_time.to_seconds();
  }

  /// Scenario for a target offered load (the usual way to build one).
  [[nodiscard]] static CallScenario for_offered_load(double erlangs,
                                                     Duration hold = Duration::seconds(120)) {
    CallScenario s;
    s.hold_time = hold;
    s.arrival_rate_per_s = erlangs / hold.to_seconds();
    return s;
  }
};

}  // namespace pbxcap::loadgen
