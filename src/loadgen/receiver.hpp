// SIP call receiver — the auto-answering SIPp UAS host of Fig. 4.
//
// Answers every INVITE (180 Ringing, then 200 OK after the configured
// answer delay), streams RTP back for the life of the call, and keeps
// per-call received-quality statistics that the experiment harness merges
// with the caller's log.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "loadgen/scenario.hpp"
#include "monitor/call_log.hpp"
#include "rtp/jitter_buffer.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/stream.hpp"
#include "sim/random.hpp"
#include "sip/dialog.hpp"
#include "sip/endpoint.hpp"
#include "sip/sdp.hpp"
#include "stats/summary.hpp"

namespace pbxcap::rtp {
class FluidEngine;
}

namespace pbxcap::loadgen {

/// What one direction of a finished call looked like to its listener.
struct HeardQuality {
  double mos{0.0};
  double effective_loss{0.0};  // network loss + late jitter-buffer discards
  Duration jitter{};
  Duration mean_transit{};
  std::uint64_t rtp_received{0};
};

class SipReceiver final : public sip::SipEndpoint {
 public:
  SipReceiver(std::string host, sim::Simulator& simulator, sip::HostResolver& resolver,
              rtp::SsrcAllocator& ssrcs, const CallScenario& scenario);

  void on_receive(const net::Packet& pkt) override;

  /// Adds the answered-call counter and the receiver-side RTP send counter
  /// on top of the base endpoint instrumentation.
  void set_telemetry(telemetry::Telemetry* tel) override;

  /// Opts this endpoint's media senders into the hybrid fluid fast path.
  /// Must be set before calls are answered; the engine must outlive the run.
  void set_fluid_engine(rtp::FluidEngine* engine) noexcept { fluid_engine_ = engine; }

  /// Received-side quality for the call with the given index ("recv-<idx>"
  /// user part), available once the call has been torn down.
  [[nodiscard]] const HeardQuality* finished(std::uint64_t call_index) const;

  [[nodiscard]] std::uint64_t calls_answered() const noexcept { return answered_; }
  /// Offers rejected with 488 Not Acceptable Here (no codec overlap between
  /// the offer and this endpoint's supported set).
  [[nodiscard]] std::uint64_t rejected_488() const noexcept { return rejected_488_; }
  [[nodiscard]] std::uint64_t calls_finished() const noexcept {
    return static_cast<std::uint64_t>(finished_.size());
  }
  [[nodiscard]] std::size_t active_sessions() const noexcept { return sessions_.size(); }

 private:
  struct Session {
    std::uint64_t call_index{0};
    /// False for destinations with no caller-side index (ACD agent legs,
    /// "queue-*" users): their quality must not land in finished_[0].
    bool report_quality{true};
    sip::Dialog dialog;
    rtp::Codec codec;
    std::uint32_t local_ssrc{0};
    std::uint32_t remote_ssrc{0};
    net::NodeId media_dst{net::kInvalidNode};
    std::unique_ptr<rtp::RtpSender> sender;
    std::unique_ptr<rtp::RtcpSession> rtcp;
    rtp::RtpReceiverStats rx;
    rtp::JitterBuffer jbuf;
    stats::Summary transit_s;  // per-packet end-to-end transit (seconds)
  };

  void handle_invite(const sip::Message& req, sip::ServerTransaction& txn);
  void answer(const sip::Message& invite, sip::ServerTransaction& txn);
  void handle_bye(const sip::Message& req, sip::ServerTransaction& txn);
  void handle_ack(const sip::Message& ack);
  void handle_rtp(const net::Packet& pkt);
  void start_media(Session& session);
  [[nodiscard]] HeardQuality summarize(const Session& session) const;

  rtp::SsrcAllocator& ssrcs_;
  CallScenario scenario_;
  rtp::FluidEngine* fluid_engine_{nullptr};
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;  // by Call-ID
  std::unordered_map<std::uint32_t, Session*> by_remote_ssrc_;
  std::unordered_map<std::uint64_t, HeardQuality> finished_;
  std::uint64_t answered_{0};
  std::uint64_t rejected_488_{0};
  sim::Random rtcp_rng_{0xACE5};

  // Telemetry handles; null when telemetry is absent or disabled.
  telemetry::SpanTracer* tracer_{nullptr};
  telemetry::Counter* tm_answered_{nullptr};
  telemetry::Counter* tm_rejected_488_{nullptr};
  telemetry::Counter* tm_rtp_sent_{nullptr};
};

/// Extracts <idx> from a "recv-<idx>" / "caller-<idx>" style user part.
[[nodiscard]] std::optional<std::uint64_t> call_index_of_user(std::string_view user);

}  // namespace pbxcap::loadgen
