// SIP call generator — the SIPp UAC host of Fig. 4.
//
// Offers calls to the PBX at rate lambda (Poisson arrivals, or finite-source
// arrivals in Engset mode), runs the Fig. 2 caller-side ladder, streams RTP
// for the drawn hold time, and records every attempt's outcome and heard
// quality in a monitor::CallLog.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "loadgen/scenario.hpp"
#include "monitor/call_log.hpp"
#include "rtp/jitter_buffer.hpp"
#include "rtp/packet.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/stream.hpp"
#include "sim/random.hpp"
#include "sip/dialog.hpp"
#include "sip/endpoint.hpp"
#include "stats/summary.hpp"
#include "telemetry/span.hpp"

namespace pbxcap::dispatch {
class Dispatcher;
}
namespace pbxcap::rtp {
class FluidEngine;
}

namespace pbxcap::loadgen {

class SipCaller final : public sip::SipEndpoint {
 public:
  SipCaller(std::string host, std::string pbx_host, sim::Simulator& simulator,
            sip::HostResolver& resolver, rtp::SsrcAllocator& ssrcs, CallScenario scenario,
            sim::Random rng);

  /// Cluster variant: calls are spread round-robin over several PBX hosts
  /// (the paper's "increasing the number of servers" alternative, fronted
  /// by DNS-style rotation).
  SipCaller(std::string host, std::vector<std::string> pbx_hosts, sim::Simulator& simulator,
            sip::HostResolver& resolver, rtp::SsrcAllocator& ssrcs, CallScenario scenario,
            sim::Random rng);

  /// Routes calls through a dispatch::Dispatcher instead of blind rotation:
  /// every new call asks the dispatcher for a backend, 503s/timeouts are
  /// reported back (feeding its backoff and circuit-breaker state), and
  /// retries/failovers re-pick so they land on a surviving backend. The
  /// dispatcher is owned by the caller of this method and must outlive the
  /// run. Null restores the DNS-rotation behaviour.
  void set_dispatcher(dispatch::Dispatcher* dispatcher) noexcept { dispatcher_ = dispatcher; }

  /// Opts this endpoint's media senders into the hybrid fluid fast path.
  /// Must be set before start(); the engine must outlive the run.
  void set_fluid_engine(rtp::FluidEngine* engine) noexcept { fluid_engine_ = engine; }

  /// Begins offering calls at t = now.
  void start();

  void on_receive(const net::Packet& pkt) override;

  /// Adds per-outcome call counters, setup-delay / MOS histograms, and the
  /// caller-side RTP send counter on top of the base instrumentation.
  void set_telemetry(telemetry::Telemetry* tel) override;

  /// Marks still-open calls as abandoned; call at the experiment horizon.
  void finalize_remaining();

  [[nodiscard]] monitor::CallLog& log() noexcept { return log_; }
  [[nodiscard]] const monitor::CallLog& log() const noexcept { return log_; }
  [[nodiscard]] std::uint64_t rtcp_reports_sent() const noexcept { return rtcp_sent_; }
  [[nodiscard]] std::uint64_t rtcp_reports_received() const noexcept { return rtcp_received_; }
  /// Mean smoothed RTCP round-trip across finished calls (zero without RTCP).
  [[nodiscard]] const stats::Summary& rtcp_rtt_ms() const noexcept { return rtcp_rtt_ms_; }
  [[nodiscard]] std::uint64_t calls_offered() const noexcept { return next_call_index_; }
  [[nodiscard]] std::size_t active_calls() const noexcept { return calls_.size(); }
  /// 503-triggered INVITE re-attempts (scenario_.retry must be enabled).
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  /// Re-attempts that changed backend (dispatcher repick or DNS rotation).
  [[nodiscard]] std::uint64_t retries_rerouted() const noexcept { return retries_rerouted_; }
  /// Timed-out INVITEs rescued onto another backend (dispatcher mode only).
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  /// Calls the dispatcher could not place anywhere (all backends ejected).
  [[nodiscard]] std::uint64_t dispatch_rejected() const noexcept { return dispatch_rejected_; }

 private:
  struct Call {
    std::uint64_t index{0};
    std::string pbx_host;  // which server carries this call
    TimePoint offered_at{};
    TimePoint answered_at{};
    Duration hold{};
    rtp::Codec codec;
    std::uint32_t local_ssrc{0};
    std::uint32_t remote_ssrc{0};
    sip::Message invite;
    sip::Dialog dialog;
    std::unique_ptr<rtp::RtpSender> sender;
    std::unique_ptr<rtp::RtcpSession> rtcp;
    rtp::RtpReceiverStats rx;
    rtp::JitterBuffer jbuf{rtp::g711_ulaw(), {}};  // re-made per call codec
    stats::Summary transit_s;
    bool answered{false};
    bool acd{false};  // dials "queue-<name>" instead of its paired receiver
    sim::EventId bye_timer{0};
    std::uint32_t attempt{1};        // INVITEs sent for this call so far
    sim::EventId retry_timer{0};     // pending 503 backoff, 0 when none
    std::uint32_t population_user{0};  // finite mode: which user placed it
    std::uint64_t journey{0};        // span track for this call's journey
    telemetry::SpanTracer::SpanId setup_span{0};
  };

  void schedule_next_arrival();
  void place_call();
  void send_invite(Call& call);
  void schedule_retry(std::uint64_t index, Duration delay);
  /// Re-targets `call` for its next attempt (dispatcher repick, or DNS
  /// rotation with several hosts). False = nowhere to go; the call was
  /// finished as blocked and must not be re-sent.
  [[nodiscard]] bool reroute_for_retry(Call& call);
  void on_invite_response(std::uint64_t index, const sip::Message& resp);
  void on_invite_timeout(std::uint64_t index);
  void start_media(Call& call);
  void send_bye(std::uint64_t index);
  void finish(std::uint64_t index, monitor::CallOutcome outcome);
  void handle_rtp(const net::Packet& pkt);
  [[nodiscard]] Call* find(std::uint64_t index);
  /// Draws a call's preferred codec from the scenario mix. No RNG is
  /// consumed when the mix is empty or has a single entry, so classic
  /// single-codec runs keep their exact event sequence.
  [[nodiscard]] rtp::Codec draw_codec();

  // Finite-population bookkeeping (Engset mode).
  void user_became_idle();

  std::vector<std::string> pbx_hosts_;
  dispatch::Dispatcher* dispatcher_{nullptr};
  rtp::FluidEngine* fluid_engine_{nullptr};
  rtp::SsrcAllocator& ssrcs_;
  CallScenario scenario_;
  sim::Random rng_;
  monitor::CallLog log_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Call>> calls_;  // by index
  std::unordered_map<std::uint32_t, Call*> by_remote_ssrc_;
  std::uint64_t next_call_index_{0};
  std::uint64_t retries_{0};
  std::uint64_t retries_rerouted_{0};
  std::uint64_t failovers_{0};
  std::uint64_t dispatch_rejected_{0};
  std::uint64_t rtcp_sent_{0};
  std::uint64_t rtcp_received_{0};
  stats::Summary rtcp_rtt_ms_;
  std::uint32_t idle_users_{0};  // finite mode
  sim::EventId arrival_timer_{0};
  bool started_{false};
  bool window_closed_{false};

  /// Records an instant on `call`'s journey track; no-op without tracing.
  void journey_instant(Call& call, std::uint32_t name, const std::string* detail = nullptr);

  // Telemetry handles; null when telemetry is absent or disabled.
  telemetry::SpanTracer* tracer_{nullptr};
  std::uint32_t jn_pick_{0};
  std::uint32_t jn_repick_{0};
  std::uint32_t jn_reject_{0};
  std::uint32_t jn_bench_{0};
  std::uint32_t jn_timeout_{0};
  std::uint32_t jn_failover_{0};
  std::uint32_t jn_setup_{0};
  telemetry::Counter* tm_offered_{nullptr};
  telemetry::Counter* tm_completed_{nullptr};
  telemetry::Counter* tm_blocked_{nullptr};
  telemetry::Counter* tm_failed_{nullptr};
  telemetry::Counter* tm_abandoned_{nullptr};
  telemetry::Counter* tm_retried_{nullptr};
  telemetry::Counter* tm_rtp_sent_{nullptr};
  telemetry::Histogram* tm_setup_delay_ms_{nullptr};
  telemetry::Histogram* tm_mos_{nullptr};
};

}  // namespace pbxcap::loadgen
