#include "dispatch/dispatcher.hpp"

#include <stdexcept>

#include "sim/profile.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pbxcap::dispatch {

using sip::Message;
using sip::Method;

const char* to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kRoundRobin: return "round_robin";
    case Policy::kLeastLoaded: return "least_loaded";
    case Policy::kWeighted: return "weighted";
  }
  return "?";
}

const char* to_string(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half_open";
  }
  return "?";
}

Dispatcher::Dispatcher(std::string host, std::vector<BackendConfig> backends,
                       DispatcherConfig config, sim::Simulator& simulator,
                       sip::HostResolver& resolver)
    : sip::SipEndpoint{"dispatcher", std::move(host), simulator, resolver}, config_{config} {
  if (backends.empty()) throw std::invalid_argument{"Dispatcher: need at least one backend"};
  backends_.reserve(backends.size());
  for (auto& b : backends) {
    if (b.weight == 0) throw std::invalid_argument{"Dispatcher: backend weight must be > 0"};
    Backend backend;
    backend.cfg = std::move(b);
    wrr_total_weight_ += backend.cfg.weight;
    backends_.push_back(std::move(backend));
  }
  // The dispatcher never receives requests (probes are client transactions).
  transactions().on_request = [](const Message&, sip::ServerTransaction&) {};
  transactions().on_ack = [](const Message&) {};
}

void Dispatcher::start() {
  if (started_ || !config_.health.enabled) return;
  started_ = true;
  const sim::CategoryScope cat_scope{transactions().simulator(), sim::Category::kDispatch};
  transactions().simulator().schedule_in(config_.health.probe_period, [this] { probe_tick(); });
}

// ----------------------------------------------------------------- routing --

bool Dispatcher::eligible(const Backend& backend, TimePoint now) const {
  if (backend.circuit != CircuitState::kClosed) return false;
  return now >= backend.benched_until;
}

const std::string* Dispatcher::pick_excluding(const std::string* exclude) {
  const TimePoint now = transactions().simulator().now();
  const std::size_t n = backends_.size();

  // Candidate set: closed circuits off the 503 bench. The excluded backend
  // only drops out if someone else is still eligible — failing over onto the
  // sole survivor beats failing the call.
  std::uint32_t candidates = 0;
  std::uint32_t candidates_excluding = 0;
  for (const Backend& b : backends_) {
    if (!eligible(b, now)) continue;
    ++candidates;
    if (exclude == nullptr || b.cfg.host != *exclude) ++candidates_excluding;
  }
  const bool honour_exclude = candidates_excluding > 0;
  if (candidates == 0) {
    ++picks_rejected_;
    return nullptr;
  }
  const auto allowed = [&](const Backend& b) {
    if (!eligible(b, now)) return false;
    return !honour_exclude || exclude == nullptr || b.cfg.host != *exclude;
  };

  Backend* chosen = nullptr;
  switch (config_.policy) {
    case Policy::kRoundRobin: {
      for (std::size_t step = 0; step < n; ++step) {
        Backend& b = backends_[(rr_next_ + step) % n];
        if (allowed(b)) {
          chosen = &b;
          rr_next_ = static_cast<std::uint32_t>((rr_next_ + step + 1) % n);
          break;
        }
      }
      break;
    }
    case Policy::kLeastLoaded: {
      // Fewest live calls wins; ties resolve round-robin so equal backends
      // share load instead of the lowest index soaking it all up.
      std::uint32_t best = UINT32_MAX;
      for (const Backend& b : backends_) {
        if (allowed(b) && b.occupancy < best) best = b.occupancy;
      }
      for (std::size_t step = 0; step < n; ++step) {
        Backend& b = backends_[(rr_next_ + step) % n];
        if (allowed(b) && b.occupancy == best) {
          chosen = &b;
          rr_next_ = static_cast<std::uint32_t>((rr_next_ + step + 1) % n);
          break;
        }
      }
      break;
    }
    case Policy::kWeighted: {
      // Smooth WRR over the eligible set: add each weight, take the highest
      // running score, subtract the eligible total from the winner. Exact
      // weight proportions over every total-weight-length window, no bursts.
      std::int64_t eligible_weight = 0;
      for (Backend& b : backends_) {
        if (!allowed(b)) continue;
        b.wrr_current += b.cfg.weight;
        eligible_weight += b.cfg.weight;
        if (chosen == nullptr || b.wrr_current > chosen->wrr_current) chosen = &b;
      }
      if (chosen != nullptr) chosen->wrr_current -= eligible_weight;
      break;
    }
  }
  if (chosen == nullptr) {  // unreachable given candidates > 0, but be safe
    ++picks_rejected_;
    return nullptr;
  }
  ++chosen->occupancy;
  ++chosen->calls_routed;
  ++picks_total_;
  return &chosen->cfg.host;
}

std::uint32_t Dispatcher::open_circuits() const noexcept {
  std::uint32_t n = 0;
  for (const Backend& b : backends_) {
    if (b.circuit != CircuitState::kClosed) ++n;
  }
  return n;
}

std::uint32_t Dispatcher::benched_backends(TimePoint now) const noexcept {
  std::uint32_t n = 0;
  for (const Backend& b : backends_) {
    if (now < b.benched_until) ++n;
  }
  return n;
}

Dispatcher::Backend* Dispatcher::by_host(const std::string& host) {
  for (Backend& b : backends_) {
    if (b.cfg.host == host) return &b;
  }
  return nullptr;
}

void Dispatcher::release(const std::string& host) {
  if (Backend* b = by_host(host); b != nullptr && b->occupancy > 0) --b->occupancy;
}

void Dispatcher::on_call_admitted(const std::string& host) {
  (void)by_host(host);  // occupancy was claimed at pick time; nothing extra yet
}

void Dispatcher::on_reject_503(const std::string& host, Duration retry_after) {
  Backend* b = by_host(host);
  if (b == nullptr) return;
  ++b->rejections_503;
  Duration bench = retry_after > Duration::zero() ? retry_after : config_.default_backoff;
  if (bench > Duration::zero()) {
    const TimePoint until = transactions().simulator().now() + bench;
    if (until > b->benched_until) b->benched_until = until;
  }
}

void Dispatcher::on_invite_timeout(const std::string& host) {
  Backend* b = by_host(host);
  if (b == nullptr) return;
  ++b->invite_timeouts;
  record_failure(*b);
}

// ------------------------------------------------------------ health probes --

void Dispatcher::probe_tick() {
  const TimePoint now = transactions().simulator().now();
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = backends_[i];
    if (b.circuit == CircuitState::kOpen) {
      if (now < b.half_open_at) continue;  // still cooling down
      b.circuit = CircuitState::kHalfOpen;
      b.consecutive_successes = 0;
    }
    if (!b.probe_pending) send_probe(i);
  }
  const sim::CategoryScope cat_scope{transactions().simulator(), sim::Category::kDispatch};
  transactions().simulator().schedule_in(config_.health.probe_period, [this] { probe_tick(); });
}

void Dispatcher::send_probe(std::size_t i) {
  Backend& b = backends_[i];
  b.probe_pending = true;
  const std::uint64_t seq = ++b.probe_seq;
  ++b.probes_sent;
  ++probes_sent_;

  Message options = Message::request(Method::kOptions, sip::Uri{"ping", b.cfg.host});
  options.from() = sip::NameAddr{sip::Uri{"dispatcher", sip_host()}, new_tag()};
  options.to() = sip::NameAddr{sip::Uri{"ping", b.cfg.host}, ""};
  options.set_call_id(util::format("probe-%llu@%s",
                                   static_cast<unsigned long long>(++probe_cseq_),
                                   sip_host().c_str()));
  options.set_cseq({1, Method::kOptions});

  send_request_to(
      std::move(options), b.cfg.host,
      [this, i, seq](const Message& resp) {
        if (sip::is_final(resp.status_code())) on_probe_result(i, seq, true);
      },
      [this, i, seq] { on_probe_result(i, seq, false); });

  // Dispatcher-side deadline, far shorter than SIP Timer F: no answer by
  // now + probe_timeout counts as a failure even though the transaction
  // keeps retransmitting underneath.
  const sim::CategoryScope cat_scope{transactions().simulator(), sim::Category::kDispatch};
  transactions().simulator().schedule_in(config_.health.probe_timeout, [this, i, seq] {
    on_probe_result(i, seq, false);
  });
}

void Dispatcher::on_probe_result(std::size_t i, std::uint64_t seq, bool ok) {
  Backend& b = backends_[i];
  if (!b.probe_pending || seq != b.probe_seq) return;  // stale probe resolved twice
  b.probe_pending = false;
  if (ok) {
    record_success(b);
  } else {
    ++b.probe_failures;
    ++probe_failures_;
    record_failure(b);
  }
}

void Dispatcher::record_failure(Backend& backend) {
  backend.consecutive_successes = 0;
  if (backend.circuit == CircuitState::kHalfOpen) {
    // A failed trial re-opens immediately and restarts the cooldown.
    backend.circuit = CircuitState::kOpen;
    backend.half_open_at = transactions().simulator().now() + config_.health.open_cooldown;
    return;
  }
  if (backend.circuit == CircuitState::kClosed &&
      ++backend.consecutive_failures >= config_.health.fail_threshold) {
    backend.circuit = CircuitState::kOpen;
    backend.half_open_at = transactions().simulator().now() + config_.health.open_cooldown;
    ++backend.circuit_opens;
    ++circuit_opens_;
    util::log_debug("dispatch",
                    util::format("t=%.3fs circuit OPEN for %s",
                                 transactions().simulator().now().to_seconds(),
                                 backend.cfg.host.c_str()));
  }
}

void Dispatcher::record_success(Backend& backend) {
  backend.consecutive_failures = 0;
  if (backend.circuit == CircuitState::kHalfOpen) {
    if (++backend.consecutive_successes >= config_.health.close_threshold) {
      backend.circuit = CircuitState::kClosed;
      backend.consecutive_successes = 0;
      util::log_debug("dispatch",
                      util::format("t=%.3fs circuit CLOSED for %s",
                                   transactions().simulator().now().to_seconds(),
                                   backend.cfg.host.c_str()));
    }
  }
}

BackendStats Dispatcher::backend_stats(std::size_t i) const {
  const Backend& b = backends_[i];
  BackendStats out;
  out.host = b.cfg.host;
  out.circuit = b.circuit;
  out.occupancy = b.occupancy;
  out.calls_routed = b.calls_routed;
  out.rejections_503 = b.rejections_503;
  out.invite_timeouts = b.invite_timeouts;
  out.probes_sent = b.probes_sent;
  out.probe_failures = b.probe_failures;
  out.circuit_opens = b.circuit_opens;
  return out;
}

}  // namespace pbxcap::dispatch
