// SIP dispatcher — the cluster's routing front end.
//
// Sits between the caller bank and the PBX fleet (the role a Kamailio/
// OpenSIPS dispatcher or an SRV-priority DNS tier plays in production) and
// owns all per-backend routing state:
//
//   * pluggable balancing policies — static round-robin, least-loaded by
//     live channel occupancy (the dispatcher's own admitted-minus-released
//     accounting), and smooth weighted round-robin for heterogeneous fleets;
//   * 503/Retry-After-aware backoff: a backend that sheds an INVITE with a
//     Retry-After hint is benched for the advertised time instead of being
//     hammered by the very next arrival;
//   * active health checks: periodic SIP OPTIONS probes with a short
//     dispatcher-side timeout (not Timer F) drive a per-backend circuit
//     breaker — closed -> open after `fail_threshold` consecutive failures,
//     open -> half-open probing after `open_cooldown`, half-open -> closed
//     after `close_threshold` consecutive successes. INVITE timeouts
//     reported by the caller bank count as failures too, so a crashed
//     backend is ejected even between probe ticks.
//
// Routing is a local function call (pick/release), not a proxied SIP hop:
// the model is a redirect-style front end, so the media path and the
// Fig. 2 message ladder stay exactly as the paper measures them. Everything
// is driven off the simulator clock — same seed, same decisions, byte-
// identical reruns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sip/endpoint.hpp"
#include "util/time.hpp"

namespace pbxcap::dispatch {

enum class Policy : std::uint8_t {
  kRoundRobin,   // rotate over eligible backends
  kLeastLoaded,  // fewest live calls (dispatcher-tracked occupancy)
  kWeighted,     // smooth weighted round-robin (nginx algorithm)
};

[[nodiscard]] const char* to_string(Policy policy) noexcept;

enum class CircuitState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(CircuitState state) noexcept;

/// Active-probe and circuit-breaker parameters.
struct HealthConfig {
  bool enabled{true};
  Duration probe_period{Duration::seconds(1)};
  /// Dispatcher-side probe deadline; far below SIP Timer F so a dead
  /// backend is detected in seconds, not half-minutes.
  Duration probe_timeout{Duration::millis(500)};
  std::uint32_t fail_threshold{3};   // consecutive failures -> open
  Duration open_cooldown{Duration::seconds(2)};  // open -> half-open probing
  std::uint32_t close_threshold{2};  // consecutive half-open successes -> closed
};

struct DispatcherConfig {
  Policy policy{Policy::kRoundRobin};
  HealthConfig health{};
  /// Bench time for a 503 whose Retry-After header is absent or unusable.
  /// Zero = plain 503s do not bench the backend (they usually mean "this
  /// call lost the race for the last channel", not "the box is down").
  Duration default_backoff{Duration::zero()};
};

/// One fleet member as the dispatcher sees it.
struct BackendConfig {
  std::string host;
  std::uint32_t weight{1};  // kWeighted only; e.g. channels_per_server
};

/// Cumulative per-backend routing/health observations.
struct BackendStats {
  std::string host;
  CircuitState circuit{CircuitState::kClosed};
  std::uint32_t occupancy{0};        // live calls currently assigned
  std::uint64_t calls_routed{0};     // picks that landed here
  std::uint64_t rejections_503{0};   // caller-reported 503s
  std::uint64_t invite_timeouts{0};  // caller-reported INVITE timeouts
  std::uint64_t probes_sent{0};
  std::uint64_t probe_failures{0};
  std::uint64_t circuit_opens{0};
};

class Dispatcher final : public sip::SipEndpoint {
 public:
  Dispatcher(std::string host, std::vector<BackendConfig> backends, DispatcherConfig config,
             sim::Simulator& simulator, sip::HostResolver& resolver);

  /// Starts the OPTIONS probe loop (requires the node to be attached and
  /// bound). Without health checks enabled this is a no-op.
  void start();

  /// Chooses a backend for a new call and claims one occupancy slot on it.
  /// Returns nullptr when no backend is eligible (every circuit open or
  /// bench non-empty) — the dispatcher's own 503, in effect.
  [[nodiscard]] const std::string* pick() { return pick_excluding(nullptr); }

  /// Failover variant: re-picks for an in-flight call, avoiding the backend
  /// it just failed on (unless that is the only eligible one).
  [[nodiscard]] const std::string* repick(const std::string& exclude) {
    return pick_excluding(&exclude);
  }

  /// Releases the occupancy slot claimed by pick()/repick(). Call exactly
  /// once per claim, when the call leaves the backend (finished, blocked,
  /// or rerouted away).
  void release(const std::string& host);

  // ---- caller-bank feedback ----

  /// The backend answered the INVITE 200 OK (stats only; the slot was
  /// already claimed at pick time).
  void on_call_admitted(const std::string& host);

  /// The backend shed or rejected an INVITE with 503. `retry_after` > 0
  /// benches the backend until now + retry_after (RFC 6357 client duty).
  void on_reject_503(const std::string& host, Duration retry_after);

  /// The INVITE transaction timed out — strong evidence the backend is
  /// down; counts toward the circuit breaker like a failed probe.
  void on_invite_timeout(const std::string& host);

  // ---- observations ----

  [[nodiscard]] const DispatcherConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t backend_count() const noexcept { return backends_.size(); }
  [[nodiscard]] BackendStats backend_stats(std::size_t i) const;
  [[nodiscard]] CircuitState circuit(std::size_t i) const { return backends_[i].circuit; }
  [[nodiscard]] std::uint32_t occupancy(std::size_t i) const { return backends_[i].occupancy; }
  /// pick()/repick() calls that claimed a backend slot.
  [[nodiscard]] std::uint64_t picks_total() const noexcept { return picks_total_; }
  /// pick()/repick() calls that found no eligible backend.
  [[nodiscard]] std::uint64_t picks_rejected() const noexcept { return picks_rejected_; }
  /// Backends whose circuit breaker is not closed right now.
  [[nodiscard]] std::uint32_t open_circuits() const noexcept;
  /// Backends sitting out a 503 Retry-After bench at `now`.
  [[nodiscard]] std::uint32_t benched_backends(TimePoint now) const noexcept;
  [[nodiscard]] std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  [[nodiscard]] std::uint64_t probe_failures() const noexcept { return probe_failures_; }
  [[nodiscard]] std::uint64_t circuit_opens() const noexcept { return circuit_opens_; }

 private:
  struct Backend {
    BackendConfig cfg;
    CircuitState circuit{CircuitState::kClosed};
    TimePoint benched_until{};       // 503 Retry-After backoff
    TimePoint half_open_at{};        // kOpen: when probing resumes
    std::uint32_t consecutive_failures{0};
    std::uint32_t consecutive_successes{0};
    std::int64_t wrr_current{0};     // smooth-WRR running score
    std::uint32_t occupancy{0};
    std::uint64_t probe_seq{0};      // id of the newest in-flight probe
    bool probe_pending{false};
    // Cumulative stats.
    std::uint64_t calls_routed{0};
    std::uint64_t rejections_503{0};
    std::uint64_t invite_timeouts{0};
    std::uint64_t probes_sent{0};
    std::uint64_t probe_failures{0};
    std::uint64_t circuit_opens{0};
  };

  [[nodiscard]] const std::string* pick_excluding(const std::string* exclude);
  [[nodiscard]] bool eligible(const Backend& backend, TimePoint now) const;
  [[nodiscard]] Backend* by_host(const std::string& host);

  void probe_tick();
  void send_probe(std::size_t i);
  void on_probe_result(std::size_t i, std::uint64_t seq, bool ok);
  void record_failure(Backend& backend);
  void record_success(Backend& backend);

  DispatcherConfig config_;
  std::vector<Backend> backends_;
  std::int64_t wrr_total_weight_{0};
  std::uint32_t rr_next_{0};  // rotation cursor (round-robin + tie-breaks)
  bool started_{false};
  std::uint64_t picks_total_{0};
  std::uint64_t picks_rejected_{0};
  std::uint64_t probes_sent_{0};
  std::uint64_t probe_failures_{0};
  std::uint64_t circuit_opens_{0};
  std::uint64_t probe_cseq_{0};
};

}  // namespace pbxcap::dispatch
