// Figure 7 reproduction: blocking probability vs the percentage of an
// 8,000-user population placing calls in the busy hour, for mean call
// durations of 2.0 / 2.5 / 3.0 minutes on the fitted N = 165 channels.
//
// Paper reference (Fig. 7 and §IV text): at 60% participation, 2-minute
// calls block < 5%, 2.5-minute calls ~21%, 3-minute calls > 34%.

#include <cstdio>
#include <vector>

#include "core/dimensioning.hpp"
#include "core/engset.hpp"
#include "core/erlang_b.hpp"
#include "exp/paper.hpp"

int main() {
  using namespace pbxcap;

  constexpr std::uint32_t kPopulation = 8'000;
  constexpr std::uint32_t kChannels = 165;

  std::printf("== Figure 7: blocking vs calling population (%u users, N = %u) ==\n\n",
              kPopulation, kChannels);

  std::vector<double> fractions;
  for (int i = 1; i <= 20; ++i) fractions.push_back(static_cast<double>(i) / 20.0);
  const std::vector<Duration> durations{Duration::seconds(120), Duration::seconds(150),
                                        Duration::seconds(180)};
  const auto table = exp::fig7_population_blocking(kPopulation, fractions, durations, kChannels);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Anchors from the paper's text (60%% of the population calling):\n");
  for (const auto d : durations) {
    const auto point = erlang::evaluate_population({kPopulation, 0.60, d, kChannels});
    std::printf("  %.1f min calls -> P_b = %.1f%%\n", d.to_minutes(),
                point.blocking_probability * 100.0);
  }
  std::printf("  (paper: <5%%, ~21%%, >34%%)\n\n");

  // Finite-population cross-check: with 8,000 sources the Engset correction
  // to the infinite-source Erlang-B is within a fraction of a point.
  std::printf("Engset (finite 8,000 sources) vs Erlang-B at 60%%, 3.0 min:\n");
  const double offered = 8000.0 * 0.60 * 3.0 / 60.0;
  std::printf("  Erlang-B: %.2f%%   Engset: %.2f%%\n",
              erlang::erlang_b(erlang::Erlangs{offered}, kChannels) * 100.0,
              erlang::engset_blocking_total(erlang::Erlangs{offered}, kPopulation, kChannels) *
                  100.0);
  return 0;
}
