// Engine microbenchmarks: DES event throughput, Erlang-B evaluation, SIP
// codec, RTP receive pipeline. These quantify the simulator itself (not the
// paper), so regressions in the substrate are visible.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/erlang_b.hpp"
#include "exp/testbed.hpp"
#include "rtp/stream.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sip/parse.hpp"

// ---- counting allocator hook -----------------------------------------------
// Replaces global new/delete for this binary so the simulator benchmarks can
// report allocs/event. The engine's SBO-callback contract ("the hot path never
// touches the allocator") is verified here, not just claimed.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pbxcap;

/// Attaches allocs/event and callback-heap-fallbacks/event counters.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state) : state_{state} {
    start_allocs_ = g_allocs.load(std::memory_order_relaxed);
    start_cb_heap_ = sim::Callback::heap_allocations();
  }
  ~AllocScope() {
    const auto events =
        static_cast<double>(state_.iterations() * state_.range(0));
    if (events <= 0.0) return;
    const auto allocs = static_cast<double>(g_allocs.load(std::memory_order_relaxed) - start_allocs_);
    const auto cb_heap = static_cast<double>(sim::Callback::heap_allocations() - start_cb_heap_);
    state_.counters["allocs_per_event"] = allocs / events;
    state_.counters["cb_heap_per_event"] = cb_heap / events;
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_allocs_{0};
  std::uint64_t start_cb_heap_{0};
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  AllocScope allocs{state};
  for (auto _ : state) {
    sim::Simulator simulator;
    const auto n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      simulator.schedule_in(Duration::micros(i), [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1'000)->Arg(100'000);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // The RTP-sender pattern: each event schedules its successor. The closure
  // captures two pointers, exactly the shape rtp::RtpSender's tick takes.
  struct Tick {
    sim::Simulator* simulator;
    std::int64_t* remaining;
    void operator()() const {
      if (--*remaining > 0) simulator->schedule_in(Duration::micros(20), *this);
    }
  };
  static_assert(sim::Callback::stores_inline<Tick>());
  AllocScope allocs{state};
  for (auto _ : state) {
    sim::Simulator simulator;
    std::int64_t remaining = state.range(0);
    simulator.schedule_in(Duration::micros(20), Tick{&simulator, &remaining});
    simulator.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorSelfScheduling)->Arg(100'000);

void BM_SimulatorPeriodicTimerWheel(benchmark::State& state) {
  // Table-I-shaped event mix: `range` concurrent bidirectional G.711 calls,
  // each direction self-scheduling a 20 ms tick — the exact population the
  // timer-wheel fast path exists for. Runs 10 simulated seconds per iteration.
  struct Stream {
    sim::Simulator* simulator;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      simulator->schedule_in(Duration::millis(20), *this);
    }
  };
  static_assert(sim::Callback::stores_inline<Stream>());
  const auto streams = static_cast<int>(state.range(0)) * 2;
  std::uint64_t fired = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < streams; ++i) {
      simulator.schedule_in(Duration::micros(200) * i, Stream{&simulator, &fired});
    }
    simulator.run_until(TimePoint::origin() + Duration::seconds(10));
    events = simulator.events_processed();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_SimulatorPeriodicTimerWheel)->Arg(165);

void BM_Table1MacroPoint(benchmark::State& state) {
  // End-to-end Table-I operating point (offered load in Erlangs) through the
  // full packet-level testbed: SIP signalling, per-packet link events, RTP
  // pacing, CDR/monitor accounting. Wall-clock here is what bounds every
  // paper artifact; placement window scaled to 20 s to keep iterations short.
  const double offered = static_cast<double>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(offered);
    config.scenario.placement_window = Duration::seconds(20);
    config.seed = 4242;
    const auto report = exp::run_testbed(config);
    events += report.events_processed;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["sim_events"] = static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Table1MacroPoint)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_Table1MacroPointFluid(benchmark::State& state) {
  // The same macro point with the hybrid fluid/packet engine on. Exact
  // fields of the report are byte-identical to BM_Table1MacroPoint (gated
  // by bench_fluid_ablation); the `sim_events` counter shows the >=5x
  // event-population reduction the fast path targets.
  const double offered = static_cast<double>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(offered);
    config.scenario.placement_window = Duration::seconds(20);
    config.seed = 4242;
    config.fluid.enabled = true;
    const auto report = exp::run_testbed(config);
    events += report.events_processed;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["sim_events"] = static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Table1MacroPointFluid)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_RtpSteadyState(benchmark::State& state) {
  // Steady-state media cost, packet vs fluid: the same seeded testbed run
  // (offered load in range(0)), with the hybrid engine off (range(1) == 0)
  // or on (range(1) == 1). `events_per_call_s` is the kernel-event price of
  // one simulated call-second of bidirectional G.711 media — the figure the
  // fluid fast path exists to shrink (~1100 packet-mode: 2 x 50 pps x ~11
  // events/packet, plus signalling).
  const double offered = static_cast<double>(state.range(0));
  const bool fluid = state.range(1) != 0;
  std::uint64_t events = 0;
  double call_seconds = 0.0;
  for (auto _ : state) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(offered);
    config.scenario.placement_window = Duration::seconds(20);
    config.seed = 4242;
    config.fluid.enabled = fluid;
    const auto report = exp::run_testbed(config);
    events += report.events_processed;
    // Media call-seconds actually simulated: the PBX NIC sees 100 pkt/s per
    // established call (50 pps each direction), identically in both modes.
    call_seconds += static_cast<double>(report.rtp_packets_at_pbx) / 100.0;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["sim_events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
  state.counters["events_per_call_s"] =
      call_seconds > 0.0 ? static_cast<double>(events) / call_seconds : 0.0;
}
BENCHMARK(BM_RtpSteadyState)
    ->Args({240, 0})
    ->Args({240, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ErlangB(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double acc = 0.0;
  for (auto _ : state) {
    acc += erlang::erlang_b(erlang::Erlangs{static_cast<double>(n) * 0.97}, n);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ErlangB)->Arg(165)->Arg(1'000)->Arg(10'000);

void BM_ChannelsForBlocking(benchmark::State& state) {
  std::uint32_t acc = 0;
  for (auto _ : state) {
    acc += erlang::channels_for_blocking(erlang::Erlangs{150.0}, 0.01);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ChannelsForBlocking);

const std::string kInviteWire = [] {
  sip::Message invite =
      sip::Message::request(sip::Method::kInvite, sip::Uri{"recv-1", "pbx.unb.br"});
  invite.vias().push_back({"client.unb.br", "z9hG4bK-bench-1"});
  invite.from() = {sip::Uri{"caller-1", "client.unb.br"}, "tag-a"};
  invite.to() = {sip::Uri{"recv-1", "pbx.unb.br"}, ""};
  invite.set_call_id("call-1@client.unb.br");
  invite.set_cseq({1, sip::Method::kInvite});
  invite.set_contact(sip::Uri{"caller-1", "client.unb.br"});
  invite.set_body("v=0\r\no=pbxcap 0 0 IN IP4 client\r\ns=x\r\nc=IN IP4 client\r\nt=0 0\r\n"
                  "m=audio 30000 RTP/AVP 0\r\na=ssrc:7 cname:x\r\n",
                  "application/sdp");
  return sip::serialize(invite);
}();

void BM_SipParse(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = sip::parse_message(kInviteWire);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(kInviteWire.size()));
}
BENCHMARK(BM_SipParse);

void BM_SipSerialize(benchmark::State& state) {
  const auto parsed = sip::parse_message(kInviteWire);
  for (auto _ : state) {
    auto wire = sip::serialize(*parsed.message);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SipSerialize);

void BM_RtpReceiverPipeline(benchmark::State& state) {
  for (auto _ : state) {
    rtp::RtpReceiverStats rx{8000};
    TimePoint t = TimePoint::origin();
    rtp::RtpHeader h;
    h.ssrc = 1;
    for (int i = 0; i < 6000; ++i) {  // one 120 s G.711 direction
      h.sequence = static_cast<std::uint16_t>(i);
      h.timestamp = static_cast<std::uint32_t>(i) * 160;
      rx.on_packet(h, t);
      t = t + Duration::millis(20);
    }
    benchmark::DoNotOptimize(rx.jitter());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_RtpReceiverPipeline);

void BM_RandomExponential(benchmark::State& state) {
  sim::Random rng{1};
  double acc = 0.0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RandomExponential);

}  // namespace
