// Engine microbenchmarks: DES event throughput, Erlang-B evaluation, SIP
// codec, RTP receive pipeline. These quantify the simulator itself (not the
// paper), so regressions in the substrate are visible.

#include <benchmark/benchmark.h>

#include "core/erlang_b.hpp"
#include "rtp/stream.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sip/parse.hpp"

namespace {

using namespace pbxcap;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    const auto n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      simulator.schedule_in(Duration::micros(i), [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1'000)->Arg(100'000);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // The RTP-sender pattern: each event schedules its successor.
  for (auto _ : state) {
    sim::Simulator simulator;
    const auto n = static_cast<std::int64_t>(state.range(0));
    std::int64_t remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule_in(Duration::micros(20), tick);
    };
    simulator.schedule_in(Duration::micros(20), tick);
    simulator.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorSelfScheduling)->Arg(100'000);

void BM_ErlangB(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double acc = 0.0;
  for (auto _ : state) {
    acc += erlang::erlang_b(erlang::Erlangs{static_cast<double>(n) * 0.97}, n);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ErlangB)->Arg(165)->Arg(1'000)->Arg(10'000);

void BM_ChannelsForBlocking(benchmark::State& state) {
  std::uint32_t acc = 0;
  for (auto _ : state) {
    acc += erlang::channels_for_blocking(erlang::Erlangs{150.0}, 0.01);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ChannelsForBlocking);

const std::string kInviteWire = [] {
  sip::Message invite =
      sip::Message::request(sip::Method::kInvite, sip::Uri{"recv-1", "pbx.unb.br"});
  invite.vias().push_back({"client.unb.br", "z9hG4bK-bench-1"});
  invite.from() = {sip::Uri{"caller-1", "client.unb.br"}, "tag-a"};
  invite.to() = {sip::Uri{"recv-1", "pbx.unb.br"}, ""};
  invite.set_call_id("call-1@client.unb.br");
  invite.set_cseq({1, sip::Method::kInvite});
  invite.set_contact(sip::Uri{"caller-1", "client.unb.br"});
  invite.set_body("v=0\r\no=pbxcap 0 0 IN IP4 client\r\ns=x\r\nc=IN IP4 client\r\nt=0 0\r\n"
                  "m=audio 30000 RTP/AVP 0\r\na=ssrc:7 cname:x\r\n",
                  "application/sdp");
  return sip::serialize(invite);
}();

void BM_SipParse(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = sip::parse_message(kInviteWire);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(kInviteWire.size()));
}
BENCHMARK(BM_SipParse);

void BM_SipSerialize(benchmark::State& state) {
  const auto parsed = sip::parse_message(kInviteWire);
  for (auto _ : state) {
    auto wire = sip::serialize(*parsed.message);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SipSerialize);

void BM_RtpReceiverPipeline(benchmark::State& state) {
  for (auto _ : state) {
    rtp::RtpReceiverStats rx{8000};
    TimePoint t = TimePoint::origin();
    rtp::RtpHeader h;
    h.ssrc = 1;
    for (int i = 0; i < 6000; ++i) {  // one 120 s G.711 direction
      h.sequence = static_cast<std::uint16_t>(i);
      h.timestamp = static_cast<std::uint32_t>(i) * 160;
      rx.on_packet(h, t);
      t = t + Duration::millis(20);
    }
    benchmark::DoNotOptimize(rx.jitter());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_RtpReceiverPipeline);

void BM_RandomExponential(benchmark::State& state) {
  sim::Random rng{1};
  double acc = 0.0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RandomExponential);

}  // namespace
