// Codec/transcoding/trunking tier acceptance bench (see DESIGN.md §10).
//
// Part 1 — transcoded-bridge capacity: three saturating runs at a fixed CPU
// budget (the RFC 6357 overload gate sheds INVITEs once the current-bucket
// utilization crosses cpu_threshold), differing only in what the caller
// offers: G.711 end-to-end (translator idle), GSM callers answered in PCMU
// (15 us/frame translator), and G.729 callers answered in PCMU (40 us/frame
// translator). The measured capacity N (channel peak under the gate) must
// order G.711 passthrough > GSM-transcoded > G.729-transcoded — the paper's
// "CPU is the real capacity limit" conclusion, now codec-aware.
//
// Part 2 — IAX2-style trunk ablation: a sharded two-backend G.729 cluster
// (100+ concurrent trunked calls) run with the inter-PBX uplinks in
// per-packet mode vs trunk_window = 20 ms. Gates: >= 3x uplink byte
// reduction and >= 3x uplink packet reduction (G.729's 20-byte payloads
// shed their 58-byte per-packet encapsulation for a 4-byte mini-frame
// header), an unchanged call/RTP census, and byte-identical reports across
// 1/2/4/8 shard workers at both settings.
//
// Exit status is nonzero when any gate fails, so CI can run this binary
// directly (the `codec-smoke` job does, with --fast).
//
// Usage: bench_codec_capacity [--fast] [--json F]
//   --fast : half-scale windows, trunk ablation at 1/4 workers only.
//   --json : machine-readable results (capacity rows + trunk ratios).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "monitor/report.hpp"
#include "rtp/codec.hpp"
#include "util/strings.hpp"

namespace {

using pbxcap::Duration;
using pbxcap::monitor::ExperimentReport;

// ---------------------------------------------------------------------------
// Part 1: capacity under the CPU gate, per codec path.

struct CapacityCase {
  std::string name;
  std::uint8_t caller_pt;    // what every caller prefers (offers first)
  bool transcoded;           // whether the bridge should engage the translator
  Duration transcode_extra;  // expected per-frame translator cost (both codecs)
};

struct CapacityRow {
  CapacityCase spec;
  ExperimentReport report;
  std::uint32_t model_n{0};  // closed-form prediction from the CPU budget
  /// Sustained capacity: completed calls x hold / window = the equilibrium
  /// admitted concurrency. The channel *peak* also orders correctly but
  /// overshoots the budget (the per-second CPU buckets re-open the gate at
  /// every bucket boundary, admitting a burst before the bucket refills), and
  /// the overshoot is relatively larger the smaller the true capacity — so
  /// the margin gate reads the sustained figure.
  double sustained_n{0.0};
};

constexpr double kCpuThreshold = 0.5;

CapacityRow run_capacity(const CapacityCase& spec, bool fast) {
  pbxcap::exp::TestbedConfig config;
  config.seed = 4242;
  config.scenario.hold_time = Duration::seconds(20);
  config.scenario.placement_window = Duration::seconds(fast ? 60 : 120);
  // Offer ~280 concurrent against a <= ~190-call CPU budget: every variant
  // saturates, so channel peak measures the gate, not the offered load.
  config.scenario.arrival_rate_per_s = 14.0;

  // The channel pool must not be the binding constraint — the CPU gate is.
  config.pbx.max_channels = 2000;
  config.pbx.sip_service.enabled = true;
  config.pbx.sip_service.service_time = Duration::micros(200);
  config.pbx.sip_service.queue_limit = 4096;
  config.pbx.overload.enabled = true;
  config.pbx.overload.cpu_threshold = kCpuThreshold;
  config.pbx.overload.queue_threshold = 100'000;  // CPU trigger only

  if (spec.transcoded) {
    // Weight-0 PCMU entry: never preferred, but present in every offer as
    // the fallback. The PBX allows both; the receiver only answers PCMU, so
    // leg B comes back PCMU while leg A stays on the preferred codec and
    // the bridge engages the translator.
    const auto preferred = pbxcap::rtp::codec_by_payload_type(spec.caller_pt);
    config.scenario.codec_mix = {{*preferred, 1.0}, {pbxcap::rtp::g711_ulaw(), 0.0}};
    config.scenario.receiver_payload_types = {pbxcap::rtp::payload_type::kPcmu};
    config.pbx.allowed_payload_types = {spec.caller_pt, pbxcap::rtp::payload_type::kPcmu};
  }

  CapacityRow row;
  row.spec = spec;
  row.report = pbxcap::exp::run_testbed(config);

  // Closed-form prediction: each bridged call relays 2 x 50 packets/s, each
  // costing cost_per_rtp_packet plus the translator extra on mismatched
  // bridges. The gate trips at kCpuThreshold over base utilization.
  const pbxcap::pbx::CpuModelConfig cpu = config.pbx.cpu;
  const double per_call_s =
      100.0 * (cpu.cost_per_rtp_packet + spec.transcode_extra).to_seconds();
  row.model_n =
      static_cast<std::uint32_t>((kCpuThreshold - cpu.base_utilization) / per_call_s);
  row.sustained_n = static_cast<double>(row.report.calls_completed) *
                    config.scenario.hold_time.to_seconds() /
                    config.scenario.placement_window.to_seconds();
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: sharded G.729 cluster, trunked vs per-packet uplinks.

struct TrunkRun {
  unsigned threads{0};
  pbxcap::exp::ClusterResult result;
};

pbxcap::exp::ClusterResult run_trunk_cluster(bool fast, unsigned threads,
                                             Duration trunk_window) {
  pbxcap::exp::ClusterConfig config;
  config.seed = 7;
  config.scenario.codec = *pbxcap::rtp::codec_by_payload_type(pbxcap::rtp::payload_type::kG729);
  config.scenario.hold_time = Duration::seconds(30);
  config.scenario.placement_window = Duration::seconds(fast ? 40 : 60);
  config.scenario.arrival_rate_per_s = 4.0;  // ~120 concurrent at steady state
  config.servers = 2;
  config.channels_per_server = 100;
  config.allowed_payload_types = {pbxcap::rtp::payload_type::kG729};
  config.trunk_window = trunk_window;
  config.shard.enabled = true;
  config.shard.threads = threads;
  return pbxcap::exp::run_cluster(config);
}

/// The determinism digest: every count that must be byte-identical across
/// worker counts (wall timings and per-shard host diagnostics excluded).
std::string digest(const pbxcap::exp::ClusterResult& r) {
  const ExperimentReport& rep = r.report;
  return pbxcap::util::format(
      "att=%llu comp=%llu blk=%llu fail=%llu peak=%u sip=%llu rtp_pbx=%llu relayed=%llu "
      "trunk=%llu mini=%llu up_bytes=%llu up_pkts=%llu",
      static_cast<unsigned long long>(rep.calls_attempted),
      static_cast<unsigned long long>(rep.calls_completed),
      static_cast<unsigned long long>(rep.calls_blocked),
      static_cast<unsigned long long>(rep.calls_failed), rep.channels_peak,
      static_cast<unsigned long long>(rep.sip_total),
      static_cast<unsigned long long>(rep.rtp_packets_at_pbx),
      static_cast<unsigned long long>(rep.rtp_relayed),
      static_cast<unsigned long long>(rep.trunk_frames),
      static_cast<unsigned long long>(rep.trunk_mini_frames),
      static_cast<unsigned long long>(r.uplink_bytes),
      static_cast<unsigned long long>(r.uplink_packets));
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  bool ok = true;

  // ---- Part 1: transcoded-bridge capacity ----
  const std::vector<CapacityCase> cases = {
      {"G.711 passthrough", pbxcap::rtp::payload_type::kPcmu, false, Duration::zero()},
      {"GSM -> PCMU transcoded", pbxcap::rtp::payload_type::kGsm, true,
       pbxcap::rtp::codec_by_payload_type(pbxcap::rtp::payload_type::kGsm)->transcode_cost},
      {"G.729 -> PCMU transcoded", pbxcap::rtp::payload_type::kG729, true,
       pbxcap::rtp::codec_by_payload_type(pbxcap::rtp::payload_type::kG729)->transcode_cost},
  };
  std::vector<CapacityRow> rows(cases.size());
  pbxcap::exp::parallel_for(cases.size(), pbxcap::exp::default_threads(),
                            [&](std::size_t i) { rows[i] = run_capacity(cases[i], fast); });

  std::printf("== Transcoded-bridge capacity at %.0f%% CPU budget%s ==\n",
              kCpuThreshold * 100.0, fast ? " (fast mode)" : "");
  std::printf("%-26s %9s %11s %9s %12s %14s %8s\n", "codec path", "peak N", "sustained N",
              "model N", "503 shed", "transcoded", "MOS");
  for (const CapacityRow& row : rows) {
    std::printf("%-26s %9u %11.0f %9u %12llu %14llu %8.2f\n", row.spec.name.c_str(),
                row.report.channels_peak, row.sustained_n, row.model_n,
                static_cast<unsigned long long>(row.report.overload_rejections),
                static_cast<unsigned long long>(row.report.transcoded_bridges),
                row.report.mos.empty() ? 0.0 : row.report.mos.mean());
  }

  const bool gate_order = rows[0].report.channels_peak > rows[1].report.channels_peak &&
                          rows[1].report.channels_peak > rows[2].report.channels_peak;
  const bool gate_margin = rows[0].sustained_n >= 1.2 * rows[1].sustained_n &&
                           rows[1].sustained_n >= 1.2 * rows[2].sustained_n;
  const bool gate_translator =
      rows[0].report.transcoded_bridges == 0 && rows[1].report.transcoded_bridges > 0 &&
      rows[2].report.transcoded_bridges > 0 && rows[1].report.transcoded_rtp > 0 &&
      rows[2].report.transcoded_rtp > 0;
  std::printf("capacity ordering G.711 > GSM > G.729 : %s\n",
              gate_order ? "ok" : "** GATE FAILED **");
  std::printf("sustained margin (>=1.2x per step)    : %s\n",
              gate_margin ? "ok" : "** GATE FAILED **");
  std::printf("translator engagement (0 / >0 / >0)   : %s\n",
              gate_translator ? "ok" : "** GATE FAILED **");
  ok = ok && gate_order && gate_margin && gate_translator;

  // ---- Part 2: trunk ablation ----
  const std::vector<unsigned> worker_counts =
      fast ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<TrunkRun> packet_runs;
  std::vector<TrunkRun> trunk_runs;
  for (const unsigned threads : worker_counts) {
    packet_runs.push_back({threads, run_trunk_cluster(fast, threads, Duration::zero())});
    trunk_runs.push_back({threads, run_trunk_cluster(fast, threads, Duration::millis(20))});
  }
  const pbxcap::exp::ClusterResult& packet = packet_runs.front().result;
  const pbxcap::exp::ClusterResult& trunk = trunk_runs.front().result;

  bool gate_identical = true;
  for (std::size_t i = 1; i < worker_counts.size(); ++i) {
    if (digest(packet_runs[i].result) != digest(packet)) gate_identical = false;
    if (digest(trunk_runs[i].result) != digest(trunk)) gate_identical = false;
  }
  const double byte_ratio = static_cast<double>(packet.uplink_bytes) /
                            static_cast<double>(std::max<std::uint64_t>(trunk.uplink_bytes, 1));
  const double pkt_ratio = static_cast<double>(packet.uplink_packets) /
                           static_cast<double>(std::max<std::uint64_t>(trunk.uplink_packets, 1));
  const bool gate_bytes = byte_ratio >= 3.0;
  const bool gate_pkts = pkt_ratio >= 3.0;
  // Trunking reframes the uplink wire; it must not change what happened.
  const bool gate_census =
      packet.report.calls_attempted == trunk.report.calls_attempted &&
      packet.report.calls_completed == trunk.report.calls_completed &&
      packet.report.calls_blocked == trunk.report.calls_blocked &&
      packet.report.rtp_packets_at_pbx == trunk.report.rtp_packets_at_pbx &&
      trunk.report.trunk_frames > 0 && trunk.report.trunk_mini_frames > 0;
  const double minis_per_frame =
      static_cast<double>(trunk.report.trunk_mini_frames) /
      static_cast<double>(std::max<std::uint64_t>(trunk.report.trunk_frames, 1));

  std::printf("\n== IAX2-style trunk ablation (G.729 x %u concurrent, sharded) ==\n",
              packet.report.channels_peak);
  std::printf("%-22s %16s %16s %9s\n", "uplink metric", "per-packet", "trunked", "ratio");
  std::printf("%-22s %16llu %16llu %8.2fx\n", "wire bytes",
              static_cast<unsigned long long>(packet.uplink_bytes),
              static_cast<unsigned long long>(trunk.uplink_bytes), byte_ratio);
  std::printf("%-22s %16llu %16llu %8.2fx\n", "wire packets",
              static_cast<unsigned long long>(packet.uplink_packets),
              static_cast<unsigned long long>(trunk.uplink_packets), pkt_ratio);
  std::printf("trunk frames %llu, mini-frames %llu (%.1f calls' media per frame)\n",
              static_cast<unsigned long long>(trunk.report.trunk_frames),
              static_cast<unsigned long long>(trunk.report.trunk_mini_frames), minis_per_frame);
  std::printf("uplink byte reduction >= 3x           : %s\n",
              gate_bytes ? "ok" : "** GATE FAILED **");
  std::printf("uplink packet reduction >= 3x         : %s\n",
              gate_pkts ? "ok" : "** GATE FAILED **");
  std::printf("call/RTP census unchanged             : %s\n",
              gate_census ? "ok" : "** GATE FAILED **");
  std::printf("byte-identical across workers {");
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    std::printf("%s%u", i ? "," : "", worker_counts[i]);
  }
  std::printf("}  : %s\n", gate_identical ? "ok" : "** GATE FAILED **");
  ok = ok && gate_bytes && gate_pkts && gate_census && gate_identical;

  if (!json_out.empty()) {
    std::string json = "{\n  \"capacity\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CapacityRow& row = rows[i];
      json += pbxcap::util::format(
          "    {\"path\": \"%s\", \"peak_n\": %u, \"sustained_n\": %.1f, \"model_n\": %u, "
          "\"shed_503\": %llu, "
          "\"transcoded_bridges\": %llu, \"transcoded_rtp\": %llu, \"mos\": %.3f}%s\n",
          row.spec.name.c_str(), row.report.channels_peak, row.sustained_n, row.model_n,
          static_cast<unsigned long long>(row.report.overload_rejections),
          static_cast<unsigned long long>(row.report.transcoded_bridges),
          static_cast<unsigned long long>(row.report.transcoded_rtp),
          row.report.mos.empty() ? 0.0 : row.report.mos.mean(),
          i + 1 < rows.size() ? "," : "");
    }
    json += pbxcap::util::format(
        "  ],\n  \"trunk\": {\"bytes_packet\": %llu, \"bytes_trunked\": %llu, "
        "\"byte_ratio\": %.3f,\n            \"packets_packet\": %llu, "
        "\"packets_trunked\": %llu, \"packet_ratio\": %.3f,\n            "
        "\"trunk_frames\": %llu, \"trunk_mini_frames\": %llu, \"identical\": %s},\n"
        "  \"pass\": %s\n}\n",
        static_cast<unsigned long long>(packet.uplink_bytes),
        static_cast<unsigned long long>(trunk.uplink_bytes), byte_ratio,
        static_cast<unsigned long long>(packet.uplink_packets),
        static_cast<unsigned long long>(trunk.uplink_packets), pkt_ratio,
        static_cast<unsigned long long>(trunk.report.trunk_frames),
        static_cast<unsigned long long>(trunk.report.trunk_mini_frames),
        gate_identical ? "true" : "false", ok ? "true" : "false");
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURE");
  return ok ? 0 : 1;
}
