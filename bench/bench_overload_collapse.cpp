// Extension experiment: SIP overload collapse and RFC 6357-style control.
//
// The paper measures capacity up to saturation; this harness pushes past it.
// With the single-threaded SIP service model enabled, offered load is swept
// beyond the PBX's call-carrying capacity. Without control, the classic SIP
// congestion collapse appears: queueing delay crosses Timer A (500 ms), the
// caller's retransmissions multiply the arrival stream, the full-rejection
// path (reject_penalty) eats the worker, the service queue overflows, and
// goodput heads toward zero. With the 503 + Retry-After gate (PBX side) and
// exponential backoff (caller side), excess INVITEs are shed statelessly
// before they cost anything, and goodput stays pinned near capacity.
//
// Usage: bench_overload_collapse [--fast] [--json F] [--chaos F]
//   --fast  : two-point sweep, short window (CI smoke).
//   --json  : machine-readable goodput curve for perf tracking.
//   --chaos : instead of the sweep, run one short lossy + crash/restart
//             scenario (fault plan below) with telemetry, and write the
//             Prometheus snapshot + run summary to F. Byte-identical across
//             re-runs — CI runs it twice and cmp's the files.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "fault/plan.hpp"
#include "monitor/report.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pbxcap;

// Small deterministic system so the sweep stays fast: 50 channels holding
// 10 s each carry at most 5 calls/s.
constexpr std::uint32_t kChannels = 50;
const Duration kHold = Duration::seconds(10);
constexpr double kCapacityCps = 5.0;  // kChannels / kHold

exp::TestbedConfig make_config(double load_cps, bool control, Duration window,
                               std::uint64_t seed) {
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(
      load_cps * kHold.to_seconds(), kHold);
  config.scenario.placement_window = window;
  config.pbx.max_channels = kChannels;
  // Costs chosen so the worker saturates past ~2x offered load: the carried
  // stream alone costs ~0.6 s/s (5 c/s x 6 messages x 20 ms) and every full
  // rejection burns a further 80 ms — the paper's expensive error path.
  config.pbx.sip_service.enabled = true;
  config.pbx.sip_service.service_time = Duration::millis(20);
  config.pbx.sip_service.reject_penalty = Duration::millis(60);
  config.pbx.sip_service.queue_limit = 200;
  if (control) {
    config.pbx.overload.enabled = true;
    config.pbx.overload.queue_threshold = 8;
    config.pbx.overload.retry_after = Duration::seconds(2);
    config.scenario.retry.enabled = true;
  }
  // Horizon slack: Timer B (32 s) for the last INVITEs + BYE handshakes.
  config.drain = Duration::seconds(40);
  config.seed = seed;
  return config;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// The CI chaos-smoke scenario: a lossy access link, a momentary uplink
// blackout, a processing stall, and a crash/restart — all mid-overload.
constexpr const char* kChaosPlan =
    "# chaos smoke: lossy access + uplink blackout + stall + crash\n"
    "@5s  link client loss=0.05 jitter_mean=3ms jitter_stddev=1ms\n"
    "@12s link pbx blackout=on\n"
    "@13s link pbx blackout=off\n"
    "@18s pbx stall 500ms\n"
    "@24s pbx crash dead=4s\n"
    "@32s link client loss=0 jitter_mean=0ms jitter_stddev=0ms\n";

int run_chaos(const std::string& out_path) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(kChaosPlan);
  telemetry::Telemetry tel{{}};

  exp::TestbedConfig config =
      make_config(2.0 * kCapacityCps, /*control=*/true, Duration::seconds(40), 4242);
  config.faults = &plan;
  config.telemetry = &tel;
  const monitor::ExperimentReport report = exp::run_testbed(config);

  std::string out = telemetry::to_prometheus(tel.registry());
  out += "# ---- chaos run summary ----\n";
  const auto line = [&out](const char* key, std::uint64_t v) {
    out += util::format("# %s %llu\n", key, static_cast<unsigned long long>(v));
  };
  line("calls_attempted", report.calls_attempted);
  line("calls_completed", report.calls_completed);
  line("calls_blocked", report.calls_blocked);
  line("calls_failed", report.calls_failed);
  line("calls_retried", report.calls_retried);
  line("overload_rejections", report.overload_rejections);
  line("sip_queue_dropped", report.sip_queue_dropped);
  line("sip_retransmissions", report.sip_retransmissions);
  line("link_dropped_impairment", report.link_dropped_impairment);

  std::printf("chaos: %llu attempted, %llu completed, %llu blocked, %llu failed, "
              "%llu 503-shed, %llu blackout drops\n",
              static_cast<unsigned long long>(report.calls_attempted),
              static_cast<unsigned long long>(report.calls_completed),
              static_cast<unsigned long long>(report.calls_blocked),
              static_cast<unsigned long long>(report.calls_failed),
              static_cast<unsigned long long>(report.overload_rejections),
              static_cast<unsigned long long>(report.link_dropped_impairment));
  if (report.link_dropped_impairment == 0) {
    std::fprintf(stderr, "chaos: expected the blackout to eat packets\n");
    return 1;
  }
  if (report.calls_attempted == 0 || report.calls_completed == 0) {
    std::fprintf(stderr, "chaos: degenerate run\n");
    return 1;
  }
  return write_file(out_path, out) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out, chaos_out;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_out = next("--json");
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_out = next("--chaos");
    } else if (std::strcmp(argv[i], "--debug-series") == 0) {
      // Undocumented: per-second series of one overloaded control-on run.
      telemetry::Telemetry tel{{}};
      exp::TestbedConfig config =
          make_config(3.0 * kCapacityCps, true, Duration::seconds(60), 4200 + 13);
      config.telemetry = &tel;
      const auto r = exp::run_testbed(config);
      std::printf("%s", tel.sampler().to_csv().c_str());
      std::printf("completed=%llu blocked=%llu overload_503=%llu retries=%llu rtx=%llu\n",
                  (unsigned long long)r.calls_completed, (unsigned long long)r.calls_blocked,
                  (unsigned long long)r.overload_rejections, (unsigned long long)r.calls_retried,
                  (unsigned long long)r.sip_retransmissions);
      return 0;
    }
  }

  if (!chaos_out.empty()) return run_chaos(chaos_out);

  const Duration window = Duration::seconds(fast ? 60 : 120);
  const std::vector<double> factors =
      fast ? std::vector<double>{0.8, 3.0} : std::vector<double>{0.8, 1.5, 2.0, 3.0, 4.0};

  std::printf("== SIP overload collapse: goodput past capacity, control off vs on%s ==\n",
              fast ? " (fast mode)" : "");
  std::printf("capacity %.0f calls/s (%u channels, h = %.0f s), window %.0f s, "
              "SIP service 20 ms/msg + 60 ms reject penalty\n\n",
              kCapacityCps, kChannels, kHold.to_seconds(), window.to_seconds());

  // Jobs: [0, n) control off, [n, 2n) control on. Same seed per load so the
  // off/on pair sees the same arrival sequence.
  const std::size_t n = factors.size();
  std::vector<monitor::ExperimentReport> reports(2 * n);
  exp::parallel_for(reports.size(), exp::default_threads(), [&](std::size_t job) {
    const std::size_t load_idx = job % n;
    const bool control = job >= n;
    reports[job] = exp::run_testbed(make_config(factors[load_idx] * kCapacityCps, control,
                                                window, 4200 + 13 * load_idx));
  });

  const auto goodput = [&](const monitor::ExperimentReport& r) {
    return static_cast<double>(r.calls_completed) / window.to_seconds();
  };

  util::TextTable table{{"offered (x cap)", "goodput off (c/s)", "goodput on (c/s)",
                         "rtx off", "rtx on", "503 gate on", "retries on"}};
  for (std::size_t i = 0; i < n; ++i) {
    const auto& off = reports[i];
    const auto& on = reports[n + i];
    table.add_row({util::format("%.1f", factors[i]),
                   util::format("%.2f", goodput(off)),
                   util::format("%.2f", goodput(on)),
                   util::format("%llu", static_cast<unsigned long long>(off.sip_retransmissions)),
                   util::format("%llu", static_cast<unsigned long long>(on.sip_retransmissions)),
                   util::format("%llu", static_cast<unsigned long long>(on.overload_rejections)),
                   util::format("%llu", static_cast<unsigned long long>(on.calls_retried))});
  }
  std::printf("%s\n", table.to_string().c_str());

  util::TextTable diag{{"offered (x cap)", "mode", "attempted", "completed", "blocked",
                        "failed", "queue drops", "peak ch"}};
  for (std::size_t i = 0; i < n; ++i) {
    for (const bool control : {false, true}) {
      const auto& r = reports[control ? n + i : i];
      diag.add_row({util::format("%.1f", factors[i]), control ? "on" : "off",
                    util::format("%llu", static_cast<unsigned long long>(r.calls_attempted)),
                    util::format("%llu", static_cast<unsigned long long>(r.calls_completed)),
                    util::format("%llu", static_cast<unsigned long long>(r.calls_blocked)),
                    util::format("%llu", static_cast<unsigned long long>(r.calls_failed)),
                    util::format("%llu", static_cast<unsigned long long>(r.sip_queue_dropped)),
                    util::format("%u", r.channels_peak)});
    }
  }
  std::printf("%s\n", diag.to_string().c_str());

  // The two headline figures: how far goodput falls without control at the
  // deepest overload, and the worst sustained goodput with control on.
  const double off_worst = goodput(reports[n - 1]);
  double on_min_over = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    if (factors[i] >= 1.0) on_min_over = std::min(on_min_over, goodput(reports[n + i]));
  }
  std::printf("Reading: without control, goodput at %.1fx offered load is %.2f c/s "
              "(%.0f%% of capacity) — congestion collapse: retransmissions and the\n"
              "rejection path consume the SIP worker. With the 503 + Retry-After gate and\n"
              "caller backoff, the worst overloaded point still carries %.2f c/s "
              "(%.0f%% of capacity).\n",
              factors[n - 1], off_worst, 100.0 * off_worst / kCapacityCps, on_min_over,
              100.0 * on_min_over / kCapacityCps);

  if (!json_out.empty()) {
    std::string j = "{\n  \"bench\": \"overload_collapse\",\n";
    j += util::format("  \"capacity_cps\": %.3f,\n", kCapacityCps);
    j += util::format("  \"window_s\": %.0f,\n", window.to_seconds());
    const auto array = [&](const char* key, auto&& value_of) {
      j += util::format("  \"%s\": [", key);
      for (std::size_t i = 0; i < n; ++i) {
        j += value_of(i);
        if (i + 1 < n) j += ", ";
      }
      j += "],\n";
    };
    array("load_factors", [&](std::size_t i) { return util::format("%.2f", factors[i]); });
    array("goodput_off_cps", [&](std::size_t i) { return util::format("%.4f", goodput(reports[i])); });
    array("goodput_on_cps",
          [&](std::size_t i) { return util::format("%.4f", goodput(reports[n + i])); });
    array("retransmissions_off", [&](std::size_t i) {
      return util::format("%llu", static_cast<unsigned long long>(reports[i].sip_retransmissions));
    });
    array("retransmissions_on", [&](std::size_t i) {
      return util::format("%llu",
                          static_cast<unsigned long long>(reports[n + i].sip_retransmissions));
    });
    j += util::format("  \"goodput_on_worst_frac\": %.4f\n}\n", on_min_over / kCapacityCps);
    if (!write_file(json_out, j)) return 1;
  }

  // Acceptance: collapse visible without control; >= 80% of capacity with it.
  if (on_min_over < 0.8 * kCapacityCps) {
    std::fprintf(stderr, "FAIL: controlled goodput %.2f c/s < 80%% of capacity\n", on_min_over);
    return 1;
  }
  if (off_worst >= on_min_over) {
    std::fprintf(stderr, "FAIL: no collapse visible without control\n");
    return 1;
  }
  return 0;
}
