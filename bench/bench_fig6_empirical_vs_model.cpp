// Figure 6 reproduction: empirical blocking probability vs offered load,
// bracketed by the Erlang-B model at N = 160, 165, 170.
//
// Paper reference (Fig. 6): the measured curve rises from ~0 below 140 E and
// tracks the Erlang-B family; the fit suggests the server behaves like an
// N ~ 165-channel loss system.
//
// Usage: bench_fig6_empirical_vs_model [--fast]
//   --fast : fewer load points and a 45 s placement window.

#include <cstdio>
#include <cstring>
#include <vector>

#include "exp/paper.hpp"
#include "exp/sweep.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  exp::SweepConfig sweep;
  sweep.base.seed = 2025;
  if (fast) {
    sweep.base.scenario.placement_window = Duration::seconds(45);
    sweep.erlangs = {40, 120, 160, 200, 240};
    sweep.replications = 2;
  } else {
    sweep.erlangs = {40, 80, 120, 140, 150, 160, 170, 180, 200, 220, 240};
    sweep.replications = 3;
  }

  std::printf("== Figure 6: empirical vs Erlang-B (N in {160, 165, 170})%s ==\n",
              fast ? " (fast mode)" : "");
  std::printf("%zu load points x %u replications, packet-level testbed\n\n",
              sweep.erlangs.size(), sweep.replications);

  const auto points = exp::run_blocking_sweep(sweep);
  const auto table = exp::fig6_empirical_vs_model(points, {160, 165, 170});
  std::printf("%s\n", table.to_string().c_str());

  // Where does blocking cross 5%? The paper reads "more than 160 concurrent
  // calls with blocking below 5%" off this figure.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i - 1].blocking_mean() < 0.05 && points[i].blocking_mean() >= 0.05) {
      std::printf("5%% blocking crossover between A = %.0f and %.0f Erlangs "
                  "(paper: just above 160 E)\n",
                  points[i - 1].offered_erlangs, points[i].offered_erlangs);
    }
  }
  return 0;
}
