// Ablation A3: Erlang-B (infinite sources) vs Engset (finite sources) vs
// the packet-level simulation in finite-population mode. Quantifies when the
// paper's infinite-source assumption is safe: for the campus population
// (thousands of users) the models coincide; for small populations Erlang-B
// visibly overestimates blocking.
//
// Usage: bench_ablation_models [--fast]

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/engset.hpp"
#include "core/erlang_b.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;
  using erlang::Erlangs;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== Ablation A3: Erlang-B vs Engset vs finite-population simulation%s ==\n\n",
              fast ? " (fast mode)" : "");

  // Analytical comparison across population sizes at a fixed load/capacity.
  constexpr double kLoad = 16.0;      // scaled-down operating point
  constexpr std::uint32_t kChannels = 18;
  util::TextTable analytic{{"population M", "Engset P_b", "Erlang-B P_b", "ratio"}};
  for (const std::uint32_t m : {20u, 30u, 50u, 100u, 400u, 8000u}) {
    const double engset = erlang::engset_blocking_total(Erlangs{kLoad}, m, kChannels);
    const double eb = erlang::erlang_b(Erlangs{kLoad}, kChannels);
    analytic.add_row({util::format("%u", m), util::format("%.3f%%", engset * 100.0),
                      util::format("%.3f%%", eb * 100.0),
                      util::format("%.2f", engset / eb)});
  }
  std::printf("A = %.0f E on N = %u channels:\n%s\n", kLoad, kChannels,
              analytic.to_string().c_str());

  // Packet-level simulation in finite-source mode, against both models.
  // Per-source rate chosen so each idle source offers alpha = A/(M-A)
  // Erlangs (the Engset parameterization).
  const std::vector<std::uint32_t> populations = fast
                                                     ? std::vector<std::uint32_t>{24, 100}
                                                     : std::vector<std::uint32_t>{24, 40, 100, 400};
  std::vector<monitor::ExperimentReport> reports(populations.size());
  const Duration hold = Duration::seconds(20);
  exp::parallel_for(populations.size(), exp::default_threads(), [&](std::size_t i) {
    const double m = populations[i];
    const double alpha = kLoad / (m - kLoad);
    exp::TestbedConfig config;
    config.scenario.finite_population = populations[i];
    config.scenario.per_user_rate_per_s = alpha / hold.to_seconds();
    config.scenario.hold_time = hold;
    config.scenario.hold_model = sim::HoldTimeModel::kExponential;
    config.scenario.placement_window = Duration::seconds(fast ? 400 : 1200);
    config.pbx.max_channels = kChannels;
    config.seed = 555 + i;
    reports[i] = exp::run_testbed(config);
  });

  util::TextTable sim_table{{"population M", "sim P_b", "Engset P_b", "Erlang-B P_b",
                             "attempts"}};
  for (std::size_t i = 0; i < populations.size(); ++i) {
    sim_table.add_row(
        {util::format("%u", populations[i]),
         util::format("%.2f%%", reports[i].blocking_probability * 100.0),
         util::format("%.2f%%",
                      erlang::engset_blocking_total(Erlangs{kLoad}, populations[i], kChannels) *
                          100.0),
         util::format("%.2f%%", erlang::erlang_b(Erlangs{kLoad}, kChannels) * 100.0),
         util::format("%llu", (unsigned long long)reports[i].calls_attempted)});
  }
  std::printf("Simulated finite-source runs (exponential holds, %.0f s mean):\n%s\n",
              hold.to_seconds(), sim_table.to_string().c_str());
  std::printf("Reading: the simulation tracks Engset within sampling noise. The finite-\n"
              "source correction only matters for populations within ~2x of the offered\n"
              "load (M <~ 2A); beyond that Engset and Erlang-B agree to within a percent,\n"
              "so the paper's 8,000+ user regime is safely in Erlang-B territory.\n");
  return 0;
}
