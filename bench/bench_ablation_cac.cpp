// Ablation A4: admission policy — hard channel pool (the paper's Asterisk)
// vs predictive Erlang-B CAC (the paper's reference [8]).
//
// The hard pool serves every call it physically can, so its blocking tracks
// Erlang-B at N = 165. The predictive CAC trades carried load for a
// guaranteed grade of service: it starts shedding as soon as the measured
// offered load predicts blocking above its target, keeping peak channel
// occupancy (and therefore CPU headroom) well below the ceiling.
//
// Usage: bench_ablation_cac [--fast]

#include <cstdio>
#include <cstring>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== Ablation A4: hard channel pool vs predictive Erlang CAC%s ==\n\n",
              fast ? " (fast mode)" : "");

  const std::vector<double> loads{120, 160, 200, 240};
  struct Job {
    double erlangs;
    bool predictive;
  };
  std::vector<Job> jobs;
  for (const double a : loads) {
    jobs.push_back({a, false});
    jobs.push_back({a, true});
  }
  std::vector<monitor::ExperimentReport> reports(jobs.size());

  exp::parallel_for(jobs.size(), exp::default_threads(), [&](std::size_t i) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(jobs[i].erlangs);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    if (jobs[i].predictive) {
      config.pbx.admission = pbx::AdmissionPolicy::kErlangPredictive;
      config.pbx.cac.target_blocking = 0.02;
    }
    config.seed = 900 + i;
    reports[i] = exp::run_testbed(config);
  });

  util::TextTable table{{"A (E)", "policy", "blocked %", "peak channels", "carried calls",
                         "CPU (mean)", "MOS"}};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = reports[i];
    table.add_row({util::format("%.0f", jobs[i].erlangs),
                   jobs[i].predictive ? "predictive CAC" : "hard pool",
                   util::format("%.1f%%", r.blocking_probability * 100.0),
                   util::format("%u", r.channels_peak),
                   util::format("%llu", (unsigned long long)r.calls_completed),
                   util::format("%.0f%%", r.cpu_utilization.mean() * 100.0),
                   r.mos.empty() ? std::string{"n/a"} : util::format("%.2f", r.mos.mean())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: below the knee the policies are indistinguishable. Under\n"
              "sustained overload the threshold CAC of [8] LATCHES: it keys on the\n"
              "*offered* load estimate, which rejected attempts keep elevated, so once\n"
              "the prediction crosses the target it sheds nearly everything -- peak\n"
              "occupancy and CPU collapse, but so do carried calls. A deployable\n"
              "variant must shed proportionally (admit with probability matching the\n"
              "excess), which is exactly the refinement the CAC literature after [8]\n"
              "pursues. The hard pool, by contrast, degrades gracefully to Erlang-B.\n");
  return 0;
}
