// Extension experiment: VoWiFi access capacity.
//
// The paper's motivation is VoWiFi at UnB, but its measurements stop at the
// wired PBX. This harness asks the natural follow-up the paper's §I poses:
// when callers share one 802.11g cell, where does voice quality collapse?
// The known result — a Wi-Fi cell carries only tens of G.711 calls because
// per-packet MAC overhead dwarfs the 160-byte payload — emerges from the
// airtime model: the medium saturates near 100% utilization, frames queue
// and drop, effective loss climbs, and MOS falls off a cliff well before
// the wired PBX runs out of channels.
//
// Usage: bench_vowifi_capacity [--fast]

#include <cstdio>
#include <cstring>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== VoWiFi capacity: G.711 calls through one 802.11g cell%s ==\n\n",
              fast ? " (fast mode)" : "");

  const std::vector<double> call_counts =
      fast ? std::vector<double>{10, 30, 50} : std::vector<double>{5, 10, 20, 30, 40, 50, 60};
  const Duration hold = Duration::seconds(fast ? 20 : 40);

  std::vector<monitor::ExperimentReport> reports(call_counts.size());
  std::vector<exp::WifiObservations> wifi(call_counts.size());

  exp::parallel_for(call_counts.size(), exp::default_threads(), [&](std::size_t i) {
    exp::TestbedConfig config;
    // Offered load equal to the target concurrency; short holds keep runs fast.
    config.scenario = loadgen::CallScenario::for_offered_load(call_counts[i], hold);
    config.scenario.placement_window = Duration::from_seconds(hold.to_seconds() * 3.0);
    config.wifi_cell = net::WifiCellConfig{};  // 802.11g defaults
    config.seed = 4242 + i;
    reports[i] = exp::run_testbed(config, &wifi[i]);
  });

  util::TextTable table{{"concurrent calls (A)", "medium util", "radio+queue drops",
                         "effective loss", "MOS", "completed"}};
  for (std::size_t i = 0; i < call_counts.size(); ++i) {
    const auto& r = reports[i];
    const auto& w = wifi[i];
    table.add_row(
        {util::format("%.0f", call_counts[i]),
         util::format("%.0f%%", w.medium_utilization * 100.0),
         util::format("%llu", (unsigned long long)(w.frames_dropped_queue +
                                                   w.frames_dropped_radio)),
         util::format("%.2f%%", r.effective_loss.mean() * 100.0),
         r.mos.empty() ? std::string{"n/a"} : util::format("%.2f", r.mos.mean()),
         util::format("%llu", (unsigned long long)r.calls_completed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: the cell, not the PBX, is the VoWiFi bottleneck — capacity per AP\n"
              "is tens of calls, so campus-wide VoWiFi leans on AP density, exactly why\n"
              "the paper centres dimensioning on the shared PBX rather than the radio.\n");
  return 0;
}
