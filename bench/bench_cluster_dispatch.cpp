// Extension experiment: health-aware dispatching over a PBX fleet.
//
// The paper's scale-out answer (§IV: "increasing the number of servers") is
// modelled two ways: the blind DNS rotation the campus deploys by default,
// and a dispatcher tier owning per-backend state — balancing policies
// (round-robin / least-loaded / weighted), 503 Retry-After backoff, OPTIONS
// health probes with a circuit breaker, and failover rerouting of timed-out
// INVITEs. Two questions:
//
//  1. Dimensioning (no faults): does measured cluster blocking track the
//     Erlang-B(A/k, N) prediction across policies and loads?
//  2. Chaos (one backend crash_restart mid-run, dead longer than Timer B):
//     how much goodput does each front end sustain? DNS rotation keeps
//     feeding the corpse 1/k of the traffic — every such INVITE burns its
//     full 32 s Timer B and dies; the dispatcher ejects the backend within
//     a few probe periods and rescues in-flight timeouts onto survivors.
//
// Usage: bench_cluster_dispatch [--fast] [--json F] [--trace F]
//   --fast  : smaller sweep + shorter window (CI smoke).
//   --json  : machine-readable results for perf tracking / CI acceptance.
//   --trace : write the sharded crash replay's merged Chrome/Perfetto trace
//             (one process per shard). Open it in ui.perfetto.dev and follow
//             a "call-N" track: dispatch.pick on the hub, the backend's SIP
//             transaction, the fault.crash_restart instant on the dead
//             backend, invite.timeout + dispatch.failover back on the hub,
//             then the rescued call's setup/media on the survivor.
//
// Exit code 0 only if the acceptance criteria hold: least-loaded + failover
// sustains >= 90% of its own fault-free goodput through the crash, while
// blind DNS rotation demonstrably degrades below it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/erlang_b.hpp"
#include "dispatch/dispatcher.hpp"
#include "exp/cluster.hpp"
#include "exp/parallel.hpp"
#include "fault/plan.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pbxcap;
using dispatch::Policy;

constexpr std::uint32_t kServers = 3;
constexpr std::uint32_t kChannelsPerServer = 30;
const Duration kHold = Duration::seconds(10);

// One backend dies mid-window and stays dead past SIP Timer B (32 s), so
// INVITEs stuck on it cannot be saved by retransmission — only by failover.
constexpr const char* kCrashPlan = "@15s pbx crash dead=60s\n";

// A routing mode of the sweep: blind DNS rotation, or the dispatcher tier
// running one of its policies.
struct Mode {
  const char* name;
  exp::ClusterRouting routing;
  Policy policy;
};

constexpr Mode kModes[] = {
    {"dns_rotation", exp::ClusterRouting::kDnsRotation, Policy::kRoundRobin},
    {"round_robin", exp::ClusterRouting::kDispatcher, Policy::kRoundRobin},
    {"least_loaded", exp::ClusterRouting::kDispatcher, Policy::kLeastLoaded},
    {"weighted", exp::ClusterRouting::kDispatcher, Policy::kWeighted},
};
constexpr std::size_t kModeCount = sizeof(kModes) / sizeof(kModes[0]);

exp::ClusterConfig make_config(double erlangs, const Mode& mode, Duration window,
                               std::uint64_t seed) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(erlangs, kHold);
  config.scenario.placement_window = window;
  config.scenario.retry.enabled = true;  // both front ends get the retry budget
  config.servers = kServers;
  config.channels_per_server = kChannelsPerServer;
  config.seed = seed;
  config.routing = mode.routing;
  config.dispatcher.policy = mode.policy;
  // Horizon slack: Timer B (32 s) for failovers of the last INVITEs, then
  // the rescued calls' hold time and BYE handshake.
  config.drain = Duration::seconds(45);
  return config;
}

double goodput(const exp::ClusterResult& r, Duration window) {
  return static_cast<double>(r.report.calls_completed) / window.to_seconds();
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a value\n");
        return 2;
      }
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace needs a value\n");
        return 2;
      }
      trace_out = argv[++i];
    }
  }

  const Duration window = Duration::seconds(fast ? 60 : 120);
  const std::vector<double> loads =
      fast ? std::vector<double>{45.0} : std::vector<double>{45.0, 72.0, 99.0};
  const double fault_load = 45.0;  // below saturation: failover story is clean
  const std::size_t n_loads = loads.size();

  std::printf("== Cluster dispatch: %u x %u channels, policy x load x fault%s ==\n",
              kServers, kChannelsPerServer, fast ? " (fast mode)" : "");
  std::printf("hold %.0f s, window %.0f s, fault plan: %s\n", kHold.to_seconds(),
              window.to_seconds(), kCrashPlan);

  // Jobs: [0, n_loads*kModeCount) fault-free dimensioning grid, then
  // kModeCount faulted runs at the fault load. Seeds depend only on the grid
  // position, so rerunning the binary is byte-identical.
  const fault::FaultPlan plan = fault::FaultPlan::parse(kCrashPlan);
  const std::size_t grid_jobs = n_loads * kModeCount;
  const std::size_t fault_li = static_cast<std::size_t>(
      std::distance(loads.begin(), std::find(loads.begin(), loads.end(), fault_load)));
  std::vector<exp::ClusterResult> results(grid_jobs + kModeCount);
  exp::parallel_for(results.size(), exp::default_threads(), [&](std::size_t job) {
    if (job < grid_jobs) {
      const std::size_t load_idx = job / kModeCount;
      const Mode& mode = kModes[job % kModeCount];
      results[job] =
          exp::run_cluster(make_config(loads[load_idx], mode, window, 7100 + 13 * job));
    } else {
      // A faulted run reuses its fault-free twin's seed, so each pair sees
      // the same arrival stream and "sustained" compares like with like.
      const std::size_t mode_idx = job - grid_jobs;
      auto config = make_config(fault_load, kModes[mode_idx], window,
                                7100 + 13 * (fault_li * kModeCount + mode_idx));
      config.faults = &plan;
      config.fault_backend = 0;
      results[job] = exp::run_cluster(config);
    }
  });

  // ---- dimensioning table: measured blocking vs Erlang-B(A/k, N) ----
  util::TextTable dim{{"A (E)", "Erlang-B(A/k, N)", "dns_rotation", "round_robin",
                       "least_loaded", "weighted"}};
  for (std::size_t li = 0; li < n_loads; ++li) {
    std::vector<std::string> row{
        util::format("%.0f", loads[li]),
        util::format("%.2f%%",
                     erlang::erlang_b(loads[li] / kServers, kChannelsPerServer) * 100.0)};
    for (std::size_t mi = 0; mi < kModeCount; ++mi) {
      row.push_back(util::format(
          "%.2f%%", results[li * kModeCount + mi].report.blocking_probability * 100.0));
    }
    dim.add_row(row);
  }
  std::printf("\n-- dimensioning (no faults): measured blocking by policy --\n%s\n",
              dim.to_string().c_str());

  // ---- chaos table: goodput through the crash ----
  const auto grid_at = [&](double load, std::size_t mode_idx) -> const exp::ClusterResult& {
    const std::size_t li = static_cast<std::size_t>(
        std::distance(loads.begin(), std::find(loads.begin(), loads.end(), load)));
    return results[li * kModeCount + mode_idx];
  };
  util::TextTable chaos{{"mode", "goodput ok (c/s)", "goodput crash (c/s)", "sustained",
                         "failed", "failovers", "rerouted", "circuit opens", "no-backend"}};
  std::vector<double> sustained(kModeCount);
  for (std::size_t mi = 0; mi < kModeCount; ++mi) {
    const auto& ok = grid_at(fault_load, mi);
    const auto& crash = results[grid_jobs + mi];
    sustained[mi] = goodput(ok, window) > 0.0 ? goodput(crash, window) / goodput(ok, window) : 0.0;
    chaos.add_row(
        {kModes[mi].name, util::format("%.2f", goodput(ok, window)),
         util::format("%.2f", goodput(crash, window)), util::format("%.1f%%", 100.0 * sustained[mi]),
         util::format("%llu", (unsigned long long)crash.report.calls_failed),
         util::format("%llu", (unsigned long long)crash.failovers),
         util::format("%llu", (unsigned long long)crash.report.retries_rerouted),
         util::format("%llu", (unsigned long long)crash.circuit_opens),
         util::format("%llu", (unsigned long long)crash.dispatch_rejected)});
  }
  std::printf("-- chaos (crash_restart on backend 0 at t=15s, dead 60s) --\n%s\n",
              chaos.to_string().c_str());

  const std::size_t dns_idx = 0, least_idx = 2;
  const auto& least_crash = results[grid_jobs + least_idx];

  // ---- sharded replay of the least-loaded crash run: per-shard load map ----
  // Same scenario through the sharded executor (auto worker count). Results
  // differ from the monolithic run only via the lookahead-floored uplinks;
  // the per-shard event/message/wall columns show how the fault skews load
  // across the partition (the crashed backend's shard goes quiet).
  exp::ClusterResult shard_crash;
  bool trace_ok = true;
  {
    auto config = make_config(fault_load, kModes[least_idx], window,
                              7100 + 13 * (fault_li * kModeCount + least_idx));
    config.faults = &plan;
    config.fault_backend = 0;
    config.shard.enabled = true;
    // --trace: span-trace the replay and merge all shards into one file.
    telemetry::Config trace_cfg;
    trace_cfg.tracing = true;
    telemetry::Telemetry trace_tel{trace_cfg};
    if (!trace_out.empty()) config.telemetry = &trace_tel;
    const auto t0 = std::chrono::steady_clock::now();
    shard_crash = exp::run_cluster(config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    util::TextTable st{{"shard", "events", "msgs in", "msgs out", "wall (s)"}};
    for (std::size_t s = 0; s < shard_crash.shards.size(); ++s) {
      const auto& obs = shard_crash.shards[s];
      st.add_row({s == 0 ? std::string{"hub"} : util::format("pbx%zu", s - 1),
                  util::format("%llu", (unsigned long long)obs.events),
                  util::format("%llu", (unsigned long long)obs.messages_in),
                  util::format("%llu", (unsigned long long)obs.messages_out),
                  util::format("%.3f", obs.wall_s)});
    }
    std::printf(
        "-- sharded replay of the least-loaded crash run (%u workers, %.2f s wall) --\n%s\n",
        shard_crash.shard_threads, wall, st.to_string().c_str());
    if (!trace_out.empty()) {
      // The merged trace must actually show the story: the crash as an
      // instant event and at least one failover hop on a call journey.
      if (shard_crash.merged_trace.find("fault.") == std::string::npos) {
        std::fprintf(stderr, "FAIL: merged trace has no fault instant event\n");
        trace_ok = false;
      }
      if (shard_crash.merged_trace.find("dispatch.failover") == std::string::npos) {
        std::fprintf(stderr, "FAIL: merged trace has no dispatch.failover instant\n");
        trace_ok = false;
      }
      if (!write_file(trace_out, shard_crash.merged_trace)) trace_ok = false;
    }
  }
  std::printf(
      "Reading: DNS rotation keeps feeding the dead backend, so every INVITE routed\n"
      "there burns Timer B (32 s) and fails — goodput drops to %.1f%% of fault-free.\n"
      "The dispatcher's probes open the circuit within ~%u s; %llu timed-out INVITEs\n"
      "failed over to survivors, sustaining %.1f%% of fault-free goodput.\n",
      100.0 * sustained[dns_idx], kModes[least_idx].policy == Policy::kLeastLoaded ? 4u : 4u,
      (unsigned long long)least_crash.failovers, 100.0 * sustained[least_idx]);

  if (!json_out.empty()) {
    std::string j = "{\n  \"bench\": \"cluster_dispatch\",\n";
    j += util::format("  \"servers\": %u,\n  \"channels_per_server\": %u,\n", kServers,
                      kChannelsPerServer);
    j += util::format("  \"window_s\": %.0f,\n  \"fault_load_erlangs\": %.0f,\n",
                      window.to_seconds(), fault_load);
    j += "  \"loads_erlangs\": [";
    for (std::size_t li = 0; li < n_loads; ++li) {
      j += util::format("%.0f%s", loads[li], li + 1 < n_loads ? ", " : "");
    }
    j += "],\n  \"modes\": {\n";
    for (std::size_t mi = 0; mi < kModeCount; ++mi) {
      const auto& crash = results[grid_jobs + mi];
      j += util::format("    \"%s\": {\"blocking\": [", kModes[mi].name);
      for (std::size_t li = 0; li < n_loads; ++li) {
        j += util::format("%.4f%s", results[li * kModeCount + mi].report.blocking_probability,
                          li + 1 < n_loads ? ", " : "");
      }
      j += util::format(
          "], \"goodput_ok_cps\": %.4f, \"goodput_crash_cps\": %.4f, "
          "\"sustained_frac\": %.4f, \"failovers\": %llu, \"circuit_opens\": %llu}%s\n",
          goodput(grid_at(fault_load, mi), window), goodput(crash, window), sustained[mi],
          (unsigned long long)crash.failovers, (unsigned long long)crash.circuit_opens,
          mi + 1 < kModeCount ? "," : "");
    }
    j += "  },\n";
    j += util::format("  \"sustained_least_loaded_frac\": %.4f,\n", sustained[least_idx]);
    j += util::format("  \"sustained_dns_rotation_frac\": %.4f,\n", sustained[dns_idx]);
    // Per-shard load map of the sharded crash replay. Every wall_s field
    // sits on its own line: CI byte-compares reruns of this file after
    // `grep -v wall_s` (wall-clock is host noise; the rest is deterministic).
    j += util::format(
        "  \"shard_fault\": {\n    \"threads\": %u, \"rounds\": %llu, \"clamped\": %llu,\n"
        "    \"failovers\": %llu, \"calls_completed\": %llu,\n    \"shards\": [\n",
        shard_crash.shard_threads, (unsigned long long)shard_crash.shard_rounds,
        (unsigned long long)shard_crash.shard_clamped,
        (unsigned long long)shard_crash.failovers,
        (unsigned long long)shard_crash.report.calls_completed);
    for (std::size_t s = 0; s < shard_crash.shards.size(); ++s) {
      const auto& obs = shard_crash.shards[s];
      j += util::format(
          "      {\"shard\": %zu, \"events\": %llu, \"messages_in\": %llu, "
          "\"messages_out\": %llu,\n",
          s, (unsigned long long)obs.events, (unsigned long long)obs.messages_in,
          (unsigned long long)obs.messages_out);
      j += util::format("  \"wall_s\": %.3f}%s\n", obs.wall_s,
                        s + 1 < shard_crash.shards.size() ? "," : "");
    }
    j += "    ]\n  }\n}\n";
    if (!write_file(json_out, j)) return 1;
  }

  // ---- acceptance ----
  int rc = 0;
  if (sustained[least_idx] < 0.90) {
    std::fprintf(stderr, "FAIL: least-loaded sustained only %.1f%% of fault-free goodput\n",
                 100.0 * sustained[least_idx]);
    rc = 1;
  }
  if (sustained[dns_idx] >= sustained[least_idx]) {
    std::fprintf(stderr, "FAIL: DNS rotation (%.1f%%) did not degrade below the "
                         "health-aware dispatcher (%.1f%%)\n",
                 100.0 * sustained[dns_idx], 100.0 * sustained[least_idx]);
    rc = 1;
  }
  if (least_crash.failovers == 0) {
    std::fprintf(stderr, "FAIL: no failovers recorded under the crash\n");
    rc = 1;
  }
  if (least_crash.circuit_opens == 0) {
    std::fprintf(stderr, "FAIL: circuit breaker never opened under the crash\n");
    rc = 1;
  }
  if (!trace_ok) rc = 1;
  return rc;
}
