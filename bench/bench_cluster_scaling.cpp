// Extension experiment: scaling out with multiple PBX servers.
//
// The paper closes §IV by noting that serving the full ~50,000-user campus
// needs either call policy or "increasing the number of servers". This
// harness quantifies the second option: offered loads beyond one server's
// capacity, split round-robin over k PBXs of 165 channels each, measured in
// the packet-level testbed and compared with Erlang-B(A/k, 165).
//
// Usage: bench_cluster_scaling [--fast] [--mega]
//   --mega : million-call-scale demonstration — 100,000 offered Erlangs over
//            8 x 15,000-channel backends with the hybrid fluid/packet media
//            engine (exact per-packet simulation of this point would need
//            ~2 x 10^10 kernel events; the fluid fast path makes it a
//            single-machine run). Prints peak concurrent calls, kernel
//            events, and wall time.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/erlang_b.hpp"
#include "exp/cluster.hpp"
#include "exp/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

void run_mega() {
  using namespace pbxcap;
  std::printf("== Mega point: 100,000 E over 8 x 15,000 channels, hybrid fluid media ==\n");
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(100'000);
  config.fleet.assign(8, exp::ServerSpec{15'000, 0});
  config.fluid.enabled = true;
  config.seed = 9001;
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ClusterResult r = exp::run_cluster(config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::uint64_t peak_total = 0;
  for (const std::uint32_t p : r.peak_channels_per_server) peak_total += p;
  std::printf("  calls attempted/completed : %llu / %llu\n",
              (unsigned long long)r.report.calls_attempted,
              (unsigned long long)r.report.calls_completed);
  std::printf("  peak concurrent calls     : %llu (sum of per-server channel peaks)\n",
              (unsigned long long)peak_total);
  std::printf("  blocking                  : %.2f%%\n", r.report.blocking_probability * 100.0);
  std::printf("  RTP packets at backends   : %llu\n",
              (unsigned long long)r.report.rtp_packets_at_pbx);
  std::printf("  kernel events             : %llu (%.0f per completed call)\n",
              (unsigned long long)r.report.events_processed,
              r.report.calls_completed > 0
                  ? static_cast<double>(r.report.events_processed) /
                        static_cast<double>(r.report.calls_completed)
                  : 0.0);
  std::printf("  wall time                 : %.1f s\n\n", wall);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  bool mega = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strcmp(argv[i], "--mega") == 0) mega = true;
  }
  if (mega) {
    run_mega();
    return 0;
  }

  std::printf("== Cluster scaling: k Asterisk servers, round-robin calls%s ==\n\n",
              fast ? " (fast mode)" : "");

  struct Job {
    double erlangs;
    std::uint32_t servers;
  };
  std::vector<Job> jobs;
  const std::vector<double> loads = fast ? std::vector<double>{240} : std::vector<double>{240, 400};
  for (const double a : loads) {
    for (const std::uint32_t k : {1u, 2u, 3u}) jobs.push_back({a, k});
  }

  std::vector<exp::ClusterResult> results(jobs.size());
  exp::parallel_for(jobs.size(), exp::default_threads(), [&](std::size_t i) {
    exp::ClusterConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(jobs[i].erlangs);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.servers = jobs[i].servers;
    config.seed = 7000 + i;
    results[i] = exp::run_cluster(config);
  });

  util::TextTable table{{"A (E)", "servers", "measured Pb", "Erlang-B(A/k, 165)",
                         "peak ch (total)", "completed"}};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = results[i];
    const double per_server = jobs[i].erlangs / jobs[i].servers;
    table.add_row(
        {util::format("%.0f", jobs[i].erlangs), util::format("%u", jobs[i].servers),
         util::format("%.1f%%", r.report.blocking_probability * 100.0),
         util::format("%.1f%%",
                      erlang::erlang_b(erlang::Erlangs{per_server}, 165) * 100.0),
         util::format("%u", r.report.channels_peak),
         util::format("%llu", (unsigned long long)r.report.calls_completed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: two servers absorb the paper's worst case (240 E -> ~0%% blocking);\n"
              "the 50k-user scenario (400+ E) needs three. Measured blocking tracks the\n"
              "per-server Erlang-B prediction, validating simple DNS-rotation scale-out.\n");
  return 0;
}
