// Extension experiment: scaling out with multiple PBX servers.
//
// The paper closes §IV by noting that serving the full ~50,000-user campus
// needs either call policy or "increasing the number of servers". This
// harness quantifies the second option: offered loads beyond one server's
// capacity, split round-robin over k PBXs of 165 channels each, measured in
// the packet-level testbed and compared with Erlang-B(A/k, 165).
//
// Usage: bench_cluster_scaling [--fast] [--mega] [--shards] [--threads N] [--json F]
//                              [--attr-json F]
//   --mega   : million-call-scale demonstration — 100,000 offered Erlangs over
//              8 x 15,000-channel backends with the hybrid fluid/packet media
//              engine (exact per-packet simulation of this point would need
//              ~2 x 10^10 kernel events; the fluid fast path makes it a
//              single-machine run). Prints peak concurrent calls, kernel
//              events, and wall time.
//   --shards : sharded-executor scaling sweep — the SAME seed run at worker
//              counts {1, 2, 4, 8}, every deterministic output cross-checked
//              (exit 1 on any divergence), wall time and speedup vs the
//              1-thread run recorded; then a 50-backend dispatcher fleet
//              point run with the event-engine profiler at every worker
//              count, proving both that the partition holds at fleet scale
//              and that the per-shard/per-category event-attribution JSON is
//              byte-identical for any worker count. --threads N shrinks the
//              sweep to {1, N}; --json F writes the machine-readable record
//              (wall-clock fields sit on their own lines so CI can filter
//              them before byte-comparing reruns); --attr-json F writes the
//              fleet attribution JSON.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/erlang_b.hpp"
#include "exp/cluster.hpp"
#include "exp/parallel.hpp"
#include "telemetry/profiler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

void run_mega() {
  using namespace pbxcap;
  std::printf("== Mega point: 100,000 E over 8 x 15,000 channels, hybrid fluid media ==\n");
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(100'000);
  config.fleet.assign(8, exp::ServerSpec{15'000, 0});
  config.fluid.enabled = true;
  config.seed = 9001;
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ClusterResult r = exp::run_cluster(config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::uint64_t peak_total = 0;
  for (const std::uint32_t p : r.peak_channels_per_server) peak_total += p;
  std::printf("  calls attempted/completed : %llu / %llu\n",
              (unsigned long long)r.report.calls_attempted,
              (unsigned long long)r.report.calls_completed);
  std::printf("  peak concurrent calls     : %llu (sum of per-server channel peaks)\n",
              (unsigned long long)peak_total);
  std::printf("  blocking                  : %.2f%%\n", r.report.blocking_probability * 100.0);
  std::printf("  RTP packets at backends   : %llu\n",
              (unsigned long long)r.report.rtp_packets_at_pbx);
  std::printf("  kernel events             : %llu (%.0f per completed call)\n",
              (unsigned long long)r.report.events_processed,
              r.report.calls_completed > 0
                  ? static_cast<double>(r.report.events_processed) /
                        static_cast<double>(r.report.calls_completed)
                  : 0.0);
  std::printf("  wall time                 : %.1f s\n\n", wall);
}

double wall_run(const pbxcap::exp::ClusterConfig& config, pbxcap::exp::ClusterResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = pbxcap::exp::run_cluster(config);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Everything a sharded run is contractually required to reproduce for any
// worker count: the aggregate report, per-server peaks, and the per-shard
// event/message counts (wall times are excluded — they are host noise).
std::string fingerprint(const pbxcap::exp::ClusterResult& r) {
  using pbxcap::util::format;
  std::string f = format(
      "att=%llu comp=%llu fail=%llu pb=%.9f peak=%u rtp=%llu events=%llu "
      "rounds=%llu clamped=%llu",
      (unsigned long long)r.report.calls_attempted,
      (unsigned long long)r.report.calls_completed,
      (unsigned long long)r.report.calls_failed, r.report.blocking_probability,
      r.report.channels_peak, (unsigned long long)r.report.rtp_packets_at_pbx,
      (unsigned long long)r.report.events_processed, (unsigned long long)r.shard_rounds,
      (unsigned long long)r.shard_clamped);
  for (const std::uint32_t p : r.peak_channels_per_server) f += format(" %u", p);
  for (const auto& s : r.shards) {
    f += format(" [%llu/%llu/%llu]", (unsigned long long)s.events,
                (unsigned long long)s.messages_in, (unsigned long long)s.messages_out);
  }
  return f;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int run_shards(bool fast, unsigned threads_override, const std::string& json_out,
               const std::string& attr_json_out) {
  using namespace pbxcap;

  const std::uint32_t backends = 8;
  const std::uint32_t channels = fast ? 20u : 40u;
  const double erlangs = fast ? 120.0 : 240.0;
  const Duration hold = Duration::seconds(20);
  const Duration window = Duration::seconds(fast ? 30 : 60);

  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(erlangs, hold);
  config.scenario.placement_window = window;
  config.servers = backends;
  config.channels_per_server = channels;
  config.seed = 7777;
  config.shard.enabled = true;

  std::vector<unsigned> counts{1, 2, 4, 8};
  if (threads_override > 0) {
    counts = {1};
    if (threads_override != 1) counts.push_back(threads_override);
  }

  std::printf("== Shard scaling: %u backends x %u ch, %.0f E, window %.0f s, seed %llu ==\n",
              backends, channels, erlangs, window.to_seconds(),
              (unsigned long long)config.seed);
  std::printf("host threads: %u (PBXCAP_THREADS honoured), lookahead %.1f ms\n\n",
              exp::default_threads(), config.shard.lookahead.to_seconds() * 1e3);

  std::vector<exp::ClusterResult> results(counts.size());
  std::vector<double> walls(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    config.shard.threads = counts[i];
    walls[i] = wall_run(config, results[i]);
  }

  // Determinism gate: every worker count must reproduce the 1-thread run.
  const std::string reference = fingerprint(results[0]);
  bool deterministic = true;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (fingerprint(results[i]) != reference) {
      deterministic = false;
      std::fprintf(stderr, "FAIL: %u-thread run diverged from 1-thread run\n  1: %s\n  %u: %s\n",
                   counts[i], reference.c_str(), counts[i], fingerprint(results[i]).c_str());
    }
  }

  util::TextTable table{{"threads", "workers", "wall (s)", "speedup", "rounds", "events"}};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    table.add_row({util::format("%u", counts[i]),
                   util::format("%u", results[i].shard_threads),
                   util::format("%.2f", walls[i]),
                   util::format("%.2fx", walls[i] > 0.0 ? walls[0] / walls[i] : 0.0),
                   util::format("%llu", (unsigned long long)results[i].shard_rounds),
                   util::format("%llu", (unsigned long long)results[i].report.events_processed)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& ref = results[0];
  std::uint64_t messages = 0;
  for (const auto& s : ref.shards) messages += s.messages_in;
  std::printf("determinism: %s (%zu worker counts, identical reports/peaks/shard stats)\n",
              deterministic ? "ok" : "FAILED", counts.size());
  std::printf("cross-shard messages: %llu (%llu clamped to the causality bound)\n\n",
              (unsigned long long)messages, (unsigned long long)ref.shard_clamped);

  // Fleet feasibility + event attribution: 50 backends behind the
  // least-loaded dispatcher, one shard each, 60 s placement window, run with
  // the event-engine profiler at EVERY worker count in the sweep. The
  // per-shard/per-category attribution JSON is count-only, so it must come
  // out byte-identical no matter how many workers executed the shards.
  exp::ClusterConfig fleet;
  fleet.scenario = loadgen::CallScenario::for_offered_load(300.0, hold);
  fleet.scenario.placement_window = Duration::seconds(60);
  fleet.fleet.assign(50, exp::ServerSpec{12, 0});
  fleet.seed = 4242;
  fleet.routing = exp::ClusterRouting::kDispatcher;
  fleet.dispatcher.policy = dispatch::Policy::kLeastLoaded;
  fleet.shard.enabled = true;
  telemetry::Config prof_cfg;
  prof_cfg.tracing = false;
  prof_cfg.profiling = true;
  std::string attr_ref;
  bool attr_identical = true;
  exp::ClusterResult fr;
  double fleet_wall = 0.0;
  for (const unsigned c : counts) {
    telemetry::Telemetry ptel{prof_cfg};
    fleet.telemetry = &ptel;
    fleet.shard.threads = c;
    exp::ClusterResult r;
    const double w = wall_run(fleet, r);
    const std::string attr = telemetry::attribution_json(r.shard_profiles);
    if (attr_ref.empty()) {
      attr_ref = attr;
    } else if (attr != attr_ref) {
      attr_identical = false;
      std::fprintf(stderr, "FAIL: %u-worker fleet attribution diverged from reference\n", c);
    }
    if (c == counts.back()) {
      fr = std::move(r);
      fleet_wall = w;
    }
  }
  fleet.telemetry = nullptr;
  const std::uint64_t attr_total = [&fr] {
    std::uint64_t t = 0;
    for (const auto& s : fr.shard_profiles) t += s.data.total_events();
    return t;
  }();
  const double hub_share =
      attr_total == 0 || fr.shard_profiles.empty()
          ? 0.0
          : static_cast<double>(fr.shard_profiles.front().data.total_events()) /
                static_cast<double>(attr_total);
  std::printf("== Fleet point: 50 backends x 12 ch, 300 E, least-loaded dispatcher ==\n");
  std::printf("  shards                : %zu (%u workers, %llu rounds)\n", fr.shards.size(),
              fr.shard_threads, (unsigned long long)fr.shard_rounds);
  std::printf("  calls attempted/completed : %llu / %llu (blocking %.2f%%)\n",
              (unsigned long long)fr.report.calls_attempted,
              (unsigned long long)fr.report.calls_completed,
              fr.report.blocking_probability * 100.0);
  std::printf("  kernel events         : %llu\n",
              (unsigned long long)fr.report.events_processed);
  std::printf("  hub shard share       : %.1f%% of attributed events (%s across %zu "
              "worker counts)\n",
              hub_share * 100.0, attr_identical ? "byte-identical" : "DIVERGED",
              counts.size());
  std::printf("  wall time             : %.2f s\n", fleet_wall);
  const bool fleet_ok = fr.report.calls_completed > 0 && fr.shards.size() == 51 &&
                        fr.shard_profiles.size() == 51;
  if (!attr_json_out.empty() && !write_file(attr_json_out, attr_ref)) return 1;

  if (!json_out.empty()) {
    std::string j = "{\n  \"bench\": \"shard_scaling\",\n";
    j += util::format("  \"backends\": %u,\n  \"channels_per_server\": %u,\n", backends,
                      channels);
    j += util::format("  \"offered_erlangs\": %.0f,\n  \"window_s\": %.0f,\n", erlangs,
                      window.to_seconds());
    j += util::format("  \"lookahead_ms\": %.3f,\n",
                      config.shard.lookahead.to_seconds() * 1e3);
    j += util::format("  \"host_threads\": %u,\n", exp::default_threads());
    j += util::format("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
    j += util::format("  \"events_processed\": %llu,\n  \"rounds\": %llu,\n",
                      (unsigned long long)ref.report.events_processed,
                      (unsigned long long)ref.shard_rounds);
    j += util::format("  \"messages\": %llu,\n  \"clamped\": %llu,\n",
                      (unsigned long long)messages, (unsigned long long)ref.shard_clamped);
    j += "  \"sweep\": [\n";
    for (std::size_t i = 0; i < counts.size(); ++i) {
      j += util::format("    {\"threads\": %u, \"workers\": %u,\n", counts[i],
                        results[i].shard_threads);
      j += util::format("  \"wall_s\": %.3f,\n", walls[i]);
      j += util::format("  \"speedup\": %.3f}%s\n",
                        walls[i] > 0.0 ? walls[0] / walls[i] : 0.0,
                        i + 1 < counts.size() ? "," : "");
    }
    j += "  ],\n  \"shards\": [\n";
    for (std::size_t s = 0; s < ref.shards.size(); ++s) {
      j += util::format(
          "    {\"shard\": %zu, \"events\": %llu, \"messages_in\": %llu, "
          "\"messages_out\": %llu}%s\n",
          s, (unsigned long long)ref.shards[s].events,
          (unsigned long long)ref.shards[s].messages_in,
          (unsigned long long)ref.shards[s].messages_out,
          s + 1 < ref.shards.size() ? "," : "");
    }
    j += "  ],\n  \"fleet\": {\n";
    j += util::format("    \"backends\": %zu, \"offered_erlangs\": 300, \"window_s\": 60,\n",
                      fleet.fleet.size());
    j += util::format("    \"threads\": %u, \"calls_attempted\": %llu, "
                      "\"calls_completed\": %llu,\n",
                      fr.shard_threads, (unsigned long long)fr.report.calls_attempted,
                      (unsigned long long)fr.report.calls_completed);
    j += util::format("    \"blocking\": %.4f, \"events_processed\": %llu,\n",
                      fr.report.blocking_probability,
                      (unsigned long long)fr.report.events_processed);
    j += util::format("    \"hub_event_share\": %.6f, \"attribution_deterministic\": %s,\n",
                      hub_share, attr_identical ? "true" : "false");
    j += util::format("  \"fleet_wall_s\": %.3f\n  }\n}\n", fleet_wall);
    if (!write_file(json_out, j)) return 1;
  }

  if (!fleet_ok) {
    std::fprintf(stderr, "FAIL: 50-backend fleet point produced no completed calls\n");
  }
  return (deterministic && fleet_ok && attr_identical) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  bool mega = false;
  bool shards = false;
  unsigned threads_override = 0;
  std::string json_out;
  std::string attr_json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--mega") == 0) {
      mega = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads needs a value\n");
        return 2;
      }
      threads_override = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a value\n");
        return 2;
      }
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--attr-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--attr-json needs a value\n");
        return 2;
      }
      attr_json_out = argv[++i];
    }
  }
  if (shards) return run_shards(fast, threads_override, json_out, attr_json_out);
  if (mega) {
    run_mega();
    return 0;
  }

  std::printf("== Cluster scaling: k Asterisk servers, round-robin calls%s ==\n\n",
              fast ? " (fast mode)" : "");

  struct Job {
    double erlangs;
    std::uint32_t servers;
  };
  std::vector<Job> jobs;
  const std::vector<double> loads = fast ? std::vector<double>{240} : std::vector<double>{240, 400};
  for (const double a : loads) {
    for (const std::uint32_t k : {1u, 2u, 3u}) jobs.push_back({a, k});
  }

  std::vector<exp::ClusterResult> results(jobs.size());
  exp::parallel_for(jobs.size(), exp::default_threads(), [&](std::size_t i) {
    exp::ClusterConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(jobs[i].erlangs);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.servers = jobs[i].servers;
    config.seed = 7000 + i;
    results[i] = exp::run_cluster(config);
  });

  util::TextTable table{{"A (E)", "servers", "measured Pb", "Erlang-B(A/k, 165)",
                         "peak ch (total)", "completed"}};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = results[i];
    const double per_server = jobs[i].erlangs / jobs[i].servers;
    table.add_row(
        {util::format("%.0f", jobs[i].erlangs), util::format("%u", jobs[i].servers),
         util::format("%.1f%%", r.report.blocking_probability * 100.0),
         util::format("%.1f%%",
                      erlang::erlang_b(erlang::Erlangs{per_server}, 165) * 100.0),
         util::format("%u", r.report.channels_peak),
         util::format("%llu", (unsigned long long)r.report.calls_completed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: two servers absorb the paper's worst case (240 E -> ~0%% blocking);\n"
              "the 50k-user scenario (400+ E) needs three. Measured blocking tracks the\n"
              "per-server Erlang-B prediction, validating simple DNS-rotation scale-out.\n");
  return 0;
}
