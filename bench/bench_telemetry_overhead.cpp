// Telemetry overhead benchmark: proves the "disabled telemetry is one
// predictable branch per site" contract with numbers.
//
// Two workloads, each run with telemetry OFF (null handles — the default
// state of every instrumented component), ON (live counters, sampler, span
// ring), and PROF (ON plus the event-engine profiler counting every
// simulator fire into its category slots):
//
//   self_scheduling : the RTP-sender event pattern from bench_perf_engine —
//                     a 20 µs self-rescheduling tick with one counter site,
//                     the purest view of per-event instrumentation cost.
//   table1_fast     : one full packet-level testbed run at A = 200 E with the
//                     Table-I --fast placement window (45 s) — the macro
//                     workload the acceptance criterion is written against.
//
// The micro workload additionally runs a BARE variant — the identical loop
// with no instrumentation site at all — so the disabled-path branch cost
// ("off ovh", the ≤ 2% gate) is measured under one methodology rather than
// across harnesses. Measurement rounds are interleaved across variants —
// each round runs every variant once, and the best (max) events/s per
// variant across rounds is kept — so host drift lands on all variants
// instead of penalizing whichever block would otherwise run last. For the
// macro workload no uninstrumented control exists in this harness (its
// pre-instrumentation history is bench_perf_engine's BM_Table1MacroPoint),
// so its bare/off-overhead fields are omitted rather than reported as 0.
// The "prof ovh" column is the profiler's enabled cost relative to the
// telemetry-on baseline (the ≤ 5% gate); the profiler's DISABLED cost is
// already inside "off ovh" — it is the same null-pointer branch in the
// dispatch loop.
//
// Usage: bench_telemetry_overhead [--fast] [--json FILE] [--repeats N]
//   --fast    : fewer events / shorter window for smoke runs.
//   --json    : additionally write machine-readable results to FILE.
//   --repeats : override the round count (default 3, --fast 2) — archived
//               numbers on noisy hosts should use more.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/testbed.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace {

using namespace pbxcap;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The never-instrumented control: the exact BM_SimulatorSelfScheduling
/// closure, measured under this harness so all three variants share one
/// methodology.
struct BareTick {
  sim::Simulator* simulator;
  std::int64_t* remaining;
  void operator()() const {
    if (--*remaining > 0) simulator->schedule_in(Duration::micros(20), *this);
  }
};
static_assert(sim::Callback::stores_inline<BareTick>());

/// One counter site in a self-scheduling 20 µs tick — the rtp::Stream
/// emit_one() shape. `counter == nullptr` is the telemetry-off path.
struct Tick {
  sim::Simulator* simulator;
  std::int64_t* remaining;
  telemetry::Counter* counter;
  void operator()() const {
    if (counter != nullptr) counter->add();
    if (--*remaining > 0) simulator->schedule_in(Duration::micros(20), *this);
  }
};
static_assert(sim::Callback::stores_inline<Tick>());

double bare_events_per_s(std::int64_t events, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::Simulator simulator;
    std::int64_t remaining = events;
    const auto start = std::chrono::steady_clock::now();
    simulator.schedule_in(Duration::micros(20), BareTick{&simulator, &remaining});
    simulator.run();
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(simulator.events_processed()) / elapsed);
  }
  return best;
}

double self_scheduling_events_per_s(std::int64_t events, telemetry::Telemetry* tel, int repeats,
                                    bool profiled = false) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    telemetry::Counter* counter = nullptr;
    if (tel != nullptr && tel->enabled()) {
      counter = &tel->registry().counter("bench_ticks_total", {{"rep", util::format("%d", rep)}},
                                         "Self-scheduling tick count");
    }
    sim::Simulator simulator;
    if (profiled && tel != nullptr && tel->profiler() != nullptr) {
      tel->profiler()->attach(simulator);
    }
    std::int64_t remaining = events;
    const auto start = std::chrono::steady_clock::now();
    simulator.schedule_in(Duration::micros(20), Tick{&simulator, &remaining, counter});
    simulator.run();
    const double elapsed = seconds_since(start);
    if (profiled && tel != nullptr && tel->profiler() != nullptr) {
      tel->profiler()->detach();  // frees the simulator for the next rep
    }
    best = std::max(best, static_cast<double>(simulator.events_processed()) / elapsed);
  }
  return best;
}

enum class Variant { kOff, kOn, kProf };

double testbed_events_per_s(Variant variant, Duration window, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    // Fresh Telemetry per run, like run_testbed's contract demands; its
    // registration cost is part of what we measure.
    telemetry::Config tel_cfg;
    tel_cfg.profiling = variant == Variant::kProf;
    telemetry::Telemetry tel{tel_cfg};
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(200.0);
    config.scenario.placement_window = window;
    config.seed = 1;
    if (variant != Variant::kOff) config.telemetry = &tel;
    const auto start = std::chrono::steady_clock::now();
    const auto report = exp::run_testbed(config);
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(report.events_processed) / elapsed);
  }
  return best;
}

struct Row {
  const char* name;
  double bare_eps;  // 0 when no uninstrumented control exists for the workload
  double off_eps;
  double on_eps;
  double prof_eps;  // telemetry on + event-engine profiler counting
  [[nodiscard]] bool has_bare() const { return bare_eps > 0.0; }
  /// Disabled-path cost vs the uninstrumented control (the ≤ 2% gate).
  /// Meaningless (and omitted from output) when no bare control exists.
  [[nodiscard]] double off_overhead_pct() const {
    return has_bare() ? (1.0 - off_eps / bare_eps) * 100.0 : 0.0;
  }
  [[nodiscard]] double on_overhead_pct() const { return (1.0 - on_eps / off_eps) * 100.0; }
  /// Profiler-enabled cost vs the telemetry-on baseline (the ≤ 5% gate).
  [[nodiscard]] double prof_overhead_pct() const { return (1.0 - prof_eps / on_eps) * 100.0; }
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  int repeats_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats_override = std::atoi(argv[++i]);
    }
  }

  const std::int64_t tick_events = fast ? 500'000 : 2'000'000;
  const Duration window = Duration::seconds(fast ? 15 : 45);
  const int repeats = repeats_override > 0 ? repeats_override : (fast ? 2 : 3);

  std::printf("== telemetry overhead (best of %d interleaved rounds per variant) ==\n\n", repeats);

  telemetry::Telemetry on;  // live registry for the micro workload
  telemetry::Config prof_cfg;
  prof_cfg.profiling = true;
  telemetry::Telemetry prof{prof_cfg};  // live registry + event profiler

  Row rows[2] = {
      {"self_scheduling", 0.0, 0.0, 0.0, 0.0},
      // For the macro workload the telemetry=nullptr run IS the disabled
      // path; the pre-instrumentation control lives in bench_perf_engine
      // (BM_Table1MacroPoint) history, so bare is absent here.
      {"table1_fast", 0.0, 0.0, 0.0, 0.0},
  };
  // Round-interleaved: each round measures every variant once, so host
  // drift (thermal throttling, a noisy neighbour mid-run) lands on all
  // variants rather than systematically penalizing whichever block runs
  // last. Best-of across rounds then estimates each variant's unimpeded
  // throughput.
  for (int round = 0; round < repeats; ++round) {
    rows[0].bare_eps = std::max(rows[0].bare_eps, bare_events_per_s(tick_events, 1));
    rows[0].off_eps =
        std::max(rows[0].off_eps, self_scheduling_events_per_s(tick_events, nullptr, 1));
    rows[0].on_eps = std::max(rows[0].on_eps, self_scheduling_events_per_s(tick_events, &on, 1));
    rows[0].prof_eps = std::max(
        rows[0].prof_eps, self_scheduling_events_per_s(tick_events, &prof, 1, /*profiled=*/true));
    rows[1].off_eps = std::max(rows[1].off_eps, testbed_events_per_s(Variant::kOff, window, 1));
    rows[1].on_eps = std::max(rows[1].on_eps, testbed_events_per_s(Variant::kOn, window, 1));
    rows[1].prof_eps = std::max(rows[1].prof_eps, testbed_events_per_s(Variant::kProf, window, 1));
  }

  std::printf("%-16s  %13s  %13s  %13s  %13s  %9s  %9s  %9s\n", "workload", "bare (ev/s)",
              "off (ev/s)", "on (ev/s)", "prof (ev/s)", "off ovh", "on ovh", "prof ovh");
  for (const Row& row : rows) {
    const std::string bare =
        row.has_bare() ? util::format("%13.0f", row.bare_eps) : util::format("%13s", "-");
    const std::string off_ovh = row.has_bare()
                                    ? util::format("%8.2f%%", row.off_overhead_pct())
                                    : util::format("%9s", "-");
    std::printf("%-16s  %s  %13.0f  %13.0f  %13.0f  %s  %8.2f%%  %8.2f%%\n", row.name,
                bare.c_str(), row.off_eps, row.on_eps, row.prof_eps, off_ovh.c_str(),
                row.on_overhead_pct(), row.prof_overhead_pct());
  }

  if (!json_out.empty()) {
    std::string out{"{\"benchmarks\":["};
    for (std::size_t i = 0; i < 2; ++i) {
      if (i != 0) out += ',';
      out += pbxcap::util::format("{\"name\":\"%s\"", rows[i].name);
      if (rows[i].has_bare()) {
        // No bare control -> no bare/off-overhead fields (previously these
        // were emitted as 0, which read as "zero measured overhead").
        out += pbxcap::util::format(",\"bare_events_per_s\":%.0f,\"off_overhead_pct\":%.3f",
                                    rows[i].bare_eps, rows[i].off_overhead_pct());
      }
      out += pbxcap::util::format(
          ",\"off_events_per_s\":%.0f,\"on_events_per_s\":%.0f,\"on_overhead_pct\":%.3f,"
          "\"profiler_on_events_per_s\":%.0f,\"profiler_overhead_pct\":%.3f}",
          rows[i].off_eps, rows[i].on_eps, rows[i].on_overhead_pct(), rows[i].prof_eps,
          rows[i].prof_overhead_pct());
    }
    out += "]}\n";
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}
