// Telemetry overhead benchmark: proves the "disabled telemetry is one
// predictable branch per site" contract with numbers.
//
// Two workloads, each run with telemetry OFF (null handles — the default
// state of every instrumented component) and ON (live counters, sampler,
// span ring):
//
//   self_scheduling : the RTP-sender event pattern from bench_perf_engine —
//                     a 20 µs self-rescheduling tick with one counter site,
//                     the purest view of per-event instrumentation cost.
//   table1_fast     : one full packet-level testbed run at A = 200 E with the
//                     Table-I --fast placement window (45 s) — the macro
//                     workload the acceptance criterion is written against.
//
// The micro workload additionally runs a BARE variant — the identical loop
// with no instrumentation site at all — so the disabled-path branch cost
// ("off ovh", the ≤ 2% gate) is measured under one methodology rather than
// across harnesses. Each variant runs `repeats` times and the best (max)
// events/s is kept, so scheduler noise inflates neither side. For the macro
// workload the telemetry=nullptr run is itself the disabled path; its
// pre-instrumentation control is bench_perf_engine's BM_Table1MacroPoint.
//
// Usage: bench_telemetry_overhead [--fast] [--json FILE]
//   --fast : fewer events / shorter window for smoke runs.
//   --json : additionally write machine-readable results to FILE.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/testbed.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace {

using namespace pbxcap;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The never-instrumented control: the exact BM_SimulatorSelfScheduling
/// closure, measured under this harness so all three variants share one
/// methodology.
struct BareTick {
  sim::Simulator* simulator;
  std::int64_t* remaining;
  void operator()() const {
    if (--*remaining > 0) simulator->schedule_in(Duration::micros(20), *this);
  }
};
static_assert(sim::Callback::stores_inline<BareTick>());

/// One counter site in a self-scheduling 20 µs tick — the rtp::Stream
/// emit_one() shape. `counter == nullptr` is the telemetry-off path.
struct Tick {
  sim::Simulator* simulator;
  std::int64_t* remaining;
  telemetry::Counter* counter;
  void operator()() const {
    if (counter != nullptr) counter->add();
    if (--*remaining > 0) simulator->schedule_in(Duration::micros(20), *this);
  }
};
static_assert(sim::Callback::stores_inline<Tick>());

double bare_events_per_s(std::int64_t events, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::Simulator simulator;
    std::int64_t remaining = events;
    const auto start = std::chrono::steady_clock::now();
    simulator.schedule_in(Duration::micros(20), BareTick{&simulator, &remaining});
    simulator.run();
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(simulator.events_processed()) / elapsed);
  }
  return best;
}

double self_scheduling_events_per_s(std::int64_t events, telemetry::Telemetry* tel, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    telemetry::Counter* counter = nullptr;
    if (tel != nullptr && tel->enabled()) {
      counter = &tel->registry().counter("bench_ticks_total", {{"rep", util::format("%d", rep)}},
                                         "Self-scheduling tick count");
    }
    sim::Simulator simulator;
    std::int64_t remaining = events;
    const auto start = std::chrono::steady_clock::now();
    simulator.schedule_in(Duration::micros(20), Tick{&simulator, &remaining, counter});
    simulator.run();
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(simulator.events_processed()) / elapsed);
  }
  return best;
}

double testbed_events_per_s(bool with_telemetry, Duration window, int repeats) {
  double best = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    // Fresh Telemetry per run, like run_testbed's contract demands; its
    // registration cost is part of what we measure.
    telemetry::Telemetry tel;
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(200.0);
    config.scenario.placement_window = window;
    config.seed = 1;
    if (with_telemetry) config.telemetry = &tel;
    const auto start = std::chrono::steady_clock::now();
    const auto report = exp::run_testbed(config);
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(report.events_processed) / elapsed);
  }
  return best;
}

struct Row {
  const char* name;
  double bare_eps;  // 0 when no uninstrumented control exists for the workload
  double off_eps;
  double on_eps;
  /// Disabled-path cost vs the uninstrumented control (the ISSUE gate).
  [[nodiscard]] double off_overhead_pct() const {
    return bare_eps > 0.0 ? (1.0 - off_eps / bare_eps) * 100.0 : 0.0;
  }
  [[nodiscard]] double on_overhead_pct() const { return (1.0 - on_eps / off_eps) * 100.0; }
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  const std::int64_t tick_events = fast ? 500'000 : 2'000'000;
  const Duration window = Duration::seconds(fast ? 15 : 45);
  const int repeats = fast ? 2 : 3;

  std::printf("== telemetry overhead (best of %d runs per variant) ==\n\n", repeats);

  telemetry::Telemetry on;  // live registry for the micro workload

  Row rows[2] = {
      {"self_scheduling",
       bare_events_per_s(tick_events, repeats),
       self_scheduling_events_per_s(tick_events, nullptr, repeats),
       self_scheduling_events_per_s(tick_events, &on, repeats)},
      // For the macro workload the telemetry=nullptr run IS the disabled
      // path; the pre-instrumentation control lives in bench_perf_engine
      // (BM_Table1MacroPoint) history.
      {"table1_fast", 0.0,
       testbed_events_per_s(false, window, repeats),
       testbed_events_per_s(true, window, repeats)},
  };

  std::printf("%-16s  %13s  %13s  %13s  %9s  %9s\n", "workload", "bare (ev/s)", "off (ev/s)",
              "on (ev/s)", "off ovh", "on ovh");
  for (const Row& row : rows) {
    std::printf("%-16s  %13.0f  %13.0f  %13.0f  %8.2f%%  %8.2f%%\n", row.name, row.bare_eps,
                row.off_eps, row.on_eps, row.off_overhead_pct(), row.on_overhead_pct());
  }

  if (!json_out.empty()) {
    std::string out{"{\"benchmarks\":["};
    for (std::size_t i = 0; i < 2; ++i) {
      if (i != 0) out += ',';
      out += pbxcap::util::format(
          "{\"name\":\"%s\",\"bare_events_per_s\":%.0f,\"off_events_per_s\":%.0f,"
          "\"on_events_per_s\":%.0f,\"off_overhead_pct\":%.3f,\"on_overhead_pct\":%.3f}",
          rows[i].name, rows[i].bare_eps, rows[i].off_eps, rows[i].on_eps,
          rows[i].off_overhead_pct(), rows[i].on_overhead_pct());
    }
    out += "]}\n";
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_out.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}
