// Table I reproduction: the empirical method (Fig. 5) at offered loads
// A = 40..240 Erlangs, h = 120 s, 180 s placement window, G.711, through the
// full packet-level testbed.
//
// Paper reference (Table I):
//   A (E)        : 40      80      120     160     200     240
//   N used       : 42      ~82     ~123    ~160    ~165    ~165
//   CPU          : 15-20%  25-30%  30-35%  35-40%  45-50%  55-60%
//   MOS          : >4 everywhere
//   blocked      : 0%      0%      0%      6%      21%     29%
//   RTP msgs     : ~12,037 per 120 s call (100 pkt/s)
//
// Usage: bench_table1_empirical [--fast] [--metrics-out F] [--series-out F]
//                               [--trace-out F]
//   --fast        : quarter-scale placement window (45 s) for quick smoke runs.
//   --metrics-out : Prometheus text (or JSON when F ends in .json) snapshot of
//                   the A = 200 E replication-0 run.
//   --series-out  : per-second CSV series of the same run.
//   --trace-out   : Chrome trace-event JSON (Perfetto-loadable) of the same run.
//
// Telemetry is attached to exactly one job (A = 200 E, replication 0): the
// Telemetry object, like the Simulator, is per-run state and the jobs run on
// a thread pool.

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/erlang_b.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "monitor/report.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  std::string metrics_out, series_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--series-out") == 0) {
      series_out = next("--series-out");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = next("--trace-out");
    }
  }

  const std::vector<double> workloads{40, 80, 120, 160, 200, 240};
  const std::size_t replications = fast ? 1 : 3;
  std::vector<monitor::ExperimentReport> raw(workloads.size() * replications);

  const bool want_telemetry = !metrics_out.empty() || !series_out.empty() || !trace_out.empty();
  telemetry::Config tel_config;
  tel_config.tracing = !trace_out.empty();
  telemetry::Telemetry tel{tel_config};
  // A = 200 E is the paper's saturation point (21% blocked): the most
  // interesting load to put under the microscope.
  const std::size_t telemetry_job = 4 * replications;  // A = 200, replication 0

  std::printf("== Table I: empirical method, packet-level testbed%s ==\n",
              fast ? " (fast mode)" : "");
  std::printf("placing calls for %d s, h = 120 s, G.711 20 ms, PBX capacity 165 channels, "
              "%zu replication(s) per load\n\n",
              fast ? 45 : 180, replications);

  exp::parallel_for(raw.size(), exp::default_threads(), [&](std::size_t job) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(workloads[job / replications]);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.seed = 1000 + 17 * job;
    if (want_telemetry && job == telemetry_job) config.telemetry = &tel;
    raw[job] = exp::run_testbed(config);
  });

  bool exports_ok = true;
  if (!metrics_out.empty()) {
    const std::string text = std::string_view{metrics_out}.ends_with(".json")
                                 ? telemetry::to_json(tel.registry())
                                 : telemetry::to_prometheus(tel.registry());
    exports_ok = write_file(metrics_out, text) && exports_ok;
  }
  if (!series_out.empty()) {
    exports_ok = write_file(series_out, tel.sampler().to_csv()) && exports_ok;
  }
  if (!trace_out.empty() && tel.tracer() != nullptr) {
    exports_ok = write_file(trace_out, telemetry::to_chrome_trace(*tel.tracer())) && exports_ok;
  }
  if (!exports_ok) return 1;

  std::vector<monitor::ExperimentReport> reports(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const std::vector<monitor::ExperimentReport> runs(
        raw.begin() + static_cast<std::ptrdiff_t>(i * replications),
        raw.begin() + static_cast<std::ptrdiff_t>((i + 1) * replications));
    reports[i] = monitor::merge_replications(runs);
  }

  std::printf("%s\n", monitor::make_table1(reports).to_string().c_str());

  std::printf("Blocking vs the Erlang-B prediction at the configured capacity:\n");
  for (const auto& r : reports) {
    std::printf("  A = %3.0f E : measured %5.1f%%   Erlang-B(N=%u) %5.1f%%\n",
                r.offered_erlangs, r.blocking_probability * 100.0, r.channels_configured,
                erlang::erlang_b(erlang::Erlangs{r.offered_erlangs}, r.channels_configured) *
                    100.0);
  }

  std::printf("\nRTP per completed call (paper: ~12,037 packets, 100 pkt/s):\n");
  for (const auto& r : reports) {
    if (r.calls_completed == 0) continue;
    // rtp_packets_at_pbx is a per-replication mean; calls_completed pooled.
    const double completed_per_rep =
        static_cast<double>(r.calls_completed) / static_cast<double>(replications);
    std::printf("  A = %3.0f E : %.0f packets/call\n", r.offered_erlangs,
                static_cast<double>(r.rtp_packets_at_pbx) / completed_per_rep);
  }
  return 0;
}
