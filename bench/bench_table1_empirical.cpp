// Table I reproduction: the empirical method (Fig. 5) at offered loads
// A = 40..240 Erlangs, h = 120 s, 180 s placement window, G.711, through the
// full packet-level testbed.
//
// Paper reference (Table I):
//   A (E)        : 40      80      120     160     200     240
//   N used       : 42      ~82     ~123    ~160    ~165    ~165
//   CPU          : 15-20%  25-30%  30-35%  35-40%  45-50%  55-60%
//   MOS          : >4 everywhere
//   blocked      : 0%      0%      0%      6%      21%     29%
//   RTP msgs     : ~12,037 per 120 s call (100 pkt/s)
//
// Usage: bench_table1_empirical [--fast]
//   --fast : quarter-scale placement window (45 s) for quick smoke runs.

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/erlang_b.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "monitor/report.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  const std::vector<double> workloads{40, 80, 120, 160, 200, 240};
  const std::size_t replications = fast ? 1 : 3;
  std::vector<monitor::ExperimentReport> raw(workloads.size() * replications);

  std::printf("== Table I: empirical method, packet-level testbed%s ==\n",
              fast ? " (fast mode)" : "");
  std::printf("placing calls for %d s, h = 120 s, G.711 20 ms, PBX capacity 165 channels, "
              "%zu replication(s) per load\n\n",
              fast ? 45 : 180, replications);

  exp::parallel_for(raw.size(), exp::default_threads(), [&](std::size_t job) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(workloads[job / replications]);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.seed = 1000 + 17 * job;
    raw[job] = exp::run_testbed(config);
  });

  std::vector<monitor::ExperimentReport> reports(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const std::vector<monitor::ExperimentReport> runs(
        raw.begin() + static_cast<std::ptrdiff_t>(i * replications),
        raw.begin() + static_cast<std::ptrdiff_t>((i + 1) * replications));
    reports[i] = monitor::merge_replications(runs);
  }

  std::printf("%s\n", monitor::make_table1(reports).to_string().c_str());

  std::printf("Blocking vs the Erlang-B prediction at the configured capacity:\n");
  for (const auto& r : reports) {
    std::printf("  A = %3.0f E : measured %5.1f%%   Erlang-B(N=%u) %5.1f%%\n",
                r.offered_erlangs, r.blocking_probability * 100.0, r.channels_configured,
                erlang::erlang_b(erlang::Erlangs{r.offered_erlangs}, r.channels_configured) *
                    100.0);
  }

  std::printf("\nRTP per completed call (paper: ~12,037 packets, 100 pkt/s):\n");
  for (const auto& r : reports) {
    if (r.calls_completed == 0) continue;
    // rtp_packets_at_pbx is a per-replication mean; calls_completed pooled.
    const double completed_per_rep =
        static_cast<double>(r.calls_completed) / static_cast<double>(replications);
    std::printf("  A = %3.0f E : %.0f packets/call\n", r.offered_erlangs,
                static_cast<double>(r.rtp_packets_at_pbx) / completed_per_rep);
  }
  return 0;
}
