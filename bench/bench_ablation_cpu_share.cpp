// Ablation A1: where does the PBX CPU go? The paper asserts (§IV) that "the
// RTP messages carry the bulk of the traffic and are responsible for the
// great part of the CPU demands" while "SIP messages do not have a major
// impact". This harness decomposes the modeled CPU work into its SIP / RTP /
// error components at a mid-range load and across loads.
//
// Usage: bench_ablation_cpu_share [--fast]

#include <cstdio>
#include <cstring>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Shares {
  double sip_s{0.0};
  double rtp_s{0.0};
  double err_s{0.0};
  [[nodiscard]] double total() const { return sip_s + rtp_s + err_s; }
};

Shares decompose(const pbxcap::monitor::ExperimentReport& r,
                 const pbxcap::pbx::CpuModelConfig& cfg) {
  Shares s;
  // Counted work: messages seen at the PBX x per-item cost. The capture
  // counts both directions (in + out), which is exactly what the PBX model
  // charges (receive + send each deposit one message cost).
  s.sip_s = static_cast<double>(r.sip_total) * cfg.cost_per_sip_message.to_seconds();
  s.rtp_s = static_cast<double>(r.rtp_packets_at_pbx) * cfg.cost_per_rtp_packet.to_seconds();
  s.err_s = static_cast<double>(r.calls_blocked + r.calls_failed) *
            cfg.cost_per_error_event.to_seconds();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== Ablation A1: SIP vs RTP vs error-path CPU share%s ==\n\n",
              fast ? " (fast mode)" : "");

  const std::vector<double> loads{40, 120, 200, 240};
  std::vector<monitor::ExperimentReport> reports(loads.size());
  const pbx::CpuModelConfig cpu_cfg{};

  exp::parallel_for(loads.size(), exp::default_threads(), [&](std::size_t i) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(loads[i]);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.seed = 31 + i;
    reports[i] = exp::run_testbed(config);
  });

  util::TextTable table{{"A (E)", "SIP msgs", "RTP pkts", "SIP share", "RTP share",
                         "error share", "CPU (mean)"}};
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto shares = decompose(reports[i], cpu_cfg);
    const double total = shares.total();
    table.add_row({util::format("%.0f", loads[i]),
                   util::format("%llu", (unsigned long long)reports[i].sip_total),
                   util::format("%llu", (unsigned long long)reports[i].rtp_packets_at_pbx),
                   util::format("%.1f%%", 100.0 * shares.sip_s / total),
                   util::format("%.1f%%", 100.0 * shares.rtp_s / total),
                   util::format("%.1f%%", 100.0 * shares.err_s / total),
                   util::format("%.0f%%", reports[i].cpu_utilization.mean() * 100.0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper's claim to verify: RTP dominates (>90%% of protocol work), SIP is minor.\n");
  return 0;
}
