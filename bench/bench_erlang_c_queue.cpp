// Erlang-C / Erlang-A validation sweep for the ACD subsystem.
//
// The paper dimensions a loss system (Erlang-B); the cited Angus tutorial
// covers the queued sibling. With every offered call routed at an ACD queue
// the testbed becomes an M/M/N queue on the agent pool, so:
//
//   * patient callers (PatienceModel::kNone) must track Erlang-C: measured
//     P(wait) = queued/offered and E[W] = mean wait over all calls against
//     erlang_c() / erlang_c_mean_wait(), rho = 0.4 .. 0.9;
//   * impatient callers (kExponential patience) are the M/M/N+M system, so
//     measured abandonment, wait probability and mean wait must sit inside
//     the erlang_a() brackets — including the overloaded rho > 1 points
//     where abandonment is what keeps the queue finite;
//   * one deterministic-patience point is reported (not gated): Erlang-A
//     assumes exponential patience, so the deviation there is the model
//     error, not a simulator bug.
//
// Every gate failure flips the exit status to nonzero, so CI runs this
// binary directly (the `acd-smoke` job does, with --fast).
//
// Usage: bench_erlang_c_queue [--fast] [--json F]
//   --fast : short windows, one replication, reduced rho grid.
//   --json : machine-readable rows (BENCH_erlang_ca.json); deterministic
//            per seed, so CI byte-compares two runs.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/erlang_a.hpp"
#include "core/erlang_c.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "monitor/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pbxcap;

constexpr std::uint32_t kAgents = 8;
const Duration kHold = Duration::seconds(20);
const Duration kPatience = Duration::seconds(30);
// An agent is committed from dispatch until bridge teardown, so its service
// time is the caller's hold plus the leg-B signalling ladder (100/180, the
// callee's 200 ms answer delay, 200/ACK, BYE) — the same ~0.21 s the old
// setup-time bench charged as kSignallingS. The analytic side sees this
// effective service time; without it every high-rho row reads ~1% hot.
const Duration kHoldEff = kHold + Duration::millis(210);

struct Point {
  double rho;
  pbx::PatienceModel patience;
  bool gated;  // deterministic-patience points are reported, not gated
};

monitor::ExperimentReport run_point(const Point& p, bool fast, std::uint64_t seed) {
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(p.rho * kAgents, kHold);
  config.scenario.hold_model = sim::HoldTimeModel::kExponential;
  config.scenario.placement_window = Duration::seconds(fast ? 900 : 2400);
  config.scenario.acd.fraction = 1.0;  // every call dials queue-support
  config.scenario.acd.queue = "support";
  // Agents are the bottleneck: the channel pool must never bind, or the
  // measurement would mix Erlang-B blocking into the delay system.
  config.pbx.max_channels = 64;
  config.pbx.acd.enabled = true;
  config.pbx.acd.queues = {pbx::AcdQueueConfig{
      .name = "support",
      .strategy = pbx::RingStrategy::kLeastRecent,
      .agents = {pbx::AcdAgentSpec{.count = kAgents}},
      .max_queue_length = 4096,  // effectively infinite waiting room
      .patience = p.patience,
      .patience_mean = kPatience,
  }};
  // Let the backlog flush after arrivals stop: truncating the longest waits
  // at the end of the run would bias E[W] low at high utilization.
  config.drain = Duration::seconds(fast ? 120 : 300);
  config.seed = seed;
  return exp::run_testbed(config);
}

struct Gate {
  std::string name;
  double measured;
  double analytic;
  double tolerance;  // |measured - analytic| bound; <0 = report-only
  [[nodiscard]] bool pass() const {
    return tolerance < 0.0 || std::abs(measured - analytic) <= tolerance;
  }
};

struct Row {
  Point point;
  monitor::ExperimentReport report;
  std::vector<Gate> gates;
  [[nodiscard]] bool all_pass() const {
    for (const Gate& g : gates) {
      if (!g.pass()) return false;
    }
    return true;
  }
};

const char* patience_name(pbx::PatienceModel m) {
  switch (m) {
    case pbx::PatienceModel::kNone: return "patient";
    case pbx::PatienceModel::kExponential: return "exp-patience";
    case pbx::PatienceModel::kDeterministic: return "det-patience";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  std::printf("== Erlang-C / Erlang-A validation: ACD queue vs the analytic models%s ==\n",
              fast ? " (fast mode)" : "");
  std::printf("   M/M/%u on the agent pool, h = %.0f s, patience = Exp(%.0f s)\n\n", kAgents,
              kHold.to_seconds(), kPatience.to_seconds());

  std::vector<Point> points;
  const std::vector<double> patient_rhos = fast ? std::vector<double>{0.7}
                                                : std::vector<double>{0.4, 0.7, 0.9};
  const std::vector<double> abandon_rhos =
      fast ? std::vector<double>{0.9, 1.2} : std::vector<double>{0.4, 0.7, 0.9, 1.05, 1.2};
  for (double rho : patient_rhos) points.push_back({rho, pbx::PatienceModel::kNone, true});
  for (double rho : abandon_rhos) points.push_back({rho, pbx::PatienceModel::kExponential, true});
  points.push_back({1.05, pbx::PatienceModel::kDeterministic, false});

  // High utilizations have long queue relaxation times: pool replications of
  // a long window so the steady state dominates the measured ratios.
  const std::size_t reps = fast ? 2 : 3;
  std::vector<monitor::ExperimentReport> raw(points.size() * reps);
  exp::parallel_for(raw.size(), exp::default_threads(), [&](std::size_t job) {
    raw[job] = run_point(points[job / reps], fast, 1300 + 31 * job);
  });

  std::vector<Row> rows;
  bool ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    Row row;
    row.point = points[i];
    row.report = monitor::merge_replications(
        {raw.begin() + static_cast<std::ptrdiff_t>(i * reps),
         raw.begin() + static_cast<std::ptrdiff_t>((i + 1) * reps)});
    const auto& acd = row.report.acd;
    const double offered = static_cast<double>(acd.offered);
    // lambda = rho * N / h; offered load on the agents uses the effective
    // (hold + signalling) service time.
    const erlang::Erlangs a{row.point.rho * kAgents * kHoldEff.to_seconds() /
                            kHold.to_seconds()};

    const double m_wait_p = offered > 0 ? static_cast<double>(acd.queued) / offered : 0.0;
    const double m_wait_s = acd.wait_s.mean();
    const double m_abandon = offered > 0 ? static_cast<double>(acd.abandoned) / offered : 0.0;

    // Tolerances: relative slack for the finite-sample / finite-window error
    // (autocorrelated waits converge slowly near saturation) plus a small
    // absolute floor so near-zero analytic values don't demand zero noise.
    // Report-only points get tolerance -1.
    const double scale = fast ? 2.0 : 1.0;  // short single replications are noisier
    // Near saturation one placement window spans only ~(1-rho)^-2 hold times
    // of relaxation, so the pooled E[W] estimate still carries O(30%)
    // sampling error; widen that bound rather than pretending a precision
    // the run length cannot deliver (P(wait) converges much faster and
    // keeps the tight gate).
    const double relw = row.point.rho >= 0.85 ? 0.40 : 0.20;
    const bool gated = row.point.gated;
    if (row.point.patience == pbx::PatienceModel::kNone) {
      const double c = erlang::erlang_c(a, kAgents);
      const double w = erlang::erlang_c_mean_wait(a, kAgents, kHoldEff).to_seconds();
      row.gates.push_back({"P(wait)", m_wait_p, c, gated ? scale * (0.15 * c + 0.02) : -1.0});
      row.gates.push_back({"E[W] s", m_wait_s, w, gated ? scale * (relw * w + 0.5) : -1.0});
    } else {
      const erlang::ErlangAResult ea = erlang::erlang_a(a, kAgents, kHoldEff, kPatience);
      const double tol_p = scale * (0.15 * ea.wait_probability + 0.02);
      const double tol_ab = scale * (0.20 * ea.abandon_probability + 0.01);
      const double tol_w = scale * (relw * ea.mean_wait.to_seconds() + 0.5);
      row.gates.push_back(
          {"P(wait)", m_wait_p, ea.wait_probability, gated ? tol_p : -1.0});
      row.gates.push_back(
          {"P(abandon)", m_abandon, ea.abandon_probability, gated ? tol_ab : -1.0});
      row.gates.push_back(
          {"E[W] s", m_wait_s, ea.mean_wait.to_seconds(), gated ? tol_w : -1.0});
    }
    ok = ok && row.all_pass();
    rows.push_back(std::move(row));
  }

  util::TextTable table{{"model", "rho", "offered", "queued", "served", "abandoned", "gate",
                         "measured", "analytic", "verdict"}};
  for (const Row& row : rows) {
    for (std::size_t gi = 0; gi < row.gates.size(); ++gi) {
      const Gate& g = row.gates[gi];
      const bool first = gi == 0;
      table.add_row({first ? patience_name(row.point.patience) : "",
                     first ? util::format("%.2f", row.point.rho) : "",
                     first ? util::format("%llu", (unsigned long long)row.report.acd.offered) : "",
                     first ? util::format("%llu", (unsigned long long)row.report.acd.queued) : "",
                     first ? util::format("%llu", (unsigned long long)row.report.acd.served) : "",
                     first ? util::format("%llu", (unsigned long long)row.report.acd.abandoned)
                           : "",
                     g.name, util::format("%.4f", g.measured), util::format("%.4f", g.analytic),
                     g.tolerance < 0.0 ? "report-only"
                                       : (g.pass() ? "ok" : "** OUT OF TOLERANCE **")});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: patient rows are the M/M/%u Erlang-C cross-check; exp-patience rows\n"
      "are Erlang-A (M/M/%u+M), stable even at rho > 1 because abandonment bounds the\n"
      "queue. The det-patience row shows the (expected) deviation when the patience\n"
      "distribution breaks Erlang-A's exponential assumption.\n",
      kAgents, kAgents);

  if (!json_out.empty()) {
    std::string json = "[\n";
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      const Row& row = rows[ri];
      const auto& acd = row.report.acd;
      json += util::format(
          "  {\"model\": \"%s\", \"rho\": %.2f, \"agents\": %u, \"hold_s\": %.0f, "
          "\"patience_s\": %.0f,\n"
          "   \"offered\": %llu, \"queued\": %llu, \"served\": %llu, \"abandoned\": %llu, "
          "\"announcements\": %llu, \"pass\": %s,\n"
          "   \"gates\": [\n",
          patience_name(row.point.patience), row.point.rho, kAgents, kHold.to_seconds(),
          kPatience.to_seconds(), (unsigned long long)acd.offered, (unsigned long long)acd.queued,
          (unsigned long long)acd.served, (unsigned long long)acd.abandoned,
          (unsigned long long)acd.announcements, row.all_pass() ? "true" : "false");
      for (std::size_t gi = 0; gi < row.gates.size(); ++gi) {
        const Gate& g = row.gates[gi];
        json += util::format(
            "    {\"name\": \"%s\", \"measured\": %.9g, \"analytic\": %.9g, "
            "\"tolerance\": %.9g, \"pass\": %s}%s\n",
            g.name.c_str(), g.measured, g.analytic, g.tolerance, g.pass() ? "true" : "false",
            gi + 1 < row.gates.size() ? "," : "");
      }
      json += ri + 1 < rows.size() ? "  ]},\n" : "  ]}\n";
    }
    json += "]\n";
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURE");
  return ok ? 0 : 1;
}
