// Extension experiment: queue-when-busy admission vs the Erlang-C model.
//
// The paper dimensions a loss system (Erlang-B); the cited Angus tutorial
// covers the queued sibling. With the PBX in kQueueWhenBusy mode the
// testbed becomes an M/M/N queue, so the measured wait probability and mean
// wait must track Erlang-C — a second, independent analytical cross-check
// of the whole packet-level stack.
//
// Usage: bench_erlang_c_queue [--fast]

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/erlang_c.hpp"
#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== Erlang-C validation: queued PBX vs the delay formula%s ==\n\n",
              fast ? " (fast mode)" : "");

  constexpr std::uint32_t kChannels = 10;
  const Duration hold = Duration::seconds(20);
  const std::vector<double> loads = fast ? std::vector<double>{7.0}
                                         : std::vector<double>{4.0, 6.0, 7.0, 8.0, 9.0};
  // High utilizations have very long queue relaxation times: average over
  // replications of a long window so the M/M/N steady state dominates.
  const std::size_t reps = fast ? 1 : 3;
  std::vector<monitor::ExperimentReport> raw(loads.size() * reps);

  exp::parallel_for(raw.size(), exp::default_threads(), [&](std::size_t job) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(loads[job / reps], hold);
    config.scenario.hold_model = sim::HoldTimeModel::kExponential;
    config.scenario.placement_window = Duration::seconds(fast ? 300 : 2400);
    config.pbx.max_channels = kChannels;
    config.pbx.admission = pbx::AdmissionPolicy::kQueueWhenBusy;
    config.pbx.max_queue_length = 512;
    config.pbx.queue_timeout = Duration::seconds(300);  // effectively patient
    config.seed = 1300 + 31 * job;
    raw[job] = exp::run_testbed(config);
  });
  std::vector<monitor::ExperimentReport> reports(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    reports[i] = monitor::merge_replications(
        {raw.begin() + static_cast<std::ptrdiff_t>(i * reps),
         raw.begin() + static_cast<std::ptrdiff_t>((i + 1) * reps)});
  }

  util::TextTable table{{"A (E)", "measured mean setup", "Erlang-C E[W] + signalling",
                         "Erlang-C P(wait)", "blocked"}};
  constexpr double kSignallingS = 0.21;  // 100->180->200 ladder + answer delay
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& r = reports[i];
    const Duration w = erlang::erlang_c_mean_wait(erlang::Erlangs{loads[i]}, kChannels, hold);
    table.add_row({util::format("%.0f", loads[i]),
                   util::format("%.2f s", r.setup_delay_ms.mean() / 1000.0),
                   util::format("%.2f s", w.to_seconds() + kSignallingS),
                   util::format("%.1f%%", erlang::erlang_c(erlang::Erlangs{loads[i]}, kChannels) * 100.0),
                   util::format("%llu", (unsigned long long)r.calls_blocked)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: measured mean setup time tracks Erlang-C's waiting time across\n"
              "utilizations (rho = 0.4 .. 0.9) — the queued PBX is an M/M/%u system, as\n"
              "the contact-center dimensioning literature assumes.\n",
              kChannels);
  return 0;
}
