// Figure 3 reproduction: Erlang-B blocking probability vs number of channels
// N for workloads of 20..240 Erlangs, plus the §IV busy-hour headline.
//
// Paper reference (Fig. 3): for each load A the curve falls steeply once
// N approaches A; larger workloads need proportionally more channels for the
// same blocking.

#include <cstdio>
#include <vector>

#include "core/dimensioning.hpp"
#include "core/erlang_b.hpp"
#include "exp/paper.hpp"

int main() {
  using namespace pbxcap;

  std::printf("== Figure 3: Erlang-B analytical model with varying workload ==\n\n");
  const std::vector<double> loads{20,  40,  60,  80,  100, 120,
                                  140, 160, 180, 200, 220, 240};
  const auto table = exp::fig3_erlang_b_curves(loads, 10, 280, 10);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Channels needed for P_b <= 5%% (knee of each Fig. 3 curve):\n");
  for (const double a : loads) {
    std::printf("  A = %3.0f E : N = %u\n", a,
                erlang::channels_for_blocking(erlang::Erlangs{a}, 0.05));
  }

  std::printf("\n== §IV headline: 3,000 calls/h x 3 min on the measured server ==\n");
  const auto headline = erlang::evaluate_capacity({3000.0, Duration::minutes(3)}, 165);
  std::printf("A = %.0f E on N = 165 -> P_b = %.2f%%  (paper: 1.8%%)\n\n",
              headline.offered.value(), headline.blocking_probability * 100.0);
  std::printf("%s\n",
              exp::busy_hour_summary(3000.0, Duration::minutes(3), {150, 155, 160, 165, 170, 180})
                  .to_string()
                  .c_str());
  return 0;
}
