// Fluid-vs-packet ablation: the accuracy/speedup gate for the hybrid media
// engine (see DESIGN.md "Hybrid fluid/packet media engine").
//
// Runs the same seeded Table-I workload twice through run_testbed — once
// exact per-packet, once with the fluid fast path — and compares the two
// ExperimentReports field by field:
//
//   * exact fields (call outcomes, channel peaks, the SIP census, RTP
//     packet/relay counts) must be byte-identical;
//   * approximated fields (MOS, jitter, setup delay, CPU, effective loss)
//     must agree within the stated tolerances;
//   * the hybrid run must consume >= 1/5 the kernel events of the packet
//     run at the top workload (the >=5x events-per-run reduction the fast
//     path exists for).
//
// Exit status is nonzero when any gate fails, so CI can run this binary
// directly (the `fluid-smoke` job does, with --fast).
//
// Usage: bench_fluid_ablation [--fast] [--json F]
//   --fast : quarter-scale placement window (45 s), loads {120, 240} only.
//   --json : machine-readable results (per-load fields, ratios, verdicts).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/testbed.hpp"
#include "monitor/report.hpp"
#include "util/strings.hpp"

namespace {

using pbxcap::Duration;
using pbxcap::monitor::ExperimentReport;

struct ModeRun {
  ExperimentReport report;
  double wall_seconds{0.0};
};

ModeRun run_mode(double erlangs, bool fast, bool fluid) {
  pbxcap::exp::TestbedConfig config;
  config.scenario = pbxcap::loadgen::CallScenario::for_offered_load(erlangs);
  if (fast) config.scenario.placement_window = Duration::seconds(45);
  config.seed = 1000 + static_cast<std::uint64_t>(erlangs);
  config.fluid.enabled = fluid;
  const auto t0 = std::chrono::steady_clock::now();
  ModeRun run;
  run.report = pbxcap::exp::run_testbed(config);
  run.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

struct Gate {
  std::string name;
  double packet;
  double hybrid;
  double tolerance;  // 0 = exact
  bool pass;
};

class Comparison {
 public:
  void exact(const std::string& name, double p, double h) {
    gates_.push_back({name, p, h, 0.0, p == h});
  }
  void within(const std::string& name, double p, double h, double tol) {
    gates_.push_back({name, p, h, tol, std::abs(p - h) <= tol});
  }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] bool all_pass() const {
    for (const Gate& g : gates_) {
      if (!g.pass) return false;
    }
    return true;
  }

 private:
  std::vector<Gate> gates_;
};

Comparison compare(const ExperimentReport& p, const ExperimentReport& h) {
  Comparison c;
  const auto u = [](std::uint64_t v) { return static_cast<double>(v); };
  // Exact per-packet counts and call outcomes: bit-identical by design.
  c.exact("calls_attempted", u(p.calls_attempted), u(h.calls_attempted));
  c.exact("calls_completed", u(p.calls_completed), u(h.calls_completed));
  c.exact("calls_blocked", u(p.calls_blocked), u(h.calls_blocked));
  c.exact("calls_failed", u(p.calls_failed), u(h.calls_failed));
  c.exact("blocking_probability", p.blocking_probability, h.blocking_probability);
  c.exact("channels_peak", p.channels_peak, h.channels_peak);
  c.exact("sip_total", u(p.sip_total), u(h.sip_total));
  c.exact("sip_invite", u(p.sip_invite), u(h.sip_invite));
  c.exact("sip_200", u(p.sip_200), u(h.sip_200));
  c.exact("sip_bye", u(p.sip_bye), u(h.sip_bye));
  c.exact("sip_errors", u(p.sip_errors), u(h.sip_errors));
  c.exact("sip_retransmissions", u(p.sip_retransmissions), u(h.sip_retransmissions));
  c.exact("rtp_packets_at_pbx", u(p.rtp_packets_at_pbx), u(h.rtp_packets_at_pbx));
  c.exact("rtp_relayed", u(p.rtp_relayed), u(h.rtp_relayed));
  // Approximated fields: closed-form jitter decay plus microsecond-scale SIP
  // timing shifts (RTP no longer serializes on the wire ahead of SIP).
  c.within("mos_mean", p.mos.mean(), h.mos.mean(), 0.01);
  c.within("jitter_ms_mean", p.jitter_ms.mean(), h.jitter_ms.mean(), 0.05);
  c.within("setup_delay_ms_mean", p.setup_delay_ms.mean(), h.setup_delay_ms.mean(), 1.0);
  c.within("effective_loss_mean", p.effective_loss.mean(), h.effective_loss.mean(), 1e-4);
  c.within("cpu_mean", p.cpu_utilization.mean(), h.cpu_utilization.mean(), 0.02);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  const std::vector<double> loads = fast ? std::vector<double>{120, 240}
                                         : std::vector<double>{40, 120, 200, 240};
  bool ok = true;
  std::string json = "[\n";

  std::printf("== Fluid-vs-packet ablation%s ==\n", fast ? " (fast mode)" : "");
  for (std::size_t li = 0; li < loads.size(); ++li) {
    const double a = loads[li];
    const ModeRun packet = run_mode(a, fast, false);
    const ModeRun hybrid = run_mode(a, fast, true);
    const Comparison c = compare(packet.report, hybrid.report);

    const double event_ratio = static_cast<double>(packet.report.events_processed) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   hybrid.report.events_processed, 1));
    const double speedup = packet.wall_seconds / std::max(hybrid.wall_seconds, 1e-9);
    // The >=5x reduction target applies at the top Table-I workload; lighter
    // columns are reported for the EXPERIMENTS.md accuracy table.
    const bool gate_events = a < 240 || event_ratio >= 5.0;

    std::printf("\nA = %3.0f E : events %llu -> %llu (%.1fx), wall %.2fs -> %.2fs (%.1fx)%s\n",
                a, static_cast<unsigned long long>(packet.report.events_processed),
                static_cast<unsigned long long>(hybrid.report.events_processed), event_ratio,
                packet.wall_seconds, hybrid.wall_seconds, speedup,
                gate_events ? "" : "  ** EVENT-REDUCTION GATE FAILED (need >=5x) **");
    for (const auto& g : c.gates()) {
      if (g.tolerance == 0.0) {
        std::printf("  %-24s %15.6g %15.6g  exact %s\n", g.name.c_str(), g.packet, g.hybrid,
                    g.pass ? "ok" : "** MISMATCH **");
      } else {
        std::printf("  %-24s %15.6g %15.6g  |d|=%.3g tol=%.3g %s\n", g.name.c_str(), g.packet,
                    g.hybrid, std::abs(g.packet - g.hybrid), g.tolerance,
                    g.pass ? "ok" : "** OUT OF TOLERANCE **");
      }
    }
    ok = ok && c.all_pass() && gate_events;

    // Wall-clock figures sit on their own line so CI's determinism check can
    // `grep -v wall_packet_s` them away before byte-comparing re-runs.
    json += pbxcap::util::format(
        "  {\"erlangs\": %.0f, \"events_packet\": %llu, \"events_hybrid\": %llu, "
        "\"event_ratio\": %.3f, \"pass\": %s,\n"
        "   \"wall_packet_s\": %.3f, \"wall_hybrid_s\": %.3f, \"speedup\": %.3f,\n"
        "   \"fields\": [\n",
        a, static_cast<unsigned long long>(packet.report.events_processed),
        static_cast<unsigned long long>(hybrid.report.events_processed), event_ratio,
        (c.all_pass() && gate_events) ? "true" : "false", packet.wall_seconds,
        hybrid.wall_seconds, speedup);
    for (std::size_t gi = 0; gi < c.gates().size(); ++gi) {
      const Gate& g = c.gates()[gi];
      json += pbxcap::util::format(
          "    {\"name\": \"%s\", \"packet\": %.9g, \"hybrid\": %.9g, \"tolerance\": %.3g, "
          "\"pass\": %s}%s\n",
          g.name.c_str(), g.packet, g.hybrid, g.tolerance, g.pass ? "true" : "false",
          gi + 1 < c.gates().size() ? "," : "");
    }
    json += li + 1 < loads.size() ? "  ]},\n" : "  ]}\n";
  }
  json += "]\n";

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURE");
  return ok ? 0 : 1;
}
