// Ablation A2: codec choice vs capacity and quality. The paper fixes G.711
// ulaw "due to its compatibility with the available telephone network"; this
// harness quantifies what the other codecs Asterisk commonly negotiates
// would have changed: per-call bandwidth through the PBX, baseline MOS, and
// the bandwidth-limited call capacity of the testbed's Fast Ethernet links.
//
// Usage: bench_ablation_codecs [--fast]

#include <cstdio>
#include <cstring>

#include "exp/parallel.hpp"
#include "exp/testbed.hpp"
#include "media/emodel.hpp"
#include "rtp/codec.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pbxcap;

  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  std::printf("== Ablation A2: codec choice vs capacity and MOS%s ==\n\n",
              fast ? " (fast mode)" : "");

  // Analytical part: wire economics per codec.
  util::TextTable econ{{"codec", "pkt/s/dir", "wire B/pkt", "kbit/s/dir",
                        "calls @ 100 Mbps", "clean-LAN MOS"}};
  for (const auto& codec : rtp::codec_catalog()) {
    const double pps = codec.packets_per_second();
    const double kbps = pps * codec.wire_bytes() * 8.0 / 1000.0;
    // PBX link carries both directions of both legs: 4x one direction.
    const double calls_at_100m = 100'000.0 / (4.0 * kbps);
    const auto inputs = media::inputs_for_codec(codec, Duration::millis(1),
                                                Duration::millis(60), 0.0);
    econ.add_row({std::string{codec.name}, util::format("%.0f", pps),
                  util::format("%u", codec.wire_bytes()), util::format("%.1f", kbps),
                  util::format("%.0f", calls_at_100m),
                  util::format("%.2f", media::estimate_mos(inputs))});
  }
  std::printf("%s\n", econ.to_string().c_str());

  // Empirical part: run the testbed per codec at a fixed offered load.
  const double load = fast ? 40.0 : 80.0;
  const std::vector<const char*> names{"PCMU", "G729", "GSM", "iLBC"};
  std::vector<monitor::ExperimentReport> reports(names.size());
  exp::parallel_for(names.size(), exp::default_threads(), [&](std::size_t i) {
    exp::TestbedConfig config;
    config.scenario = loadgen::CallScenario::for_offered_load(load);
    if (fast) config.scenario.placement_window = Duration::seconds(45);
    config.scenario.codec = *rtp::codec_by_name(names[i]);
    config.pbx.allowed_payload_types = {config.scenario.codec.payload_type};
    config.seed = 77 + i;
    reports[i] = exp::run_testbed(config);
  });

  util::TextTable meas{{"codec", "completed", "MOS", "RTP pkts @PBX", "RTP bytes/call",
                        "CPU (mean)"}};
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& r = reports[i];
    const double bytes_per_call =
        r.calls_completed == 0
            ? 0.0
            : static_cast<double>(r.rtp_packets_at_pbx) *
                  rtp::codec_by_name(names[i])->wire_bytes() /
                  static_cast<double>(r.calls_completed);
    meas.add_row({names[i], util::format("%llu", (unsigned long long)r.calls_completed),
                  util::format("%.2f", r.mos.mean()),
                  util::format("%llu", (unsigned long long)r.rtp_packets_at_pbx),
                  util::format("%.0f", bytes_per_call),
                  util::format("%.0f%%", r.cpu_utilization.mean() * 100.0)});
  }
  std::printf("Empirical at A = %.0f E:\n%s\n", load, meas.to_string().c_str());
  std::printf("Reading: G.711 maximizes MOS; low-bitrate codecs trade ~0.2-0.8 MOS for\n"
              "3-6x less media bandwidth; packet *rate* (the CPU driver) is unchanged\n"
              "at equal ptime, so codec choice does not relieve the PBX CPU.\n");
  return 0;
}
