# Empty dependencies file for bench_fig6_empirical_vs_model.
# This may be replaced when dependencies are built.
