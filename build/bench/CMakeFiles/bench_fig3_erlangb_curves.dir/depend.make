# Empty dependencies file for bench_fig3_erlangb_curves.
# This may be replaced when dependencies are built.
