file(REMOVE_RECURSE
  "CMakeFiles/bench_vowifi_capacity.dir/bench_vowifi_capacity.cpp.o"
  "CMakeFiles/bench_vowifi_capacity.dir/bench_vowifi_capacity.cpp.o.d"
  "bench_vowifi_capacity"
  "bench_vowifi_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vowifi_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
