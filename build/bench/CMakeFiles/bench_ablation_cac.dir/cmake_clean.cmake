file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cac.dir/bench_ablation_cac.cpp.o"
  "CMakeFiles/bench_ablation_cac.dir/bench_ablation_cac.cpp.o.d"
  "bench_ablation_cac"
  "bench_ablation_cac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
