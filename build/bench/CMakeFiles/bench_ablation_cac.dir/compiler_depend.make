# Empty compiler generated dependencies file for bench_ablation_cac.
# This may be replaced when dependencies are built.
