file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_population.dir/bench_fig7_population.cpp.o"
  "CMakeFiles/bench_fig7_population.dir/bench_fig7_population.cpp.o.d"
  "bench_fig7_population"
  "bench_fig7_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
