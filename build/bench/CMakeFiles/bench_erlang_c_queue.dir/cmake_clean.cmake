file(REMOVE_RECURSE
  "CMakeFiles/bench_erlang_c_queue.dir/bench_erlang_c_queue.cpp.o"
  "CMakeFiles/bench_erlang_c_queue.dir/bench_erlang_c_queue.cpp.o.d"
  "bench_erlang_c_queue"
  "bench_erlang_c_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erlang_c_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
