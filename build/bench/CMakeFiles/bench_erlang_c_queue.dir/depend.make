# Empty dependencies file for bench_erlang_c_queue.
# This may be replaced when dependencies are built.
