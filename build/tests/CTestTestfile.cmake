# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_erlang[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_wifi[1]_include.cmake")
include("/root/repo/build/tests/test_sip_message[1]_include.cmake")
include("/root/repo/build/tests/test_sip_transaction[1]_include.cmake")
include("/root/repo/build/tests/test_endpoint[1]_include.cmake")
include("/root/repo/build/tests/test_rtp[1]_include.cmake")
include("/root/repo/build/tests/test_rtcp[1]_include.cmake")
include("/root/repo/build/tests/test_media[1]_include.cmake")
include("/root/repo/build/tests/test_g711[1]_include.cmake")
include("/root/repo/build/tests/test_pbx[1]_include.cmake")
include("/root/repo/build/tests/test_admission[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_asterisk[1]_include.cmake")
include("/root/repo/build/tests/test_loadgen[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
