file(REMOVE_RECURSE
  "CMakeFiles/test_sip_message.dir/test_sip_message.cpp.o"
  "CMakeFiles/test_sip_message.dir/test_sip_message.cpp.o.d"
  "test_sip_message"
  "test_sip_message.pdb"
  "test_sip_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
