# Empty dependencies file for test_rtcp.
# This may be replaced when dependencies are built.
