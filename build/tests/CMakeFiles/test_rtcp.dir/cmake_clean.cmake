file(REMOVE_RECURSE
  "CMakeFiles/test_rtcp.dir/test_rtcp.cpp.o"
  "CMakeFiles/test_rtcp.dir/test_rtcp.cpp.o.d"
  "test_rtcp"
  "test_rtcp.pdb"
  "test_rtcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
