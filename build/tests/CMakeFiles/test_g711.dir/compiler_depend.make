# Empty compiler generated dependencies file for test_g711.
# This may be replaced when dependencies are built.
