file(REMOVE_RECURSE
  "CMakeFiles/test_g711.dir/test_g711.cpp.o"
  "CMakeFiles/test_g711.dir/test_g711.cpp.o.d"
  "test_g711"
  "test_g711.pdb"
  "test_g711[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_g711.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
