file(REMOVE_RECURSE
  "CMakeFiles/test_asterisk.dir/test_asterisk.cpp.o"
  "CMakeFiles/test_asterisk.dir/test_asterisk.cpp.o.d"
  "test_asterisk"
  "test_asterisk.pdb"
  "test_asterisk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asterisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
