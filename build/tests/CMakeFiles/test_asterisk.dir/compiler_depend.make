# Empty compiler generated dependencies file for test_asterisk.
# This may be replaced when dependencies are built.
