# Empty dependencies file for test_pbx.
# This may be replaced when dependencies are built.
