file(REMOVE_RECURSE
  "CMakeFiles/test_pbx.dir/test_pbx.cpp.o"
  "CMakeFiles/test_pbx.dir/test_pbx.cpp.o.d"
  "test_pbx"
  "test_pbx.pdb"
  "test_pbx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
