file(REMOVE_RECURSE
  "CMakeFiles/test_rtp.dir/test_rtp.cpp.o"
  "CMakeFiles/test_rtp.dir/test_rtp.cpp.o.d"
  "test_rtp"
  "test_rtp.pdb"
  "test_rtp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
