# Empty compiler generated dependencies file for test_erlang.
# This may be replaced when dependencies are built.
