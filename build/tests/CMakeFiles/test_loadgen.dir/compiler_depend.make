# Empty compiler generated dependencies file for test_loadgen.
# This may be replaced when dependencies are built.
