# Empty dependencies file for test_sip_transaction.
# This may be replaced when dependencies are built.
