file(REMOVE_RECURSE
  "CMakeFiles/test_sip_transaction.dir/test_sip_transaction.cpp.o"
  "CMakeFiles/test_sip_transaction.dir/test_sip_transaction.cpp.o.d"
  "test_sip_transaction"
  "test_sip_transaction.pdb"
  "test_sip_transaction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_transaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
