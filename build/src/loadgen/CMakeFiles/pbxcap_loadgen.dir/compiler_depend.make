# Empty compiler generated dependencies file for pbxcap_loadgen.
# This may be replaced when dependencies are built.
