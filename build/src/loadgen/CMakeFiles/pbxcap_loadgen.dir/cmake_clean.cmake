file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_loadgen.dir/caller.cpp.o"
  "CMakeFiles/pbxcap_loadgen.dir/caller.cpp.o.d"
  "CMakeFiles/pbxcap_loadgen.dir/receiver.cpp.o"
  "CMakeFiles/pbxcap_loadgen.dir/receiver.cpp.o.d"
  "libpbxcap_loadgen.a"
  "libpbxcap_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
