file(REMOVE_RECURSE
  "libpbxcap_loadgen.a"
)
