# Empty dependencies file for pbxcap_net.
# This may be replaced when dependencies are built.
