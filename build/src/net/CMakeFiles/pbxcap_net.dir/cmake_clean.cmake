file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_net.dir/link.cpp.o"
  "CMakeFiles/pbxcap_net.dir/link.cpp.o.d"
  "CMakeFiles/pbxcap_net.dir/network.cpp.o"
  "CMakeFiles/pbxcap_net.dir/network.cpp.o.d"
  "CMakeFiles/pbxcap_net.dir/switch_node.cpp.o"
  "CMakeFiles/pbxcap_net.dir/switch_node.cpp.o.d"
  "CMakeFiles/pbxcap_net.dir/wifi_cell.cpp.o"
  "CMakeFiles/pbxcap_net.dir/wifi_cell.cpp.o.d"
  "libpbxcap_net.a"
  "libpbxcap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
