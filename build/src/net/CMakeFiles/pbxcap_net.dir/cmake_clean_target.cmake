file(REMOVE_RECURSE
  "libpbxcap_net.a"
)
