file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_util.dir/log.cpp.o"
  "CMakeFiles/pbxcap_util.dir/log.cpp.o.d"
  "CMakeFiles/pbxcap_util.dir/strings.cpp.o"
  "CMakeFiles/pbxcap_util.dir/strings.cpp.o.d"
  "CMakeFiles/pbxcap_util.dir/table.cpp.o"
  "CMakeFiles/pbxcap_util.dir/table.cpp.o.d"
  "CMakeFiles/pbxcap_util.dir/time.cpp.o"
  "CMakeFiles/pbxcap_util.dir/time.cpp.o.d"
  "libpbxcap_util.a"
  "libpbxcap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
