file(REMOVE_RECURSE
  "libpbxcap_util.a"
)
