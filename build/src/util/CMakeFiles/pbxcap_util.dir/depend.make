# Empty dependencies file for pbxcap_util.
# This may be replaced when dependencies are built.
