
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/dialog.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/dialog.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/dialog.cpp.o.d"
  "/root/repo/src/sip/endpoint.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/endpoint.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/endpoint.cpp.o.d"
  "/root/repo/src/sip/message.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/message.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/message.cpp.o.d"
  "/root/repo/src/sip/parse.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/parse.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/parse.cpp.o.d"
  "/root/repo/src/sip/sdp.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/sdp.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/sdp.cpp.o.d"
  "/root/repo/src/sip/transaction.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/transaction.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/transaction.cpp.o.d"
  "/root/repo/src/sip/types.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/types.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/types.cpp.o.d"
  "/root/repo/src/sip/uri.cpp" "src/sip/CMakeFiles/pbxcap_sip.dir/uri.cpp.o" "gcc" "src/sip/CMakeFiles/pbxcap_sip.dir/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
