file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_sip.dir/dialog.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/dialog.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/endpoint.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/endpoint.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/message.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/message.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/parse.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/parse.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/sdp.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/sdp.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/transaction.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/transaction.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/types.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/types.cpp.o.d"
  "CMakeFiles/pbxcap_sip.dir/uri.cpp.o"
  "CMakeFiles/pbxcap_sip.dir/uri.cpp.o.d"
  "libpbxcap_sip.a"
  "libpbxcap_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
