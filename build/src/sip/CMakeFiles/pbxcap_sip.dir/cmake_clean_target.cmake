file(REMOVE_RECURSE
  "libpbxcap_sip.a"
)
