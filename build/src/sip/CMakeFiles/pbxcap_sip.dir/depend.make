# Empty dependencies file for pbxcap_sip.
# This may be replaced when dependencies are built.
