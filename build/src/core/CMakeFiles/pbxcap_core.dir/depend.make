# Empty dependencies file for pbxcap_core.
# This may be replaced when dependencies are built.
