file(REMOVE_RECURSE
  "libpbxcap_core.a"
)
