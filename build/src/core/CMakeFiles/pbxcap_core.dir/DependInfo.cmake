
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dimensioning.cpp" "src/core/CMakeFiles/pbxcap_core.dir/dimensioning.cpp.o" "gcc" "src/core/CMakeFiles/pbxcap_core.dir/dimensioning.cpp.o.d"
  "/root/repo/src/core/engset.cpp" "src/core/CMakeFiles/pbxcap_core.dir/engset.cpp.o" "gcc" "src/core/CMakeFiles/pbxcap_core.dir/engset.cpp.o.d"
  "/root/repo/src/core/erlang_b.cpp" "src/core/CMakeFiles/pbxcap_core.dir/erlang_b.cpp.o" "gcc" "src/core/CMakeFiles/pbxcap_core.dir/erlang_b.cpp.o.d"
  "/root/repo/src/core/erlang_c.cpp" "src/core/CMakeFiles/pbxcap_core.dir/erlang_c.cpp.o" "gcc" "src/core/CMakeFiles/pbxcap_core.dir/erlang_c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
