file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_core.dir/dimensioning.cpp.o"
  "CMakeFiles/pbxcap_core.dir/dimensioning.cpp.o.d"
  "CMakeFiles/pbxcap_core.dir/engset.cpp.o"
  "CMakeFiles/pbxcap_core.dir/engset.cpp.o.d"
  "CMakeFiles/pbxcap_core.dir/erlang_b.cpp.o"
  "CMakeFiles/pbxcap_core.dir/erlang_b.cpp.o.d"
  "CMakeFiles/pbxcap_core.dir/erlang_c.cpp.o"
  "CMakeFiles/pbxcap_core.dir/erlang_c.cpp.o.d"
  "libpbxcap_core.a"
  "libpbxcap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
