# Empty compiler generated dependencies file for pbxcap_rtp.
# This may be replaced when dependencies are built.
