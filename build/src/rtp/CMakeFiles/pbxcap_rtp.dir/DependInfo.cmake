
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/codec.cpp" "src/rtp/CMakeFiles/pbxcap_rtp.dir/codec.cpp.o" "gcc" "src/rtp/CMakeFiles/pbxcap_rtp.dir/codec.cpp.o.d"
  "/root/repo/src/rtp/jitter_buffer.cpp" "src/rtp/CMakeFiles/pbxcap_rtp.dir/jitter_buffer.cpp.o" "gcc" "src/rtp/CMakeFiles/pbxcap_rtp.dir/jitter_buffer.cpp.o.d"
  "/root/repo/src/rtp/rtcp.cpp" "src/rtp/CMakeFiles/pbxcap_rtp.dir/rtcp.cpp.o" "gcc" "src/rtp/CMakeFiles/pbxcap_rtp.dir/rtcp.cpp.o.d"
  "/root/repo/src/rtp/stream.cpp" "src/rtp/CMakeFiles/pbxcap_rtp.dir/stream.cpp.o" "gcc" "src/rtp/CMakeFiles/pbxcap_rtp.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
