file(REMOVE_RECURSE
  "libpbxcap_rtp.a"
)
