file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_rtp.dir/codec.cpp.o"
  "CMakeFiles/pbxcap_rtp.dir/codec.cpp.o.d"
  "CMakeFiles/pbxcap_rtp.dir/jitter_buffer.cpp.o"
  "CMakeFiles/pbxcap_rtp.dir/jitter_buffer.cpp.o.d"
  "CMakeFiles/pbxcap_rtp.dir/rtcp.cpp.o"
  "CMakeFiles/pbxcap_rtp.dir/rtcp.cpp.o.d"
  "CMakeFiles/pbxcap_rtp.dir/stream.cpp.o"
  "CMakeFiles/pbxcap_rtp.dir/stream.cpp.o.d"
  "libpbxcap_rtp.a"
  "libpbxcap_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
