
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/call_log.cpp" "src/monitor/CMakeFiles/pbxcap_monitor.dir/call_log.cpp.o" "gcc" "src/monitor/CMakeFiles/pbxcap_monitor.dir/call_log.cpp.o.d"
  "/root/repo/src/monitor/capture.cpp" "src/monitor/CMakeFiles/pbxcap_monitor.dir/capture.cpp.o" "gcc" "src/monitor/CMakeFiles/pbxcap_monitor.dir/capture.cpp.o.d"
  "/root/repo/src/monitor/report.cpp" "src/monitor/CMakeFiles/pbxcap_monitor.dir/report.cpp.o" "gcc" "src/monitor/CMakeFiles/pbxcap_monitor.dir/report.cpp.o.d"
  "/root/repo/src/monitor/trace.cpp" "src/monitor/CMakeFiles/pbxcap_monitor.dir/trace.cpp.o" "gcc" "src/monitor/CMakeFiles/pbxcap_monitor.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sip/CMakeFiles/pbxcap_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/pbxcap_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pbxcap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
