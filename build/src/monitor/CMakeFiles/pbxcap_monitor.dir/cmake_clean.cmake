file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_monitor.dir/call_log.cpp.o"
  "CMakeFiles/pbxcap_monitor.dir/call_log.cpp.o.d"
  "CMakeFiles/pbxcap_monitor.dir/capture.cpp.o"
  "CMakeFiles/pbxcap_monitor.dir/capture.cpp.o.d"
  "CMakeFiles/pbxcap_monitor.dir/report.cpp.o"
  "CMakeFiles/pbxcap_monitor.dir/report.cpp.o.d"
  "CMakeFiles/pbxcap_monitor.dir/trace.cpp.o"
  "CMakeFiles/pbxcap_monitor.dir/trace.cpp.o.d"
  "libpbxcap_monitor.a"
  "libpbxcap_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
