file(REMOVE_RECURSE
  "libpbxcap_monitor.a"
)
