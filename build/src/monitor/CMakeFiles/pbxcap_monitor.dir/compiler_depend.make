# Empty compiler generated dependencies file for pbxcap_monitor.
# This may be replaced when dependencies are built.
