file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_sim.dir/random.cpp.o"
  "CMakeFiles/pbxcap_sim.dir/random.cpp.o.d"
  "CMakeFiles/pbxcap_sim.dir/rng.cpp.o"
  "CMakeFiles/pbxcap_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pbxcap_sim.dir/simulator.cpp.o"
  "CMakeFiles/pbxcap_sim.dir/simulator.cpp.o.d"
  "libpbxcap_sim.a"
  "libpbxcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
