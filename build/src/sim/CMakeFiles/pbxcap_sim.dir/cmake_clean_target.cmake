file(REMOVE_RECURSE
  "libpbxcap_sim.a"
)
