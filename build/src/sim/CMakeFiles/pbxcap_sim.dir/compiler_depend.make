# Empty compiler generated dependencies file for pbxcap_sim.
# This may be replaced when dependencies are built.
