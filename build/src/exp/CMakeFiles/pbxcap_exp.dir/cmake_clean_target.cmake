file(REMOVE_RECURSE
  "libpbxcap_exp.a"
)
