file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_exp.dir/cluster.cpp.o"
  "CMakeFiles/pbxcap_exp.dir/cluster.cpp.o.d"
  "CMakeFiles/pbxcap_exp.dir/paper.cpp.o"
  "CMakeFiles/pbxcap_exp.dir/paper.cpp.o.d"
  "CMakeFiles/pbxcap_exp.dir/sweep.cpp.o"
  "CMakeFiles/pbxcap_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/pbxcap_exp.dir/testbed.cpp.o"
  "CMakeFiles/pbxcap_exp.dir/testbed.cpp.o.d"
  "libpbxcap_exp.a"
  "libpbxcap_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
