# Empty dependencies file for pbxcap_exp.
# This may be replaced when dependencies are built.
