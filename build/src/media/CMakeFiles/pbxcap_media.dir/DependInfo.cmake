
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/emodel.cpp" "src/media/CMakeFiles/pbxcap_media.dir/emodel.cpp.o" "gcc" "src/media/CMakeFiles/pbxcap_media.dir/emodel.cpp.o.d"
  "/root/repo/src/media/g711.cpp" "src/media/CMakeFiles/pbxcap_media.dir/g711.cpp.o" "gcc" "src/media/CMakeFiles/pbxcap_media.dir/g711.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtp/CMakeFiles/pbxcap_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
