# Empty compiler generated dependencies file for pbxcap_media.
# This may be replaced when dependencies are built.
