file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_media.dir/emodel.cpp.o"
  "CMakeFiles/pbxcap_media.dir/emodel.cpp.o.d"
  "CMakeFiles/pbxcap_media.dir/g711.cpp.o"
  "CMakeFiles/pbxcap_media.dir/g711.cpp.o.d"
  "libpbxcap_media.a"
  "libpbxcap_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
