file(REMOVE_RECURSE
  "libpbxcap_media.a"
)
