file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_stats.dir/confidence.cpp.o"
  "CMakeFiles/pbxcap_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/pbxcap_stats.dir/histogram.cpp.o"
  "CMakeFiles/pbxcap_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/pbxcap_stats.dir/summary.cpp.o"
  "CMakeFiles/pbxcap_stats.dir/summary.cpp.o.d"
  "libpbxcap_stats.a"
  "libpbxcap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
