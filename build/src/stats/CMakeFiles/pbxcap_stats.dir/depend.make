# Empty dependencies file for pbxcap_stats.
# This may be replaced when dependencies are built.
