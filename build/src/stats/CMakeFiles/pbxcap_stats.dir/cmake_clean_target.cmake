file(REMOVE_RECURSE
  "libpbxcap_stats.a"
)
