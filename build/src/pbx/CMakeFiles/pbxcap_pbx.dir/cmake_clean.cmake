file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_pbx.dir/admission.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/admission.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/asterisk_pbx.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/asterisk_pbx.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/cdr.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/cdr.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/cpu_model.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/cpu_model.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/dialplan.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/dialplan.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/directory.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/directory.cpp.o.d"
  "CMakeFiles/pbxcap_pbx.dir/registrar.cpp.o"
  "CMakeFiles/pbxcap_pbx.dir/registrar.cpp.o.d"
  "libpbxcap_pbx.a"
  "libpbxcap_pbx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_pbx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
