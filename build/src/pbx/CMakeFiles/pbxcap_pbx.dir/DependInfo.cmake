
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbx/admission.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/admission.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/admission.cpp.o.d"
  "/root/repo/src/pbx/asterisk_pbx.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/asterisk_pbx.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/asterisk_pbx.cpp.o.d"
  "/root/repo/src/pbx/cdr.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/cdr.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/cdr.cpp.o.d"
  "/root/repo/src/pbx/cpu_model.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/cpu_model.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/cpu_model.cpp.o.d"
  "/root/repo/src/pbx/dialplan.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/dialplan.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/dialplan.cpp.o.d"
  "/root/repo/src/pbx/directory.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/directory.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/directory.cpp.o.d"
  "/root/repo/src/pbx/registrar.cpp" "src/pbx/CMakeFiles/pbxcap_pbx.dir/registrar.cpp.o" "gcc" "src/pbx/CMakeFiles/pbxcap_pbx.dir/registrar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pbxcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/pbxcap_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/pbxcap_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pbxcap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
