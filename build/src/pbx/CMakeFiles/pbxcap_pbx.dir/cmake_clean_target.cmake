file(REMOVE_RECURSE
  "libpbxcap_pbx.a"
)
