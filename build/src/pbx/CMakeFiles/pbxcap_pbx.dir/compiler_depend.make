# Empty compiler generated dependencies file for pbxcap_pbx.
# This may be replaced when dependencies are built.
