
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pbxcap_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/pbx/CMakeFiles/pbxcap_pbx.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pbxcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/pbxcap_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/pbxcap_media.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/pbxcap_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pbxcap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/pbxcap_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/pbxcap_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbxcap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbxcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbxcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
