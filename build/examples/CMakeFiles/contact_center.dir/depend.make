# Empty dependencies file for contact_center.
# This may be replaced when dependencies are built.
