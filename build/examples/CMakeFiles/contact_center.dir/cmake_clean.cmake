file(REMOVE_RECURSE
  "CMakeFiles/contact_center.dir/contact_center.cpp.o"
  "CMakeFiles/contact_center.dir/contact_center.cpp.o.d"
  "contact_center"
  "contact_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
