file(REMOVE_RECURSE
  "CMakeFiles/campus_dimensioning.dir/campus_dimensioning.cpp.o"
  "CMakeFiles/campus_dimensioning.dir/campus_dimensioning.cpp.o.d"
  "campus_dimensioning"
  "campus_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
