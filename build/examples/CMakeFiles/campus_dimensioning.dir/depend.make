# Empty dependencies file for campus_dimensioning.
# This may be replaced when dependencies are built.
