file(REMOVE_RECURSE
  "CMakeFiles/vowifi_stress.dir/vowifi_stress.cpp.o"
  "CMakeFiles/vowifi_stress.dir/vowifi_stress.cpp.o.d"
  "vowifi_stress"
  "vowifi_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vowifi_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
