# Empty dependencies file for vowifi_stress.
# This may be replaced when dependencies are built.
