# Empty dependencies file for call_policy.
# This may be replaced when dependencies are built.
