file(REMOVE_RECURSE
  "CMakeFiles/call_policy.dir/call_policy.cpp.o"
  "CMakeFiles/call_policy.dir/call_policy.cpp.o.d"
  "call_policy"
  "call_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
