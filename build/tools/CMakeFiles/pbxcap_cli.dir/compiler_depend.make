# Empty compiler generated dependencies file for pbxcap_cli.
# This may be replaced when dependencies are built.
