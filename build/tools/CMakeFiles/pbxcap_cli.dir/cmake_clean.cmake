file(REMOVE_RECURSE
  "CMakeFiles/pbxcap_cli.dir/pbxcap_cli.cpp.o"
  "CMakeFiles/pbxcap_cli.dir/pbxcap_cli.cpp.o.d"
  "pbxcap"
  "pbxcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbxcap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
