// Event-engine profiler tests: category attribution and inheritance in the
// simulator kernel, the telemetry::Profiler wrapper and its exports
// (profile JSON golden determinism, attribution JSON), the disabled-profiler
// no-perturbation contract, and the sharded-cluster guarantees — per-shard
// attribution and the merged Chrome trace must be byte-identical for any
// worker count, with and without the fluid media fast path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/testbed.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pbxcap;

// ---- kernel attribution -----------------------------------------------------

TEST(ExecProfileTest, CategoryScopeAttributesScheduledEvents) {
  sim::Simulator simulator;
  sim::ExecProfile profile;
  simulator.set_profile(&profile);

  {
    const sim::CategoryScope scope{simulator, sim::Category::kSip};
    simulator.schedule_in(Duration::millis(1), [] {});
    simulator.schedule_in(Duration::millis(2), [] {});
  }
  simulator.schedule_in(Duration::millis(3), [] {});  // outside any scope

  simulator.run();
  EXPECT_EQ(profile.counts[sim::category_id(sim::Category::kSip)], 2u);
  EXPECT_EQ(profile.counts[sim::category_id(sim::Category::kUnattributed)], 1u);
  EXPECT_EQ(profile.total_events(), simulator.events_processed());
}

TEST(ExecProfileTest, NestedSchedulesInheritTheFiringCategory) {
  sim::Simulator simulator;
  sim::ExecProfile profile;
  simulator.set_profile(&profile);

  // A pbx-scoped event schedules a child with no explicit scope: the child
  // must inherit kPbx from the event that scheduled it.
  {
    const sim::CategoryScope scope{simulator, sim::Category::kPbx};
    simulator.schedule_in(Duration::millis(1), [&simulator] {
      simulator.schedule_in(Duration::millis(1), [] {});
    });
  }
  simulator.run();
  EXPECT_EQ(profile.counts[sim::category_id(sim::Category::kPbx)], 2u);
  EXPECT_EQ(profile.counts[sim::category_id(sim::Category::kUnattributed)], 0u);
}

TEST(ExecProfileTest, MergeSumsCountsAndTiming) {
  sim::ExecProfile a;
  sim::ExecProfile b;
  a.counts[1] = 10;
  b.counts[1] = 5;
  b.counts[2] = 7;
  a.record_sample(1, 100);
  b.record_sample(1, 50);
  a.merge(b);
  EXPECT_EQ(a.counts[1], 15u);
  EXPECT_EQ(a.counts[2], 7u);
  EXPECT_EQ(a.total_events(), 22u);
  const sim::CategoryStats s = a.stats(1);
  EXPECT_EQ(s.events, 15u);
  EXPECT_EQ(s.timed_samples, 2u);
  EXPECT_EQ(s.timed_ns, 150u);
}

// ---- Profiler wrapper -------------------------------------------------------

TEST(ProfilerTest, SnapshotSurvivesSimulatorDestruction) {
  telemetry::Profiler profiler;
  {
    sim::Simulator simulator;
    profiler.attach(simulator);
    const sim::CategoryScope scope{simulator, sim::Category::kFault};
    simulator.schedule_in(Duration::millis(1), [] {});
    simulator.run();
    profiler.detach();  // latches the events_processed delta
  }
  const telemetry::ProfileData data = profiler.snapshot();
  EXPECT_EQ(data.events_processed, 1u);
  EXPECT_EQ(data.categories[sim::category_id(sim::Category::kFault)].stats.events, 1u);
  EXPECT_EQ(data.categories[sim::category_id(sim::Category::kFault)].name, "fault");
}

TEST(ProfilerTest, RegisterCategoryExtendsTheTable) {
  telemetry::Profiler profiler;
  const std::uint8_t id = profiler.register_category("experiment-phase");
  EXPECT_GE(id, sim::kCategoryCount);
  EXPECT_EQ(profiler.category_name(id), "experiment-phase");

  sim::Simulator simulator;
  profiler.attach(simulator);
  {
    const sim::Simulator::CategoryScope scope{simulator, id};
    simulator.schedule_in(Duration::millis(1), [] {});
  }
  simulator.run();
  profiler.detach();
  EXPECT_EQ(profiler.snapshot().categories[id].stats.events, 1u);
}

// ---- testbed integration ----------------------------------------------------

exp::TestbedConfig profiled_config(telemetry::Telemetry* tel, bool fluid = false) {
  exp::TestbedConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(20.0);
  config.scenario.placement_window = Duration::seconds(15);
  config.scenario.hold_time = Duration::seconds(10);
  config.scenario.arrival_rate_per_s = 2.0;
  config.pbx.max_channels = 22;
  config.fluid.enabled = fluid;
  config.seed = 42;
  config.telemetry = tel;
  return config;
}

telemetry::Config profiling_on() {
  telemetry::Config config;
  config.profiling = true;
  return config;
}

TEST(ProfilerIntegrationTest, EveryEventIsAttributed) {
  telemetry::Telemetry tel{profiling_on()};
  const auto report = exp::run_testbed(profiled_config(&tel));
  ASSERT_GT(report.calls_attempted, 0u);
  const telemetry::ProfileData data = tel.profiler()->snapshot();
  EXPECT_EQ(data.events_processed, report.events_processed);
  EXPECT_EQ(data.total_events(), report.events_processed);
  EXPECT_EQ(data.categories[sim::category_id(sim::Category::kUnattributed)].stats.events, 0u);
  // The workload's pillars all show up.
  EXPECT_GT(data.categories[sim::category_id(sim::Category::kSip)].stats.events, 0u);
  EXPECT_GT(data.categories[sim::category_id(sim::Category::kRtpPacket)].stats.events, 0u);
  EXPECT_GT(data.categories[sim::category_id(sim::Category::kLoadgen)].stats.events, 0u);
}

TEST(ProfilerIntegrationTest, SameSeedRunsExportIdenticalProfileJson) {
  telemetry::Telemetry tel_a{profiling_on()};
  telemetry::Telemetry tel_b{profiling_on()};
  (void)exp::run_testbed(profiled_config(&tel_a));
  (void)exp::run_testbed(profiled_config(&tel_b));
  const std::string json_a = telemetry::to_json(tel_a.profiler()->snapshot());
  const std::string json_b = telemetry::to_json(tel_b.profiler()->snapshot());
  EXPECT_EQ(json_a, json_b);
  // Counts are in the export; wall timing is not (it would break goldens).
  EXPECT_NE(json_a.find("\"events_processed\""), std::string::npos);
  EXPECT_EQ(json_a.find("timed_ns"), std::string::npos);
}

TEST(ProfilerIntegrationTest, ProfilingDoesNotPerturbCallOutcomes) {
  // Same seed, profiler off vs on: identical call-level results. (The
  // profiler's series tick adds kernel events, so events_processed may
  // differ — outcomes may not.)
  telemetry::Telemetry off;
  telemetry::Telemetry on{profiling_on()};
  const auto bare = exp::run_testbed(profiled_config(&off));
  const auto profiled = exp::run_testbed(profiled_config(&on));
  EXPECT_EQ(bare.calls_attempted, profiled.calls_attempted);
  EXPECT_EQ(bare.calls_completed, profiled.calls_completed);
  EXPECT_EQ(bare.calls_blocked, profiled.calls_blocked);
  EXPECT_EQ(bare.calls_failed, profiled.calls_failed);
  EXPECT_DOUBLE_EQ(bare.mos.mean(), profiled.mos.mean());
}

// ---- sharded cluster: attribution + merged trace ----------------------------

exp::ClusterConfig shard_config(telemetry::Telemetry* tel, unsigned threads, bool fluid) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(30.0, Duration::seconds(10));
  config.scenario.placement_window = Duration::seconds(15);
  config.servers = 3;
  config.channels_per_server = 15;
  config.seed = 4242;
  config.routing = exp::ClusterRouting::kDispatcher;
  config.fluid.enabled = fluid;
  config.telemetry = tel;
  config.shard.enabled = true;
  config.shard.threads = threads;
  return config;
}

TEST(ShardProfileTest, AttributionIsByteIdenticalForAnyWorkerCount) {
  for (const bool fluid : {false, true}) {
    std::string reference;
    for (const unsigned threads : {1u, 2u, 8u}) {
      telemetry::Config cfg = profiling_on();
      cfg.tracing = false;
      telemetry::Telemetry tel{cfg};
      const exp::ClusterResult r = exp::run_cluster(shard_config(&tel, threads, fluid));
      ASSERT_EQ(r.shard_profiles.size(), 4u) << "hub + 3 backends";
      EXPECT_EQ(r.shard_profiles[0].name, "hub");
      const std::string attr = telemetry::attribution_json(r.shard_profiles);
      if (reference.empty()) {
        reference = attr;
      } else {
        EXPECT_EQ(attr, reference) << "threads=" << threads << " fluid=" << fluid;
      }
    }
    EXPECT_NE(reference.find("\"shard\":\"hub\""), std::string::npos);
    EXPECT_NE(reference.find("\"shard\":\"pbx0.unb.br\""), std::string::npos);
  }
}

TEST(ShardProfileTest, ShardProfilesSumToTotalKernelEvents) {
  telemetry::Config cfg = profiling_on();
  cfg.tracing = false;
  telemetry::Telemetry tel{cfg};
  const exp::ClusterResult r = exp::run_cluster(shard_config(&tel, 2, false));
  std::uint64_t attributed = 0;
  for (const auto& shard : r.shard_profiles) attributed += shard.data.total_events();
  EXPECT_EQ(attributed, r.report.events_processed);
}

TEST(ShardTraceTest, MergedTraceIsByteIdenticalForAnyWorkerCount) {
  std::string reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    telemetry::Telemetry tel;  // tracing on by default
    const exp::ClusterResult r = exp::run_cluster(shard_config(&tel, threads, false));
    ASSERT_FALSE(r.merged_trace.empty());
    if (reference.empty()) {
      reference = r.merged_trace;
    } else {
      EXPECT_EQ(r.merged_trace, reference) << "threads=" << threads;
    }
  }
  // One Perfetto process per shard, and the call journeys crossed shards.
  EXPECT_NE(reference.find("\"name\":\"hub\""), std::string::npos);
  EXPECT_NE(reference.find("\"name\":\"pbx0.unb.br\""), std::string::npos);
  EXPECT_NE(reference.find("call.setup"), std::string::npos);
  EXPECT_NE(reference.find("dispatch"), std::string::npos);
}

TEST(ShardProfileTest, ProfilingOffLeavesResultEmpty) {
  telemetry::Telemetry tel;  // default config: profiling off
  const exp::ClusterResult r = exp::run_cluster(shard_config(&tel, 2, false));
  EXPECT_TRUE(r.shard_profiles.empty());
  EXPECT_EQ(tel.profiler(), nullptr);
}

// ---- merged-trace exporter unit ---------------------------------------------

TEST(MergedTraceTest, AssignsOneProcessPerTracerInOrder) {
  telemetry::SpanTracer a{16};
  telemetry::SpanTracer b{16};
  const auto id = a.begin(a.name_id("setup"), a.track_id("call-1"), TimePoint::at(Duration::millis(1)));
  a.end(id, TimePoint::at(Duration::millis(3)));
  b.instant(b.name_id("fault.crash"), b.track_id("faults"), TimePoint::at(Duration::millis(2)));

  const std::string merged =
      telemetry::to_chrome_trace_merged({{"hub", &a}, {"pbx0.unb.br", &b}});
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"hub\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"pbx0.unb.br\""), std::string::npos);
  EXPECT_NE(merged.find("fault.crash"), std::string::npos);
  // A null tracer entry is skipped, not dereferenced.
  const std::string partial = telemetry::to_chrome_trace_merged({{"hub", &a}, {"gone", nullptr}});
  EXPECT_EQ(partial.find("\"gone\""), std::string::npos);
}

}  // namespace
