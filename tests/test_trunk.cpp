// IAX2-style trunk aggregation (net/trunk.hpp + the Link trunk path):
// wire-size math, per-window aggregation on a link, unwrap transparency at
// the receiving hop, and the cluster-level contracts — an unchanged
// call/media census with fewer uplink bytes/packets, byte-identical across
// shard worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/trunk.hpp"
#include "rtp/codec.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pbxcap;
using net::Packet;

Packet rtp_packet(std::uint32_t wire_bytes) {
  Packet pkt;
  pkt.kind = net::PacketKind::kRtp;
  pkt.size_bytes = wire_bytes;
  return pkt;
}

TEST(TrunkWireSize, MathGoldens) {
  // Empty trunk: the meta header alone, encapsulated once.
  EXPECT_EQ(net::trunk_wire_size({}), net::wire_size(net::kTrunkHeaderBytes));

  // One G.729 packet (78 wire bytes = 20 payload + 12 RTP + 46 Eth/IP/UDP):
  // the trunk keeps the 20 payload bytes plus a 4-byte mini-frame header.
  EXPECT_EQ(net::trunk_wire_size({rtp_packet(78)}), net::wire_size(8 + 4 + 20));

  // k packets amortize the shared encapsulation: 100 G.729 frames cost
  // 46 + 8 + 100 x 24 = 2454 bytes against 7800 untrunked — the 3.18x
  // bandwidth win the IAX2 trunk mode exists for.
  const std::vector<Packet> hundred(100, rtp_packet(78));
  EXPECT_EQ(net::trunk_wire_size(hundred), net::wire_size(8 + 100 * 24));
  EXPECT_GT(100 * 78.0 / net::trunk_wire_size(hundred), 3.0);

  // A packet smaller than the stripped framing never underflows.
  EXPECT_EQ(net::trunk_wire_size({rtp_packet(10)}), net::wire_size(8 + 4));
}

/// Test endpoint: records deliveries with their arrival times.
class SinkNode final : public net::Node {
 public:
  explicit SinkNode(std::string name) : Node{std::move(name)} {}

  void on_receive(const Packet& pkt) override {
    received.push_back(pkt);
    arrival_times.push_back(network()->simulator().now());
  }

  void transmit_to(net::NodeId dst, std::uint32_t bytes, net::PacketKind kind) {
    Packet pkt;
    pkt.dst = dst;
    pkt.kind = kind;
    pkt.size_bytes = bytes;
    send(std::move(pkt));
  }

  std::vector<Packet> received;
  std::vector<TimePoint> arrival_times;
};

struct TrunkFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, sim::Random{7}};
};

TEST_F(TrunkFixture, AggregatesRtpWithinWindowAndBypassesSip) {
  SinkNode a{"a"};
  SinkNode b{"b"};
  network.attach(a);
  network.attach(b);
  net::LinkConfig cfg;
  cfg.trunk_window = Duration::millis(20);
  net::Link& link = network.connect(a, b, cfg);

  for (int i = 0; i < 5; ++i) a.transmit_to(b.id(), 78, net::PacketKind::kRtp);
  a.transmit_to(b.id(), 500, net::PacketKind::kSip);
  simulator.run();

  // The unwrap at the receiving hop re-delivers every aggregated packet
  // individually: the endpoint sees exactly what it would have without
  // trunking, in particular the original sizes and source.
  ASSERT_EQ(b.received.size(), 6u);
  std::size_t rtp_seen = 0;
  for (std::size_t i = 0; i < b.received.size(); ++i) {
    if (b.received[i].kind == net::PacketKind::kRtp) {
      ++rtp_seen;
      EXPECT_EQ(b.received[i].size_bytes, 78u);
      EXPECT_EQ(b.received[i].src, a.id());
      // Media waits for the 20 ms flush boundary.
      EXPECT_GE(b.arrival_times[i], TimePoint::at(Duration::millis(20)));
    } else {
      EXPECT_EQ(b.received[i].kind, net::PacketKind::kSip);
      // Signalling bypasses the trunk and arrives immediately.
      EXPECT_LT(b.arrival_times[i], TimePoint::at(Duration::millis(20)));
    }
  }
  EXPECT_EQ(rtp_seen, 5u);

  // One shell carried all five media packets, and the wire total shrank:
  // 46+8+5x24 = 174 shell bytes + 500 SIP, against 890 untrunked.
  const net::LinkDirectionStats& stats = link.stats_from(a.id());
  EXPECT_EQ(stats.trunk_frames, 1u);
  EXPECT_EQ(stats.trunk_mini_frames, 5u);
  EXPECT_EQ(stats.packets_sent, 2u);  // shell + SIP
  EXPECT_EQ(stats.bytes_sent, net::wire_size(8 + 5 * 24) + 500u);
}

TEST_F(TrunkFixture, FlushesOnTheWindowGrid) {
  SinkNode a{"a"};
  SinkNode b{"b"};
  network.attach(a);
  network.attach(b);
  net::LinkConfig cfg;
  cfg.trunk_window = Duration::millis(20);
  net::Link& link = network.connect(a, b, cfg);

  // 5 ms and 15 ms share the [0, 20) window; 25 ms starts the next one.
  for (const int ms : {5, 15, 25}) {
    simulator.schedule_at(TimePoint::at(Duration::millis(ms)),
                          [&a, &b] { a.transmit_to(b.id(), 78, net::PacketKind::kRtp); });
  }
  simulator.run();

  ASSERT_EQ(b.received.size(), 3u);
  EXPECT_GE(b.arrival_times[0], TimePoint::at(Duration::millis(20)));
  EXPECT_LT(b.arrival_times[1], TimePoint::at(Duration::millis(25)));
  EXPECT_GE(b.arrival_times[2], TimePoint::at(Duration::millis(40)));
  EXPECT_EQ(link.stats_from(a.id()).trunk_frames, 2u);
  EXPECT_EQ(link.stats_from(a.id()).trunk_mini_frames, 3u);
}

// --------------------------------------------------------------- cluster

exp::ClusterConfig g729_cluster(Duration trunk_window) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(40.0, Duration::seconds(20));
  config.scenario.placement_window = Duration::seconds(60);
  config.scenario.codec = *rtp::codec_by_payload_type(rtp::payload_type::kG729);
  config.servers = 2;
  config.channels_per_server = 30;
  config.allowed_payload_types = {rtp::payload_type::kG729};
  config.trunk_window = trunk_window;
  config.seed = 61;
  return config;
}

TEST(TrunkedCluster, CensusUnchangedAndUplinkTrafficReduced) {
  const auto plain = exp::run_cluster(g729_cluster(Duration::zero()));
  const auto trunked = exp::run_cluster(g729_cluster(Duration::millis(20)));

  // Trunking reframes the uplink wire; what happened must not change.
  EXPECT_EQ(plain.report.calls_attempted, trunked.report.calls_attempted);
  EXPECT_EQ(plain.report.calls_completed, trunked.report.calls_completed);
  EXPECT_EQ(plain.report.calls_blocked, trunked.report.calls_blocked);
  EXPECT_EQ(plain.report.calls_failed, trunked.report.calls_failed);
  EXPECT_EQ(plain.report.rtp_packets_at_pbx, trunked.report.rtp_packets_at_pbx);
  // Relays almost match: the flush delays media by up to one window, so the
  // last packets of a call can reach the PBX just after its bridge tore down
  // (BYE is untrunked signalling) and go unrouted — a per-call tail, not a
  // traffic change.
  EXPECT_NEAR(static_cast<double>(plain.report.rtp_relayed),
              static_cast<double>(trunked.report.rtp_relayed),
              0.002 * static_cast<double>(plain.report.rtp_relayed));
  EXPECT_EQ(plain.report.sip_total, trunked.report.sip_total);
  EXPECT_EQ(plain.report.trunk_frames, 0u);
  EXPECT_GT(trunked.report.trunk_frames, 0u);
  EXPECT_GT(trunked.report.trunk_mini_frames, trunked.report.trunk_frames);

  // ~20 concurrent G.729 calls per backend = ~40 media packets per 20 ms
  // window per direction: the shared framing shrinks uplink bytes toward the
  // 3.18x asymptote (the full >=3x gate runs at bench scale), and packets by
  // roughly the aggregation factor.
  ASSERT_GT(trunked.uplink_bytes, 0u);
  ASSERT_GT(trunked.uplink_packets, 0u);
  EXPECT_GT(static_cast<double>(plain.uplink_bytes) / static_cast<double>(trunked.uplink_bytes), 2.5);
  EXPECT_GT(static_cast<double>(plain.uplink_packets) / static_cast<double>(trunked.uplink_packets), 10.0);
}

std::string trunk_digest(const exp::ClusterResult& r) {
  std::string out;
  for (const std::uint64_t v :
       {r.report.calls_attempted, r.report.calls_completed, r.report.calls_blocked,
        r.report.sip_total, r.report.rtp_packets_at_pbx, r.report.rtp_relayed,
        r.report.trunk_frames, r.report.trunk_mini_frames, r.report.events_processed,
        r.uplink_bytes, r.uplink_packets, static_cast<std::uint64_t>(r.report.channels_peak)}) {
    out += std::to_string(v) + ",";
  }
  return out;
}

TEST(TrunkedShardedCluster, ByteIdenticalAcrossThreadCounts) {
  auto config = g729_cluster(Duration::millis(20));
  config.shard.enabled = true;
  config.shard.threads = 1;
  const auto one = exp::run_cluster(config);
  EXPECT_GT(one.report.calls_completed, 0u);
  EXPECT_GT(one.report.trunk_frames, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    config.shard.threads = threads;
    const auto again = exp::run_cluster(config);
    EXPECT_EQ(trunk_digest(one), trunk_digest(again)) << threads << " threads";
  }

  // The sharded trunk path (shells crossing the portal boundary) keeps the
  // same traffic-reduction contract as the monolithic one.
  config.shard.threads = 1;
  config.trunk_window = Duration::zero();
  const auto plain = exp::run_cluster(config);
  EXPECT_EQ(plain.report.calls_attempted, one.report.calls_attempted);
  EXPECT_EQ(plain.report.rtp_packets_at_pbx, one.report.rtp_packets_at_pbx);
  EXPECT_GT(static_cast<double>(plain.uplink_bytes) / static_cast<double>(one.uplink_bytes), 2.5);
  EXPECT_GT(static_cast<double>(plain.uplink_packets) / static_cast<double>(one.uplink_packets), 10.0);
}

}  // namespace
