// Unit tests for the load generator: scenario math, user naming, and small
// end-to-end generator runs against the PBX.
#include <gtest/gtest.h>

#include "exp/testbed.hpp"
#include "loadgen/receiver.hpp"
#include "loadgen/scenario.hpp"

namespace {

using namespace pbxcap;

TEST(Scenario, OfferedErlangsIsLambdaTimesHold) {
  loadgen::CallScenario s;
  s.arrival_rate_per_s = 2.0;
  s.hold_time = Duration::seconds(120);
  EXPECT_DOUBLE_EQ(s.offered_erlangs(), 240.0);  // Table I's heaviest column
}

TEST(Scenario, ForOfferedLoadInverts) {
  const auto s = loadgen::CallScenario::for_offered_load(160.0);
  EXPECT_NEAR(s.offered_erlangs(), 160.0, 1e-9);
  EXPECT_NEAR(s.arrival_rate_per_s, 160.0 / 120.0, 1e-9);
  const auto s2 = loadgen::CallScenario::for_offered_load(150.0, Duration::minutes(3));
  EXPECT_NEAR(s2.arrival_rate_per_s, 150.0 / 180.0, 1e-9);
}

TEST(Scenario, CallIndexParsing) {
  EXPECT_EQ(loadgen::call_index_of_user("recv-17"), 17u);
  EXPECT_EQ(loadgen::call_index_of_user("caller-0"), 0u);
  EXPECT_FALSE(loadgen::call_index_of_user("noindex").has_value());
  EXPECT_FALSE(loadgen::call_index_of_user("recv-x").has_value());
}

TEST(Generator, OffersApproximatelyLambdaTimesWindow) {
  exp::TestbedConfig config;
  config.scenario.arrival_rate_per_s = 0.5;
  config.scenario.placement_window = Duration::seconds(60);
  config.scenario.hold_time = Duration::seconds(5);
  config.seed = 3;
  const auto report = exp::run_testbed(config);
  // Poisson(30): nearly always within [12, 48].
  EXPECT_GT(report.calls_attempted, 12u);
  EXPECT_LT(report.calls_attempted, 48u);
  EXPECT_EQ(report.calls_attempted, report.calls_completed + report.calls_blocked +
                                        report.calls_failed);
}

TEST(Generator, CompletedCallsCarryBothDirectionsQuality) {
  exp::TestbedConfig config;
  config.scenario.arrival_rate_per_s = 0.2;
  config.scenario.placement_window = Duration::seconds(20);
  config.scenario.hold_time = Duration::seconds(5);
  config.seed = 11;
  const auto report = exp::run_testbed(config);
  ASSERT_GT(report.calls_completed, 0u);
  // MOS pooled over both directions: two samples per completed call.
  EXPECT_EQ(report.mos.count(), 2 * report.calls_completed);
  EXPECT_GT(report.mos.min(), 4.0);  // clean LAN: the paper's "above 4"
}

TEST(Generator, MaxCallsCapsAttempts) {
  exp::TestbedConfig config;
  config.scenario.arrival_rate_per_s = 10.0;
  config.scenario.placement_window = Duration::seconds(30);
  config.scenario.hold_time = Duration::seconds(2);
  config.scenario.max_calls = 5;
  config.seed = 4;
  const auto report = exp::run_testbed(config);
  EXPECT_EQ(report.calls_attempted, 5u);
}

TEST(Generator, FinitePopulationLimitsConcurrency) {
  exp::TestbedConfig config;
  config.scenario.finite_population = 3;
  config.scenario.per_user_rate_per_s = 0.5;
  config.scenario.placement_window = Duration::seconds(60);
  config.scenario.hold_time = Duration::seconds(10);
  config.seed = 5;
  const auto report = exp::run_testbed(config);
  EXPECT_GT(report.calls_attempted, 0u);
  // Only 3 users exist: never more than 3 concurrent channels.
  EXPECT_LE(report.channels_peak, 3u);
  EXPECT_EQ(report.calls_blocked, 0u);
}

TEST(Generator, StochasticHoldTimesComplete) {
  exp::TestbedConfig config;
  config.scenario.arrival_rate_per_s = 0.3;
  config.scenario.placement_window = Duration::seconds(30);
  config.scenario.hold_time = Duration::seconds(5);
  config.scenario.hold_model = sim::HoldTimeModel::kExponential;
  config.seed = 6;
  const auto report = exp::run_testbed(config);
  EXPECT_GT(report.calls_completed, 0u);
  EXPECT_EQ(report.calls_failed, 0u);
}

}  // namespace
