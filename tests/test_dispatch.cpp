// Tests for the cluster dispatcher: policies, 503 benching, the probe-driven
// circuit breaker, crash failover, and cluster-level determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/erlang_b.hpp"
#include "dispatch/dispatcher.hpp"
#include "exp/cluster.hpp"
#include "fault/plan.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "pbx/asterisk_pbx.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pbxcap;
using dispatch::CircuitState;
using dispatch::Dispatcher;
using dispatch::Policy;

std::vector<dispatch::BackendConfig> three_backends() {
  return {{"a.unb.br", 1}, {"b.unb.br", 1}, {"c.unb.br", 1}};
}

dispatch::DispatcherConfig with_policy(Policy policy) {
  dispatch::DispatcherConfig config;
  config.policy = policy;
  return config;
}

// Picks (and immediately releases) once, returning the chosen host.
std::string pick_once(Dispatcher& d) {
  const std::string* host = d.pick();
  if (host == nullptr) return "";
  std::string copy = *host;
  d.release(copy);
  return copy;
}

TEST(DispatcherPolicy, RoundRobinRotates) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kRoundRobin), simulator,
               resolver};
  EXPECT_EQ(pick_once(d), "a.unb.br");
  EXPECT_EQ(pick_once(d), "b.unb.br");
  EXPECT_EQ(pick_once(d), "c.unb.br");
  EXPECT_EQ(pick_once(d), "a.unb.br");
}

TEST(DispatcherPolicy, LeastLoadedFollowsOccupancy) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kLeastLoaded), simulator,
               resolver};
  // Claim one slot everywhere, then free b: the next call must land on b.
  ASSERT_NE(d.pick(), nullptr);
  ASSERT_NE(d.pick(), nullptr);
  ASSERT_NE(d.pick(), nullptr);
  d.release("b.unb.br");
  const std::string* host = d.pick();
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(*host, "b.unb.br");
}

TEST(DispatcherPolicy, LeastLoadedTiesShareRoundRobin) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kLeastLoaded), simulator,
               resolver};
  // All idle: ties must rotate, not pile onto index 0.
  EXPECT_EQ(pick_once(d), "a.unb.br");
  EXPECT_EQ(pick_once(d), "b.unb.br");
  EXPECT_EQ(pick_once(d), "c.unb.br");
}

TEST(DispatcherPolicy, WeightedSplitsExactly) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  std::vector<dispatch::BackendConfig> fleet{
      {"big.unb.br", 3}, {"mid.unb.br", 2}, {"small.unb.br", 1}};
  Dispatcher d{"disp.unb.br", fleet, with_policy(Policy::kWeighted), simulator, resolver};
  for (int i = 0; i < 600; ++i) (void)pick_once(d);
  // Smooth WRR is exact over every total-weight window: 3:2:1 of 600.
  EXPECT_EQ(d.backend_stats(0).calls_routed, 300u);
  EXPECT_EQ(d.backend_stats(1).calls_routed, 200u);
  EXPECT_EQ(d.backend_stats(2).calls_routed, 100u);
}

TEST(DispatcherBackoff, RetryAfterBenchesUntilExpiry) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kRoundRobin), simulator,
               resolver};
  d.on_reject_503("b.unb.br", Duration::seconds(2));
  EXPECT_EQ(pick_once(d), "a.unb.br");
  EXPECT_EQ(pick_once(d), "c.unb.br");
  EXPECT_EQ(pick_once(d), "a.unb.br");  // b skipped while benched
  simulator.run_until(TimePoint::at(Duration::seconds(3)));
  // Bench expired: b rejoins the rotation.
  std::vector<std::string> seen;
  for (int i = 0; i < 3; ++i) seen.push_back(pick_once(d));
  EXPECT_NE(std::find(seen.begin(), seen.end(), "b.unb.br"), seen.end());
}

TEST(DispatcherBackoff, Plain503DoesNotBenchByDefault) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kRoundRobin), simulator,
               resolver};
  // No Retry-After and default_backoff zero: a race for the last channel is
  // not evidence the backend is down.
  d.on_reject_503("a.unb.br", Duration::zero());
  EXPECT_EQ(pick_once(d), "a.unb.br");
}

TEST(DispatcherCircuit, InviteTimeoutsOpenCircuit) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kRoundRobin), simulator,
               resolver};
  for (int i = 0; i < 3; ++i) d.on_invite_timeout("c.unb.br");
  EXPECT_EQ(d.circuit(2), CircuitState::kOpen);
  EXPECT_EQ(d.circuit_opens(), 1u);
  for (int i = 0; i < 6; ++i) EXPECT_NE(pick_once(d), "c.unb.br");
}

TEST(DispatcherCircuit, RepickAvoidsFailedBackendWhenPossible) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", three_backends(), with_policy(Policy::kRoundRobin), simulator,
               resolver};
  const std::string* first = d.pick();
  ASSERT_NE(first, nullptr);
  const std::string failed = *first;
  d.release(failed);
  const std::string* next = d.repick(failed);
  ASSERT_NE(next, nullptr);
  EXPECT_NE(*next, failed);
}

TEST(DispatcherCircuit, RepickFallsBackToSoleSurvivor) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", {{"only.unb.br", 1}}, with_policy(Policy::kRoundRobin), simulator,
               resolver};
  const std::string* host = d.repick("only.unb.br");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(*host, "only.unb.br");  // better the suspect backend than no call
}

TEST(DispatcherCircuit, AllBackendsDownRejectsPick) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  Dispatcher d{"disp.unb.br", {{"only.unb.br", 1}}, with_policy(Policy::kLeastLoaded), simulator,
               resolver};
  for (int i = 0; i < 3; ++i) d.on_invite_timeout("only.unb.br");
  EXPECT_EQ(d.pick(), nullptr);
  EXPECT_EQ(d.picks_rejected(), 1u);
}

TEST(DispatcherConstruct, RejectsEmptyFleetAndZeroWeights) {
  sim::Simulator simulator;
  sip::HostResolver resolver;
  EXPECT_THROW((Dispatcher{"d.unb.br", {}, {}, simulator, resolver}), std::invalid_argument);
  EXPECT_THROW((Dispatcher{"d.unb.br", {{"a.unb.br", 0}}, {}, simulator, resolver}),
               std::invalid_argument);
}

// Full circuit lifecycle against a real PBX on a mini network: probes keep
// the circuit closed, a crash opens it within a few probe periods, and the
// restarted backend is readmitted through half-open trials.
TEST(DispatcherHealth, ProbesDriveCircuitThroughCrashAndRecovery) {
  sim::Simulator simulator;
  sim::Random impairment_rng{7};
  net::Network network{simulator, impairment_rng};
  sip::HostResolver resolver;

  net::SwitchNode lan_switch{"switch"};
  pbx::PbxConfig pbx_config;
  pbx_config.host = "pbx0.unb.br";
  pbx::AsteriskPbx pbx{pbx_config, simulator, resolver};
  Dispatcher d{"disp.unb.br", {{"pbx0.unb.br", 1}}, {}, simulator, resolver};

  network.attach(lan_switch);
  network.attach(pbx);
  network.attach(d);
  network.connect(pbx, lan_switch, {});
  network.connect(d, lan_switch, {});
  pbx.bind();
  d.bind();
  d.start();

  simulator.run_until(TimePoint::at(Duration::seconds(5)));
  EXPECT_EQ(d.circuit(0), CircuitState::kClosed);
  EXPECT_GT(d.probes_sent(), 0u);
  EXPECT_EQ(d.probe_failures(), 0u);

  pbx.crash_restart(Duration::seconds(10));  // dead until t = 15s
  simulator.run_until(TimePoint::at(Duration::seconds(10)));
  // Open, or already probing half-open trials against the still-dead box —
  // either way the backend is out of the routing set.
  EXPECT_NE(d.circuit(0), CircuitState::kClosed);
  EXPECT_EQ(d.circuit_opens(), 1u);
  EXPECT_EQ(d.pick(), nullptr);  // ejected from routing while dead

  simulator.run_until(TimePoint::at(Duration::seconds(25)));
  EXPECT_EQ(d.circuit(0), CircuitState::kClosed);  // half-open trials readmitted it
  EXPECT_NE(d.pick(), nullptr);
}

// ---------------------------------------------------------- cluster level --

exp::ClusterConfig dispatcher_cluster(Policy policy) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(8.0, Duration::seconds(4));
  config.scenario.placement_window = Duration::seconds(40);
  config.scenario.retry.enabled = true;
  config.servers = 3;
  config.channels_per_server = 12;
  config.seed = 91;
  config.routing = exp::ClusterRouting::kDispatcher;
  config.dispatcher.policy = policy;
  return config;
}

TEST(ClusterDispatch, FailoverSustainsGoodputThroughCrash) {
  // dead=40s outlasts Timer B (32s): INVITEs caught in flight when the box
  // dies genuinely time out (retransmissions never land) and must fail over.
  const auto plan = fault::FaultPlan::parse("@10s pbx crash dead=40s\n");

  auto faulted = dispatcher_cluster(Policy::kLeastLoaded);
  faulted.faults = &plan;
  faulted.fault_backend = 0;

  const auto baseline = exp::run_cluster(dispatcher_cluster(Policy::kLeastLoaded));
  const auto crashed = exp::run_cluster(faulted);

  ASSERT_GT(baseline.report.calls_completed, 0u);
  EXPECT_GE(crashed.backends[0].crashes, 1u);
  EXPECT_GE(crashed.circuit_opens, 1u);
  // Timed-out INVITEs were rescued onto survivors...
  EXPECT_GT(crashed.failovers, 0u);
  // ...so goodput holds within 10% of the fault-free run.
  EXPECT_GE(static_cast<double>(crashed.report.calls_completed),
            0.9 * static_cast<double>(baseline.report.calls_completed));
}

TEST(ClusterDispatch, SameSeedRunsAreIdentical) {
  const auto plan = fault::FaultPlan::parse("@10s pbx crash dead=40s\n");
  auto config = dispatcher_cluster(Policy::kLeastLoaded);
  config.faults = &plan;

  const auto a = exp::run_cluster(config);
  const auto b = exp::run_cluster(config);

  EXPECT_EQ(a.report.calls_attempted, b.report.calls_attempted);
  EXPECT_EQ(a.report.calls_completed, b.report.calls_completed);
  EXPECT_EQ(a.report.calls_blocked, b.report.calls_blocked);
  EXPECT_EQ(a.report.calls_failed, b.report.calls_failed);
  EXPECT_EQ(a.report.calls_retried, b.report.calls_retried);
  EXPECT_EQ(a.report.retries_rerouted, b.report.retries_rerouted);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.probe_failures, b.probe_failures);
  EXPECT_EQ(a.circuit_opens, b.circuit_opens);
  EXPECT_EQ(a.report.mos.mean(), b.report.mos.mean());  // exact double equality
  EXPECT_EQ(a.report.setup_delay_ms.mean(), b.report.setup_delay_ms.mean());
  ASSERT_EQ(a.backends.size(), b.backends.size());
  for (std::size_t i = 0; i < a.backends.size(); ++i) {
    EXPECT_EQ(a.backends[i].calls_routed, b.backends[i].calls_routed);
    EXPECT_EQ(a.backends[i].peak_channels, b.backends[i].peak_channels);
    EXPECT_EQ(a.backends[i].congestion, b.backends[i].congestion);
  }
}

TEST(ClusterDispatch, HeterogeneousFleetFavoursBigServers) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(12.0, Duration::seconds(10));
  config.scenario.placement_window = Duration::seconds(60);
  config.fleet = {{24, 0}, {12, 0}, {6, 0}};  // weight 0 -> channels
  config.seed = 17;
  config.routing = exp::ClusterRouting::kDispatcher;
  config.dispatcher.policy = Policy::kWeighted;
  const auto result = exp::run_cluster(config);
  ASSERT_EQ(result.backends.size(), 3u);
  EXPECT_EQ(result.backends[0].channels, 24u);
  // Weighted routing sends proportionally more calls to the big box.
  EXPECT_GT(result.backends[0].calls_routed, result.backends[1].calls_routed);
  EXPECT_GT(result.backends[1].calls_routed, result.backends[2].calls_routed);
}

// Paper §III-B property at cluster scale. A k = 1 "cluster" through the
// dispatcher is a plain M/M/N/N loss system, so its blocking must match
// Erlang-B(A, N) within statistical tolerance.
TEST(ClusterDispatch, SingleServerBlockingMatchesErlangB) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(10.0, Duration::seconds(20));
  config.scenario.placement_window = Duration::seconds(1500);
  config.servers = 1;
  config.channels_per_server = 12;
  config.seed = 23;
  config.routing = exp::ClusterRouting::kDispatcher;
  config.dispatcher.policy = Policy::kRoundRobin;
  const auto result = exp::run_cluster(config);

  const double expected = erlang::erlang_b(10.0, 12);
  const double tol = std::max(0.015, 0.2 * expected);
  EXPECT_NEAR(result.report.blocking_probability, expected, tol);
}

// For k > 1 the k servers bracket two classical bounds: pooling all k*N
// trunks (Erlang-B(A, kN), the unreachable optimum) and k independent
// Poisson-split M/M/N/N systems (Erlang-B(A/k, N)). Strict cyclic rotation
// of a Poisson stream gives each server Erlang-k interarrivals — smoother
// than Poisson — so measured blocking lands *inside* the envelope, at or
// below the Erlang-B(A/k, N) prediction the bench tables quote.
TEST(ClusterDispatch, RoundRobinBlockingWithinErlangBEnvelope) {
  exp::ClusterConfig config;
  config.scenario = loadgen::CallScenario::for_offered_load(30.0, Duration::seconds(20));
  config.scenario.placement_window = Duration::seconds(400);
  config.servers = 3;
  config.channels_per_server = 12;
  config.seed = 23;
  config.routing = exp::ClusterRouting::kDispatcher;
  config.dispatcher.policy = Policy::kRoundRobin;
  const auto result = exp::run_cluster(config);

  const double upper = erlang::erlang_b(30.0 / 3.0, 12);  // independent split
  const double lower = erlang::erlang_b(30.0, 36);        // full pooling
  const double tol = std::max(0.01, 0.15 * upper);
  EXPECT_LE(result.report.blocking_probability, upper + tol);
  EXPECT_GE(result.report.blocking_probability, lower - tol);
}

}  // namespace
