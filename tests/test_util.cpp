// Unit tests for util: time types, strings, tables.
#include <gtest/gtest.h>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace {

using namespace pbxcap;

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(120'000).ns(), Duration::seconds(120).ns());
  EXPECT_EQ(Duration::minutes(3).ns(), Duration::seconds(180).ns());
  EXPECT_EQ(Duration::hours(1).ns(), Duration::minutes(60).ns());
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(20e-3).ns(), Duration::millis(20).ns());
  EXPECT_EQ(Duration::from_millis(0.5).ns(), 500'000);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::seconds(2);
  const Duration b = Duration::millis(500);
  EXPECT_EQ((a + b).to_seconds(), 2.5);
  EXPECT_EQ((a - b).to_seconds(), 1.5);
  EXPECT_EQ((a * 3).to_seconds(), 6.0);
  EXPECT_EQ(a / b, 4);
  EXPECT_EQ((-a).ns(), -2'000'000'000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::seconds(1));
  EXPECT_EQ(Duration::zero(), Duration::nanos(0));
  EXPECT_GT(Duration::max(), Duration::hours(24 * 365));
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(Duration::millis(12).to_string(), "12.000ms");
  EXPECT_EQ(Duration::micros(7).to_string(), "7.000us");
  EXPECT_EQ(Duration::nanos(42).to_string(), "42ns");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::seconds(10);
  EXPECT_EQ((t1 - t0).to_seconds(), 10.0);
  EXPECT_EQ((t1 - Duration::seconds(4)).to_seconds(), 6.0);
  EXPECT_LT(t0, t1);
}

TEST(Strings, Split) {
  const auto parts = util::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(util::split("", ',').size(), 1u);
}

TEST(Strings, SplitOnce) {
  const auto [head, rest, found] = util::split_once("CSeq: 1 INVITE", ':');
  EXPECT_TRUE(found);
  EXPECT_EQ(head, "CSeq");
  EXPECT_EQ(rest, " 1 INVITE");
  EXPECT_FALSE(util::split_once("nocolon", ':').found);
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  x  "), "x");
  EXPECT_EQ(util::trim("\t\r\n"), "");
  EXPECT_EQ(util::trim("abc"), "abc");
}

TEST(Strings, CaseInsensitive) {
  EXPECT_TRUE(util::iequals("Content-Length", "content-length"));
  EXPECT_FALSE(util::iequals("Via", "Vias"));
  EXPECT_TRUE(util::starts_with_i("SIP/2.0 200 OK", "sip/2.0"));
  EXPECT_EQ(util::to_lower("INVITE"), "invite");
  EXPECT_EQ(util::to_upper("ack"), "ACK");
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(util::parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(util::parse_u64("", v));
  EXPECT_FALSE(util::parse_u64("12a", v));
  EXPECT_FALSE(util::parse_u64("-3", v));
  EXPECT_TRUE(util::parse_u64("18446744073709551615", v));
  EXPECT_FALSE(util::parse_u64("18446744073709551616", v));  // overflow
}

TEST(Strings, Format) {
  EXPECT_EQ(util::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(util::format("%.2f%%", 3.14159), "3.14%");
}

TEST(TextTable, RendersAligned) {
  util::TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, RejectsBadArity) {
  util::TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(util::TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, CsvEscaping) {
  util::TextTable t{{"x", "y"}};
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_EQ(util::csv_escape("plain"), "plain");
}

}  // namespace
