// Unit tests for sim::Callback — the SBO, move-only callable the event
// engine stores inside every event node. These pin down the allocation
// contract (inline for small captures, one heap allocation beyond
// kInlineBytes), move semantics for both paths, and the in-place
// emplace/invoke_and_reset cycle the scheduler's hot path relies on.
#include "sim/callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace pbxcap::sim {
namespace {

TEST(SimCallback, DefaultConstructedIsEmpty) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  Callback null_cb{nullptr};
  EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(SimCallback, InvokesSmallCapture) {
  int hits = 0;
  Callback cb{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(SimCallback, SmallCaptureStaysInline) {
  // A couple of pointers: the dominant closure shape on the hot path.
  struct Small {
    int* a;
    int* b;
    void operator()() const { *a += *b; }
  };
  static_assert(Callback::stores_inline<Small>());

  const std::uint64_t before = Callback::heap_allocations();
  int x = 1;
  int y = 41;
  Callback cb{Small{&x, &y}};
  cb();
  EXPECT_EQ(x, 42);
  EXPECT_EQ(Callback::heap_allocations(), before);
}

TEST(SimCallback, ExactlyInlineBoundaryStaysInline) {
  struct Exact {
    std::array<unsigned char, Callback::kInlineBytes> bytes;
    void operator()() const {}
  };
  static_assert(sizeof(Exact) == Callback::kInlineBytes);
  static_assert(Callback::stores_inline<Exact>());

  const std::uint64_t before = Callback::heap_allocations();
  Callback cb{Exact{}};
  cb();
  EXPECT_EQ(Callback::heap_allocations(), before);
}

TEST(SimCallback, OversizedCaptureTakesHeapFallbackOnce) {
  struct Big {
    std::array<unsigned char, Callback::kInlineBytes + 1> bytes{};
    int* hit;
    void operator()() const { ++*hit; }
  };
  static_assert(!Callback::stores_inline<Big>());

  const std::uint64_t before = Callback::heap_allocations();
  int hits = 0;
  Big big{};
  big.hit = &hits;
  Callback cb{big};
  EXPECT_EQ(Callback::heap_allocations(), before + 1);
  cb();
  EXPECT_EQ(hits, 1);

  // Moving a heap-backed callback hands off the pointer: no new allocation.
  Callback moved{std::move(cb)};
  EXPECT_EQ(Callback::heap_allocations(), before + 1);
  moved();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
}

TEST(SimCallback, MoveTransfersInlineCallable) {
  int hits = 0;
  Callback a{[&hits] { ++hits; }};
  Callback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Callback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SimCallback, MoveOnlyCaptureIsSupported) {
  // std::function cannot hold this at all; Callback must, inline.
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  Callback cb{[p = std::move(owned), &seen] { seen = *p; }};
  cb();
  EXPECT_EQ(seen, 7);
}

TEST(SimCallback, NonTrivialCaptureDestroyedExactlyOnce) {
  int alive = 0;
  struct Token {
    int* alive;
    explicit Token(int* a) noexcept : alive(a) { ++*alive; }
    Token(const Token& o) noexcept : alive(o.alive) { ++*alive; }
    Token(Token&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Token() { --*alive; }
  };
  {
    Callback cb{[t = Token{&alive}] { (void)t; }};
    EXPECT_GT(alive, 0);
    Callback moved{std::move(cb)};
    EXPECT_GT(alive, 0);
    moved();
    EXPECT_GT(alive, 0);  // invocation does not destroy
  }
  EXPECT_EQ(alive, 0);  // all copies gone once both shells are dead
}

TEST(SimCallback, EmplaceThenInvokeAndResetRunsInPlace) {
  int hits = 0;
  Callback cb;
  cb.emplace([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  cb.invoke_and_reset();
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(static_cast<bool>(cb));

  // The emptied shell is reusable: the scheduler recycles nodes this way.
  cb.emplace([&hits] { hits += 10; });
  cb.invoke_and_reset();
  EXPECT_EQ(hits, 11);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(SimCallback, InvokeAndResetDestroysNonTrivialCapture) {
  int alive = 0;
  struct Token {
    int* alive;
    explicit Token(int* a) noexcept : alive(a) { ++*alive; }
    Token(Token&& o) noexcept : alive(o.alive) { ++*alive; }
    Token(const Token&) = delete;
    ~Token() { --*alive; }
  };
  Callback cb;
  cb.emplace([t = Token{&alive}] { (void)t; });
  EXPECT_GT(alive, 0);
  cb.invoke_and_reset();
  EXPECT_EQ(alive, 0);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(SimCallback, MoveAssignmentDestroysPreviousCallable) {
  int alive = 0;
  struct Token {
    int* alive;
    explicit Token(int* a) noexcept : alive(a) { ++*alive; }
    Token(Token&& o) noexcept : alive(o.alive) { ++*alive; }
    Token(const Token&) = delete;
    ~Token() { --*alive; }
  };
  Callback cb{[t = Token{&alive}] { (void)t; }};
  EXPECT_GT(alive, 0);
  cb = Callback{};  // overwriting must release the old capture
  EXPECT_EQ(alive, 0);
}

}  // namespace
}  // namespace pbxcap::sim
